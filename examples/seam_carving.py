#!/usr/bin/env python
"""Seam carving — content-aware image shrinking as LTDP (paper §5 mention).

Builds a synthetic grayscale "photo" with a high-detail object on a
smooth background, finds minimum-energy vertical seams with the
parallel LTDP solver, removes a few of them, and verifies the seams
route around the object.

Run:  python examples/seam_carving.py
"""

import numpy as np

from repro import SeamCarvingProblem, solve_parallel, solve_sequential
from repro.problems.seam import gradient_energy

rng = np.random.default_rng(5)


def synthetic_photo(rows: int = 120, cols: int = 80) -> np.ndarray:
    """Smooth gradient background + a textured rectangle 'object'."""
    y = np.linspace(0, 1, rows)[:, None]
    x = np.linspace(0, 1, cols)[None, :]
    img = 0.4 * y + 0.2 * x
    obj = slice(30, 90), slice(25, 45)
    img[obj] += 0.3 + 0.2 * rng.random((60, 20))  # busy texture
    img += 0.01 * rng.random((rows, cols))  # sensor noise
    return img


def remove_seam(img: np.ndarray, seam: np.ndarray) -> np.ndarray:
    rows, cols = img.shape
    out = np.empty((rows, cols - 1), dtype=img.dtype)
    for i in range(rows):
        j = seam[i]
        out[i] = np.concatenate([img[i, :j], img[i, j + 1 :]])
    return out


def main() -> None:
    img = synthetic_photo()
    print(f"image: {img.shape[0]} x {img.shape[1]}, object at columns 25-44")
    removed = 0
    object_hits = 0
    for step in range(10):
        energy = gradient_energy(img)
        problem = SeamCarvingProblem(energy)
        par = solve_parallel(problem, num_procs=6, seed=step)
        seq = solve_sequential(problem)
        assert np.array_equal(par.path, seq.path), "parallel must match"
        seam = problem.extract(par)
        inside = np.mean((seam >= 25 - removed) & (seam < 45 - removed))
        object_hits += float(inside)
        img = remove_seam(img, seam)
        removed += 1
        print(
            f"seam {step + 1:2d}: energy {-par.score:8.3f}, "
            f"fix-up iters {par.metrics.forward_fixup_iterations}, "
            f"{inside:.0%} of rows inside the object window"
        )
    print(f"\nfinal image: {img.shape[0]} x {img.shape[1]}")
    print(f"mean object-window occupancy over all seams: {object_hits / 10:.1%}")
    assert object_hits / 10 < 0.25, "seams should avoid the textured object"
    print("seams routed around the high-energy object, as expected")


if __name__ == "__main__":
    main()
