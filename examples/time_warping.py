#!/usr/bin/env python
"""Dynamic time warping + an execution-trace tour (paper §5 mention).

Aligns a time series against a time-warped copy of itself with banded
DTW, shows that DTW recovers a far smaller distance than rigid
point-wise comparison, then renders the parallel run's BSP schedule as
an ASCII Gantt chart to make fix-up recomputation visible.

Run:  python examples/time_warping.py
"""

import numpy as np

from repro import CostModel, DTWProblem, solve_parallel, solve_sequential
from repro.machine.trace import render_gantt, utilization

rng = np.random.default_rng(21)


def warped_copy(x: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Resample x along a random monotone time warp of the same length."""
    n = len(x)
    knots = np.sort(rng.uniform(0, n - 1, size=6))
    warp = np.interp(
        np.linspace(0, n - 1, n),
        np.concatenate([[0], knots, [n - 1]]),
        np.concatenate(
            [[0], np.sort(rng.uniform(0, n - 1, size=6)), [n - 1]]
        ),
    )
    return np.interp(warp, np.arange(n), x)


def main() -> None:
    n = 400
    t = np.linspace(0, 8 * np.pi, n)
    x = np.sin(t) + 0.25 * np.sin(3.1 * t)
    y = warped_copy(x, rng) + 0.02 * rng.normal(size=n)

    problem = DTWProblem(x, y, width=40)
    seq = solve_sequential(problem)
    par = solve_parallel(problem, num_procs=8, seed=0)
    assert np.array_equal(seq.path, par.path)

    dtw_dist = -par.score
    rigid_dist = float(np.abs(x - y).sum())
    print(f"series length        : {n}")
    print(f"rigid L1 distance    : {rigid_dist:9.3f}")
    print(f"DTW distance (band 40): {dtw_dist:9.3f}")
    assert dtw_dist < rigid_dist / 2, "warping should absorb the distortion"

    path = problem.extract(par)
    drift = max(abs(i - j) for i, j in path)
    print(f"max warp drift       : {drift} samples")
    print(f"fix-up iterations    : {par.metrics.forward_fixup_iterations}\n")

    print("BSP schedule of the parallel run (F=forward, x=fix-up, B/b=backward):")
    cm = CostModel(cell_cost=1e-7)
    print(render_gantt(par.metrics, cm, columns=96))
    util = utilization(par.metrics, cm)
    print(f"\nmean processor utilization: {np.mean(util):.0%}")


if __name__ == "__main__":
    main()
