#!/usr/bin/env python
"""Paper Figure 3, live: watch stage vectors converge to the truth.

Runs the parallel algorithm on a small banded NW instance with stored
stage vectors kept, then renders the paper's three-shade picture per
stage:

    ``=``  stored vector is exactly the true solution vector
    ``~``  stored vector is parallel to the truth (offset shown)
    ``#``  stored vector is wrong (never happens after fix-up!)

Processor boundaries are drawn with ``|``.  You can see processor 1's
exact prefix, the parallel-with-offset regions of later processors,
and — by rerunning with an adversarial instance — what devolution
looks like.

Run:  python examples/fixup_walkthrough.py
"""

import numpy as np

from repro import NeedlemanWunschProblem, solve_parallel, solve_sequential
from repro.datagen import homologous_pair
from repro.ltdp.partition import partition_stages
from repro.semiring.vector import are_parallel, parallel_offset

rng = np.random.default_rng(2)


def shade(stored: np.ndarray, true: np.ndarray) -> tuple[str, float | None]:
    if np.array_equal(stored, true):
        return "=", 0.0
    if are_parallel(stored, true):
        return "~", parallel_offset(stored, true)
    return "#", None


def main() -> None:
    a, b = homologous_pair(240, rng, divergence=0.1)
    problem = NeedlemanWunschProblem(a, b, width=12)
    num_procs = 6

    seq = solve_sequential(problem, keep_stage_vectors=True)
    par = solve_parallel(
        problem, num_procs=num_procs, seed=1, keep_stage_vectors=True
    )
    assert np.array_equal(seq.path, par.path)

    ranges = partition_stages(problem.num_stages, num_procs)
    boundaries = {rg.lo for rg in ranges}

    shades = []
    offsets = []
    for i in range(problem.num_stages + 1):
        s, off = shade(par.stage_vectors[i], seq.stage_vectors[i])
        shades.append(s)
        offsets.append(off)

    print(
        f"NW instance: {problem.num_stages} stages on {num_procs} processors, "
        f"fix-up iterations = {par.metrics.forward_fixup_iterations}"
    )
    print("legend: '=' exact, '~' parallel (offset), '#' wrong, '|' proc boundary\n")
    line = []
    for i, s in enumerate(shades):
        if i in boundaries and i > 0:
            line.append("|")
        line.append(s)
    text = "".join(line)
    for start in range(0, len(text), 80):
        print(text[start : start + 80])

    assert "#" not in shades, "fix-up left a non-parallel stage!"

    print("\nper-processor offsets of the stored vectors (vs. truth):")
    for rg in ranges:
        offs = sorted(
            {
                round(offsets[i], 6)
                for i in rg.stages()
                if offsets[i] is not None
            }
        )
        print(f"  processor {rg.proc}: stage offsets {offs}")

    print(
        "\nProcessor 1 is exact (offset 0); later processors carry constant "
        "offsets\nper converged region — invisible to the traceback "
        "(Lemma 3), which is why\nthe paths above matched exactly."
    )


if __name__ == "__main__":
    main()
