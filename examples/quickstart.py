#!/usr/bin/env python
"""Quickstart: solve an LTDP problem sequentially and in parallel.

Builds a banded LCS instance over two synthetic DNA sequences, solves
it with the sequential algorithm (paper Fig 2) and the rank-convergence
parallel algorithm (paper Figs 4/5), verifies they agree exactly, and
prices both runs with the simulated-cluster cost model.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LCSProblem, SimCluster, solve_parallel, solve_sequential
from repro.datagen import homologous_pair

rng = np.random.default_rng(42)


def main() -> None:
    # Two homologous DNA sequences (~5% divergence), banded LCS.
    a, b = homologous_pair(2000, rng, divergence=0.05)
    problem = LCSProblem(a, b, width=32)

    print(f"LCS instance: |a| = {len(a)}, |b| = {len(b)}, band width 32")
    print(f"stages = {problem.num_stages}, cells = {problem.total_cells():.0f}\n")

    seq = solve_sequential(problem)
    print(f"sequential  : LCS length = {seq.score:.0f}")

    par = solve_parallel(problem, num_procs=8, seed=0)
    print(f"parallel P=8: LCS length = {par.score:.0f}")
    assert np.array_equal(seq.path, par.path), "paths must agree exactly"
    assert seq.score == par.score

    witness = problem.extract(par)
    print(f"witness subsequence has length {len(witness)} (== score)\n")

    m = par.metrics
    print(f"forward fix-up iterations : {m.forward_fixup_iterations}")
    print(f"converged first iteration : {m.converged_first_iteration}")
    print(f"critical-path work        : {m.critical_path_work:.0f} cells")
    print(f"total work (all procs)    : {m.total_work:.0f} cells")
    print(f"sequential work           : {problem.total_cells():.0f} cells\n")

    # Price both runs on a simulated Stampede-like machine.
    cluster = SimCluster.stampede(8, cell_cost=20e-9)
    t_par = cluster.time_of(m)
    t_seq = cluster.sequential_time(
        problem.total_cells(), traceback_steps=problem.num_stages
    )
    print(f"simulated sequential time : {t_seq * 1e3:.3f} ms")
    print(f"simulated parallel time   : {t_par * 1e3:.3f} ms")
    print(f"speedup on 8 processors   : {t_seq / t_par:.2f}x")


if __name__ == "__main__":
    main()
