#!/usr/bin/env python
"""A tour of the tropical-algebra layer behind rank convergence.

Walks through the §2/§4.8 machinery directly:

1. tropical matrix products and the paper's worked rank-1 example;
2. Equation (3): rank bounds collapsing along a product chain;
3. the graph view — an LTDP instance as a longest-path DAG, solved
   independently with networkx and via choke-point analysis;
4. spectral theory: Karp's maximum cycle mean as the growth rate of
   repeated stage application, and a genuine tropical eigenvector.

Run:  python examples/tropical_algebra_tour.py
"""

import numpy as np

from repro import TropicalMatrix, solve_sequential
from repro.ltdp import random_matrix_problem
from repro.ltdp.graphview import articulation_stages, longest_path_solution
from repro.semiring import (
    critical_nodes,
    is_rank_one,
    max_cycle_mean,
    tropical_eigenvector,
)
from repro.semiring.tropical import NEG_INF, tropical_matvec

rng = np.random.default_rng(9)


def worked_example() -> None:
    print("=== 1. the paper's §2 worked example ===")
    A = TropicalMatrix([[1.0, 2, 3], [2, 3, 4], [3, 4, 5]])
    u = np.array([1.0, NEG_INF, 3.0])
    v = np.array([NEG_INF, 2.0, 0.0])
    print(f"A is rank one: {A.is_rank_one()}")
    print(f"A ⨂ u = {A @ u}  (paper: [6 7 8])")
    print(f"A ⨂ v = {A @ v}  (paper: [4 5 6] — parallel, offset 2)\n")


def rank_collapse() -> None:
    print("=== 2. Equation (3): rank collapse along a chain ===")
    product = TropicalMatrix(rng.integers(-4, 5, size=(5, 5)).astype(float))
    print("k : rank bound of A_k ⨂ … ⨂ A_1")
    for k in range(2, 13):
        step = TropicalMatrix(rng.integers(-4, 5, size=(5, 5)).astype(float))
        product = step @ product
        bound = product.rank_upper_bound()
        print(f"{k:2d}: {bound}" + ("   <- rank 1 reached" if bound == 1 else ""))
        if bound == 1:
            assert is_rank_one(product.data)
            break
    print()


def graph_view() -> None:
    print("=== 3. §4.8: LTDP as longest path + choke points ===")
    problem = random_matrix_problem(14, 4, rng, integer=True)
    tropical = solve_sequential(problem)
    oracle_score, _ = longest_path_solution(problem)
    print(f"tropical DP score : {tropical.score}")
    print(f"networkx longest  : {oracle_score}")
    assert tropical.score == oracle_score
    chokes = articulation_stages(problem)
    print(f"choke-point stages (single optimal cell): {chokes}")
    print("every optimal path threads those cells — the I-90 effect that")
    print("drives rank convergence (§4.8)\n")


def spectral() -> None:
    print("=== 4. spectral theory: growth rate of repeated stages ===")
    A = rng.integers(-4, 5, size=(5, 5)).astype(float)
    lam = max_cycle_mean(A)
    print(f"max cycle mean λ  : {lam:.4f}")
    print(f"critical nodes    : {critical_nodes(A)}")
    v = rng.integers(-3, 4, size=5).astype(float)
    for _ in range(50):
        v = tropical_matvec(A, v)
    before = np.max(v)
    v = tropical_matvec(A, v)
    print(f"per-step growth of A^k ⨂ v after mixing: {np.max(v) - before:.4f}")
    eig = tropical_eigenvector(A)
    lhs = tropical_matvec(A, eig)
    print(f"eigen-equation residual max|A⨂x − (λ+x)| = "
          f"{np.max(np.abs(lhs - (eig + lam))):.2e}")


if __name__ == "__main__":
    worked_example()
    rank_collapse()
    graph_view()
    spectral()
