#!/usr/bin/env python
"""Viterbi decoding of noisy convolutional packets — the paper's §6.3.1 scenario.

Encodes random payloads with the real Voyager / LTE / CDMA codes,
corrupts them on a binary symmetric channel, decodes each packet with
the parallel LTDP Viterbi decoder, and reports bit-error rates and the
simulated decoding throughput (Mb/s) over a processor sweep.

Run:  python examples/viterbi_decoding.py
"""

import numpy as np

from repro import SimCluster, solve_parallel, solve_sequential
from repro.analysis import throughput_mbps
from repro.datagen import make_received_packet
from repro.problems import CDMA_IS95, LTE, VOYAGER

rng = np.random.default_rng(7)

PAYLOAD_BITS = 1024
ERROR_RATE = 0.03


def main() -> None:
    print(
        f"Decoding {PAYLOAD_BITS}-bit packets over a BSC with "
        f"{ERROR_RATE:.0%} bit-flip probability\n"
    )
    for code in (VOYAGER, LTE, CDMA_IS95):
        payload, problem = make_received_packet(
            code, PAYLOAD_BITS, rng, error_rate=ERROR_RATE
        )
        seq = solve_sequential(problem)
        decoded = problem.extract(seq)
        raw_ber = ERROR_RATE
        post_ber = float((decoded != payload).mean())
        print(
            f"{code.name:8s} (K={code.constraint_length:2d}, rate 1/"
            f"{code.rate_denominator}, {code.num_states} states): "
            f"channel BER {raw_ber:.3f} -> decoded BER {post_ber:.4f}"
        )

        # Parallel decode: identical output, speedup from rank convergence.
        par = solve_parallel(problem, num_procs=16, seed=1)
        assert np.array_equal(problem.extract(par), decoded)
        cluster = SimCluster.stampede(16, cell_cost=5e-9)
        t_seq = cluster.sequential_time(
            problem.total_cells(), traceback_steps=problem.num_stages
        )
        t_par = cluster.time_of(par.metrics)
        print(
            f"{'':8s} P=16: fix-up iterations = "
            f"{par.metrics.forward_fixup_iterations}, "
            f"throughput {throughput_mbps(PAYLOAD_BITS, t_seq):7.1f} -> "
            f"{throughput_mbps(PAYLOAD_BITS, t_par):7.1f} Mb/s "
            f"({t_seq / t_par:.1f}x)\n"
        )


if __name__ == "__main__":
    main()
