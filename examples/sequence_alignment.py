#!/usr/bin/env python
"""Sequence alignment with NW (global) and SW (local) — the §6.3.2/6.3.3 scenario.

Globally aligns a homologous DNA pair with banded Needleman–Wunsch,
then searches a long synthetic "chromosome" for a planted gene with
affine-gap Smith–Waterman, both via the parallel LTDP algorithm.

Run:  python examples/sequence_alignment.py
"""

import numpy as np

from repro import (
    NeedlemanWunschProblem,
    ScoringScheme,
    SmithWatermanProblem,
    solve_parallel,
    solve_sequential,
)
from repro.datagen import homologous_pair, random_dna

rng = np.random.default_rng(11)


def global_alignment_demo() -> None:
    print("=== Needleman–Wunsch: global alignment of a homologous pair ===")
    a, b = homologous_pair(800, rng, divergence=0.06)
    scoring = ScoringScheme.unit_linear(gap=1.0)
    problem = NeedlemanWunschProblem(a, b, width=24, scoring=scoring)

    par = solve_parallel(problem, num_procs=8, seed=0)
    seq = solve_sequential(problem)
    assert par.score == seq.score

    alignment = problem.extract(par)
    identity = float(np.mean(alignment.top == alignment.bottom))
    print(f"alignment score    : {par.score:.0f}")
    print(f"alignment columns  : {len(alignment)}")
    print(f"percent identity   : {identity:.1%}")
    print(f"fix-up iterations  : {par.metrics.forward_fixup_iterations}")
    head = 60
    print("first 60 columns:")
    rendered = alignment.render()
    for line in rendered.splitlines():
        print("  " + line[:head])
    print()


def local_alignment_demo() -> None:
    print("=== Smith–Waterman: find a planted gene in a chromosome ===")
    gene = random_dna(60, rng)
    chromosome = random_dna(20_000, rng)
    where = 13_400
    # Plant a slightly mutated copy of the gene.
    copy = gene.copy()
    copy[::9] = (copy[::9] + 1) % 4
    chromosome[where : where + 60] = copy

    problem = SmithWatermanProblem(gene, chromosome)
    par = solve_parallel(problem, num_procs=16, seed=0, parallel_backward=True)
    summary = problem.extract(par)
    print(f"best local score   : {par.score:.0f}")
    print(f"database window    : {summary.db_window} (planted at {where + 1})")
    print(f"query window       : {summary.query_window}")
    print(f"fix-up iterations  : {par.metrics.forward_fixup_iterations}")
    lo, hi = summary.db_window
    assert lo >= where - 5 and hi <= where + 66, "hit should be at the plant site"
    print("planted gene located correctly\n")


if __name__ == "__main__":
    global_alignment_demo()
    local_alignment_demo()
