#!/usr/bin/env python
"""Rank convergence made visible — the paper's §4.2/§6.1 phenomenon.

Three demonstrations:

1. the factor-rank upper bound of partial products ``M_{0→k}`` collapsing
   to 1 on a random LTDP chain (Equation 3 in action);
2. steps-to-convergence statistics per problem family (the Table 1
   protocol) — Viterbi and SW converge fast, LCS essentially never;
3. an adversarial permutation chain on which rank *cannot* converge,
   and the parallel algorithm provably devolving to sequential while
   still producing the exact answer.

Run:  python examples/rank_convergence_demo.py
"""

import numpy as np

from repro import solve_parallel, solve_sequential
from repro.analysis import format_table
from repro.datagen import homologous_pair, make_received_packet, random_dna
from repro.ltdp import (
    measure_convergence_steps,
    partial_product_rank_profile,
    random_matrix_problem,
)
from repro.ltdp.matrix_problem import MatrixLTDPProblem
from repro.problems import VOYAGER, LCSProblem, SmithWatermanProblem
from repro.semiring.tropical import NEG_INF

rng = np.random.default_rng(3)


def rank_profile_demo() -> None:
    print("=== 1. rank of partial products M_(0->k) on a random chain ===")
    problem = random_matrix_problem(24, 6, rng, integer=True)
    profile = partial_product_rank_profile(problem, 0, 24)
    print("k      :", " ".join(f"{k:2d}" for k in range(1, 25)))
    print("rank<= :", " ".join(f"{r:2d}" for r in profile))
    print(f"rank hits 1 after {profile.index(1) + 1} products\n")


def table1_style_demo() -> None:
    print("=== 2. steps to converge to rank 1 (Table 1 protocol) ===")
    rows = []

    _, viterbi = make_received_packet(VOYAGER, 400, rng, error_rate=0.03)
    rows.append(
        measure_convergence_steps(viterbi, num_trials=15, seed=0, name="Viterbi/Voyager").row()
    )

    query = random_dna(48, rng)
    db = random_dna(1500, rng)
    sw = SmithWatermanProblem(query, db)
    rows.append(measure_convergence_steps(sw, num_trials=15, seed=0, name="Smith-Waterman").row())

    a, b = homologous_pair(400, rng, divergence=0.1)
    lcs = LCSProblem(a, b, width=32)
    rows.append(
        measure_convergence_steps(
            lcs, num_trials=10, seed=0, name="LCS", max_steps=300
        ).row()
    )

    print(
        format_table(
            ["problem", "width", "min", "median", "max", "converged"], rows
        )
    )
    print()


def adversarial_demo() -> None:
    print("=== 3. adversarial instance: rank cannot converge ===")
    width, stages = 5, 24
    mats = []
    for _ in range(stages):
        perm = rng.permutation(width)
        m = np.full((width, width), NEG_INF)
        m[perm, np.arange(width)] = rng.integers(-3, 4, size=width).astype(float)
        mats.append(m)
    problem = MatrixLTDPProblem(
        rng.integers(-5, 6, size=width).astype(float), mats
    )
    seq = solve_sequential(problem)
    par = solve_parallel(problem, num_procs=6)
    print(f"fix-up iterations : {par.metrics.forward_fixup_iterations} "
          f"(devolved — worst case is P)")
    print(f"paths identical   : {np.array_equal(seq.path, par.path)}")
    print(f"scores identical  : {seq.score == par.score}")


if __name__ == "__main__":
    rank_profile_demo()
    table1_style_demo()
    adversarial_demo()
