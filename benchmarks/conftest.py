"""Shared infrastructure for the benchmark harness.

Every module regenerates one table or figure of the paper's evaluation
(§6).  Conventions:

- the experiment itself (processor sweeps over the *real* parallel
  algorithm, priced by the calibrated cost model) runs once per module
  and its rows/series are written to ``benchmarks/results/<name>.txt``
  and echoed in the terminal summary at the end of the run, so
  ``pytest benchmarks/ --benchmark-only`` leaves a full, inspectable
  record both on disk and in any tee'd log;
- the ``benchmark`` fixture times the underlying single-core kernel of
  that experiment (the quantity absolute throughput derives from), so
  pytest-benchmark output doubles as the calibration report.

Problem sizes are scaled to a single-core Python host; DESIGN.md §3
documents the scaling and EXPERIMENTS.md compares shapes with the
paper's numbers.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's Fig 7-10 x-axis, scaled to a sane sweep.
PROC_GRID = [1, 2, 4, 8, 16, 32, 64, 128]
#: Fig 11 runs on the 40-core shared-memory box.
SHARED_MEMORY_PROC_GRID = [1, 5, 10, 20, 40]

#: Reports accumulated during the session; echoed in the terminal
#: summary, which pytest does not capture.
_SESSION_REPORTS: list[tuple[str, str]] = []


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def report(results_dir):
    """Writer: report(name, text) persists and queues an experiment record."""

    def _report(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        _SESSION_REPORTS.append((name, text))

    return _report


def pytest_terminal_summary(terminalreporter) -> None:
    """Echo every experiment table after the test results (uncaptured)."""
    if not _SESSION_REPORTS:
        return
    tr = terminalreporter
    tr.section("paper tables & figures (also in benchmarks/results/)")
    for name, text in _SESSION_REPORTS:
        tr.write_line(f"\n===== {name} =====")
        for line in text.splitlines():
            tr.write_line(line)
