"""Table 1 — steps to converge to rank 1 (paper §6.1).

For each (algorithm, input) pair: start from a random all-non-zero
vector at many stages, count steps until the vector becomes parallel
to the true solution vector, report min / median / max and the number
of converging trials.  Scaled-down inputs (DESIGN.md §3): trellis
widths are real except MARS (K=11 stand-in, 1024 states); alignment
widths are 16-256 instead of 1024-65536.

Paper shape to reproduce: Viterbi converges in tens of steps (MARS the
slowest), Smith-Waterman in few steps relative to width, NW in many
steps growing with width, LCS often not at all at large widths.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.datagen.packets import make_received_packet
from repro.datagen.sequences import homologous_pair, random_dna
from repro.ltdp.convergence import measure_convergence_steps
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.convolutional import CDMA_IS95, LTE, MARS, VOYAGER

TRIALS = 20


def viterbi_rows(rng):
    rows = []
    for code, stages in [
        (VOYAGER, 400),
        (LTE, 400),
        (CDMA_IS95, 400),
        (MARS, 300),  # real K=15 code: 16384 trellis states
    ]:
        _, problem = make_received_packet(
            code, stages - code.constraint_length + 1, rng, error_rate=0.03
        )
        study = measure_convergence_steps(
            problem, num_trials=TRIALS, seed=1, name=f"Viterbi {code.name}"
        )
        rows.append(study.row())
    return rows


def smith_waterman_rows(rng):
    rows = []
    db = random_dna(1500, rng)
    for qlen in (32, 64, 96, 128):
        query = random_dna(qlen, rng)
        problem = SmithWatermanProblem(query, db)
        study = measure_convergence_steps(
            problem, num_trials=TRIALS, seed=2, name=f"SW query={qlen}"
        )
        rows.append(study.row())
    return rows


def needleman_wunsch_rows(rng):
    rows = []
    a, b = homologous_pair(1500, rng, divergence=0.2)
    for width in (16, 32, 64, 128):
        problem = NeedlemanWunschProblem(a, b, width=width)
        study = measure_convergence_steps(
            problem, num_trials=10, seed=3, name=f"NW width={width}"
        )
        rows.append(study.row())
    return rows


def lcs_rows(rng):
    rows = []
    a, b = homologous_pair(1500, rng, divergence=0.2)
    for width in (32, 64, 128, 256):
        problem = LCSProblem(a, b, width=width)
        study = measure_convergence_steps(
            problem, num_trials=10, seed=4, name=f"LCS width={width}"
        )
        rows.append(study.row())
    return rows


@pytest.fixture(scope="module")
def table_rows():
    rng = np.random.default_rng(1)
    rows = []
    rows += viterbi_rows(rng)
    rows += smith_waterman_rows(rng)
    rows += needleman_wunsch_rows(rng)
    rows += lcs_rows(rng)
    return rows


def test_table1_report(table_rows, report, benchmark):
    text = format_table(
        ["problem / input", "width", "min", "median", "max", "converged"],
        table_rows,
        title="Table 1: steps to converge to rank 1 (scaled inputs)",
    )
    report("table1_rank_convergence", text)

    # Benchmark the measured quantity's kernel: one steps-to-parallel probe.
    rng = np.random.default_rng(9)
    _, problem = make_received_packet(VOYAGER, 200, rng, error_rate=0.03)
    from repro.ltdp.convergence import steps_to_parallel
    from repro.ltdp.sequential import forward_sequential

    _, _, reference, _ = forward_sequential(problem, keep_stage_vectors=True)
    benchmark(
        lambda: steps_to_parallel(problem, reference, 0, np.random.default_rng(3))
    )

    # Shape assertions vs the paper (§6.1):
    by_name = {r[0]: r for r in table_rows}
    # Viterbi always converges, in a number of steps far below the
    # packet length.  (Deviation from the paper, see EXPERIMENTS.md:
    # under equal-BER hard-decision inputs MARS's rate-1/6 redundancy
    # makes it converge *fast* relative to its width, unlike the
    # paper's Table 1 where MARS was the slowest.)
    for name in ("Viterbi Voyager", "Viterbi LTE", "Viterbi CDMA", "Viterbi MARS"):
        assert by_name[name][5].split("/")[0] == str(TRIALS)
        assert by_name[name][4] < 200  # max steps << packet length
    # SW converges in every trial.
    for qlen in (32, 64, 96, 128):
        assert by_name[f"SW query={qlen}"][5].split("/")[0] == str(TRIALS)
    # NW/LCS: wider widths need more steps (or stop converging at all),
    # monotone on medians where defined.
    def median(name):
        v = by_name[name][3]
        return np.inf if v == "-" else v

    assert median("NW width=128") >= median("NW width=16")
    assert median("LCS width=256") >= median("LCS width=32")
