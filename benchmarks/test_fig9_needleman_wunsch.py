"""Figure 9 — Needleman–Wunsch GCUPS / speedup / efficiency (§6.3.3).

Banded global alignment over synthetic chromosome pairs: a *similar*
pair (the (X, Y)-like best case) and a *divergent* pair (the
(21, 22)-like worst case), four band widths, processor sweep with the
§4.7 delta-computation accounting enabled (the paper's NW/LCS runs use
it).

Paper shapes to reproduce:
- large input-pair variability: the similar pair scales much better;
- larger widths perform worse (convergence steps grow with width while
  the stage count is fixed);
- non-filled points (fix-up > 1 iteration) appear at high P / wide bands.
"""

import numpy as np
import pytest

from repro.analysis.speedup import scaling_sweep, throughput_gcups
from repro.analysis.tables import format_series
from repro.datagen.sequences import homologous_pair
from repro.machine.cluster import SimCluster
from repro.machine.cost_model import calibrate_cell_cost
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem

from conftest import PROC_GRID

WIDTHS = [16, 32, 64, 128]
SEQ_LENGTH = 6000
PAIRS = {
    "similar(X,Y)": 0.03,
    "divergent(21,22)": 0.35,
}


@pytest.fixture(scope="module")
def fig9_data():
    data = {}
    for pair_name, divergence in PAIRS.items():
        rng = np.random.default_rng(9)
        a, b = homologous_pair(SEQ_LENGTH, rng, divergence=divergence)
        per_width = {}
        cell_cost = None
        for width in WIDTHS:
            problem = NeedlemanWunschProblem(a, b, width=width)
            if cell_cost is None:
                mid = problem.num_stages // 2
                v = np.zeros(problem.stage_width(mid - 1))
                cell_cost = calibrate_cell_cost(
                    lambda: problem.apply_stage_with_pred(mid, v),
                    problem.stage_cost(mid),
                    min_seconds=0.05,
                )
            cluster = SimCluster.stampede(1, cell_cost=cell_cost)
            curve = scaling_sweep(
                problem,
                cluster,
                PROC_GRID,
                label=f"NW {pair_name} w={width}",
                seed=9,
                use_delta=True,
            )
            per_width[width] = (problem, curve)
        data[pair_name] = (cell_cost, per_width)
    return data


def test_fig9_report(fig9_data, report, benchmark):
    sections = []
    for pair_name, (cell_cost, per_width) in fig9_data.items():
        series = {}
        for width, (problem, curve) in per_width.items():
            cells = problem.total_cells()
            series[f"GCUPS[w{width}]"] = [
                round(throughput_gcups(cells, pt.time_seconds), 4)
                for pt in curve.points
            ]
            series[f"spd[w{width}]"] = [
                round(pt.speedup, 2) for pt in curve.points
            ]
            series[f"fix[w{width}]"] = [
                "*" if pt.filled else "o" for pt in curve.points
            ]
        sections.append(
            format_series(
                "P",
                PROC_GRID,
                series,
                title=(
                    f"Fig 9 — Needleman-Wunsch, {pair_name} pair "
                    f"(len {SEQ_LENGTH}, delta fix-up, cell cost "
                    f"{cell_cost * 1e9:.2f} ns)"
                ),
            )
        )
    report("fig9_needleman_wunsch", "\n\n".join(sections))

    # Benchmark one banded NW stage kernel.
    rng = np.random.default_rng(1)
    a, b = homologous_pair(2000, rng, divergence=0.1)
    problem = NeedlemanWunschProblem(a, b, width=64)
    v = np.zeros(problem.stage_width(999))
    benchmark(lambda: problem.apply_stage_with_pred(1000, v))

    # ---- shape assertions vs the paper ----
    sim = fig9_data["similar(X,Y)"][1]
    div = fig9_data["divergent(21,22)"][1]
    # The similar pair beats the divergent pair at scale (input effect).
    for width in WIDTHS:
        s64 = next(p for p in sim[width][1].points if p.num_procs == 64)
        d64 = next(p for p in div[width][1].points if p.num_procs == 64)
        assert s64.speedup >= d64.speedup * 0.9
    # Wider bands scale worse on the same pair (width effect).
    s_small = next(p for p in sim[WIDTHS[0]][1].points if p.num_procs == 64)
    s_big = next(p for p in sim[WIDTHS[-1]][1].points if p.num_procs == 64)
    assert s_big.speedup <= s_small.speedup + 1e-9
    # Parallelism is productive on the best case.
    assert s_small.speedup > 4.0
