"""Figure 7 — Viterbi decoder throughput / speedup / efficiency (§6.3.1).

4 real convolutional codes × 4 packet sizes × processor sweep.  The
parallel algorithm runs for real; the simulated clock uses a per-code
cell cost calibrated from the actual decoder kernel on this host, so
the Mb/s axis is grounded in measured single-core throughput (the role
Spiral's sequential numbers play in the paper).

Paper shapes to reproduce:
- significant speedups that grow with packet size (recomputation is
  amortized over more stages);
- big-state codes (MARS, 16384 states) run orders of magnitude slower
  in absolute Mb/s than small-state codes;
- efficiency decays as packet size shrinks;
- non-filled points (fix-up needed >1 iteration) cluster at high P with
  small packets.
"""

import numpy as np
import pytest

from repro.analysis.speedup import scaling_sweep, throughput_mbps
from repro.analysis.tables import format_series
from repro.datagen.packets import make_received_packet
from repro.machine.cluster import SimCluster
from repro.machine.cost_model import calibrate_cell_cost
from repro.problems.convolutional import CDMA_IS95, LTE, MARS, VOYAGER

from conftest import PROC_GRID

PACKET_SIZES = [512, 1024, 2048, 4096]
CODES = [VOYAGER, LTE, CDMA_IS95, MARS]
ERROR_RATE = 0.03


def calibrate(problem) -> float:
    """Measured seconds per ACS cell of this decoder kernel."""
    mid = problem.num_stages // 2
    v = problem.initial_vector() + 1.0  # all finite
    return calibrate_cell_cost(
        lambda: problem.apply_stage_with_pred(mid, v),
        problem.stage_cost(mid),
        min_seconds=0.05,
    )


@pytest.fixture(scope="module")
def fig7_data():
    rng = np.random.default_rng(7)
    data = {}
    for code in CODES:
        curves = {}
        cell_cost = None
        for packet in PACKET_SIZES:
            _, problem = make_received_packet(
                code, packet, rng, error_rate=ERROR_RATE
            )
            if cell_cost is None:
                cell_cost = calibrate(problem)
            cluster = SimCluster.stampede(1, cell_cost=cell_cost)
            curve = scaling_sweep(
                problem,
                cluster,
                PROC_GRID,
                label=f"{code.name}/{packet}",
                seed=13,
            )
            curves[packet] = (problem, curve)
        data[code.name] = (cell_cost, curves)
    return data


def test_fig7_report(fig7_data, report, benchmark):
    sections = []
    for name, (cell_cost, curves) in fig7_data.items():
        series = {}
        for packet, (problem, curve) in curves.items():
            mbps = [
                throughput_mbps(packet, pt.time_seconds) for pt in curve.points
            ]
            marks = ["*" if pt.filled else "o" for pt in curve.points]
            series[f"Mb/s[{packet}]"] = [round(x, 2) for x in mbps]
            series[f"spd[{packet}]"] = [round(pt.speedup, 2) for pt in curve.points]
            series[f"eff[{packet}]"] = [
                round(pt.efficiency, 3) for pt in curve.points
            ]
            series[f"fix[{packet}]"] = marks
        sections.append(
            format_series(
                "P",
                PROC_GRID,
                series,
                title=(
                    f"Fig 7 — {name} decoder "
                    f"(calibrated cell cost {cell_cost * 1e9:.2f} ns; "
                    "* = fix-up converged in 1 iteration)"
                ),
            )
        )
    report("fig7_viterbi", "\n\n".join(sections))

    # pytest-benchmark: the Voyager ACS kernel itself.
    rng = np.random.default_rng(3)
    _, problem = make_received_packet(VOYAGER, 512, rng, error_rate=ERROR_RATE)
    v = problem.initial_vector() + 1.0
    benchmark(lambda: problem.apply_stage_with_pred(10, v))

    # ---- shape assertions vs the paper ----
    for name, (_cc, curves) in fig7_data.items():
        big = curves[4096][1]
        small = curves[512][1]
        # Speedup at high P grows with packet size.
        assert big.points[-1].speedup > small.points[-1].speedup
        # Parallelism helps substantially on large packets (paper: up to
        # 24x at 64 procs for CDMA/16384).
        p64 = next(pt for pt in big.points if pt.num_procs == 64)
        assert p64.speedup > 4.0
        # Efficiency at P=64 is below 1 and decays with packet size.
        small64 = next(pt for pt in small.points if pt.num_procs == 64)
        assert small64.efficiency <= p64.efficiency + 1e-9

    # Absolute throughput ordering: MARS (16384 states) is orders of
    # magnitude slower than the small-state codes (paper: 4.4 vs 434 Mb/s).
    def mbps_at(name, packet, procs):
        _, curve = fig7_data[name][1][packet]
        pt = next(p for p in curve.points if p.num_procs == procs)
        return throughput_mbps(packet, pt.time_seconds)

    # (Factor 5, not the paper's ~100: our per-cell cost *falls* with
    # width because NumPy amortizes interpreter overhead — and it is a
    # host-time calibration, so the exact ratio wobbles run to run —
    # whereas the paper's SIMD kernels have width-independent per-cell
    # cost.  The robust claim is "well under an order of magnitude".)
    assert mbps_at("MARS", 4096, 64) < mbps_at("CDMA", 4096, 64) / 5.0
    # Structural (calibration-free) version of the width ordering: the
    # per-bit trellis work scales with the state count.
    rng2 = np.random.default_rng(0)
    _, p_cdma = make_received_packet(CDMA_IS95, 64, rng2, error_rate=0.02)
    _, p_voy = make_received_packet(VOYAGER, 64, rng2, error_rate=0.02)
    assert p_cdma.stage_cost(1) == 4 * p_voy.stage_cost(1)
