"""Figure 11 — across-stage (LTDP) parallelism vs wavefront (§6.4).

Needleman–Wunsch and LCS on the shared-memory machine preset, four
band widths, P ∈ {1, 5, 10, 20, 40}.  The LTDP side runs the real
parallel algorithm (delta fix-up); the wavefront side is the tiled
anti-diagonal schedule with exact LPT makespans, both priced by the
same cost model with the same calibrated cell cost.  The wavefront
baseline pays the paper's observed tiling overhead on top.

Paper shapes to reproduce:
- LTDP wins and the gap grows with processor count (paper: ~9x NW,
  ~6x LCS at 40 procs at width 8192);
- small widths favour LTDP (wavefront pays more barriers per unit of
  compute); large widths favour wavefront.
"""

import numpy as np
import pytest

from repro.analysis.speedup import scaling_sweep
from repro.analysis.tables import format_series
from repro.datagen.sequences import homologous_pair
from repro.machine.cluster import SimCluster
from repro.machine.cost_model import calibrate_cell_cost
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.wavefront.scheduler import simulate_wavefront, wavefront_time
from repro.wavefront.tiling import TileGrid

from conftest import SHARED_MEMORY_PROC_GRID

WIDTHS = [16, 32, 64, 128]
SEQ_LENGTH = 6000
DIVERGENCE = 0.05
#: Paper §6.4: the tiled baseline is slower per cell than the
#: straight-line kernel ("the sequential performance of the baseline
#: with tiling is slower than the baseline without tiling").
TILE_OVERHEAD = 1.2
TILE_ROWS = 64
TILE_COLS = 16  # fixed tile size: wider bands ⇒ more tiles per wave ⇒
                # more wavefront parallelism (the paper's width axis)


def wavefront_speedup(problem, width, num_procs, cost_model):
    """Speedup of the tiled wavefront execution over the untiled
    sequential baseline, on the banded (rows × band) table."""
    band_cols = 2 * width + 1
    grid = TileGrid(
        rows=SEQ_LENGTH,
        cols=band_cols,
        tile_rows=TILE_ROWS,
        tile_cols=TILE_COLS,
    )
    schedule = simulate_wavefront(grid, num_procs, tile_overhead=TILE_OVERHEAD)
    t = wavefront_time(schedule, cost_model)
    t_seq = cost_model.sequential_time(problem.total_cells())
    return t_seq / t


@pytest.fixture(scope="module")
def fig11_data():
    rng = np.random.default_rng(11)
    a, b = homologous_pair(SEQ_LENGTH, rng, divergence=DIVERGENCE)
    data = {}
    for label, factory in [
        ("NW", lambda w: NeedlemanWunschProblem(a, b, width=w)),
        ("LCS", lambda w: LCSProblem(a, b, width=w)),
    ]:
        per_width = {}
        cell_cost = None
        for width in WIDTHS:
            problem = factory(width)
            if cell_cost is None:
                mid = problem.num_stages // 2
                v = np.zeros(problem.stage_width(mid - 1))
                cell_cost = calibrate_cell_cost(
                    lambda: problem.apply_stage_with_pred(mid, v),
                    problem.stage_cost(mid),
                    min_seconds=0.05,
                )
            cluster = SimCluster.shared_memory(1, cell_cost=cell_cost)
            ltdp_curve = scaling_sweep(
                problem,
                cluster,
                SHARED_MEMORY_PROC_GRID,
                label=f"{label} w={width}",
                seed=11,
                use_delta=True,
            )
            wf_speedups = [
                wavefront_speedup(problem, width, p, cluster.cost_model)
                for p in SHARED_MEMORY_PROC_GRID
            ]
            per_width[width] = (ltdp_curve, wf_speedups)
        data[label] = per_width
    return data


def test_fig11_report(fig11_data, report, benchmark):
    sections = []
    for label, per_width in fig11_data.items():
        series = {}
        for width, (ltdp_curve, wf_speedups) in per_width.items():
            ltdp = [round(pt.speedup, 2) for pt in ltdp_curve.points]
            wf = [round(s, 2) for s in wf_speedups]
            ratio = [
                round(l / w, 2) if w > 0 else float("inf")
                for l, w in zip(ltdp_curve.speedups(), wf_speedups)
            ]
            series[f"LTDP[w{width}]"] = ltdp
            series[f"wave[w{width}]"] = wf
            series[f"LTDP/wave[w{width}]"] = ratio
        sections.append(
            format_series(
                "P",
                SHARED_MEMORY_PROC_GRID,
                series,
                title=f"Fig 11 — {label}: LTDP vs wavefront speedups "
                "(shared-memory preset)",
            )
        )
    report("fig11_wavefront_vs_ltdp", "\n\n".join(sections))

    # Benchmark the wavefront scheduling computation itself.
    grid = TileGrid(rows=SEQ_LENGTH, cols=257, tile_rows=64, tile_cols=64)
    benchmark(lambda: simulate_wavefront(grid, 40, tile_overhead=TILE_OVERHEAD))

    # ---- shape assertions vs the paper ----
    for label, per_width in fig11_data.items():
        w_small, w_big = WIDTHS[0], WIDTHS[-1]
        def ratio_at(width, procs):
            ltdp_curve, wf = per_width[width]
            idx = SHARED_MEMORY_PROC_GRID.index(procs)
            return ltdp_curve.points[idx].speedup / wf[idx]

        # LTDP wins at scale on small widths (paper: ~9x NW / ~6x LCS).
        assert ratio_at(w_small, 40) > 2.0, label
        # The advantage grows with processor count.
        assert ratio_at(w_small, 40) > ratio_at(w_small, 5), label
        # Small widths favour LTDP more than large widths do.
        assert ratio_at(w_small, 40) > ratio_at(w_big, 40), label
