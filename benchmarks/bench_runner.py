"""Reproducible perf-regression harness: problem x executor x P sweep.

Standalone runner (not collected by pytest; ``testpaths = ["tests"]``)
that times real ``solve_parallel`` wall-clock on a small grid of
synthetic instances and emits a schema-versioned ``BENCH_pool.json`` at
the repo root.  When a previous ``BENCH_pool.json`` exists, the runner
compares against it cell by cell and flags regressions, so committing
the emitted file turns every future run into a regression gate::

    PYTHONPATH=src python benchmarks/bench_runner.py --smoke
    PYTHONPATH=src python benchmarks/bench_runner.py            # full grid
    PYTHONPATH=src python benchmarks/bench_runner.py --check BENCH_pool.json

Besides the timing grid, the runner asserts two observability
guarantees of the tracing layer (recorded under ``"checks"``):

- ``tracing_disabled_overhead`` — a pool solve with tracing disabled
  (either ``tracer=None`` or a ``Tracer(enabled=False)``) stays within
  5% of the untraced baseline (best-of-N floors, which damp scheduler
  noise the way min-based microbenchmarks do);
- ``trace_coverage`` — an *enabled* trace of a pool solve carries
  exactly one ``superstep`` span per recorded superstep, and every
  ``dispatch`` span has the per-worker send/queue-wait/compute
  breakdown plus serialized byte counts;
- ``delta_fixup_reduction`` — on the sparse-kernel problems (LCS, NW)
  the §4.7 delta-mode fix-up must touch no more cells than dense mode
  on any grid cell, and strictly fewer on at least one;
- ``runner_scaling`` — 1-runner vs 4-runner pool solves of the Viterbi
  and NW rows: wall clocks are recorded for trend-watching, and the
  check passes iff the results are bit-identical (runner count must be
  invisible in path, score and the metrics ledger);
- ``kernel_tier_speedup`` — the block-kernel fast path
  (``ParallelOptions(use_kernels=True)``) on the scaled ``viterbi_xl``
  and ``nw_xl`` pool rows must be bit-identical to the dense tier-off
  solve and at least ``KERNEL_TIER_SPEEDUP_*`` times faster in
  cells/sec.  The classic grid rows pin ``use_kernels=False`` so their
  timings stay comparable with pre-kernel baselines.

Every result row carries ``"valid"``: a row whose best-of-N floor is
not strictly positive (a broken clock, a sub-resolution measurement)
gets ``valid: false`` and ``cells_per_second: 0.0`` instead of a
silently wrong throughput, and the cell-by-cell comparison skips such
rows loudly rather than dividing by their wall clock.

Timings are floors (min over ``--repeats``); medians are also recorded.
The grid is deliberately small — this is a regression tripwire, not the
paper evaluation (that is ``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import platform
import statistics
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.datagen.packets import make_received_packet  # noqa: E402
from repro.datagen.sequences import homologous_pair, random_series  # noqa: E402
from repro.ltdp.parallel import ParallelOptions, solve_parallel  # noqa: E402
from repro.machine.executor import get_executor  # noqa: E402
from repro.machine.trace import Tracer  # noqa: E402
from repro.problems.alignment.lcs import LCSProblem  # noqa: E402
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem  # noqa: E402
from repro.problems.convolutional import STANDARD_CODES  # noqa: E402
from repro.problems.dtw import DTWProblem  # noqa: E402

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_OUT",
    "build_problem",
    "compare_documents",
    "main",
    "run_bench",
    "throughput_cells_per_second",
    "validate_bench_doc",
]

#: Bump on any incompatible change to the emitted JSON document.
BENCH_SCHEMA_VERSION = 1

DEFAULT_OUT = REPO_ROOT / "BENCH_pool.json"

#: A new timing must stay under ``old * REGRESSION_RATIO`` to pass.
#: Generous because these are single-core container floors, but tight
#: enough to catch an accidental O(P) -> O(P^2) dispatch or a pickle
#: blow-up.
REGRESSION_RATIO = 1.6

#: Acceptance bound for the disabled-tracer overhead check.
OVERHEAD_RATIO = 1.05

#: Minimum cells/sec speedup of the block-kernel tier over the dense
#: per-stage path on the scaled pool rows.  The full-grid instances are
#: big enough to amortize dispatch, so 10x is the contract; the smoke
#: instances are dominated by fixed costs and only have to show 2x.
KERNEL_TIER_SPEEDUP_FULL = 10.0
KERNEL_TIER_SPEEDUP_SMOKE = 2.0

#: Problems with a registered stage-block kernel, at sizes where raw
#: sweep speed dominates (see ``build_problem``).
KERNEL_TIER_PROBLEMS = ("viterbi_xl", "nw_xl")

SEED = 2014  # PPoPP year; fixed so instances are bit-reproducible.


def build_problem(name: str, smoke: bool):
    """Synthetic instance for one grid row (seeded, reproducible)."""
    rng = np.random.default_rng(SEED)
    if name == "lcs":
        size = 120 if smoke else 600
        a, b = homologous_pair(size, rng, divergence=0.1)
        return LCSProblem(a, b, width=24)
    if name == "nw":
        size = 120 if smoke else 600
        a, b = homologous_pair(size, rng, divergence=0.1)
        return NeedlemanWunschProblem(a, b, width=24)
    if name == "viterbi":
        size = 60 if smoke else 240
        _, problem = make_received_packet(
            STANDARD_CODES["Voyager"], size, rng, error_rate=0.02
        )
        return problem
    if name == "viterbi_xl":
        # Kernel-tier row: big enough that per-stage dispatch overhead
        # is amortized and the block kernel's raw speed dominates.  The
        # full size is sized so the forward sweep, not the O(n)
        # traceback + accounting shared by both tiers, dominates the
        # dense wall time (speedup plateaus ~11-12x from ~8k stages).
        size = 960 if smoke else 15360
        _, problem = make_received_packet(
            STANDARD_CODES["Voyager"], size, rng, error_rate=0.02
        )
        return problem
    if name == "nw_xl":
        # Same sizing rationale as viterbi_xl: past ~5k stages the
        # banded block kernel dominates and the speedup plateaus ~12x.
        size = 600 if smoke else 9600
        a, b = homologous_pair(size, rng, divergence=0.1)
        return NeedlemanWunschProblem(a, b, width=24)
    if name == "dtw":
        size = 100 if smoke else 400
        return DTWProblem(random_series(size, rng), random_series(size, rng), width=16)
    raise ValueError(f"unknown benchmark problem {name!r}")


#: Problems benchmarked in both dense and §4.7 delta fix-up mode — the
#: two with a sparse stage kernel, where delta mode changes the cells
#: actually computed (not just the accounting).
DELTA_PROBLEMS = ("lcs", "nw")


def _grid(smoke: bool):
    problems = ("lcs", "nw", "viterbi") if smoke else ("lcs", "nw", "viterbi", "dtw")
    procs = (2, 4) if smoke else (2, 4, 8)
    return [
        (problem, executor, p, use_delta)
        for problem in problems
        for executor in ("serial", "thread", "pool")
        for p in procs
        for use_delta in ((False, True) if problem in DELTA_PROBLEMS else (False,))
    ]


def throughput_cells_per_second(cells: float, best_seconds: float) -> tuple[float, bool]:
    """Guarded throughput: returns ``(cells_per_second, valid)``.

    A best-of-N floor that is zero, negative, or non-finite cannot
    yield a meaningful rate — dividing by it either raises or produces
    a silently wrong number (the old code emitted ``0.0``, which reads
    as "infinitely slow" to any consumer sorting by throughput).  Such
    rows get ``(0.0, False)`` and must be marked ``valid: false``.
    """
    if best_seconds > 0 and math.isfinite(best_seconds):
        return cells / best_seconds, True
    return 0.0, False


def _timed_solve(problem, executor, procs: int, tracer=None, use_delta=False,
                 use_kernels: bool | None = False):
    # ``use_kernels`` defaults to *False* (not auto): the classic grid
    # rows must keep timing the dense per-stage path so their floors
    # stay comparable with BENCH_pool.json files written before the
    # kernel tier existed.  The kernel-tier rows opt in explicitly.
    t0 = time.perf_counter()
    solution = solve_parallel(
        problem,
        ParallelOptions(
            num_procs=procs,
            seed=SEED,
            executor=executor,
            tracer=tracer,
            use_delta=use_delta,
            use_kernels=use_kernels,
        ),
    )
    return time.perf_counter() - t0, solution


def _measure(problem, executor, procs: int, repeats: int, tracer=None, use_delta=False,
             use_kernels: bool | None = False):
    """Best-of-N floor + median; returns (times, last_solution)."""
    times = []
    solution = None
    for _ in range(repeats):
        elapsed, solution = _timed_solve(
            problem, executor, procs, tracer, use_delta, use_kernels
        )
        times.append(elapsed)
    return times, solution


def _fixup_cells(metrics) -> float:
    """Cells actually computed across forward fix-up supersteps."""
    return float(
        sum(
            s.total_work
            for s in metrics.supersteps
            if s.label.startswith("fixup")
        )
    )


# ----------------------------------------------------------------------
# Sweep
# ----------------------------------------------------------------------


def _run_grid(smoke: bool, repeats: int) -> list[dict]:
    results = []
    for problem_name, executor_kind, procs, use_delta in _grid(smoke):
        problem = build_problem(problem_name, smoke)
        with get_executor(executor_kind) as executor:
            times, solution = _measure(
                problem, executor, procs, repeats, use_delta=use_delta
            )
        m = solution.metrics
        cells = float(m.total_work)
        best = min(times)
        cps, valid = throughput_cells_per_second(cells, best)
        if not valid:
            print(
                f"  WARNING: {problem_name}/{executor_kind}/P={procs} measured a "
                f"non-positive floor ({best!r}); row marked invalid"
            )
        results.append(
            {
                "problem": problem_name,
                "executor": executor_kind,
                "procs": procs,
                "use_delta": use_delta,
                "repeats": repeats,
                "wall_seconds": best,
                "wall_seconds_median": statistics.median(times),
                "supersteps": len(m.supersteps),
                "num_barriers": m.num_barriers,
                "forward_fixup_iterations": m.forward_fixup_iterations,
                "bytes_communicated": int(m.bytes_communicated),
                "total_work_cells": cells,
                "fixup_cells": _fixup_cells(m),
                "cells_per_second": cps,
                "valid": valid,
            }
        )
        mode_tag = "delta" if use_delta else "dense"
        print(
            f"  {problem_name:<8s} {executor_kind:<7s} P={procs:<2d} "
            f"{mode_tag:<5s} best {best * 1e3:8.2f} ms  "
            f"({len(m.supersteps)} supersteps, "
            f"{m.forward_fixup_iterations} fixups, "
            f"{results[-1]['fixup_cells']:.0f} fixup cells)"
        )
    return results


def _check_delta_fixup_reduction(results: list[dict]) -> dict:
    """§4.7 acceptance: on the sparse-kernel problems, delta-mode fix-up
    must never touch more cells than dense mode on the same cell of the
    grid, and must touch strictly fewer wherever fix-up work exists."""
    pairs = []
    dense = {
        (r["problem"], r["executor"], r["procs"]): r
        for r in results
        if not r.get("use_delta", False)
    }
    for row in results:
        if not row.get("use_delta", False):
            continue
        base = dense.get((row["problem"], row["executor"], row["procs"]))
        if base is None:
            continue
        pairs.append(
            {
                "problem": row["problem"],
                "executor": row["executor"],
                "procs": row["procs"],
                "dense_fixup_cells": base["fixup_cells"],
                "delta_fixup_cells": row["fixup_cells"],
            }
        )
    never_worse = all(
        p["delta_fixup_cells"] <= p["dense_fixup_cells"] for p in pairs
    )
    strictly_better = [
        p for p in pairs if p["delta_fixup_cells"] < p["dense_fixup_cells"]
    ]
    return {
        "pairs": pairs,
        "never_worse": never_worse,
        "strictly_better_cells": len(strictly_better),
        "passed": bool(pairs) and never_worse and bool(strictly_better),
    }


def _check_runner_scaling(smoke: bool, repeats: int) -> dict:
    """Runner-crew cell: 1-runner vs N-runner wall clock on the pool.

    ``passed`` gates on *bit-identity* (path + score + fix-up schedule
    must not notice the runner count), never on the speed ratio — on a
    loaded single-core CI container concurrent runners may well be
    slower; the ratio is recorded for trend-watching only.
    """
    runner_counts = (1, 4)
    rows = []
    identical = True
    for problem_name in ("viterbi", "nw"):
        problem = build_problem(problem_name, smoke)
        per_count: dict[int, dict] = {}
        with get_executor("pool") as executor:
            _timed_solve(problem, executor, 4)  # warm the workers
            for runners in runner_counts:
                times = []
                solution = None
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    solution = solve_parallel(
                        problem,
                        ParallelOptions(
                            num_procs=4,
                            seed=SEED,
                            executor=executor,
                            runners=runners,
                        ),
                    )
                    times.append(time.perf_counter() - t0)
                per_count[runners] = {
                    "wall_seconds": min(times),
                    "solution": solution,
                }
        base = per_count[runner_counts[0]]["solution"]
        multi = per_count[runner_counts[-1]]["solution"]
        cell_identical = bool(
            np.array_equal(base.path, multi.path)
            and base.score == multi.score
            and base.metrics.forward_fixup_iterations
            == multi.metrics.forward_fixup_iterations
            and base.metrics.work_by_processor()
            == multi.metrics.work_by_processor()
            and base.metrics.bytes_communicated
            == multi.metrics.bytes_communicated
        )
        identical &= cell_identical
        rows.append(
            {
                "problem": problem_name,
                "procs": 4,
                "runners_1_seconds": per_count[runner_counts[0]]["wall_seconds"],
                "runners_n_seconds": per_count[runner_counts[-1]]["wall_seconds"],
                "runners_n": runner_counts[-1],
                "ratio": (
                    per_count[runner_counts[-1]]["wall_seconds"]
                    / per_count[runner_counts[0]]["wall_seconds"]
                ),
                "bit_identical": cell_identical,
            }
        )
    return {"rows": rows, "passed": bool(rows) and identical}


def _run_kernel_tier(smoke: bool, repeats: int) -> tuple[list[dict], dict]:
    """Kernel-tier rows (``kernel_tier: true/false`` at identical sizes)
    plus the ``kernel_tier_speedup`` check.

    For each scaled problem the pool solves once with the block-kernel
    tier off and once with it on.  The check passes iff every pair is
    bit-identical (path, score, fix-up schedule, per-processor work
    ledger — the tier must be invisible in everything but the clock)
    AND the tier-on row is at least ``threshold`` times faster in
    cells/sec.  Both rows land in ``results`` so future runs regression-
    gate the kernel path like any other cell.
    """
    threshold = KERNEL_TIER_SPEEDUP_SMOKE if smoke else KERNEL_TIER_SPEEDUP_FULL
    procs = 2
    rows: list[dict] = []
    pairs: list[dict] = []
    identical = True
    fast_enough = True
    for problem_name in KERNEL_TIER_PROBLEMS:
        problem = build_problem(problem_name, smoke)
        per_mode: dict[bool, tuple[list[float], object]] = {}
        with get_executor("pool") as executor:
            # Warm workers, the problem install, and the kernel plan
            # cache so neither mode pays one-time costs in its floor.
            _timed_solve(problem, executor, procs, use_kernels=True)
            for use_kernels in (False, True):
                per_mode[use_kernels] = _measure(
                    problem, executor, procs, repeats, use_kernels=use_kernels
                )
        cps_by_mode: dict[bool, tuple[float, bool]] = {}
        for use_kernels in (False, True):
            times, solution = per_mode[use_kernels]
            m = solution.metrics
            cells = float(m.total_work)
            best = min(times)
            cps, valid = throughput_cells_per_second(cells, best)
            if not valid:
                print(
                    f"  WARNING: {problem_name}/pool/P={procs} "
                    f"(kernel_tier={use_kernels}) measured a non-positive "
                    f"floor ({best!r}); row marked invalid"
                )
            cps_by_mode[use_kernels] = (cps, valid)
            rows.append(
                {
                    "problem": problem_name,
                    "executor": "pool",
                    "procs": procs,
                    "use_delta": False,
                    "kernel_tier": use_kernels,
                    "repeats": repeats,
                    "wall_seconds": best,
                    "wall_seconds_median": statistics.median(times),
                    "supersteps": len(m.supersteps),
                    "num_barriers": m.num_barriers,
                    "forward_fixup_iterations": m.forward_fixup_iterations,
                    "bytes_communicated": int(m.bytes_communicated),
                    "total_work_cells": cells,
                    "fixup_cells": _fixup_cells(m),
                    "cells_per_second": cps,
                    "valid": valid,
                }
            )
            tier_tag = "tier-on" if use_kernels else "tier-off"
            print(
                f"  {problem_name:<10s} pool    P={procs:<2d} {tier_tag:<8s} "
                f"best {best * 1e3:8.2f} ms  {cps / 1e6:8.2f} Mcells/s"
            )
        off, on = per_mode[False][1], per_mode[True][1]
        cell_identical = bool(
            np.array_equal(off.path, on.path)
            and off.score == on.score
            and off.metrics.forward_fixup_iterations
            == on.metrics.forward_fixup_iterations
            and off.metrics.work_by_processor() == on.metrics.work_by_processor()
        )
        identical &= cell_identical
        (cps_off, valid_off), (cps_on, valid_on) = cps_by_mode[False], cps_by_mode[True]
        speedup = cps_on / cps_off if (valid_off and valid_on and cps_off > 0) else 0.0
        fast_enough &= valid_off and valid_on and speedup >= threshold
        pairs.append(
            {
                "problem": problem_name,
                "procs": procs,
                "cells_per_second_off": cps_off,
                "cells_per_second_on": cps_on,
                "speedup": speedup,
                "bit_identical": cell_identical,
            }
        )
        print(
            f"  {problem_name:<10s} kernel-tier speedup x{speedup:.2f} "
            f"(threshold x{threshold:.0f}, "
            f"bit-identical: {'yes' if cell_identical else 'NO'})"
        )
    check = {
        "rows": pairs,
        "threshold": threshold,
        "bit_identical": identical,
        "passed": bool(pairs) and identical and fast_enough,
    }
    return rows, check


# ----------------------------------------------------------------------
# Tracing checks (acceptance criteria of the observability layer)
# ----------------------------------------------------------------------


def _check_disabled_overhead(smoke: bool, repeats: int) -> dict:
    """Disabled tracing must stay within OVERHEAD_RATIO of untraced.

    The two floors are milliseconds apart in magnitude, so a single
    best-of-N pair on a loaded host can jitter past the 5% threshold
    with no real overhead; a first failure re-measures once with twice
    the repeats before the check is declared failed.  A disabled tracer
    that *records* anything fails immediately — that is a contract
    violation, not noise.
    """
    problem = build_problem("lcs", smoke)
    procs = 4
    check: dict = {}
    for attempt, n in enumerate((repeats, repeats * 2), start=1):
        off = Tracer(enabled=False)
        base_times: list[float] = []
        off_times: list[float] = []
        with get_executor("pool") as executor:
            # Warm-up removes worker-spawn cost; interleaving the two
            # variants makes the floor comparison robust to load that
            # drifts over the measurement window.
            _timed_solve(problem, executor, procs)
            for _ in range(n):
                elapsed, _ = _timed_solve(problem, executor, procs)
                base_times.append(elapsed)
                elapsed, _ = _timed_solve(problem, executor, procs, tracer=off)
                off_times.append(elapsed)
        base, disabled = min(base_times), min(off_times)
        ratio = disabled / base if base > 0 else 1.0
        check = {
            "baseline_seconds": base,
            "disabled_tracer_seconds": disabled,
            "ratio": ratio,
            "threshold": OVERHEAD_RATIO,
            "passed": ratio < OVERHEAD_RATIO,
            "spans_recorded": len(off.spans) + len(off.events),
            "attempts": attempt,
        }
        if off.spans or off.events:
            check["passed"] = False  # a disabled tracer must record nothing
            break
        if check["passed"]:
            break
    return check


def _check_trace_coverage(smoke: bool, trace_path: str | None) -> dict:
    """An enabled pool trace must cover every superstep and dispatch."""
    problem = build_problem("lcs", smoke)
    tracer = Tracer()
    with get_executor("pool") as executor:
        _, solution = _timed_solve(problem, executor, 4, tracer=tracer)
    superstep_spans = [s for s in tracer.spans if s.name == "superstep"]
    dispatch_spans = [s for s in tracer.spans if s.name == "dispatch"]
    breakdown_keys = (
        "worker",
        "send_seconds",
        "queue_wait_seconds",
        "compute_seconds",
        "request_bytes",
        "reply_bytes",
    )
    complete = all(
        all(k in s.attrs for k in breakdown_keys) for s in dispatch_spans
    )
    recorded = len(solution.metrics.supersteps)
    check = {
        "superstep_spans": len(superstep_spans),
        "recorded_supersteps": recorded,
        "dispatch_spans": len(dispatch_spans),
        "dispatch_breakdown_complete": complete,
        "passed": bool(
            superstep_spans
            and len(superstep_spans) == recorded
            and dispatch_spans
            and complete
        ),
    }
    if trace_path:
        tracer.dump_jsonl(trace_path)
        check["trace_path"] = trace_path
    return check


# ----------------------------------------------------------------------
# Schema validation (hand-rolled; no jsonschema dependency)
# ----------------------------------------------------------------------

_RESULT_FIELDS = {
    "problem": str,
    "executor": str,
    "procs": int,
    "repeats": int,
    "wall_seconds": float,
    "wall_seconds_median": float,
    "supersteps": int,
    "num_barriers": int,
    "forward_fixup_iterations": int,
    "bytes_communicated": int,
    "total_work_cells": float,
    "cells_per_second": float,
}


def validate_bench_doc(doc) -> None:
    """Raise ``ValueError`` unless ``doc`` matches the BENCH_pool schema."""

    def need(obj, key, types, where):
        if key not in obj:
            raise ValueError(f"{where}: missing required key {key!r}")
        if not isinstance(obj[key], types):
            raise ValueError(
                f"{where}: key {key!r} has type {type(obj[key]).__name__}, "
                f"expected {types}"
            )
        return obj[key]

    if not isinstance(doc, dict):
        raise ValueError(f"document must be an object, got {type(doc).__name__}")
    version = need(doc, "schema_version", int, "document")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {version} != supported {BENCH_SCHEMA_VERSION}"
        )
    need(doc, "kind", str, "document")
    if doc["kind"] != "repro-bench":
        raise ValueError(f"kind {doc['kind']!r} != 'repro-bench'")
    need(doc, "mode", str, "document")
    need(doc, "host", dict, "document")
    results = need(doc, "results", list, "document")
    if not results:
        raise ValueError("document: 'results' must be non-empty")
    for idx, row in enumerate(results):
        where = f"results[{idx}]"
        if not isinstance(row, dict):
            raise ValueError(f"{where}: must be an object")
        for key, typ in _RESULT_FIELDS.items():
            types = (int, float) if typ is float else typ
            need(row, key, types, where)
        # Optional fields (schema v1 compatible: absent in older docs).
        if "valid" in row and not isinstance(row["valid"], bool):
            raise ValueError(f"{where}: valid must be a bool")
        if row.get("valid", True) and row["wall_seconds"] <= 0:
            raise ValueError(
                f"{where}: wall_seconds must be positive on a valid row"
            )
        if "use_delta" in row and not isinstance(row["use_delta"], bool):
            raise ValueError(f"{where}: use_delta must be a bool")
        if "kernel_tier" in row and not isinstance(row["kernel_tier"], bool):
            raise ValueError(f"{where}: kernel_tier must be a bool")
        if "fixup_cells" in row and not isinstance(row["fixup_cells"], (int, float)):
            raise ValueError(f"{where}: fixup_cells must be numeric")
    checks = need(doc, "checks", dict, "document")
    for name, check in checks.items():
        if not isinstance(check, dict) or "passed" not in check:
            raise ValueError(f"checks[{name!r}]: must be an object with 'passed'")


# ----------------------------------------------------------------------
# Comparison against the previous BENCH_pool.json
# ----------------------------------------------------------------------


def compare_documents(old: dict, new: dict, ratio: float = REGRESSION_RATIO) -> dict:
    """Cell-by-cell wall-clock deltas of ``new`` against ``old``.

    Only cells present in both grids (same problem/executor/procs, same
    mode) are compared; a cell regresses when its new floor exceeds
    ``old * ratio``.  Rows marked ``valid: false`` on either side are
    skipped (listed under ``skipped_invalid``) instead of dividing by a
    zero-duration wall clock.  Rows whose instance size changed between
    the files (different ``total_work_cells``) are skipped too (listed
    under ``skipped_resized``) — a wall-clock ratio across different
    problem sizes is not a regression signal.
    """
    comparison = {
        "baseline_created": old.get("created"),
        "comparable": old.get("mode") == new.get("mode"),
        "regression_ratio": ratio,
        "cells": [],
        "regressions": [],
        "skipped_invalid": [],
        "skipped_resized": [],
    }
    if not comparison["comparable"]:
        comparison["note"] = (
            f"baseline mode {old.get('mode')!r} != new mode {new.get('mode')!r}; "
            "timings not compared"
        )
        return comparison
    # ``use_delta`` and ``kernel_tier`` join the key via .get so
    # documents written before those cells existed still compare their
    # classic cells.
    old_cells = {
        (
            r["problem"],
            r["executor"],
            r["procs"],
            r.get("use_delta", False),
            r.get("kernel_tier", False),
        ): r
        for r in old.get("results", [])
    }
    for row in new.get("results", []):
        key = (
            row["problem"],
            row["executor"],
            row["procs"],
            row.get("use_delta", False),
            row.get("kernel_tier", False),
        )
        base = old_cells.get(key)
        if base is None:
            continue
        ident = {
            "problem": key[0],
            "executor": key[1],
            "procs": key[2],
            "use_delta": key[3],
            "kernel_tier": key[4],
        }
        if (
            not row.get("valid", True)
            or not base.get("valid", True)
            or base["wall_seconds"] <= 0
        ):
            comparison["skipped_invalid"].append(ident)
            continue
        old_work = base.get("total_work_cells")
        new_work = row.get("total_work_cells")
        if old_work is not None and new_work is not None and old_work != new_work:
            comparison["skipped_resized"].append(
                {**ident, "old_cells": old_work, "new_cells": new_work}
            )
            continue
        delta = row["wall_seconds"] / base["wall_seconds"]
        cell = {
            **ident,
            "old_seconds": base["wall_seconds"],
            "new_seconds": row["wall_seconds"],
            "ratio": delta,
            "regressed": delta > ratio,
        }
        comparison["cells"].append(cell)
        if cell["regressed"]:
            comparison["regressions"].append(cell)
    return comparison


def _print_comparison(comparison: dict) -> None:
    if not comparison["comparable"]:
        print(f"comparison: {comparison['note']}")
        return
    print(f"comparison vs previous file ({len(comparison['cells'])} cells):")
    for cell in comparison["cells"]:
        mark = "REGRESSION" if cell["regressed"] else "ok"
        mode_tag = "delta" if cell.get("use_delta") else "dense"
        if cell.get("kernel_tier"):
            mode_tag = "tier"
        print(
            f"  {cell['problem']:<8s} {cell['executor']:<7s} "
            f"P={cell['procs']:<2d} {mode_tag:<5s} "
            f"{cell['old_seconds'] * 1e3:8.2f} -> {cell['new_seconds'] * 1e3:8.2f} ms "
            f"(x{cell['ratio']:.2f})  {mark}"
        )
    for ident in comparison.get("skipped_invalid", []):
        print(
            f"  SKIPPED (invalid row): {ident['problem']} {ident['executor']} "
            f"P={ident['procs']} use_delta={ident['use_delta']} "
            f"kernel_tier={ident['kernel_tier']} — zero-duration or marked invalid"
        )
    for ident in comparison.get("skipped_resized", []):
        print(
            f"  SKIPPED (instance resized): {ident['problem']} {ident['executor']} "
            f"P={ident['procs']} use_delta={ident['use_delta']} "
            f"kernel_tier={ident['kernel_tier']} — "
            f"{ident['old_cells']:.0f} -> {ident['new_cells']:.0f} work cells"
        )
    n = len(comparison["regressions"])
    print(f"  {n} regression(s) flagged" if n else "  no regressions")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_bench(
    smoke: bool,
    repeats: int,
    out: pathlib.Path,
    trace_path: str | None = None,
) -> tuple[dict, int]:
    """Run the sweep + checks, emit ``out``, return (document, exit code)."""
    mode = "smoke" if smoke else "full"
    print(f"bench runner: mode={mode} repeats={repeats}")
    results = _run_grid(smoke, repeats)

    print("kernel tier:")
    tier_rows, tier_check = _run_kernel_tier(smoke, repeats)
    results.extend(tier_rows)

    print("checks:")
    checks = {
        "tracing_disabled_overhead": _check_disabled_overhead(smoke, repeats + 2),
        "trace_coverage": _check_trace_coverage(smoke, trace_path),
        "delta_fixup_reduction": _check_delta_fixup_reduction(results),
        "runner_scaling": _check_runner_scaling(smoke, repeats),
        "kernel_tier_speedup": tier_check,
    }
    for name, check in checks.items():
        print(f"  {name}: {'pass' if check['passed'] else 'FAIL'} {check}")

    doc = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "mode": mode,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "results": results,
        "checks": checks,
    }

    exit_code = 0 if all(c["passed"] for c in checks.values()) else 1

    if out.exists():
        try:
            old = json.loads(out.read_text())
            validate_bench_doc(old)
        except (ValueError, OSError) as exc:
            print(f"previous {out.name} unusable ({exc}); skipping comparison")
        else:
            doc["comparison"] = compare_documents(old, doc)
            _print_comparison(doc["comparison"])
            if doc["comparison"]["regressions"]:
                exit_code = 1

    validate_bench_doc(doc)
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return doc, exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny instances / reduced grid (CI-sized, ~seconds)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timed repetitions per cell"
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"output document (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="also dump the coverage check's JSONL trace here (CI artifact)",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="validate an existing document against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.check:
        doc = json.loads(pathlib.Path(args.check).read_text())
        validate_bench_doc(doc)
        print(f"{args.check}: valid repro-bench document (schema v{doc['schema_version']}, "
              f"{len(doc['results'])} cells, mode={doc['mode']})")
        return 0

    _, exit_code = run_bench(args.smoke, args.repeats, args.out, args.trace)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
