"""Perf-regression harness entry point (pool sweep).

The implementation lives in :mod:`repro.bench.pool_bench` so that the
``repro bench`` CLI (record/compare/trend/report/check) shares one
matrix runner with this script; this file only bootstraps ``src`` onto
``sys.path`` and re-exports the public surface::

    PYTHONPATH=src python benchmarks/bench_runner.py --smoke
    PYTHONPATH=src python benchmarks/bench_runner.py            # full grid
    PYTHONPATH=src python benchmarks/bench_runner.py --check BENCH_pool.json

See the module docstring of ``repro.bench.pool_bench`` for the grid,
the checks, and the baseline write policy (a regressed run writes a
``*.failed.json`` sidecar; only ``--update-baseline`` replaces a
baseline with a failing run's numbers).
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.matrix import (  # noqa: E402,F401  (re-exported)
    REGRESSION_RATIO,
    GridCell,
    cell_key,
    find_duplicate_cells,
)
from repro.bench.pool_bench import (  # noqa: E402,F401  (re-exported)
    BENCH_SCHEMA_VERSION,
    DEFAULT_OUT,
    DELTA_PROBLEMS,
    KERNEL_TIER_PROBLEMS,
    KERNEL_TIER_SPEEDUP_FULL,
    KERNEL_TIER_SPEEDUP_SMOKE,
    OVERHEAD_RATIO,
    SEED,
    build_problem,
    check_document,
    compare_against_baseline,
    compare_documents,
    failed_sidecar,
    finalize_run,
    main,
    run_bench,
    run_suite,
    throughput_cells_per_second,
    validate_bench_doc,
)
from repro.bench.pool_bench import (  # noqa: E402,F401  (legacy private names)
    _check_delta_fixup_reduction,
    _check_disabled_overhead,
    _check_runner_scaling,
    _check_trace_coverage,
    _fixup_cells,
    _grid,
    _measure,
    _run_grid,
    _run_kernel_tier,
    _timed_solve,
)
from repro.bench.matrix import print_comparison as _print_comparison  # noqa: E402,F401

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_OUT",
    "build_problem",
    "compare_documents",
    "main",
    "run_bench",
    "throughput_cells_per_second",
    "validate_bench_doc",
]


if __name__ == "__main__":
    sys.exit(main())
