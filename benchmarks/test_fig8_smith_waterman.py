"""Figure 8 — Smith–Waterman GCUPS / speedup / efficiency (§6.3.2).

Queries of several lengths against a long synthetic DNA database
(the hg19-chromosome stand-in, DESIGN.md §3), processor sweep over the
real parallel algorithm, priced with a cell cost calibrated from the
actual affine-gap column kernel.

Paper shape to reproduce: efficiency ≈ 1 at every processor count
(near-linear speedup), essentially independent of the query/database
pair — local alignments restart constantly, so rank convergence needs
only a handful of stages compared to any realistic per-processor range.
"""

import numpy as np
import pytest

from repro.analysis.speedup import scaling_sweep, throughput_gcups
from repro.analysis.tables import format_series
from repro.datagen.sequences import random_dna
from repro.machine.cluster import SimCluster
from repro.machine.cost_model import calibrate_cell_cost
from repro.problems.alignment.smith_waterman import SmithWatermanProblem

from conftest import PROC_GRID

QUERY_LENGTHS = [32, 64, 128, 256]
DB_LENGTH = 20_000


@pytest.fixture(scope="module")
def fig8_data():
    rng = np.random.default_rng(8)
    db = random_dna(DB_LENGTH, rng)
    data = {}
    for qlen in QUERY_LENGTHS:
        query = random_dna(qlen, rng)
        problem = SmithWatermanProblem(query, db)
        mid = problem.num_stages // 2
        v = problem.initial_vector()
        v[~np.isfinite(v)] = 0.0
        cell_cost = calibrate_cell_cost(
            lambda: problem.apply_stage_with_pred(mid, v),
            problem.stage_cost(mid),
            min_seconds=0.05,
        )
        cluster = SimCluster.stampede(1, cell_cost=cell_cost)
        curve = scaling_sweep(
            problem, cluster, PROC_GRID, label=f"SW q={qlen}", seed=8
        )
        data[qlen] = (problem, cell_cost, curve)
    return data


def test_fig8_report(fig8_data, report, benchmark):
    series = {}
    for qlen, (problem, cell_cost, curve) in fig8_data.items():
        cells = qlen * DB_LENGTH  # GCUPS counts DP-table cells
        series[f"GCUPS[q{qlen}]"] = [
            round(throughput_gcups(cells, pt.time_seconds), 4)
            for pt in curve.points
        ]
        series[f"spd[q{qlen}]"] = [round(pt.speedup, 2) for pt in curve.points]
        series[f"eff[q{qlen}]"] = [round(pt.efficiency, 3) for pt in curve.points]
    text = format_series(
        "P",
        PROC_GRID,
        series,
        title="Fig 8 — Smith-Waterman (synthetic DNA database, affine gaps)",
    )
    report("fig8_smith_waterman", text)

    # Benchmark the calibrated kernel (one SW column update).
    qlen = 128
    problem, _, _ = fig8_data[qlen]
    v = problem.initial_vector()
    v[~np.isfinite(v)] = 0.0
    benchmark(lambda: problem.apply_stage_with_pred(50, v))

    # ---- shape assertions vs the paper ----
    # Paper: "efficiency ~1 for any number of processors" on a >100M
    # database.  Our database is 20k stages, so efficiency ~1 holds
    # while the per-processor range (20k/P) dwarfs the convergence
    # steps (~ query length); at P=128 with long queries the ranges
    # shrink to ~150 stages and efficiency must start to dip — the
    # same regime Fig 7's small packets exhibit.
    for qlen, (_problem, _cc, curve) in fig8_data.items():
        for pt in curve.points:
            if pt.num_procs <= 32:
                assert pt.efficiency > 0.6, (qlen, pt)
        p128 = curve.points[-1]
        assert p128.speedup > 30.0
        # One fix-up iteration while ranges dwarf the convergence steps
        # (P <= 32 ⇒ ranges >= 625 stages vs <= ~180 convergence steps).
        # Beyond that the longest queries enter the range-too-small
        # regime and may need extra iterations — the speedup floor above
        # already guards that corner.
        for pt in curve.points:
            if pt.num_procs <= 32:
                assert pt.fixup_iterations <= 1, (qlen, pt)
    # Shorter queries converge in fewer steps ⇒ scale better at P=128.
    eff_at_128 = {
        qlen: curve.points[-1].efficiency
        for qlen, (_p, _c, curve) in fig8_data.items()
    }
    assert eff_at_128[QUERY_LENGTHS[0]] > eff_at_128[QUERY_LENGTHS[-1]]
