"""Ablations backing the paper's design arguments (DESIGN.md experiment index).

A. §4.7 delta computation: fix-up cells actually touched with vs
   without sparse delta propagation on banded NW/LCS — the sparse
   kernels must cut real fix-up work, and must never do more.
B. §4.5 nz initial vector: the result is invariant to the arbitrary
   start vectors (different seeds/ranges), and convergence behaviour is
   statistically stable.
C. §4.1 blocked matrix-product parallelization: forward work overhead
   over the rank-convergence algorithm grows linearly with stage width.
D. width scaling: steps-to-convergence grows with band width (the
   mechanism behind Figs 9/10's "larger widths perform poorer").
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.datagen.sequences import homologous_pair
from repro.ltdp.blocked import solve_blocked
from repro.ltdp.convergence import measure_convergence_steps
from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem


def fixup_work(solution):
    return sum(
        s.total_work
        for s in solution.metrics.supersteps
        if s.label.startswith("fixup")
    )


@pytest.fixture(scope="module")
def nw_instance():
    rng = np.random.default_rng(42)
    a, b = homologous_pair(3000, rng, divergence=0.05)
    return NeedlemanWunschProblem(a, b, width=64)


def test_ablation_delta_computation(nw_instance, report, benchmark):
    """A: sparse §4.7 fix-up touches measurably fewer cells than dense.

    Work here is *cells actually computed* by the sparse kernels (not a
    modeled delta count): a fix-up sweep runs dense until the incoming
    boundary delta-converges against the resident stage state, then
    repairs only changed-delta neighbourhoods.  The achievable saving is
    therefore bounded by how quickly each sweep's input becomes
    delta-sparse — ~1.5x on NW (affine entries keep the scan churning)
    and ~2x on LCS (zero gap costs realign almost immediately).
    """
    rows = []
    nw_ratios = []
    for procs in (4, 8, 16, 32):
        full = solve_parallel(nw_instance, num_procs=procs, seed=1, use_delta=False)
        delta = solve_parallel(nw_instance, num_procs=procs, seed=1, use_delta=True)
        np.testing.assert_array_equal(full.path, delta.path)
        fw, dw = fixup_work(full), fixup_work(delta)
        ratio = fw / dw if dw else float("inf")
        nw_ratios.append(ratio)
        rows.append(["NW", procs, f"{fw:.0f}", f"{dw:.0f}", f"{ratio:.2f}x"])
    rng = np.random.default_rng(42)
    a, b = homologous_pair(3000, rng, divergence=0.05)
    lcs = LCSProblem(a, b, width=64)
    lcs_ratios = []
    for procs in (8, 32):
        full = solve_parallel(lcs, num_procs=procs, seed=1, use_delta=False)
        delta = solve_parallel(lcs, num_procs=procs, seed=1, use_delta=True)
        np.testing.assert_array_equal(full.path, delta.path)
        fw, dw = fixup_work(full), fixup_work(delta)
        ratio = fw / dw if dw else float("inf")
        lcs_ratios.append(ratio)
        rows.append(["LCS", procs, f"{fw:.0f}", f"{dw:.0f}", f"{ratio:.2f}x"])
    report(
        "ablation_delta",
        format_table(
            ["problem", "P", "fixup cells (full)", "fixup cells (delta)", "reduction"],
            rows,
            title="Ablation A — §4.7 sparse delta fix-up (banded, width 64)",
        ),
    )
    benchmark(lambda: solve_parallel(nw_instance, num_procs=8, seed=1, use_delta=True))
    # Sparse fix-up must never touch more cells than dense (the kernel
    # caps repair cost at the dense stage cost), and must win clearly.
    assert all(r >= 1.0 for r in nw_ratios + lcs_ratios)
    assert max(nw_ratios) > 1.3
    assert max(lcs_ratios) > 1.6


def test_ablation_nz_invariance(nw_instance, report, benchmark):
    """B: the arbitrary start vectors never change the answer (§4.5)."""
    reference = solve_sequential(nw_instance)
    rows = []
    for seed, (lo, hi) in [
        (0, (-10, 10)),
        (1, (-10, 10)),
        (2, (-1, 1)),
        (3, (-1000, 1000)),
        (4, (5, 50)),
    ]:
        sol = solve_parallel(
            nw_instance,
            ParallelOptions(num_procs=8, seed=seed, nz_low=lo, nz_high=hi),
        )
        identical = bool(np.array_equal(sol.path, reference.path))
        rows.append(
            [
                seed,
                f"[{lo}, {hi}]",
                sol.metrics.forward_fixup_iterations,
                identical,
            ]
        )
        assert identical and sol.score == reference.score
    report(
        "ablation_nz",
        format_table(
            ["seed", "nz range", "fix-up iters", "path identical"],
            rows,
            title="Ablation B — invariance to the arbitrary nz start vector",
        ),
    )
    benchmark(lambda: solve_parallel(nw_instance, num_procs=8, seed=99))


def test_ablation_blocked_overhead(report, benchmark):
    """C: §4.1 matrix-product parallelization pays Θ(width) extra work."""
    rng = np.random.default_rng(0)
    rows = []
    overheads = []
    for width in (4, 8, 16, 32):
        problem = random_matrix_problem(48, width, rng, integer=True)
        blocked = solve_blocked(problem, num_procs=8)
        ltdp = solve_parallel(problem, num_procs=8, seed=0)
        np.testing.assert_array_equal(blocked.path, ltdp.path)
        b_work = blocked.metrics.total_work
        l_work = ltdp.metrics.total_work
        overhead = b_work / l_work
        overheads.append(overhead)
        rows.append([width, f"{b_work:.0f}", f"{l_work:.0f}", f"{overhead:.1f}x"])
    report(
        "ablation_blocked",
        format_table(
            ["width", "blocked work", "LTDP work", "overhead"],
            rows,
            title="Ablation C — §4.1 blocked matrix products vs rank convergence",
        ),
    )
    problem = random_matrix_problem(48, 16, rng, integer=True)
    benchmark(lambda: solve_blocked(problem, num_procs=8))
    # Overhead grows with width ("parallelization overhead linear in the
    # size of the stages").
    assert overheads[-1] > overheads[0]
    assert overheads[-1] > 4.0


def test_ablation_width_vs_convergence(report, benchmark):
    """D: convergence steps grow with band width (Fig 9/10 mechanism)."""
    rng = np.random.default_rng(5)
    a, b = homologous_pair(2500, rng, divergence=0.2)
    rows = []
    medians = []
    for width in (8, 16, 32, 64, 128):
        problem = NeedlemanWunschProblem(a, b, width=width)
        study = measure_convergence_steps(problem, num_trials=8, seed=2)
        med = study.median_steps if study.median_steps is not None else np.inf
        medians.append(med)
        rows.append(list(study.row()))
    report(
        "ablation_width",
        format_table(
            ["problem", "width", "min", "median", "max", "converged"],
            rows,
            title="Ablation D — convergence steps vs band width (NW)",
        ),
    )
    problem = NeedlemanWunschProblem(a, b, width=32)
    benchmark(lambda: solve_sequential(problem))
    assert medians[-1] > medians[0]
