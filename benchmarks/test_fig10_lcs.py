"""Figure 10 — LCS GCUPS / speedup / efficiency (§6.3.4).

Same layout as Fig 9 (similar vs divergent synthetic chromosome pair,
four band widths, delta fix-up accounting) with the LCS recurrence and
its zero-penalty gaps — the hardest instance for rank convergence in
the paper (Table 1's blank entries).

Paper shapes to reproduce: strong input dependence, wider widths worse,
and visibly weaker scaling than Smith-Waterman/Viterbi.
"""

import numpy as np
import pytest

from repro.analysis.speedup import scaling_sweep, throughput_gcups
from repro.analysis.tables import format_series
from repro.datagen.sequences import homologous_pair
from repro.machine.cluster import SimCluster
from repro.machine.cost_model import calibrate_cell_cost
from repro.problems.alignment.lcs import LCSProblem

from conftest import PROC_GRID

WIDTHS = [32, 64, 128, 256]
SEQ_LENGTH = 6000
PAIRS = {
    "similar(X,Y)": 0.03,
    "divergent(21,22)": 0.35,
}


@pytest.fixture(scope="module")
def fig10_data():
    data = {}
    for pair_name, divergence in PAIRS.items():
        rng = np.random.default_rng(10)
        a, b = homologous_pair(SEQ_LENGTH, rng, divergence=divergence)
        per_width = {}
        cell_cost = None
        for width in WIDTHS:
            problem = LCSProblem(a, b, width=width)
            if cell_cost is None:
                mid = problem.num_stages // 2
                v = np.zeros(problem.stage_width(mid - 1))
                cell_cost = calibrate_cell_cost(
                    lambda: problem.apply_stage_with_pred(mid, v),
                    problem.stage_cost(mid),
                    min_seconds=0.05,
                )
            cluster = SimCluster.stampede(1, cell_cost=cell_cost)
            curve = scaling_sweep(
                problem,
                cluster,
                PROC_GRID,
                label=f"LCS {pair_name} w={width}",
                seed=10,
                use_delta=True,
            )
            per_width[width] = (problem, curve)
        data[pair_name] = (cell_cost, per_width)
    return data


def test_fig10_report(fig10_data, report, benchmark):
    sections = []
    for pair_name, (cell_cost, per_width) in fig10_data.items():
        series = {}
        for width, (problem, curve) in per_width.items():
            cells = problem.total_cells()
            series[f"GCUPS[w{width}]"] = [
                round(throughput_gcups(cells, pt.time_seconds), 4)
                for pt in curve.points
            ]
            series[f"spd[w{width}]"] = [
                round(pt.speedup, 2) for pt in curve.points
            ]
            series[f"fix[w{width}]"] = [
                "*" if pt.filled else "o" for pt in curve.points
            ]
        sections.append(
            format_series(
                "P",
                PROC_GRID,
                series,
                title=(
                    f"Fig 10 — LCS, {pair_name} pair (len {SEQ_LENGTH}, "
                    f"delta fix-up, cell cost {cell_cost * 1e9:.2f} ns)"
                ),
            )
        )
    report("fig10_lcs", "\n\n".join(sections))

    # Benchmark one banded LCS stage kernel.
    rng = np.random.default_rng(1)
    a, b = homologous_pair(2000, rng, divergence=0.1)
    problem = LCSProblem(a, b, width=128)
    v = np.zeros(problem.stage_width(999))
    benchmark(lambda: problem.apply_stage_with_pred(1000, v))

    # ---- shape assertions vs the paper ----
    sim = fig10_data["similar(X,Y)"][1]
    div = fig10_data["divergent(21,22)"][1]
    for width in WIDTHS:
        s64 = next(p for p in sim[width][1].points if p.num_procs == 64)
        d64 = next(p for p in div[width][1].points if p.num_procs == 64)
        assert s64.speedup >= d64.speedup * 0.9
    s_small = next(p for p in sim[WIDTHS[0]][1].points if p.num_procs == 64)
    s_big = next(p for p in sim[WIDTHS[-1]][1].points if p.num_procs == 64)
    assert s_big.speedup <= s_small.speedup + 1e-9
