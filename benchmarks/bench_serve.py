"""Serving-layer smoke benchmark entry point.

The implementation lives in :mod:`repro.bench.serve_bench` so that the
``repro bench`` CLI (record/check) shares one matrix runner with this
script; this file only bootstraps ``src`` onto ``sys.path`` and
re-exports the public surface::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
    PYTHONPATH=src python benchmarks/bench_serve.py                # full grid
    PYTHONPATH=src python benchmarks/bench_serve.py --check BENCH_serve.json
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.serve_bench import (  # noqa: E402,F401  (re-exported)
    DEFAULT_OUT,
    SEED,
    SERVE_SCHEMA_VERSION,
    check_document,
    main,
    run_bench,
    run_suite,
    validate_serve_doc,
)
from repro.bench.serve_bench import (  # noqa: E402,F401  (legacy private names)
    _check_admission_control,
    _checks_from_rows,
    _grid,
    _pid_alive,
    _run_row,
)

__all__ = [
    "DEFAULT_OUT",
    "SERVE_SCHEMA_VERSION",
    "main",
    "run_bench",
    "validate_serve_doc",
]


if __name__ == "__main__":
    sys.exit(main())
