"""Runtime overhead: persistent worker pool vs fork-per-task processes.

The rank-convergence algorithm's parallel overhead is dominated by the
per-superstep runtime cost — barrier + task launch + state shipping.
The legacy :class:`~repro.machine.executor.ProcessExecutor` pays a
fork + full-state pickle on *every task of every superstep*; the
:class:`~repro.machine.pool.PoolProcessExecutor` spawns its workers
once, keeps per-processor stage vectors resident, and exchanges only
boundary vectors per fix-up iteration.

The workload is an adversarial permutation-chain LTDP instance: tropical
permutation matrices never lose rank, so with P processors the fix-up
loop runs ~P iterations — a superstep-heavy solve where per-superstep
overhead, not cell work, is the bill.  Measured wall-clock per superstep
(``RunMetrics.wall_seconds``) must come out lower for the pool.
"""

import numpy as np
import pytest

from repro.analysis.tables import format_table
from repro.ltdp.matrix_problem import MatrixLTDPProblem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.machine.executor import ProcessExecutor
from repro.machine.pool import PoolProcessExecutor
from repro.semiring.tropical import NEG_INF

NUM_PROCS = 6
NUM_STAGES = 240
WIDTH = 24


def permutation_chain_problem(num_stages, width, rng):
    """Rank never converges: the fix-up loop runs ~P full iterations."""
    mats = []
    for _ in range(num_stages):
        perm = rng.permutation(width)
        m = np.full((width, width), NEG_INF)
        m[perm, np.arange(width)] = rng.integers(-3, 4, size=width).astype(float)
        mats.append(m)
    init = rng.integers(-5, 6, size=width).astype(float)
    return MatrixLTDPProblem(init, mats)


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(1234)
    return permutation_chain_problem(NUM_STAGES, WIDTH, rng)


def run_with(problem, executor):
    opts = ParallelOptions(num_procs=NUM_PROCS, seed=3, executor=executor)
    return solve_parallel(problem, opts)


def test_pool_beats_fork_per_task(workload, report, benchmark):
    """Per-superstep wall-clock: persistent pool < fork-per-task."""
    # Warm both paths once so neither pays one-time import/spawn costs
    # inside the measured solve.
    with ProcessExecutor(max_workers=2) as ex:
        run_with(workload, ex)
    pool = PoolProcessExecutor(max_workers=2)
    try:
        run_with(workload, pool)

        fork_ex = ProcessExecutor(max_workers=2)
        fork_sol = run_with(workload, fork_ex)
        pool_sol = run_with(workload, pool)
    finally:
        pool.close()

    np.testing.assert_array_equal(fork_sol.path, pool_sol.path)
    assert fork_sol.score == pool_sol.score

    fork_m, pool_m = fork_sol.metrics, pool_sol.metrics
    assert fork_m.forward_fixup_iterations >= NUM_PROCS - 1  # superstep-heavy
    assert len(fork_m.supersteps) == len(pool_m.supersteps)

    rows = [
        [
            "process (fork per task)",
            len(fork_m.supersteps),
            f"{fork_m.wall_time:.4f}",
            f"{fork_m.mean_superstep_wall() * 1e3:.2f}",
        ],
        [
            "pool (persistent)",
            len(pool_m.supersteps),
            f"{pool_m.wall_time:.4f}",
            f"{pool_m.mean_superstep_wall() * 1e3:.2f}",
        ],
    ]
    speedup = fork_m.mean_superstep_wall() / pool_m.mean_superstep_wall()
    report(
        "runtime_overhead",
        format_table(
            ["runtime", "supersteps", "wall [s]", "mean/superstep [ms]"],
            rows,
            title=(
                "Runtime overhead — permutation chain "
                f"({NUM_STAGES} stages, width {WIDTH}, P={NUM_PROCS}); "
                f"pool is {speedup:.1f}x lower per superstep"
            ),
        ),
    )

    assert pool_m.wall_time < fork_m.wall_time
    assert pool_m.mean_superstep_wall() < fork_m.mean_superstep_wall()

    # pytest-benchmark record: one pooled superstep round-trip.
    def one_superstep():
        pool2 = getattr(one_superstep, "_pool", None)
        if pool2 is None:
            pool2 = one_superstep._pool = PoolProcessExecutor(max_workers=2)
        return pool2.run_superstep([_noop] * NUM_PROCS)

    try:
        benchmark(one_superstep)
    finally:
        pool2 = getattr(one_superstep, "_pool", None)
        if pool2 is not None:
            pool2.close()


def _noop():
    return None
