"""The PR's acceptance demo, as a test: `repro serve --selftest`.

Serves ≥ 100 mixed requests (fresh + near-duplicate, two alignment
families) through one resident pool, verifies every answer against a
fresh sequential solve, requires cache hits answered by the §4.7 delta
path, a clean drain and zero leaked workers.
"""

import numpy as np

from repro.serve.selftest import build_request_stream, run_selftest


class TestRequestStream:
    def test_stream_is_seeded_and_mixed(self):
        first = build_request_stream(40, seed=12)
        second = build_request_stream(40, seed=12)
        assert len(first) == len(second) == 40
        for p, q in zip(first, second):
            assert type(p) is type(q)
            np.testing.assert_array_equal(p.a, q.a)
            np.testing.assert_array_equal(p.b, q.b)
        families = {type(p).__name__ for p in first}
        assert len(families) == 2  # both alignment families appear


class TestServeSelftest:
    def test_demo_serves_hundred_requests_on_one_pool(self):
        report = run_selftest(
            num_requests=110,
            num_procs=2,
            max_workers=2,
            seed=0,
            min_served=100,
        )
        assert report.served_ok >= 100
        assert report.verified == report.served_ok
        assert report.mismatches == 0
        assert report.errors == 0
        assert report.hits > 0  # near-duplicates took the repair path
        assert report.delta_cells > 0  # ...and did §4.7 delta work
        assert report.leaked_workers == 0
        assert report.passed
        # The stats snapshot the service returned at close matches.
        assert report.stats["total"]["ok"] == report.served_ok
        assert report.stats["total"]["hits"] == report.hits
