"""ResidentSession unit tests: cache decision, rebase, eviction.

A session is one request class kept resident in the pool; these tests
pin the decision table of :meth:`ResidentSession.serve` — when a
request is answered by §4.7 delta repair versus a fresh sweep — and the
journal-cap rebase that bounds replay cost, each time checking the
answer against a fresh sequential solve.
"""

import numpy as np

from repro.datagen.sequences import homologous_pair
from repro.ltdp.sequential import solve_sequential
from repro.machine.pool import PoolProcessExecutor
from repro.problems.alignment.lcs import LCSProblem
from repro.serve import CACHE_HIT, CACHE_MISS, LTDPService, ResidentSession

SIZE = 32
WIDTH = 8


def _problem(seed, size=SIZE):
    rng = np.random.default_rng(seed)
    return LCSProblem(*homologous_pair(size, rng, divergence=0.1), width=WIDTH)


def _mutated(problem, seed, k=2):
    rng = np.random.default_rng(seed)
    a = np.array(problem.a, copy=True)
    for pos in rng.choice(a.size, size=k, replace=False):
        a[pos] = (a[pos] + rng.integers(1, 4)) % 4
    return LCSProblem(a, problem.b, width=WIDTH)


def _check(problem, solution):
    expected = solve_sequential(problem)
    np.testing.assert_array_equal(solution.path, expected.path)
    assert solution.score == expected.score


class TestCacheDecision:
    def test_miss_hit_miss_sequence(self):
        base = _problem(1)
        near = _mutated(base, 2)
        other_b = _problem(3)  # different ``b`` → undiffable → miss
        with PoolProcessExecutor(max_workers=2) as pool:
            session = ResidentSession(pool, base, num_procs=2)
            try:
                solution, cache, _ = session.serve(base)
                _check(base, solution)
                assert cache == CACHE_MISS
                solution, cache, metrics = session.serve(near)
                _check(near, solution)
                assert cache == CACHE_HIT
                assert sum(metrics.fixup_changed_deltas) > 0
                solution, cache, _ = session.serve(other_b)
                _check(other_b, solution)
                assert cache == CACHE_MISS
                # The new canonical is other_b; repairing against it works.
                near2 = _mutated(other_b, 4)
                solution, cache, _ = session.serve(near2)
                _check(near2, solution)
                assert cache == CACHE_HIT
            finally:
                session.finish()

    def test_journal_cap_forces_rebase_to_fresh_solve(self):
        base = _problem(5)
        near = _mutated(base, 6)
        with PoolProcessExecutor(max_workers=2) as pool:
            # A cap of 1 is always exceeded after the first solve: every
            # subsequent request must rebase (fresh runtime, fresh solve).
            session = ResidentSession(pool, base, num_procs=2, journal_cap=1)
            try:
                runtime0 = session.runtime
                solution, cache, _ = session.serve(base)
                assert cache == CACHE_MISS
                _check(base, solution)
                assert session.runtime.journal_len > session.journal_cap
                solution, cache, _ = session.serve(near)
                _check(near, solution)
                assert cache == CACHE_MISS  # near-duplicate, but rebased
                assert session.runtime is not runtime0
            finally:
                session.finish()


class TestSessionEviction:
    def test_lru_eviction_keeps_answers_correct(self):
        """Two request classes through a one-session service: each
        arrival of the other class evicts the resident (worker-side
        state dropped), yet every answer stays bit-identical."""
        small = _problem(7, size=SIZE)
        large = _problem(8, size=SIZE + 8)  # different n → different class
        with LTDPService(
            max_workers=2, num_procs=2, max_sessions=1
        ) as service:
            for problem in (small, large, small, large):
                response = service.submit(problem).result(timeout=300.0)
                assert response.status == "ok", response.reason
                _check(problem, response.solution)
        stats = service.stats()
        # Every request re-entered a freshly built session: all misses.
        assert stats["total"]["ok"] == 4
        assert stats["total"]["hits"] == 0
        assert stats["total"]["misses"] == 4
