"""LTDPService contract tests: admission, batching, caching, teardown.

The serving guarantees under test:

- every ``ok`` answer is **bit-identical** to a fresh sequential solve,
  whether it came from a fresh sweep (miss) or from §4.7 delta repair
  of the resident canonical (hit);
- backpressure is synchronous and observable (bounded queue, rejected
  tickets resolve immediately with a reason, counted per class);
- shutdown is a graceful drain with zero leaked workers, and a request
  racing a dead executor resolves as an ``error`` response rather than
  hanging.
"""

import os
import threading

import numpy as np
import pytest

from repro.datagen.sequences import homologous_pair
from repro.ltdp.sequential import solve_sequential
from repro.machine.pool import PoolProcessExecutor
from repro.problems.alignment.lcs import LCSProblem
from repro.serve import (
    CACHE_HIT,
    CACHE_MISS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    LTDPService,
)

SIZE = 32
WIDTH = 8


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def _mutate(a, rng, k=2):
    out = np.array(a, copy=True)
    for pos in rng.choice(out.size, size=k, replace=False):
        out[pos] = (out[pos] + rng.integers(1, 4)) % 4
    return out


def _assert_identical(problem, response):
    assert response.status == STATUS_OK, response.reason
    expected = solve_sequential(problem)
    np.testing.assert_array_equal(response.solution.path, expected.path)
    assert response.solution.score == expected.score


class TestConcurrentClients:
    """N client threads, mixed fresh/near-duplicate, one resident pool."""

    NUM_THREADS = 4
    DUPS_PER_THREAD = 5

    def test_mixed_stream_bit_identical_with_delta_hits(self):
        rng = np.random.default_rng(11)
        base_a, base_b = homologous_pair(SIZE, rng, divergence=0.1)
        base = LCSProblem(base_a, base_b, width=WIDTH)
        service = LTDPService(
            max_workers=2, num_procs=2, max_queue=64, seed=0
        )
        results = []  # (problem, response), appended under a lock
        lock = threading.Lock()

        def client(tid):
            trng = np.random.default_rng(100 + tid)
            problems = [
                # One genuinely fresh problem per thread (new ``b`` →
                # undiffable against any base-family resident → miss)...
                LCSProblem(
                    *homologous_pair(SIZE, trng, divergence=0.2), width=WIDTH
                )
            ] + [
                # ...then near-duplicates of the shared canonical: any
                # two differ in a handful of ``a`` symbols, so whatever
                # base-family problem is resident, the diff is bounded.
                LCSProblem(_mutate(base_a, trng), base_b, width=WIDTH)
                for _ in range(self.DUPS_PER_THREAD)
            ]
            local = [(p, service.submit(p)) for p in problems]
            for problem, ticket in local:
                response = ticket.result(timeout=300.0)
                with lock:
                    results.append((problem, response))

        with service:
            seed_response = service.submit(base).result(timeout=300.0)
            threads = [
                threading.Thread(target=client, args=(tid,))
                for tid in range(self.NUM_THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            pids = list(service.executor.worker_pids())
        stats = service.stats()

        _assert_identical(base, seed_response)
        assert seed_response.cache == CACHE_MISS
        for problem, response in results:
            _assert_identical(problem, response)
        # Queue was sized for the whole stream: zero rejections.
        total = stats["total"]
        assert total["rejected"] == 0
        assert total["errors"] == 0
        assert total["ok"] == 1 + len(results)
        # 20 near-duplicates vs 4 fresh: at least one near-duplicate is
        # served right after a base-family solve in every interleaving,
        # and those hits do §4.7 delta-repair work.
        assert total["hits"] > 0
        assert total["delta_cells"] > 0
        hits = [r for _, r in results if r.cache == CACHE_HIT]
        assert sum(r.delta_cells for r in hits) > 0
        # Graceful drain: the pool's workers are gone.
        assert service.executor.closed
        assert not any(_pid_alive(pid) for pid in pids)

    def test_exact_duplicate_is_the_cheapest_hit(self):
        rng = np.random.default_rng(3)
        problem = LCSProblem(
            *homologous_pair(SIZE, rng, divergence=0.1), width=WIDTH
        )
        with LTDPService(max_workers=2, num_procs=2) as service:
            first = service.submit(problem).result(timeout=300.0)
            again = service.submit(problem).result(timeout=300.0)
        _assert_identical(problem, first)
        _assert_identical(problem, again)
        assert first.cache == CACHE_MISS
        assert again.cache == CACHE_HIT
        # Zero dirty stages: the repair sweep finds nothing to change.
        assert again.delta_cells == 0


class TestBackpressure:
    def test_queue_full_rejects_synchronously_then_drain_serves_rest(self):
        rng = np.random.default_rng(5)
        problems = [
            LCSProblem(
                *homologous_pair(SIZE, rng, divergence=0.1), width=WIDTH
            )
            for _ in range(12)
        ]
        service = LTDPService(
            max_workers=2, num_procs=2, max_queue=5
        )
        # Submit before start(): the queue fills to its bound and the
        # overflow is rejected immediately, on the submitting thread.
        tickets = [service.submit(p) for p in problems]
        rejected = [t for t in tickets if t.done]
        assert len(rejected) == 7
        for ticket in rejected:
            response = ticket.result(timeout=0)
            assert response.status == STATUS_REJECTED
            assert "queue full" in response.reason
            assert "backpressure" in response.reason
        assert service.pending == 5
        # close(drain=True) serves what admission control let in.
        service.start()
        stats = service.close()
        served = [t.result(timeout=0) for t in tickets if t not in rejected]
        for problem, response in zip(problems[:5], served):
            _assert_identical(problem, response)
        assert stats["total"]["rejected"] == 7
        assert stats["total"]["ok"] == 5

    def test_close_without_drain_flushes_queue_as_rejections(self):
        rng = np.random.default_rng(6)
        problem = LCSProblem(
            *homologous_pair(SIZE, rng, divergence=0.1), width=WIDTH
        )
        service = LTDPService(max_workers=2, num_procs=2)
        tickets = [service.submit(problem) for _ in range(3)]
        stats = service.close(drain=False)
        for ticket in tickets:
            response = ticket.result(timeout=0)
            assert response.status == STATUS_REJECTED
            assert "closed before the request was served" in response.reason
        assert stats["total"]["rejected"] == 3
        assert stats["total"]["ok"] == 0


class TestTeardown:
    def test_close_rejects_new_submissions_and_reaps_workers(self):
        rng = np.random.default_rng(7)
        problem = LCSProblem(
            *homologous_pair(SIZE, rng, divergence=0.1), width=WIDTH
        )
        service = LTDPService(max_workers=2, num_procs=2).start()
        response = service.submit(problem).result(timeout=300.0)
        _assert_identical(problem, response)
        pids = list(service.executor.worker_pids())
        service.close()
        assert service.executor.closed
        assert not any(_pid_alive(pid) for pid in pids)
        late = service.submit(problem).result(timeout=0)
        assert late.status == STATUS_REJECTED
        assert "closed" in late.reason
        # Idempotent: a second close just returns the stats snapshot.
        stats = service.close()
        assert stats["total"]["ok"] == 1

    def test_executor_closed_underneath_yields_error_responses(self):
        """A request racing executor shutdown resolves as ``error``.

        The drain path relies on the executor close contract: dispatch
        after close() raises ExecutorError deterministically, so the
        service can answer instead of hanging on a dead transport.
        """
        rng = np.random.default_rng(8)
        problem = LCSProblem(
            *homologous_pair(SIZE, rng, divergence=0.1), width=WIDTH
        )
        pool = PoolProcessExecutor(max_workers=2)
        service = LTDPService(executor=pool, num_procs=2).start()
        try:
            ok = service.submit(problem).result(timeout=300.0)
            _assert_identical(problem, ok)
            pool.close()  # yanked out from under the running service
            response = service.submit(problem).result(timeout=300.0)
            assert response.status == STATUS_ERROR
            assert "executor failure" in response.reason
            assert "closed" in response.reason
        finally:
            stats = service.close()
        # The service reported the failure and still shut down cleanly —
        # and does not close an executor it does not own (already closed
        # here, but the ownership flag is what's under test).
        assert stats["total"]["errors"] == 1
        assert stats["total"]["ok"] == 1

    def test_external_executor_is_not_closed_by_the_service(self):
        rng = np.random.default_rng(9)
        problem = LCSProblem(
            *homologous_pair(SIZE, rng, divergence=0.1), width=WIDTH
        )
        with PoolProcessExecutor(max_workers=2) as pool:
            with LTDPService(executor=pool, num_procs=2) as service:
                response = service.submit(problem).result(timeout=300.0)
                _assert_identical(problem, response)
            assert not pool.closed
            # The pool is still serviceable after the service detached.
            assert pool.check_health()


class TestValidation:
    def test_rejects_non_resident_executor(self):
        from repro.exceptions import ExecutorError
        from repro.machine.executor import SerialExecutor

        with pytest.raises(ExecutorError, match="resident"):
            LTDPService(executor=SerialExecutor())

    @pytest.mark.parametrize(
        "kwargs",
        [{"num_procs": 0}, {"max_queue": 0}, {"max_sessions": 0}],
    )
    def test_rejects_degenerate_limits(self, kwargs):
        with pytest.raises(ValueError):
            LTDPService(executor=_FakePool(), **kwargs)


class _FakePool:
    # Typed capability declaration (the duck-typed
    # ``supports_resident_state`` attribute is no longer consulted).
    from repro.machine.executor import ExecutorCapabilities as _Caps

    capabilities = _Caps(resident_state=True)
