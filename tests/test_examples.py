"""Smoke-run every example script — examples must never rot.

Each example asserts its own correctness internally (decode matches
payload, scores match references, seams avoid objects...), so a clean
exit is a meaningful check, not just an import test.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_inventory():
    """The README promises these scenarios; keep the set in sync."""
    assert {
        "quickstart.py",
        "viterbi_decoding.py",
        "sequence_alignment.py",
        "rank_convergence_demo.py",
        "seam_carving.py",
        "time_warping.py",
        "fixup_walkthrough.py",
        "tropical_algebra_tour.py",
    } <= set(EXAMPLES)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
