"""End-to-end span tracing: the observability layer's acceptance suite.

A traced parallel solve must (a) not perturb the answer, (b) carry
exactly one ``superstep`` span per recorded superstep on every runtime,
(c) on the pool runtime, break each dispatch down into per-worker
send / queue-wait / compute time plus serialized byte counts, and
(d) surface the pool's self-healing (respawn / replay / retry) as trace
events.  A disabled or absent tracer must leave no residue — including
on a *shared* pool reused for later untraced solves.
"""

import numpy as np
import pytest

from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.machine.executor import get_executor
from repro.machine.pool import PoolProcessExecutor
from repro.machine.trace import Tracer

NUM_PROCS = 3
SEED = 11


@pytest.fixture
def problem():
    return random_matrix_problem(48, 6, np.random.default_rng(3), integer=True)


def traced_solve(problem, executor, tracer, **kwargs):
    opts = ParallelOptions(
        num_procs=NUM_PROCS, seed=SEED, executor=executor, tracer=tracer, **kwargs
    )
    return solve_parallel(problem, opts)


@pytest.mark.parametrize("kind", ["serial", "thread", "process", "pool"])
def test_one_superstep_span_per_recorded_superstep(problem, kind):
    tracer = Tracer()
    with get_executor(kind, max_workers=2) as ex:
        traced = traced_solve(problem, ex, tracer)
    with get_executor("serial") as ex:
        base = traced_solve(problem, ex, None)

    np.testing.assert_array_equal(traced.path, base.path)
    assert traced.score == base.score

    spans = [s for s in tracer.spans if s.name == "superstep"]
    assert len(spans) == len(traced.metrics.supersteps)
    # Spans carry the superstep's identity and mirror the metrics labels.
    assert [s.attrs["label"] for s in spans] == [
        r.label for r in traced.metrics.supersteps
    ]
    assert [s.attrs["superstep"] for s in spans] == list(range(1, len(spans) + 1))
    # The driver phases bracket them.
    phases = [s.attrs["phase"] for s in tracer.spans if s.name == "phase"]
    assert phases == ["forward", "backward"]
    assert any(e.name == "solve-start" for e in tracer.events)


def test_pool_dispatch_spans_have_worker_breakdown(problem):
    tracer = Tracer()
    with get_executor("pool", max_workers=2) as ex:
        traced = traced_solve(problem, ex, tracer)

    dispatches = [s for s in tracer.spans if s.name == "dispatch"]
    assert dispatches
    for d in dispatches:
        # Per-worker identity + the full time/byte breakdown.
        assert d.attrs["worker"] in (0, 1)
        assert d.attrs["pid"] > 0
        assert d.attrs["send_seconds"] >= 0.0
        assert d.attrs["queue_wait_seconds"] >= 0.0
        assert d.attrs["compute_seconds"] >= 0.0
        assert d.attrs["request_bytes"] > 0
        assert d.attrs["reply_bytes"] > 0
        # The breakdown fits inside the dispatch span.
        assert d.attrs["compute_seconds"] <= d.duration + 1e-6
    # Dispatches belonging to solve supersteps are tagged with them.
    tagged = [d for d in dispatches if "superstep" in d.attrs]
    assert tagged
    superstep_ids = {
        s.attrs["superstep"] for s in tracer.spans if s.name == "superstep"
    }
    assert {d.attrs["superstep"] for d in tagged} <= superstep_ids


def test_recovery_events_traced_on_injected_fault(problem):
    tracer = Tracer()
    # Kill worker 0 at dispatch seq 4 (mid-forward): the pool respawns
    # it, replays its journal and re-sends the in-flight superstep.
    with PoolProcessExecutor(max_workers=2, fault_plan={4: 0}) as ex:
        traced = traced_solve(problem, ex, tracer)
    with get_executor("serial") as ex:
        base = traced_solve(problem, ex, None)

    np.testing.assert_array_equal(traced.path, base.path)
    assert traced.metrics.worker_respawns == 1

    names = [e.name for e in tracer.events]
    assert "dispatch-retry" in names
    assert "worker-respawn" in names
    assert "superstep-replay" in names
    (respawn,) = [e for e in tracer.events if e.name == "worker-respawn"]
    assert respawn.attrs["worker"] == 0
    assert respawn.attrs["pid"] > 0
    (replay,) = [e for e in tracer.events if e.name == "superstep-replay"]
    assert replay.attrs["replayed"] >= 1


def test_shared_pool_stops_tracing_after_solve(problem):
    """PoolRuntime.finish must detach the tracer: an untraced solve on
    the same (persistent) pool right after a traced one adds nothing."""
    tracer = Tracer()
    with get_executor("pool", max_workers=2) as ex:
        traced_solve(problem, ex, tracer)
        recorded = len(tracer.spans) + len(tracer.events)
        traced_solve(problem, ex, None)
    assert len(tracer.spans) + len(tracer.events) == recorded


def test_disabled_tracer_records_nothing_end_to_end(problem):
    tracer = Tracer(enabled=False)
    with get_executor("pool", max_workers=2) as ex:
        traced = traced_solve(problem, ex, tracer)
    assert tracer.spans == [] and tracer.events == []
    assert traced.metrics.num_barriers > 0


def test_objective_problem_traces_three_phases():
    """Smith-Waterman-style objective problems add the objective phase
    (and the pool's pred redistribution) to the traced solve."""
    from repro.datagen.sequences import random_dna
    from repro.problems.alignment.smith_waterman import SmithWatermanProblem

    rng = np.random.default_rng(5)
    q = random_dna(8, rng)
    db = random_dna(80, rng)
    db[40:48] = q
    sw = SmithWatermanProblem(q, db)

    tracer = Tracer()
    with get_executor("pool", max_workers=2) as ex:
        traced = traced_solve(sw, ex, tracer)
    phases = [s.attrs["phase"] for s in tracer.spans if s.name == "phase"]
    assert phases == ["forward", "objective", "backward"]
    spans = [s for s in tracer.spans if s.name == "superstep"]
    assert len(spans) == len(traced.metrics.supersteps)
