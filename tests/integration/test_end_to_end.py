"""End-to-end integration: parallel ≡ sequential for every shipped problem.

This is the library-level statement of the paper's correctness theorem,
exercised across problem types, processor counts and executors.
"""

import numpy as np
import pytest

from repro.datagen.hmms import make_hmm_workload
from repro.datagen.packets import make_received_packet
from repro.datagen.sequences import homologous_pair, random_dna, random_series
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.machine.executor import ThreadExecutor
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.convolutional import CDMA_IS95, VOYAGER
from repro.problems.dtw import DTWProblem
from repro.problems.seam import SeamCarvingProblem


def build_problems():
    """One representative mid-size instance per problem family."""
    rng = np.random.default_rng(2024)
    problems = {}

    _, viterbi = make_received_packet(VOYAGER, 150, rng, error_rate=0.03)
    problems["viterbi-voyager"] = viterbi

    _, viterbi_cdma = make_received_packet(CDMA_IS95, 80, rng, error_rate=0.02)
    problems["viterbi-cdma"] = viterbi_cdma

    _, _, hmm = make_hmm_workload(8, 5, 150, rng, peakedness=3.0)
    problems["hmm-viterbi"] = hmm

    a, b = homologous_pair(150, rng, divergence=0.08)
    problems["lcs"] = LCSProblem(a, b, width=16)
    problems["nw"] = NeedlemanWunschProblem(a, b, width=16)

    q = random_dna(24, rng)
    db = random_dna(400, rng)
    db[200:224] = q
    problems["sw"] = SmithWatermanProblem(q, db)

    problems["dtw"] = DTWProblem(
        random_series(150, rng), random_series(150, rng), width=20
    )
    problems["seam"] = SeamCarvingProblem(rng.random((120, 24)))
    return problems


PROBLEMS = build_problems()


@pytest.fixture(scope="module")
def sequential_solutions():
    return {name: solve_sequential(p) for name, p in PROBLEMS.items()}


@pytest.mark.parametrize("name", list(PROBLEMS))
@pytest.mark.parametrize("num_procs", [2, 4, 9])
def test_parallel_matches_sequential(name, num_procs, sequential_solutions):
    problem = PROBLEMS[name]
    seq = sequential_solutions[name]
    par = solve_parallel(problem, num_procs=num_procs, seed=7)
    np.testing.assert_array_equal(seq.path, par.path)
    assert par.score == pytest.approx(seq.score, abs=1e-9)
    assert par.objective_stage == seq.objective_stage
    assert par.objective_cell == seq.objective_cell


@pytest.mark.parametrize("name", list(PROBLEMS))
def test_thread_executor_matches_serial(name, sequential_solutions):
    problem = PROBLEMS[name]
    seq = sequential_solutions[name]
    with ThreadExecutor(max_workers=4) as ex:
        par = solve_parallel(
            problem, ParallelOptions(num_procs=4, seed=7, executor=ex)
        )
    np.testing.assert_array_equal(seq.path, par.path)
    assert par.score == pytest.approx(seq.score, abs=1e-9)


@pytest.mark.parametrize("name", list(PROBLEMS))
def test_every_problem_is_valid_ltdp(name):
    report = validate_problem(PROBLEMS[name], num_stage_samples=3, tol=1e-9)
    assert report.ok, report.failures


@pytest.mark.parametrize("name", list(PROBLEMS))
def test_delta_mode_is_result_invariant(name, sequential_solutions):
    problem = PROBLEMS[name]
    seq = sequential_solutions[name]
    par = solve_parallel(problem, num_procs=4, seed=7, use_delta=True)
    np.testing.assert_array_equal(seq.path, par.path)
    assert par.score == pytest.approx(seq.score, abs=1e-9)


def test_extracts_agree_between_sequential_and_parallel():
    rng = np.random.default_rng(5)
    a, b = homologous_pair(100, rng, divergence=0.1)
    problem = LCSProblem(a, b, width=14)
    seq = solve_sequential(problem)
    par = solve_parallel(problem, num_procs=6)
    np.testing.assert_array_equal(problem.extract(seq), problem.extract(par))


SMALL_PROBLEMS = {
    name: p
    for name, p in PROBLEMS.items()
    # The blocked solver materializes stage matrices; keep it to the
    # narrow-width families (probing 2q+1-wide SW matrices is O(w²·n)).
    if name in ("lcs", "nw", "dtw", "hmm-viterbi")
}


@pytest.mark.parametrize("name", list(SMALL_PROBLEMS))
@pytest.mark.parametrize("tree_scan", [False, True])
def test_blocked_solver_agrees_on_problem_families(
    name, tree_scan, sequential_solutions
):
    """§4.1 baseline × real problems: same answers, no convergence needed."""
    from repro.ltdp.blocked import solve_blocked

    problem = SMALL_PROBLEMS[name]
    seq = sequential_solutions[name]
    blk = solve_blocked(problem, num_procs=3, tree_scan=tree_scan)
    np.testing.assert_array_equal(seq.path, blk.path)
    assert blk.score == pytest.approx(seq.score, abs=1e-9)
