"""Cross-executor equivalence: every runtime is bit-identical.

The plan/runtime split means all four executors run the *same*
declarative superstep specs; only where they execute differs.  This
suite pins that down for every shipped problem family: ``path``,
``score`` and the fix-up iteration counts must match the serial
baseline bit-for-bit — no tolerance — on the thread, fork-per-task
process and persistent-pool runtimes alike.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.datagen.hmms import make_hmm_workload
from repro.datagen.packets import make_received_packet
from repro.datagen.sequences import homologous_pair, random_dna, random_series
from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.machine.executor import get_executor
from repro.machine.pool import PoolProcessExecutor
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.convolutional import VOYAGER
from repro.problems.dtw import DTWProblem
from repro.problems.seam import SeamCarvingProblem

NUM_PROCS = 3
SEED = 11

# Instances are deliberately small: each (problem, executor) cell runs a
# full parallel solve, and the process-backed runtimes pay real OS cost.


def build_problems():
    rng = np.random.default_rng(99)
    problems = {}

    problems["matrix"] = random_matrix_problem(48, 8, rng, integer=True)

    _, viterbi = make_received_packet(VOYAGER, 60, rng, error_rate=0.03)
    problems["viterbi"] = viterbi

    _, _, hmm = make_hmm_workload(6, 4, 60, rng, peakedness=3.0)
    problems["hmm"] = hmm

    a, b = homologous_pair(60, rng, divergence=0.08)
    problems["lcs"] = LCSProblem(a, b, width=10)
    problems["nw"] = NeedlemanWunschProblem(a, b, width=10)

    q = random_dna(12, rng)
    db = random_dna(120, rng)
    db[60:72] = q
    # Smith-Waterman tracks a stage objective, exercising the backward
    # repartition (and the pool's pred redistribution).
    problems["sw"] = SmithWatermanProblem(q, db)

    problems["dtw"] = DTWProblem(
        random_series(60, rng), random_series(60, rng), width=10
    )
    problems["seam"] = SeamCarvingProblem(rng.random((50, 12)))
    return problems


PROBLEMS = build_problems()


def solve_with(problem, executor):
    opts = ParallelOptions(num_procs=NUM_PROCS, seed=SEED, executor=executor)
    return solve_parallel(problem, opts)


@pytest.fixture(scope="module")
def serial_solutions():
    return {name: solve_with(p, get_executor("serial")) for name, p in PROBLEMS.items()}


@pytest.mark.parametrize("kind", ["thread", "process", "pool"])
@pytest.mark.parametrize("name", list(PROBLEMS))
def test_executor_bit_identical_to_serial(name, kind, serial_solutions):
    base = serial_solutions[name]
    ex = get_executor(kind, max_workers=2)
    try:
        got = solve_with(PROBLEMS[name], ex)
    finally:
        ex.close()

    np.testing.assert_array_equal(got.path, base.path)
    assert got.score == base.score  # bit-identical, not approx
    assert got.objective_stage == base.objective_stage
    assert got.objective_cell == base.objective_cell

    assert base.metrics is not None and got.metrics is not None
    assert (
        got.metrics.forward_fixup_iterations
        == base.metrics.forward_fixup_iterations
    )
    assert (
        got.metrics.backward_fixup_iterations
        == base.metrics.backward_fixup_iterations
    )
    assert got.metrics.fixup_stages == base.metrics.fixup_stages
    assert got.metrics.converged_first_iteration == (
        base.metrics.converged_first_iteration
    )


@pytest.mark.parametrize("kind", ["thread", "pool"])
@pytest.mark.parametrize("name", list(PROBLEMS))
def test_metrics_accounting_invariant_across_executors(name, kind, serial_solutions):
    """Work/communication accounting is a property of the *plan*, not of
    where it runs: every executor must report the same barrier count,
    per-processor work, fix-up recomputation stages and boundary bytes
    as the serial baseline.  (The fork-per-task executor is covered for
    path/score above; its work ledger is recorded driver-side too, so
    thread + pool pin both state-placement strategies.)"""
    base = serial_solutions[name].metrics
    ex = get_executor(kind, max_workers=2)
    try:
        got = solve_with(PROBLEMS[name], ex).metrics
    finally:
        ex.close()

    assert got.num_barriers == base.num_barriers
    assert got.work_by_processor() == base.work_by_processor()
    assert got.fixup_stages == base.fixup_stages
    assert got.bytes_communicated == base.bytes_communicated
    assert [s.label for s in got.supersteps] == [s.label for s in base.supersteps]
    assert [s.resolved_phase() for s in got.supersteps] == [
        s.resolved_phase() for s in base.supersteps
    ]


#: Workloads for the delta-mode identity sweep: the two sparse-kernel
#: problems (LCS / NW run §4.7 as actual computation), the matrix
#: problem (dense kernel + modeled delta accounting), and
#: Smith-Waterman (objective phase + backward repartition on top).
DELTA_WORKLOADS = ["lcs", "nw", "matrix", "sw"]


@pytest.mark.parametrize("kind", ["serial", "thread", "process", "pool"])
@pytest.mark.parametrize("name", DELTA_WORKLOADS)
def test_delta_mode_bit_identical_everywhere(name, kind, serial_solutions):
    """§4.7 delta mode is an optimization, never a semantic: with
    ``use_delta=True`` every executor must reproduce the sequential
    path and score bit-for-bit — sparse boundary diffs, resident-state
    sparse kernels and convergence-aware skipping included."""
    from repro.ltdp.sequential import solve_sequential

    problem = PROBLEMS[name]
    seq = solve_sequential(problem)
    base = serial_solutions[name]
    ex = get_executor(kind, max_workers=2)
    try:
        got = solve_parallel(
            problem,
            ParallelOptions(
                num_procs=NUM_PROCS, seed=SEED, executor=ex, use_delta=True
            ),
        )
    finally:
        ex.close()

    np.testing.assert_array_equal(got.path, seq.path)
    assert got.score == seq.score
    np.testing.assert_array_equal(got.path, base.path)
    assert got.score == base.score
    # Delta mode may skip work and shrink messages, but never changes
    # the superstep structure's convergence behaviour.
    assert (
        got.metrics.forward_fixup_iterations
        == base.metrics.forward_fixup_iterations
    )


@pytest.fixture(scope="module")
def spawn_pool():
    """One spawn-start-method pool shared by the whole module: workers
    are spawned once (spawn is slow) and reused across solves, which is
    the pool's contract anyway."""
    if "spawn" not in mp.get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    with PoolProcessExecutor(max_workers=2, start_method="spawn") as ex:
        yield ex


@pytest.mark.parametrize("name", list(PROBLEMS))
def test_pool_spawn_start_method_bit_identical(name, spawn_pool, serial_solutions):
    """The cross-executor guarantee must hold under ``spawn`` too: no
    fork-only assumptions (inherited globals, unpicklable worker
    payloads) may hide in the pool protocol or the spec plumbing."""
    base = serial_solutions[name]
    got = solve_with(PROBLEMS[name], spawn_pool)

    np.testing.assert_array_equal(got.path, base.path)
    assert got.score == base.score
    assert got.objective_stage == base.objective_stage
    assert got.objective_cell == base.objective_cell
    assert (
        got.metrics.forward_fixup_iterations
        == base.metrics.forward_fixup_iterations
    )
    assert got.metrics.fixup_stages == base.metrics.fixup_stages


def test_pool_serial_backward_and_stage_vectors_match():
    """The pool runtime also reproduces the optional code paths:
    serial backward phase and gathered stage vectors."""
    problem = PROBLEMS["matrix"]
    opts_kwargs = dict(
        num_procs=NUM_PROCS,
        seed=SEED,
        parallel_backward=False,
        keep_stage_vectors=True,
    )
    base = solve_parallel(problem, ParallelOptions(**opts_kwargs))
    ex = get_executor("pool", max_workers=2)
    try:
        got = solve_parallel(
            problem, ParallelOptions(executor=ex, **opts_kwargs)
        )
    finally:
        ex.close()
    np.testing.assert_array_equal(got.path, base.path)
    assert got.score == base.score
    assert base.stage_vectors is not None and got.stage_vectors is not None
    assert len(got.stage_vectors) == len(base.stage_vectors)
    for mine, theirs in zip(got.stage_vectors, base.stage_vectors):
        np.testing.assert_array_equal(mine, theirs)
