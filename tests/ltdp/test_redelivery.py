"""Redelivery contract: instruction programs are idempotent under faults.

The runner layer's promise (numpywren's ``FailureTests`` contract): a
solve driven by N concurrent runners pulling instructions from the
shared work queue is bit-identical to the serial executor — including
when every instruction is delivered *twice*, when ready instructions
are delivered in LIFO order wherever the dependency DAG allows it, and
when a pool worker is SIGKILLed mid-program.  Metrics stay a property
of the *plan*: work rows and communicated bytes must not notice the
runner count.

Also pins the teardown ordering satellite (closing an executor
mid-program drains the runner crew first, without deadlock or leaked
workers) and the superstep-numbering fix (the program counter advances
identically whether or not tracing is on).
"""

import multiprocessing as mp
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ExecutorError
from repro.ltdp.engine.forward import plan_initial_pass
from repro.ltdp.engine.program import InstructionProgram
from repro.ltdp.engine.runner import DeliveryPolicy, RunnerCrew
from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.partition import partition_stages
from repro.machine.executor import ThreadExecutor, get_executor
from repro.machine.pool import PoolProcessExecutor
from repro.machine.trace import Tracer
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.smith_waterman import SmithWatermanProblem

NUM_PROCS = 4
SEED = 17


def build_problems():
    from repro.datagen.sequences import homologous_pair, random_dna

    rng = np.random.default_rng(23)
    problems = {"matrix": random_matrix_problem(48, 8, rng, integer=True)}
    a, b = homologous_pair(60, rng, divergence=0.08)
    problems["lcs"] = LCSProblem(a, b, width=10)
    problems["nw"] = NeedlemanWunschProblem(a, b, width=10)
    q = random_dna(12, rng)
    db = random_dna(120, rng)
    db[60:72] = q
    problems["sw"] = SmithWatermanProblem(q, db)
    return problems


PROBLEMS = build_problems()


def solve_with(problem, executor, **overrides):
    opts = ParallelOptions(
        num_procs=NUM_PROCS, seed=SEED, executor=executor, **overrides
    )
    return solve_parallel(problem, opts)


@pytest.fixture(scope="module")
def serial_solutions():
    return {
        name: solve_with(p, get_executor("serial")) for name, p in PROBLEMS.items()
    }


def assert_identical(got, base):
    np.testing.assert_array_equal(got.path, base.path)
    assert got.score == base.score
    assert got.objective_stage == base.objective_stage
    assert got.objective_cell == base.objective_cell
    m, b = got.metrics, base.metrics
    assert m.forward_fixup_iterations == b.forward_fixup_iterations
    assert m.backward_fixup_iterations == b.backward_fixup_iterations
    assert m.fixup_stages == b.fixup_stages


class TestMultiRunnerBitIdentity:
    """runners=4 must be invisible in every result, on every runtime."""

    @pytest.mark.parametrize("kind", ["serial", "thread", "process", "pool"])
    @pytest.mark.parametrize("name", list(PROBLEMS))
    def test_four_runners_bit_identical(self, name, kind, serial_solutions):
        ex = get_executor(kind, max_workers=2)
        try:
            got = solve_with(PROBLEMS[name], ex, runners=4)
        finally:
            ex.close()
        assert_identical(got, serial_solutions[name])

    @pytest.mark.parametrize("kind", ["serial", "pool"])
    @pytest.mark.parametrize("name", ["lcs", "nw", "matrix", "sw"])
    def test_four_runners_delta_mode(self, name, kind, serial_solutions):
        """§4.7 delta mode composes with concurrent runners: sparse
        boundary diffs are snapshotted into the specs at compile time,
        so runner scheduling cannot perturb them."""
        ex = get_executor(kind, max_workers=2)
        try:
            got = solve_with(PROBLEMS[name], ex, runners=4, use_delta=True)
        finally:
            ex.close()
        base = serial_solutions[name]
        np.testing.assert_array_equal(got.path, base.path)
        assert got.score == base.score

    @pytest.mark.parametrize("name", list(PROBLEMS))
    def test_metrics_are_runner_count_independent(self, name):
        """Work rows, superstep labels and communicated bytes are
        planner products; the runner count must not leak into them."""
        with ThreadExecutor(max_workers=2) as ex:
            one = solve_with(PROBLEMS[name], ex, runners=1).metrics
            four = solve_with(PROBLEMS[name], ex, runners=4).metrics
        assert four.num_barriers == one.num_barriers
        assert four.work_by_processor() == one.work_by_processor()
        assert four.bytes_communicated == one.bytes_communicated
        assert [s.label for s in four.supersteps] == [
            s.label for s in one.supersteps
        ]
        assert [s.step for s in four.supersteps] == [
            s.step for s in one.supersteps
        ]


class TestRedelivery:
    """Every instruction delivered twice / out of order: still identical."""

    @pytest.mark.parametrize("kind", ["serial", "pool"])
    @pytest.mark.parametrize("name", list(PROBLEMS))
    def test_duplicate_delivery_bit_identical(self, name, kind, serial_solutions):
        ex = get_executor(kind, max_workers=2)
        try:
            got = solve_with(
                PROBLEMS[name],
                ex,
                runners=2,
                delivery=DeliveryPolicy(duplicates=2),
            )
        finally:
            ex.close()
        assert_identical(got, serial_solutions[name])

    @pytest.mark.parametrize("name", list(PROBLEMS))
    def test_lifo_delivery_bit_identical(self, name, serial_solutions):
        """Reversing ready-queue order reorders instructions wherever
        the dependency DAG allows — which a correct program must not
        observe."""
        with ThreadExecutor(max_workers=2) as ex:
            got = solve_with(
                PROBLEMS[name],
                ex,
                runners=4,
                delivery=DeliveryPolicy(order="lifo"),
            )
        assert_identical(got, serial_solutions[name])

    def test_duplicates_and_lifo_combined(self, serial_solutions):
        with ThreadExecutor(max_workers=2) as ex:
            got = solve_with(
                PROBLEMS["sw"],
                ex,
                runners=3,
                delivery=DeliveryPolicy(duplicates=2, order="lifo"),
            )
        assert_identical(got, serial_solutions["sw"])

    def test_duplicate_delivery_with_delta_mode_on_pool(self, serial_solutions):
        """Worker-resident §4.7 state is the sharpest idempotency test:
        a double-applied sparse fix-up would corrupt the resident stage
        vectors, so the worker's per-seq reply cache must absorb the
        second delivery."""
        with PoolProcessExecutor(max_workers=2) as ex:
            got = solve_with(
                PROBLEMS["nw"],
                ex,
                runners=2,
                use_delta=True,
                delivery=DeliveryPolicy(duplicates=2),
            )
        base = serial_solutions["nw"]
        np.testing.assert_array_equal(got.path, base.path)
        assert got.score == base.score

    def test_delivery_policy_validates(self):
        with pytest.raises(ValueError, match="duplicates"):
            DeliveryPolicy(duplicates=0)
        assert DeliveryPolicy().is_default
        assert not DeliveryPolicy(duplicates=2).is_default
        assert not DeliveryPolicy(order="lifo").is_default

    def test_duplicates_visible_to_tracer(self):
        """Each extra delivery surfaces as either an ``instr-duplicate``
        event (already recorded) or a ``program.instr`` span flagged
        ``duplicate`` (lost the record race) — never silently."""
        tracer = Tracer()
        with ThreadExecutor(max_workers=2) as ex:
            solve_with(
                PROBLEMS["matrix"],
                ex,
                runners=2,
                tracer=tracer,
                delivery=DeliveryPolicy(duplicates=2),
            )
        pulls = [s for s in tracer.spans if s.name == "runner.pull"]
        firsts = [
            s
            for s in tracer.spans
            if s.name == "program.instr" and not s.attrs.get("duplicate")
        ]
        dupes = len(
            [s for s in tracer.spans if s.name == "program.instr" and s.attrs.get("duplicate")]
        ) + len([e for e in tracer.events if e.name == "instr-duplicate"])
        assert len(firsts) >= 1
        assert dupes >= 1
        assert len(pulls) == len(firsts) + dupes
        assert len(pulls) == 2 * len(firsts)


class TestRunnerFaultInjection:
    """A pool worker SIGKILLed mid-program under concurrent runners."""

    @pytest.mark.parametrize("seq,worker", [(2, 0), (4, 1)])
    def test_worker_kill_mid_program_recovers(
        self, seq, worker, serial_solutions
    ):
        """With a crew, every instruction is its own dispatch, so a
        fault-plan seq lands on whichever instruction drew that dispatch
        number — the recovery contract must hold regardless."""
        with PoolProcessExecutor(
            max_workers=2, fault_plan={seq: worker}
        ) as ex:
            got = solve_with(PROBLEMS["matrix"], ex, runners=4)
            assert ex.recovery_stats.respawns == 1
            assert ex.recovery_stats.retries >= 1
        assert_identical(got, serial_solutions["matrix"])
        assert got.metrics.worker_respawns == 1

    def test_worker_kill_with_duplicates(self, serial_solutions):
        """Crash recovery replays the recorded slot history through the
        same ``_w_run_instr`` path duplicates use — both layers of
        idempotency active at once."""
        with PoolProcessExecutor(max_workers=2, fault_plan={3: 0}) as ex:
            got = solve_with(
                PROBLEMS["matrix"],
                ex,
                runners=2,
                delivery=DeliveryPolicy(duplicates=2),
            )
            assert ex.recovery_stats.respawns == 1
        assert_identical(got, serial_solutions["matrix"])


class TestTeardownOrdering:
    """Closing mid-program must drain runners first: no deadlock, no leaks."""

    def test_crew_close_unblocks_run_step(self):
        program = InstructionProgram()
        release = threading.Event()

        def slow_execute(instr):
            release.wait(timeout=10.0)
            return None

        crew = RunnerCrew(2, slow_execute, program)
        _, instrs = program.add_superstep(
            plan_initial_pass(
                partition_stages(40, 2), ParallelOptions(num_procs=2)
            ),
            label="forward",
        )
        errors = []

        def drive():
            try:
                crew.run_step(instrs)
            except ExecutorError as exc:
                errors.append(exc)

        t = threading.Thread(target=drive)
        t.start()
        time.sleep(0.05)  # let runners pull and block in slow_execute
        closer = threading.Thread(target=crew.close)
        closer.start()
        release.set()  # in-flight instructions finish; queued ones drop
        closer.join(timeout=10.0)
        t.join(timeout=10.0)
        assert not closer.is_alive() and not t.is_alive()
        assert crew.closed

    def test_run_step_after_close_raises(self):
        program = InstructionProgram()
        crew = RunnerCrew(1, lambda instr: None, program)
        crew.close()
        crew.close()  # idempotent
        _, instrs = program.add_superstep(
            plan_initial_pass(
                partition_stages(40, 2), ParallelOptions(num_procs=2)
            ),
            label="forward",
        )
        with pytest.raises(ExecutorError, match="closed"):
            crew.run_step(instrs)

    def test_thread_executor_close_drains_crew_via_hook(self):
        """The crew registers its close as an executor teardown hook, so
        an executor closed mid-program (PR 2's finalize path) abandons
        the queue before the transport disappears."""
        from repro.ltdp.engine.runtime import LocalRuntime

        ex = ThreadExecutor(max_workers=2)
        runtime = LocalRuntime(ex, PROBLEMS["matrix"], runners=2)
        ranges = partition_stages(PROBLEMS["matrix"].num_stages, 2)
        specs = plan_initial_pass(ranges, ParallelOptions(num_procs=2))
        runtime.run(specs, label="forward")
        ex.close()  # mid-program: runtime.finish() never called
        assert runtime._crew.closed
        with pytest.raises(ExecutorError, match="closed"):
            runtime.run(specs, label="forward")
        runtime.finish()  # still safe after the hook already closed it

    def test_pool_close_mid_program_no_leaked_workers(self):
        """Satellite (f): closing the pool mid-program neither deadlocks
        (the crew's teardown hook runs first) nor leaks workers."""
        from repro.ltdp.engine.poolrt import PoolRuntime

        problem = PROBLEMS["matrix"]
        ranges = partition_stages(problem.num_stages, 2)
        ex = PoolProcessExecutor(max_workers=2)
        runtime = PoolRuntime(ex, problem, ranges, runners=2)
        specs = plan_initial_pass(ranges, ParallelOptions(num_procs=2))
        runtime.run(specs, label="forward")
        pids = set(ex.worker_pids())
        ex.close()
        assert runtime._crew.closed
        alive = {p.pid for p in mp.active_children()}
        assert not (pids & alive)
        with pytest.raises(ExecutorError):
            runtime.run(specs, label="forward")

    def test_finish_unregisters_hook_and_close_stays_clean(self):
        """The normal path: finish() closes the crew and unregisters its
        hook, so a later executor close has nothing crew-shaped to do."""
        with ThreadExecutor(max_workers=2) as ex:
            got = solve_with(PROBLEMS["matrix"], ex, runners=4)
            assert not getattr(ex, "_teardown_hooks", [])
        assert got.path is not None


class TestSuperstepNumbering:
    """The program counter fix: numbering is identical traced or not."""

    def test_record_steps_dense_without_tracer(self):
        got = solve_with(PROBLEMS["sw"], get_executor("serial"))
        steps = [r.step for r in got.metrics.supersteps]
        assert steps == list(range(1, len(steps) + 1))

    def test_traced_and_untraced_steps_identical(self):
        """The pre-refactor bug: ``LocalRuntime._step_no`` only advanced
        when tracing was on, so traced and untraced runs disagreed on
        superstep numbers."""
        plain = solve_with(PROBLEMS["sw"], get_executor("serial"))
        tracer = Tracer()
        traced = solve_with(PROBLEMS["sw"], get_executor("serial"), tracer=tracer)
        assert [r.step for r in traced.metrics.supersteps] == [
            r.step for r in plain.metrics.supersteps
        ]

    def test_superstep_spans_agree_with_record_steps(self):
        tracer = Tracer()
        got = solve_with(PROBLEMS["sw"], get_executor("serial"), tracer=tracer)
        span_steps = {
            s.attrs["label"]: s.attrs["superstep"]
            for s in tracer.spans
            if s.name == "superstep"
        }
        for record in got.metrics.supersteps:
            assert span_steps[record.label] == record.step

    def test_crew_path_numbers_match_classic(self):
        with ThreadExecutor(max_workers=2) as ex:
            classic = solve_with(PROBLEMS["matrix"], ex, runners=1)
            crewed = solve_with(PROBLEMS["matrix"], ex, runners=4)
        assert [r.step for r in crewed.metrics.supersteps] == [
            r.step for r in classic.metrics.supersteps
        ]

    def test_serial_backward_fallback_records_step_zero(self):
        got = solve_with(
            PROBLEMS["matrix"], get_executor("serial"), parallel_backward=False
        )
        assert got.metrics.supersteps[-1].label == "backward"
        assert got.metrics.supersteps[-1].step == 0
        assert all(r.step > 0 for r in got.metrics.supersteps[:-1])


class TestProgramCompile:
    """Instruction dataflow: the fix-up DAG made explicit."""

    def test_forward_program_dependency_edges(self):
        from repro.ltdp.engine.specs import ForwardFixupSpec

        program = InstructionProgram()
        ranges = partition_stages(60, 3)
        opts = ParallelOptions(num_procs=3)
        step, init = program.add_superstep(
            plan_initial_pass(ranges, opts), label="forward"
        )
        assert step == 1
        assert [i.seq for i in init] == [1, 2, 3]
        assert all(i.deps == () for i in init)

        fixups = [
            ForwardFixupSpec(
                proc=rg.proc,
                lo=rg.lo,
                hi=rg.hi,
                boundary=np.zeros(4),
                tol=0.0,
            )
            for rg in ranges[1:]
        ]
        step, instrs = program.add_superstep(fixups, label="fixup[1]")
        assert step == 2
        for instr in instrs:
            p = instr.slot
            # Reads its left neighbour's boundary and its own state; both
            # were last written in the initial pass (seqs p-1 and p).
            assert f"bnd:{p - 1}" in instr.reads
            assert set(instr.deps) == {p - 1, p}

    def test_record_result_first_wins(self):
        program = InstructionProgram()
        _, (instr,) = program.add_superstep(
            plan_initial_pass(
                partition_stages(40, 1), ParallelOptions(num_procs=1)
            ),
            label="forward",
        )
        assert program.record_result(instr.seq, "first")
        assert not program.record_result(instr.seq, "second")
        assert program.result(instr.seq) == "first"
        assert program.is_recorded(instr.seq)

    def test_install_journalled_without_dataflow_registration(self):
        program = InstructionProgram()
        ranges = partition_stages(60, 2)
        program.add_superstep(
            plan_initial_pass(ranges, ParallelOptions(num_procs=2)),
            label="forward",
        )
        install = program.add_install(1, {"payload": True})
        assert install.op == "pred-install"
        assert install.deps == ()
        assert install in program.slot_history(1)
        # A later reader of pred:1 must NOT depend on the install seq —
        # installs are driver-barriered, never queue-released.
        from repro.ltdp.engine.specs import BackwardInitSpec

        _, (instr,) = program.add_superstep(
            [BackwardInitSpec(proc=1, lo=0, hi=30, start_index=0)],
            label="backward",
        )
        assert install.seq not in instr.deps
