"""Convergence-aware fix-up scheduling: converged processors drop out.

Both fix-up loops (forward Fig 4, backward Fig 5) skip a processor
entirely — no spec, no work row, no CommEvent — once it converged on an
input boundary that has not changed since.  Re-running it would
deterministically reproduce its stored state, so skipping is invisible
to the results; these tests pin that down with a spy runtime recording
every dispatch, plus regression checks on the communication ledger
(which used to charge a full boundary send for every processor in every
round, dispatched or not).
"""

import numpy as np
import pytest

from repro.datagen.sequences import homologous_pair
from repro.ltdp.engine.forward import forward_phase, plan_fixup_round
from repro.ltdp.engine.runtime import LocalRuntime
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.partition import partition_stages
from repro.ltdp.sequential import solve_sequential
from repro.machine.executor import SerialExecutor
from repro.machine.metrics import RunMetrics
from repro.problems.alignment.lcs import LCSProblem

NUM_PROCS = 6


@pytest.fixture(scope="module")
def slow_instance():
    """An LCS instance that needs several fix-up rounds at P=6, with
    processors converging at different rounds (dispatch counts shrink)."""
    rng = np.random.default_rng(7)
    a, b = homologous_pair(200, rng, divergence=0.15)
    return LCSProblem(a, b, width=32)


class SpyRuntime(LocalRuntime):
    """LocalRuntime that records which processors each superstep dispatched."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dispatches: list[tuple[str, list[int]]] = []

    def run(self, specs, label=""):
        self.dispatches.append((label, [spec.proc for spec in specs]))
        return super().run(specs, label)


def run_forward_with_spy(problem, use_delta):
    opts = ParallelOptions(
        num_procs=NUM_PROCS,
        seed=0,
        executor=SerialExecutor(),
        use_delta=use_delta,
    )
    ranges = partition_stages(problem.num_stages, NUM_PROCS)
    metrics = RunMetrics(num_procs=len(ranges), num_stages=problem.num_stages)
    runtime = SpyRuntime(opts.executor, problem)
    try:
        finals = forward_phase(problem, ranges, opts, runtime, metrics)
    finally:
        runtime.finish()
    return runtime, metrics, finals


@pytest.mark.parametrize("use_delta", [False, True])
def test_converged_processors_not_redispatched(slow_instance, use_delta):
    runtime, metrics, _ = run_forward_with_spy(slow_instance, use_delta)
    fixup_rounds = [
        procs for label, procs in runtime.dispatches if label.startswith("fixup")
    ]
    assert len(fixup_rounds) >= 2  # the instance must exercise the loop
    # The scheduler must actually drop someone at some point.
    assert any(len(procs) < NUM_PROCS - 1 for procs in fixup_rounds)
    # A processor absent in one round only reappears if new input arrived;
    # on this instance convergence is monotone: once dropped, stay dropped.
    dropped: set[int] = set()
    for procs in fixup_rounds:
        assert dropped.isdisjoint(procs)
        dropped |= set(range(2, NUM_PROCS + 1)) - set(procs)
    # The metrics ledger mirrors the spy exactly.
    assert metrics.fixup_dispatched == [len(p) for p in fixup_rounds]


@pytest.mark.parametrize("use_delta", [False, True])
def test_skipping_preserves_bit_identity(slow_instance, use_delta):
    seq = solve_sequential(slow_instance)
    par = solve_parallel(
        slow_instance, num_procs=NUM_PROCS, seed=0, use_delta=use_delta
    )
    np.testing.assert_array_equal(par.path, seq.path)
    assert par.score == seq.score


def test_plan_fixup_round_skips_only_converged_unchanged(slow_instance):
    """Unit contract of the planner: a processor is skipped iff it
    converged last round AND its input boundary is unchanged."""
    opts = ParallelOptions(num_procs=3, seed=0)
    ranges = partition_stages(30, 3)
    finals = {rg.proc: np.arange(4, dtype=float) + rg.proc for rg in ranges}
    last_input = {rg.proc: np.array(finals[rg.proc - 1]) for rg in ranges[1:]}

    # Converged + unchanged input: skipped.
    specs, comm, _ = plan_fixup_round(
        ranges, finals, opts, 0.0,
        last_input=dict(last_input),
        last_converged={2: True, 3: True},
    )
    assert specs == [] and comm == []

    # Not converged: dispatched even though the input is unchanged.
    specs, comm, _ = plan_fixup_round(
        ranges, finals, opts, 0.0,
        last_input=dict(last_input),
        last_converged={2: False, 3: True},
    )
    assert [sp.proc for sp in specs] == [2]
    assert [(e.src, e.dst) for e in comm] == [(1, 2)]

    # Converged but the input moved: dispatched.
    moved = dict(last_input)
    moved[3] = moved[3] + 1.0
    specs, _, _ = plan_fixup_round(
        ranges, finals, opts, 0.0,
        last_input=moved,
        last_converged={2: True, 3: True},
    )
    assert [sp.proc for sp in specs] == [3]


@pytest.mark.parametrize("use_delta", [False, True])
def test_comm_events_only_for_dispatched_processors(slow_instance, use_delta):
    """Regression: every fix-up superstep used to record a full-boundary
    CommEvent for every processor, whether or not it was dispatched.
    The ledger must show exactly one message per dispatched processor,
    and idle processors must carry zero work."""
    sol = solve_parallel(
        slow_instance, num_procs=NUM_PROCS, seed=0, use_delta=use_delta
    )
    m = sol.metrics
    fwd_records = [s for s in m.supersteps if s.label.startswith("fixup")]
    assert [len(s.comm) for s in fwd_records] == m.fixup_dispatched
    bwd_records = [s for s in m.supersteps if s.label.startswith("bwd-fixup")]
    assert [len(s.comm) for s in bwd_records] == m.bwd_fixup_dispatched
    for record in fwd_records:
        dispatched = {e.dst for e in record.comm}
        for p in range(2, NUM_PROCS + 1):
            if p not in dispatched:
                assert record.work[p - 1] == 0.0
    # The schedule shrinks, so the total message count is strictly less
    # than the old one-per-processor-per-round accounting.
    rounds = len(fwd_records)
    assert sum(m.fixup_dispatched) < rounds * (NUM_PROCS - 1)


def test_delta_mode_ships_diffs_not_dense_boundaries(slow_instance):
    """In delta mode, re-dispatches after the first round ship sparse
    BoundaryDiffs whenever smaller: total fix-up bytes must undercut
    dense mode on a multi-round instance."""
    dense = solve_parallel(slow_instance, num_procs=NUM_PROCS, seed=0)
    delta = solve_parallel(
        slow_instance, num_procs=NUM_PROCS, seed=0, use_delta=True
    )

    def fixup_bytes(sol):
        return sum(
            e.num_bytes
            for s in sol.metrics.supersteps
            if s.label.startswith("fixup")
            for e in s.comm
        )

    assert fixup_bytes(delta) < fixup_bytes(dense)
    assert len(delta.metrics.fixup_changed_deltas) == len(
        delta.metrics.fixup_dispatched
    )
    np.testing.assert_array_equal(dense.path, delta.path)
