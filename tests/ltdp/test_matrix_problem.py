"""Tests for explicit-matrix LTDP instances."""

import numpy as np
import pytest

from repro.exceptions import ProblemDefinitionError, TrivialMatrixError
from repro.ltdp.matrix_problem import MatrixLTDPProblem, random_matrix_problem
from repro.semiring.tropical import NEG_INF, tropical_matvec


class TestConstruction:
    def test_empty_matrices_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            MatrixLTDPProblem(np.zeros(2), [])

    def test_shape_chain_validated(self):
        with pytest.raises(ProblemDefinitionError):
            MatrixLTDPProblem(np.zeros(2), [np.zeros((3, 2)), np.zeros((2, 2))])

    def test_trivial_matrix_rejected(self):
        bad = np.array([[0.0, 1.0], [NEG_INF, NEG_INF]])
        with pytest.raises(TrivialMatrixError):
            MatrixLTDPProblem(np.zeros(2), [bad])

    def test_trivial_matrix_allowed_when_opted_in(self):
        bad = np.array([[0.0, 1.0], [NEG_INF, NEG_INF]])
        p = MatrixLTDPProblem(np.zeros(2), [bad], allow_trivial=True)
        assert p.num_stages == 1

    def test_rectangular_chain(self):
        p = MatrixLTDPProblem(
            np.zeros(2), [np.zeros((3, 2)), np.zeros((1, 3))]
        )
        assert p.stage_width(0) == 2
        assert p.stage_width(1) == 3
        assert p.stage_width(2) == 1

    def test_matrices_defensively_copied(self):
        m = np.zeros((2, 2))
        p = MatrixLTDPProblem(np.zeros(2), [m])
        m[0, 0] = 99.0
        assert p.stage_matrix(1)[0, 0] == 0.0


class TestBehaviour:
    def test_apply_matches_matvec(self, rng):
        p = random_matrix_problem(5, 4, rng, integer=True)
        v = rng.integers(-5, 6, size=4).astype(float)
        for i in range(1, 6):
            np.testing.assert_array_equal(
                p.apply_stage(i, v), tropical_matvec(p.stage_matrix(i), v)
            )

    def test_stage_index_bounds(self, rng):
        p = random_matrix_problem(3, 3, rng)
        with pytest.raises(ProblemDefinitionError):
            p.apply_stage(0, np.zeros(3))
        with pytest.raises(ProblemDefinitionError):
            p.apply_stage(4, np.zeros(3))

    def test_edge_weight_is_matrix_entry(self, rng):
        p = random_matrix_problem(3, 3, rng, integer=True)
        assert p.edge_weight(2, 1, 2) == p.stage_matrix(2)[1, 2]

    def test_stage_cost_counts_dense_cells(self, rng):
        p = random_matrix_problem(2, 4, rng)
        assert p.stage_cost(1) == 16.0
        assert p.total_cells() == 32.0

    def test_initial_vector_is_copy(self, rng):
        p = random_matrix_problem(2, 3, rng)
        v = p.initial_vector()
        v[0] = 123.0
        assert p.initial_vector()[0] != 123.0

    def test_probed_matrix_equals_stored(self, rng):
        from repro.ltdp.problem import LTDPProblem

        p = random_matrix_problem(3, 4, rng, integer=True)
        probed = LTDPProblem.stage_matrix(p, 2)  # generic probe path
        np.testing.assert_array_equal(probed, p.stage_matrix(2))


class TestRandomGeneration:
    def test_density_creates_sparsity(self, rng):
        p = random_matrix_problem(4, 10, rng, density=0.3)
        a = p.stage_matrix(1)
        assert (a == NEG_INF).sum() > 0
        # non-triviality maintained
        assert np.isfinite(a).any(axis=1).all()

    def test_integer_weights_exact(self, rng):
        p = random_matrix_problem(3, 5, rng, integer=True)
        a = p.stage_matrix(1)
        finite = np.isfinite(a)
        assert np.array_equal(a[finite], np.round(a[finite]))

    def test_invalid_density(self, rng):
        with pytest.raises(ValueError):
            random_matrix_problem(2, 2, rng, density=0.0)
