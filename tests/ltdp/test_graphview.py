"""Tests for the §4.8 graph view of LTDP."""

import numpy as np
import pytest

from repro.ltdp.graphview import (
    articulation_stages,
    build_stage_graph,
    longest_path_solution,
    optimal_node_sets,
)
from repro.ltdp.matrix_problem import MatrixLTDPProblem, random_matrix_problem
from repro.ltdp.sequential import solve_sequential
from repro.semiring.tropical import NEG_INF, tropical_outer


class TestGraphConstruction:
    def test_node_and_edge_counts_dense(self, rng):
        p = random_matrix_problem(4, 3, rng, integer=True)
        g = build_stage_graph(p)
        # 5 stages × 3 cells + source + sink
        assert g.number_of_nodes() == 5 * 3 + 2
        # dense: 3 init edges + 4·9 stage edges + 1 sink edge
        assert g.number_of_edges() == 3 + 36 + 1

    def test_neg_inf_edges_omitted(self):
        A = np.array([[1.0, NEG_INF], [0.0, 2.0]])
        p = MatrixLTDPProblem(np.zeros(2), [A])
        g = build_stage_graph(p)
        assert not g.has_edge((0, 1), (1, 0))
        assert g.has_edge((0, 0), (1, 1))

    def test_graph_is_dag(self, rng):
        import networkx as nx

        p = random_matrix_problem(5, 3, rng, integer=True)
        assert nx.is_directed_acyclic_graph(build_stage_graph(p))


class TestOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_longest_path_matches_tropical_solver(self, seed):
        rng = np.random.default_rng(seed)
        p = random_matrix_problem(6, 4, rng, integer=True)
        sol = solve_sequential(p)
        score, _path = longest_path_solution(p)
        assert score == sol.score

    def test_path_is_optimal_even_if_not_identical(self, rng):
        """Tie-breaking may differ from the DP, but the value cannot."""
        p = random_matrix_problem(5, 3, rng, integer=True)
        score, path = longest_path_solution(p)
        total = p.initial_vector()[path[0]]
        for i in range(1, 6):
            total += p.stage_matrix(i)[path[i], path[i - 1]]
        assert total == score


class TestCriticality:
    def test_optimal_sets_contain_dp_path(self, rng):
        p = random_matrix_problem(6, 4, rng, integer=True)
        sol = solve_sequential(p)
        sets = optimal_node_sets(p)
        for i, cell in enumerate(sol.path):
            assert int(cell) in sets[i]

    def test_rank_one_chain_has_choke_points(self, rng):
        """Rank-1 transforms funnel all paths through single cells."""
        mats = []
        for _ in range(4):
            c = rng.integers(-4, 5, size=4).astype(float)
            r = rng.integers(-4, 5, size=4).astype(float)
            mats.append(tropical_outer(c, r))
        p = MatrixLTDPProblem(rng.integers(-4, 5, size=4).astype(float), mats)
        chokes = articulation_stages(p)
        # With generic random rank-1 factors the arg-maxes are unique,
        # so interior stages collapse to single optimal cells.
        assert len(chokes) >= 2

    def test_parallel_identity_chain_has_no_interior_choke(self):
        """Identity transforms keep every cell optimal — no choke points."""
        eye = np.full((3, 3), NEG_INF)
        np.fill_diagonal(eye, 0.0)
        p = MatrixLTDPProblem(np.zeros(3), [eye.copy(), eye.copy()])
        sets = optimal_node_sets(p)
        # Final stage pinned to cell 0 propagates back: each stage's
        # optimal set is exactly {0} here, so instead check stage 0..n
        # equality of structure: every stage set must be {0}.
        assert all(s == {0} for s in sets)

    def test_choke_points_explain_convergence(self, rng):
        """Instances with many choke points converge quickly (§4.8)."""
        from repro.ltdp.convergence import measure_convergence_steps

        p = random_matrix_problem(30, 4, rng, integer=True)
        chokes = articulation_stages(p)
        study = measure_convergence_steps(p, num_trials=8, seed=3)
        if len(chokes) > 10:
            assert study.convergence_fraction > 0.5
