"""Tests for stage partitioning (paper Fig 4 line 5)."""

import pytest

from repro.ltdp.partition import StageRange, partition_stages


class TestPartition:
    def test_even_split(self):
        ranges = partition_stages(12, 3)
        assert [(r.lo, r.hi) for r in ranges] == [(0, 4), (4, 8), (8, 12)]

    def test_remainder_goes_to_leading_procs(self):
        ranges = partition_stages(10, 3)
        assert [r.num_stages for r in ranges] == [4, 3, 3]

    def test_tiles_the_sequence(self):
        for n in (1, 2, 7, 100):
            for p in (1, 2, 3, 8, 64):
                ranges = partition_stages(n, p)
                assert ranges[0].lo == 0
                assert ranges[-1].hi == n
                for a, b in zip(ranges, ranges[1:]):
                    assert a.hi == b.lo

    def test_proc_ids_are_one_based(self):
        ranges = partition_stages(6, 3)
        assert [r.proc for r in ranges] == [1, 2, 3]

    def test_more_procs_than_stages_clamps(self):
        ranges = partition_stages(3, 10)
        assert len(ranges) == 3
        assert all(r.num_stages == 1 for r in ranges)

    def test_single_proc(self):
        (r,) = partition_stages(9, 1)
        assert (r.lo, r.hi) == (0, 9)

    def test_stages_iterator(self):
        r = StageRange(proc=2, lo=4, hi=8)
        assert list(r.stages()) == [5, 6, 7, 8]

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            StageRange(proc=1, lo=3, hi=3)

    @pytest.mark.parametrize("n,p", [(0, 1), (5, 0), (-1, 2)])
    def test_invalid_arguments(self, n, p):
        with pytest.raises(ValueError):
            partition_stages(n, p)
