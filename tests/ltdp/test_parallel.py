"""Tests for the parallel LTDP algorithm (paper Figs 4 and 5)."""

import numpy as np
import pytest

from repro.exceptions import ExecutorError
from repro.ltdp.matrix_problem import MatrixLTDPProblem, random_matrix_problem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.machine.executor import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.semiring.tropical import NEG_INF


def permutation_chain_problem(num_stages: int, width: int, rng) -> MatrixLTDPProblem:
    """An adversarial instance whose partial products never drop rank.

    Permutation matrices (0 on the permuted diagonal, -inf elsewhere)
    are invertible tropical maps, so rank never decreases — "carefully
    crafted problem instances" (§4.2) on which the parallel algorithm
    must devolve to sequential yet stay correct.
    """
    mats = []
    for _ in range(num_stages):
        perm = rng.permutation(width)
        m = np.full((width, width), NEG_INF)
        m[perm, np.arange(width)] = rng.integers(-3, 4, size=width).astype(float)
        mats.append(m)
    init = rng.integers(-5, 6, size=width).astype(float)
    return MatrixLTDPProblem(init, mats)


class TestEquivalenceWithSequential:
    @pytest.mark.parametrize("num_procs", [2, 3, 4, 7, 16])
    def test_dense_random(self, num_procs):
        rng = np.random.default_rng(7)
        p = random_matrix_problem(32, 6, rng, integer=True)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=num_procs)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score

    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds(self, seed):
        rng = np.random.default_rng(seed)
        p = random_matrix_problem(24, 5, rng, integer=True)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=4, seed=seed + 100)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score

    def test_sparse_problem(self):
        rng = np.random.default_rng(11)
        p = random_matrix_problem(30, 8, rng, density=0.5, integer=True)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=5)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score

    def test_varying_widths(self):
        rng = np.random.default_rng(13)
        widths = [4, 6, 3, 5, 5, 2, 4, 4]
        mats = []
        w_prev = widths[0]
        for w in widths[1:]:
            mats.append(rng.integers(-4, 5, size=(w, w_prev)).astype(float))
            w_prev = w
        p = MatrixLTDPProblem(rng.integers(-4, 5, size=widths[0]).astype(float), mats)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=3)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score

    def test_adversarial_permutation_chain_devolves_but_correct(self):
        rng = np.random.default_rng(17)
        p = permutation_chain_problem(20, 5, rng)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=4)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score
        # No rank convergence possible: the fix-up must iterate ~P times.
        assert par.metrics.forward_fixup_iterations >= 3

    def test_single_proc_delegates_to_sequential(self, rng):
        p = random_matrix_problem(10, 4, rng, integer=True)
        par = solve_parallel(p, num_procs=1)
        seq = solve_sequential(p)
        np.testing.assert_array_equal(par.path, seq.path)
        assert par.metrics is not None  # still carries metrics

    def test_more_procs_than_stages(self, rng):
        p = random_matrix_problem(3, 4, rng, integer=True)
        par = solve_parallel(p, num_procs=64)
        seq = solve_sequential(p)
        np.testing.assert_array_equal(par.path, seq.path)
        assert par.metrics.num_procs == 3  # clamped

    def test_serial_backward_variant(self, rng):
        p = random_matrix_problem(20, 5, rng, integer=True)
        par = solve_parallel(p, num_procs=4, parallel_backward=False)
        seq = solve_sequential(p)
        np.testing.assert_array_equal(par.path, seq.path)


class TestScores:
    def test_exact_score_epilogue(self, rng):
        p = random_matrix_problem(20, 5, rng, integer=True)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=4, exact_score=True)
        assert par.score == seq.score

    def test_without_epilogue_score_may_be_offset(self, rng):
        p = random_matrix_problem(20, 5, rng, integer=True)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=4, exact_score=False)
        # The final stored vector is parallel to the truth, so the raw
        # score differs from the true one by that run's offset (possibly 0).
        offset = par.score - seq.score
        final_diff = par.final_vector - solve_sequential(p).final_vector
        finite = np.isfinite(final_diff)
        assert np.allclose(final_diff[finite], offset)

    def test_edge_weight_probe_fallback(self, rng):
        """Problems without an edge_weight method still price exactly."""
        p = random_matrix_problem(12, 4, rng, integer=True)

        class NoEdgeWeight:
            def __getattr__(self, name):
                if name == "edge_weight":
                    raise AttributeError(name)
                return getattr(p, name)

        proxy = NoEdgeWeight()
        from repro.ltdp.parallel import _price_path

        seq = solve_sequential(p)
        assert _price_path(proxy, seq.path) == seq.score


class TestExecutors:
    def test_thread_executor_identical(self, rng):
        p = random_matrix_problem(24, 5, rng, integer=True)
        serial = solve_parallel(p, num_procs=4, seed=3)
        with ThreadExecutor(max_workers=4) as ex:
            threaded = solve_parallel(
                p, ParallelOptions(num_procs=4, seed=3, executor=ex)
            )
        np.testing.assert_array_equal(serial.path, threaded.path)
        assert serial.score == threaded.score
        np.testing.assert_array_equal(serial.final_vector, threaded.final_vector)

    def test_process_executor_identical(self, rng):
        p = random_matrix_problem(16, 4, rng, integer=True)
        serial = solve_parallel(p, num_procs=3, seed=3)
        with ProcessExecutor() as ex:
            forked = solve_parallel(
                p, ParallelOptions(num_procs=3, seed=3, executor=ex)
            )
        np.testing.assert_array_equal(serial.path, forked.path)
        assert serial.score == forked.score

    def test_process_executor_propagates_worker_errors(self):
        # Stage 1 collapses processor 1's vector to all--inf inside the
        # forked worker; the failure must surface as ExecutorError.
        bad = MatrixLTDPProblem(
            np.zeros(2),
            [np.full((2, 2), NEG_INF), np.zeros((2, 2))],
            allow_trivial=True,
        )
        with ProcessExecutor() as ex:
            with pytest.raises(ExecutorError):
                solve_parallel(bad, ParallelOptions(num_procs=2, executor=ex))


class TestMetrics:
    def test_forward_superstep_covers_all_cells(self, rng):
        p = random_matrix_problem(24, 5, rng, integer=True)
        par = solve_parallel(p, num_procs=4)
        forward = par.metrics.supersteps[0]
        assert forward.label == "forward"
        assert forward.total_work == p.total_cells()

    def test_fixup_comm_events(self, rng):
        p = random_matrix_problem(24, 5, rng, integer=True)
        par = solve_parallel(p, num_procs=4)
        fixups = [s for s in par.metrics.supersteps if s.label.startswith("fixup")]
        assert len(fixups) == par.metrics.forward_fixup_iterations
        for s in fixups:
            assert len(s.comm) == 3  # P-1 boundary messages
            assert s.work[0] == 0.0  # processor 1 idles in fix-up

    def test_backward_superstep_present(self, rng):
        p = random_matrix_problem(24, 5, rng, integer=True)
        par = solve_parallel(p, num_procs=4)
        labels = [s.label for s in par.metrics.supersteps]
        assert "backward" in labels

    def test_critical_path_less_than_total_with_convergence(self):
        rng = np.random.default_rng(5)
        p = random_matrix_problem(64, 4, rng, integer=True)
        par = solve_parallel(p, num_procs=8)
        m = par.metrics
        if m.converged_first_iteration:
            assert m.critical_path_work < p.total_cells()

    def test_delta_accounting_not_larger_than_full(self):
        rng = np.random.default_rng(5)
        p = random_matrix_problem(48, 6, rng, integer=True)
        full = solve_parallel(p, num_procs=6, use_delta=False)
        delta = solve_parallel(p, num_procs=6, use_delta=True)
        np.testing.assert_array_equal(full.path, delta.path)
        f_fix = sum(
            s.total_work for s in full.metrics.supersteps if "fixup" in s.label
        )
        d_fix = sum(
            s.total_work for s in delta.metrics.supersteps if "fixup" in s.label
        )
        assert d_fix <= f_fix

    def test_stage_width_reports_max_width(self, rng):
        # Regression: stage_width used to be the *final* stage's width,
        # which is 1 on selector-terminated problems — Table 1 reports
        # the (max) working width, so throughput was wildly misstated.
        width = 5
        mats = [
            rng.integers(-4, 5, size=(width, width)).astype(float) for _ in range(11)
        ]
        selector = np.full((1, width), NEG_INF)
        selector[0, 0] = 0.0
        mats.append(selector)
        init = rng.integers(-5, 6, size=width).astype(float)
        p = MatrixLTDPProblem(init, mats)
        assert p.stage_width(p.num_stages) == 1

        par = solve_parallel(p, num_procs=3)
        assert par.metrics.stage_width == width
        seq = solve_sequential(p, with_metrics=True)
        assert seq.metrics.stage_width == width

    def test_keep_stage_vectors(self, rng):
        p = random_matrix_problem(10, 4, rng, integer=True)
        par = solve_parallel(p, num_procs=3, keep_stage_vectors=True)
        assert par.stage_vectors is not None
        assert len(par.stage_vectors) == 11
        # Every stored vector must be parallel to the true one.
        from repro.semiring.vector import are_parallel

        seq = solve_sequential(p, keep_stage_vectors=True)
        for stored, true in zip(par.stage_vectors, seq.stage_vectors):
            assert are_parallel(stored, true)


class TestOptions:
    def test_invalid_num_procs(self):
        with pytest.raises(ValueError):
            ParallelOptions(num_procs=0)

    def test_invalid_nz_range(self):
        with pytest.raises(ValueError):
            ParallelOptions(nz_low=5.0, nz_high=5.0)

    def test_options_and_kwargs_mutually_exclusive(self, rng):
        p = random_matrix_problem(4, 3, rng)
        with pytest.raises(TypeError):
            solve_parallel(p, ParallelOptions(num_procs=2), num_procs=3)

    def test_same_seed_reproducible(self, rng):
        p = random_matrix_problem(20, 5, rng, integer=True)
        a = solve_parallel(p, num_procs=4, seed=9, exact_score=False)
        b = solve_parallel(p, num_procs=4, seed=9, exact_score=False)
        np.testing.assert_array_equal(a.final_vector, b.final_vector)
        assert a.metrics.total_work == b.metrics.total_work
