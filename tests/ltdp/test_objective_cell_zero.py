"""Regression: an objective optimum at **cell 0** is a real start cell.

The driver used to compute the traceback start as ``obj_cell or 0``,
conflating the sentinel "no stage objective" (``None``) with a
legitimate optimum at cell index 0 — the falsy value Python happily
swallows.  The guard is now an explicit ``is None`` check; these tests
pin a problem whose optimum provably sits at cell 0 and require both
backward implementations to trace from exactly that cell.
"""

import numpy as np
import pytest

from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.problem import LTDPProblem
from repro.ltdp.sequential import solve_sequential

WIDTH = 4


class CellZeroOptimum(LTDPProblem):
    """Identity stage transforms with a uniform per-stage shift.

    The initial vector is strictly descending, so cell 0 is the argmax
    of every stage vector; the shift profile (rise then decay) puts the
    best *stage* strictly inside the parallel partition.  The stage
    objective is shift-invariant (anchored on the last cell) and names
    cell 0 explicitly — a correct traceback must start there, and with
    diagonal transforms it must stay on cell 0 all the way back.
    """

    tracks_stage_objective = True

    def __init__(self, n=12, peak=3):
        self._n = n
        self._peak = peak

    def _shift(self, i):
        return 1.0 if i <= self._peak else -1.0

    @property
    def num_stages(self):
        return self._n

    def stage_width(self, i):
        return WIDTH

    def initial_vector(self):
        return np.array([3.0, 2.0, 1.0, 0.0])

    def apply_stage(self, i, v):
        return np.asarray(v, dtype=float) + self._shift(i)

    def apply_stage_with_pred(self, i, v):
        out = np.asarray(v, dtype=float) + self._shift(i)
        return out, np.arange(WIDTH, dtype=np.int64)

    def stage_objective(self, i, vector):
        return float(vector[0] - vector[-1]) + min(i, self._peak), 0

    def edge_weight(self, i, j, k):
        return self._shift(i) if j == k else float("-inf")


class TestObjectiveCellZero:
    def test_sequential_optimum_is_cell_zero_mid_stream(self):
        p = CellZeroOptimum()
        seq = solve_sequential(p)
        assert seq.objective_cell == 0
        assert 0 < seq.objective_stage < p.num_stages
        # Diagonal transforms: a cell-0 start means a cell-0 path.
        assert not seq.path[: seq.objective_stage + 1].any()

    @pytest.mark.parametrize("parallel_backward", [False, True])
    def test_parallel_traces_from_cell_zero(self, parallel_backward):
        p = CellZeroOptimum()
        seq = solve_sequential(p)
        par = solve_parallel(
            p,
            ParallelOptions(
                num_procs=4, parallel_backward=parallel_backward
            ),
        )
        assert par.objective_cell == 0
        assert par.objective_stage == seq.objective_stage
        assert par.score == seq.score
        np.testing.assert_array_equal(par.path, seq.path)
        assert not par.path[: par.objective_stage + 1].any()
