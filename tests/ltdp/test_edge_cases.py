"""Failure injection and boundary conditions for the LTDP solvers."""

import numpy as np
import pytest

from repro.exceptions import (
    ConvergenceError,
    ProblemDefinitionError,
    ZeroVectorError,
)
from repro.ltdp.matrix_problem import MatrixLTDPProblem, random_matrix_problem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.semiring.tropical import NEG_INF

from tests.ltdp.test_parallel import permutation_chain_problem


class TestDegenerateShapes:
    def test_single_stage_parallel(self, rng):
        p = random_matrix_problem(1, 4, rng, integer=True)
        par = solve_parallel(p, num_procs=8)
        seq = solve_sequential(p)
        np.testing.assert_array_equal(par.path, seq.path)

    def test_two_stages_two_procs(self, rng):
        p = random_matrix_problem(2, 3, rng, integer=True)
        par = solve_parallel(p, num_procs=2)
        seq = solve_sequential(p)
        np.testing.assert_array_equal(par.path, seq.path)

    def test_width_one_stages(self):
        # Width-1 vectors are trivially parallel: instant convergence.
        rng = np.random.default_rng(0)
        mats = [rng.integers(-3, 4, size=(1, 1)).astype(float) for _ in range(12)]
        p = MatrixLTDPProblem(np.array([1.0]), mats)
        par = solve_parallel(p, num_procs=4)
        seq = solve_sequential(p)
        assert par.score == seq.score
        assert par.metrics.forward_fixup_iterations == 1

    def test_score_of_all_neg_initial_entries(self, rng):
        init = np.full(3, NEG_INF)
        init[2] = 0.0  # pinned start, like Viterbi
        mats = [rng.integers(-3, 4, size=(3, 3)).astype(float) for _ in range(8)]
        p = MatrixLTDPProblem(init, mats)
        par = solve_parallel(p, num_procs=4)
        seq = solve_sequential(p)
        np.testing.assert_array_equal(par.path, seq.path)
        assert par.path[0] == 2  # path must start at the pinned state


class TestFailurePaths:
    def test_zero_vector_error_in_sequential(self):
        bad = MatrixLTDPProblem(
            np.zeros(2),
            [np.full((2, 2), NEG_INF), np.zeros((2, 2))],
            allow_trivial=True,
        )
        with pytest.raises(ZeroVectorError):
            solve_sequential(bad)

    def test_zero_vector_error_in_parallel(self):
        bad = MatrixLTDPProblem(
            np.zeros(2),
            [np.zeros((2, 2)), np.full((2, 2), NEG_INF), np.zeros((2, 2))],
            allow_trivial=True,
        )
        with pytest.raises(ZeroVectorError):
            solve_parallel(bad, num_procs=3)

    def test_convergence_error_when_iterations_capped(self, rng):
        p = permutation_chain_problem(20, 5, rng)
        with pytest.raises(ConvergenceError):
            solve_parallel(
                p, ParallelOptions(num_procs=5, max_fixup_iterations=2)
            )

    def test_generous_cap_still_succeeds(self, rng):
        p = permutation_chain_problem(20, 5, rng)
        sol = solve_parallel(
            p, ParallelOptions(num_procs=5, max_fixup_iterations=10)
        )
        seq = solve_sequential(p)
        np.testing.assert_array_equal(sol.path, seq.path)

    def test_problem_without_stages_rejected(self):
        from repro.ltdp.problem import LTDPProblem

        class Empty(LTDPProblem):
            @property
            def num_stages(self):
                return 0

            def stage_width(self, i):
                return 1

            def initial_vector(self):
                return np.zeros(1)

            def apply_stage(self, i, v):
                return v

        with pytest.raises(ProblemDefinitionError):
            solve_parallel(Empty(), num_procs=2)


class TestWorstCaseBehaviour:
    def test_devolution_costs_at_most_p_iterations(self, rng):
        for procs in (2, 4, 6):
            p = permutation_chain_problem(24, 4, rng)
            sol = solve_parallel(p, num_procs=procs)
            assert sol.metrics.forward_fixup_iterations <= procs

    def test_devolved_total_work_bounded(self, rng):
        """Even devolved, total work ≤ (P+1) × sequential forward work."""
        p = permutation_chain_problem(24, 4, rng)
        procs = 4
        sol = solve_parallel(p, num_procs=procs)
        forward_work = sum(
            s.total_work
            for s in sol.metrics.supersteps
            if s.label == "forward" or s.label.startswith("fixup")
        )
        assert forward_work <= (procs + 1) * p.total_cells()

    def test_backward_devolution_bounded(self, rng):
        p = permutation_chain_problem(24, 4, rng)
        sol = solve_parallel(p, num_procs=4)
        assert sol.metrics.backward_fixup_iterations <= 5


class TestNzEdgeCases:
    def test_narrow_integer_range(self, rng):
        p = random_matrix_problem(16, 4, rng, integer=True)
        sol = solve_parallel(
            p, ParallelOptions(num_procs=4, nz_low=0, nz_high=1)
        )
        seq = solve_sequential(p)
        np.testing.assert_array_equal(sol.path, seq.path)

    def test_float_nz_on_integer_problem_still_correct(self, rng):
        """Float nz slows convergence (ulp noise) but never corrupts results."""
        p = random_matrix_problem(16, 4, rng, integer=True)
        sol = solve_parallel(
            p, ParallelOptions(num_procs=4, nz_integer=False)
        )
        seq = solve_sequential(p)
        np.testing.assert_array_equal(sol.path, seq.path)
        assert sol.score == seq.score


class TestObjectiveEdgeCases:
    def test_objective_optimum_at_stage_zero(self):
        """A stage-objective problem whose best value is the initial stage."""
        import numpy as np

        from repro.ltdp.problem import LTDPProblem
        from repro.ltdp.parallel import solve_parallel
        from repro.ltdp.sequential import solve_sequential

        class Decaying(LTDPProblem):
            """Values only decay; the max-over-stages sits at stage 0."""

            tracks_stage_objective = True

            @property
            def num_stages(self):
                return 12

            def stage_width(self, i):
                return 3

            def initial_vector(self):
                return np.array([5.0, 1.0, 0.0])

            def apply_stage(self, i, v):
                v = np.asarray(v, dtype=float)
                return v - 1.0  # uniform decay: linear (A = -1 on diagonal)

            def apply_stage_with_pred(self, i, v):
                v = np.asarray(v, dtype=float)
                return v - 1.0, np.arange(3, dtype=np.int64)

            def stage_objective(self, i, vector):
                # Shift-invariant: best cell relative to the last cell.
                cell = int(np.argmax(vector))
                return float(vector[cell] - vector[-1]), cell

            def edge_weight(self, i, j, k):
                return -1.0 if j == k else float("-inf")

        p = Decaying()
        seq = solve_sequential(p)
        assert seq.objective_stage == 0
        assert seq.objective_cell == 0
        par = solve_parallel(p, num_procs=4)
        assert par.objective_stage == 0
        assert par.score == seq.score
        np.testing.assert_array_equal(seq.path, par.path)
