"""Tests for the rank-convergence measurement harness (§6.1, Table 1)."""

import numpy as np
import pytest

from repro.ltdp.convergence import (
    ConvergenceStudy,
    measure_convergence_steps,
    partial_product_rank_profile,
    steps_to_parallel,
)
from repro.ltdp.matrix_problem import MatrixLTDPProblem, random_matrix_problem
from repro.ltdp.sequential import forward_sequential
from repro.semiring.tropical import NEG_INF, tropical_outer

from tests.ltdp.test_parallel import permutation_chain_problem


def rank_one_chain_problem(num_stages, width, rng):
    """Every matrix rank 1 ⇒ convergence in exactly one step."""
    mats = []
    for _ in range(num_stages):
        c = rng.integers(-4, 5, size=width).astype(float)
        r = rng.integers(-4, 5, size=width).astype(float)
        mats.append(tropical_outer(c, r))
    init = rng.integers(-4, 5, size=width).astype(float)
    return MatrixLTDPProblem(init, mats)


class TestStepsToParallel:
    def test_rank_one_converges_in_one_step(self, rng):
        p = rank_one_chain_problem(10, 4, rng)
        _, _, ref, _ = forward_sequential(p, keep_stage_vectors=True)
        for start in (0, 3, 7):
            assert steps_to_parallel(p, ref, start, rng) == 1

    def test_permutation_chain_never_converges(self, rng):
        p = permutation_chain_problem(15, 4, rng)
        _, _, ref, _ = forward_sequential(p, keep_stage_vectors=True)
        assert steps_to_parallel(p, ref, 0, rng) is None

    def test_dense_random_converges(self, rng):
        p = random_matrix_problem(40, 5, rng, integer=True)
        _, _, ref, _ = forward_sequential(p, keep_stage_vectors=True)
        steps = steps_to_parallel(p, ref, 0, rng)
        assert steps is not None and 1 <= steps <= 40

    def test_max_steps_cap(self, rng):
        p = permutation_chain_problem(15, 4, rng)
        _, _, ref, _ = forward_sequential(p, keep_stage_vectors=True)
        assert steps_to_parallel(p, ref, 0, rng, max_steps=3) is None

    def test_start_stage_out_of_range(self, rng):
        p = random_matrix_problem(5, 3, rng)
        _, _, ref, _ = forward_sequential(p, keep_stage_vectors=True)
        with pytest.raises(ValueError):
            steps_to_parallel(p, ref, 5, rng)


class TestMeasureConvergence:
    def test_study_statistics(self, rng):
        p = random_matrix_problem(60, 5, rng, integer=True)
        study = measure_convergence_steps(p, num_trials=20, seed=1, name="rand")
        assert study.problem_name == "rand"
        assert study.num_trials == 20
        assert study.num_converged > 0
        assert study.min_steps <= study.median_steps <= study.max_steps

    def test_non_convergent_study_has_blank_stats(self, rng):
        p = permutation_chain_problem(20, 4, rng)
        study = measure_convergence_steps(p, num_trials=5, seed=1)
        assert study.num_converged == 0
        assert study.min_steps is None
        assert study.row()[2] == "-"

    def test_row_format(self):
        study = ConvergenceStudy("x", 8, [2, 5, None, 3])
        name, width, mn, med, mx, frac = study.row()
        assert (name, width) == ("x", 8)
        assert (mn, med, mx) == (2, 3, 5)
        assert frac == "3/4"

    def test_custom_start_stages(self, rng):
        p = random_matrix_problem(30, 4, rng, integer=True)
        study = measure_convergence_steps(p, start_stages=[0, 5, 10], seed=2)
        assert study.num_trials == 3

    def test_convergence_fraction(self):
        study = ConvergenceStudy("x", 4, [1, None])
        assert study.convergence_fraction == 0.5


class TestMedianSteps:
    def test_odd_sample_is_middle_element(self):
        study = ConvergenceStudy("x", 4, [9, 3, 5])
        assert study.median_steps == 5

    def test_even_sample_averages_the_middle_pair(self):
        # Regression: even-length samples used to return the *upper*
        # middle element (here 6) instead of the true median.
        study = ConvergenceStudy("x", 4, [2, 100, 4, 6])
        assert study.median_steps == 5
        assert isinstance(study.median_steps, int)

    def test_even_sample_half_integer_median(self):
        study = ConvergenceStudy("x", 4, [2, 3])
        assert study.median_steps == 2.5

    def test_ignores_non_converged_trials(self):
        study = ConvergenceStudy("x", 4, [None, 7, None, 1, 3])
        assert study.median_steps == 3

    def test_empty_sample_is_none(self):
        assert ConvergenceStudy("x", 4, [None, None]).median_steps is None


class TestRankProfile:
    def test_profile_reaches_one_on_random_chains(self, rng):
        p = random_matrix_problem(30, 4, rng, integer=True)
        profile = partial_product_rank_profile(p, 0, 30)
        assert profile[-1] == 1
        # Equation (3): once the bound hits 1 it stays there (exact at 1).
        first_one = profile.index(1)
        assert all(r == 1 for r in profile[first_one:])

    def test_profile_stays_full_on_permutations(self, rng):
        p = permutation_chain_problem(10, 4, rng)
        profile = partial_product_rank_profile(p, 0, 10)
        assert all(r == 4 for r in profile)

    def test_invalid_start(self, rng):
        p = random_matrix_problem(5, 3, rng)
        with pytest.raises(ValueError):
            partial_product_rank_profile(p, 9, 2)
