"""Property-based tests: the parallel algorithm equals the sequential one.

This is the paper's central correctness claim — hypothesis hammers it
with random instances, processor counts, seeds and sparsity patterns.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.semiring.vector import are_parallel


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_stages=st.integers(2, 30),
    width=st.integers(2, 7),
    num_procs=st.integers(2, 12),
)
def test_parallel_equals_sequential_dense(seed, num_stages, width, num_procs):
    rng = np.random.default_rng(seed)
    problem = random_matrix_problem(num_stages, width, rng, integer=True)
    seq = solve_sequential(problem)
    par = solve_parallel(problem, num_procs=num_procs, seed=seed ^ 0xBEEF)
    np.testing.assert_array_equal(seq.path, par.path)
    assert seq.score == par.score


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    density=st.floats(0.3, 0.9),
    num_procs=st.integers(2, 6),
)
def test_parallel_equals_sequential_sparse(seed, density, num_procs):
    rng = np.random.default_rng(seed)
    problem = random_matrix_problem(16, 5, rng, density=density, integer=True)
    seq = solve_sequential(problem)
    par = solve_parallel(problem, num_procs=num_procs, seed=seed)
    np.testing.assert_array_equal(seq.path, par.path)
    assert seq.score == par.score


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), num_procs=st.integers(2, 8))
def test_stored_vectors_always_parallel_to_truth(seed, num_procs):
    """After fix-up, every stored stage vector ∥ the true solution vector."""
    rng = np.random.default_rng(seed)
    problem = random_matrix_problem(20, 4, rng, integer=True)
    seq = solve_sequential(problem, keep_stage_vectors=True)
    par = solve_parallel(
        problem, num_procs=num_procs, seed=seed, keep_stage_vectors=True
    )
    for stored, true in zip(par.stage_vectors, seq.stage_vectors):
        assert are_parallel(stored, true)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_delta_mode_result_invariant(seed):
    """§4.7 changes accounting, never results."""
    rng = np.random.default_rng(seed)
    problem = random_matrix_problem(18, 5, rng, integer=True)
    a = solve_parallel(problem, num_procs=4, seed=seed, use_delta=False)
    b = solve_parallel(problem, num_procs=4, seed=seed, use_delta=True)
    np.testing.assert_array_equal(a.path, b.path)
    assert a.score == b.score
