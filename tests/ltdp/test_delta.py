"""Tests for delta encoding (paper §4.7)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.ltdp.delta import (
    changed_delta_count,
    delta_decode,
    delta_encode,
    delta_fixup_work,
)
from repro.semiring.tropical import NEG_INF


class TestEncodeDecode:
    def test_paper_example(self):
        # "[1, 2, 3, 4] and [3, 4, 5, 6] ... represented as [1,1,1,1] and
        # [3,1,1,1] are exactly the same except for the first entry."
        a1, d1 = delta_encode(np.array([1.0, 2, 3, 4]))
        a2, d2 = delta_encode(np.array([3.0, 4, 5, 6]))
        assert a1 == 1.0 and a2 == 3.0
        np.testing.assert_array_equal(d1, [1, 1, 1])
        np.testing.assert_array_equal(d2, [1, 1, 1])

    def test_roundtrip(self, rng):
        v = rng.integers(-10, 11, size=20).astype(float)
        anchor, deltas = delta_encode(v)
        np.testing.assert_allclose(delta_decode(anchor, deltas), v)

    def test_single_element(self):
        anchor, deltas = delta_encode(np.array([7.0]))
        assert anchor == 7.0 and deltas.size == 0
        np.testing.assert_array_equal(delta_decode(anchor, deltas), [7.0])

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            delta_encode(np.array([]))

    def test_neg_inf_marked_nan(self):
        _, deltas = delta_encode(np.array([1.0, NEG_INF, 2.0]))
        assert np.isnan(deltas).all()

    def test_decode_rejects_markers(self):
        with pytest.raises(ValueError):
            delta_decode(0.0, np.array([np.nan]))

    def test_decode_rejects_non_finite_anchor(self):
        """Regression: a -inf/nan anchor used to silently decode into an
        all--inf/nan vector that does not round-trip; the mask-keeping
        contract requires rejecting it."""
        with pytest.raises(ValueError, match="anchor.*mask"):
            delta_decode(NEG_INF, np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="anchor"):
            delta_decode(np.nan, np.array([1.0]))
        with pytest.raises(ValueError, match="anchor"):
            delta_decode(np.inf, np.array([], dtype=float))


class TestChangeCounting:
    def test_parallel_vectors_have_zero_changes(self, rng):
        v = rng.integers(-10, 11, size=15).astype(float)
        assert changed_delta_count(v, v + 42.0) == 0

    def test_single_local_edit(self, rng):
        v = rng.integers(-10, 11, size=15).astype(float)
        w = v.copy()
        w[7] += 3.0  # perturbs deltas at positions 6 and 7
        assert changed_delta_count(v, w) == 2

    def test_completely_different(self, rng):
        v = np.arange(10, dtype=float)
        w = np.arange(10, dtype=float)[::-1].copy()
        assert changed_delta_count(v, w) == 9

    def test_matching_neg_inf_positions_not_counted(self):
        v = np.array([1.0, NEG_INF, 2.0, 3.0])
        w = v + 0.0
        w[3] = 9.0
        assert changed_delta_count(v, w) == 1

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            changed_delta_count(np.zeros(3), np.zeros(4))

    def test_scalar_vectors_cost_anchor_only(self):
        assert delta_fixup_work(np.array([1.0]), np.array([5.0])) == 1.0

    def test_fixup_work_bounds(self, rng):
        v = rng.integers(-5, 6, size=30).astype(float)
        w = rng.integers(-5, 6, size=30).astype(float)
        work = delta_fixup_work(v, w)
        assert 1.0 <= work <= 30.0
