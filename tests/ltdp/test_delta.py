"""Tests for delta encoding (paper §4.7)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.ltdp.delta import (
    BoundaryDiff,
    changed_delta_count,
    delta_decode,
    delta_encode,
    delta_fixup_work,
    encode_boundary_diff,
)
from repro.semiring.tropical import NEG_INF


class TestEncodeDecode:
    def test_paper_example(self):
        # "[1, 2, 3, 4] and [3, 4, 5, 6] ... represented as [1,1,1,1] and
        # [3,1,1,1] are exactly the same except for the first entry."
        a1, d1 = delta_encode(np.array([1.0, 2, 3, 4]))
        a2, d2 = delta_encode(np.array([3.0, 4, 5, 6]))
        assert a1 == 1.0 and a2 == 3.0
        np.testing.assert_array_equal(d1, [1, 1, 1])
        np.testing.assert_array_equal(d2, [1, 1, 1])

    def test_roundtrip(self, rng):
        v = rng.integers(-10, 11, size=20).astype(float)
        anchor, deltas = delta_encode(v)
        np.testing.assert_allclose(delta_decode(anchor, deltas), v)

    def test_single_element(self):
        anchor, deltas = delta_encode(np.array([7.0]))
        assert anchor == 7.0 and deltas.size == 0
        np.testing.assert_array_equal(delta_decode(anchor, deltas), [7.0])

    def test_empty_rejected(self):
        with pytest.raises(DimensionError):
            delta_encode(np.array([]))

    def test_neg_inf_marked_nan(self):
        _, deltas = delta_encode(np.array([1.0, NEG_INF, 2.0]))
        assert np.isnan(deltas).all()

    def test_decode_rejects_markers(self):
        with pytest.raises(ValueError):
            delta_decode(0.0, np.array([np.nan]))

    def test_decode_rejects_non_finite_anchor(self):
        """Regression: a -inf/nan anchor used to silently decode into an
        all--inf/nan vector that does not round-trip; the mask-keeping
        contract requires rejecting it."""
        with pytest.raises(ValueError, match="anchor.*mask"):
            delta_decode(NEG_INF, np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="anchor"):
            delta_decode(np.nan, np.array([1.0]))
        with pytest.raises(ValueError, match="anchor"):
            delta_decode(np.inf, np.array([], dtype=float))


class TestChangeCounting:
    def test_parallel_vectors_have_zero_changes(self, rng):
        v = rng.integers(-10, 11, size=15).astype(float)
        assert changed_delta_count(v, v + 42.0) == 0

    def test_single_local_edit(self, rng):
        v = rng.integers(-10, 11, size=15).astype(float)
        w = v.copy()
        w[7] += 3.0  # perturbs deltas at positions 6 and 7
        assert changed_delta_count(v, w) == 2

    def test_completely_different(self, rng):
        v = np.arange(10, dtype=float)
        w = np.arange(10, dtype=float)[::-1].copy()
        assert changed_delta_count(v, w) == 9

    def test_matching_neg_inf_positions_not_counted(self):
        v = np.array([1.0, NEG_INF, 2.0, 3.0])
        w = v + 0.0
        w[3] = 9.0
        assert changed_delta_count(v, w) == 1

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            changed_delta_count(np.zeros(3), np.zeros(4))

    def test_scalar_vectors_cost_anchor_only(self):
        assert delta_fixup_work(np.array([1.0]), np.array([5.0])) == 1.0

    def test_fixup_work_bounds(self, rng):
        v = rng.integers(-5, 6, size=30).astype(float)
        w = rng.integers(-5, 6, size=30).astype(float)
        work = delta_fixup_work(v, w)
        assert 1.0 <= work <= 30.0


class TestNegInfBandEdges:
    """-inf band-edge behaviour of the §4.7 encoding (the cases the
    sparse fix-up kernels rely on)."""

    def test_one_sided_transition_is_nan_marker(self):
        # finite -> -inf and -inf -> finite adjacencies both collapse to
        # the canonical nan marker.
        _, d = delta_encode(np.array([2.0, NEG_INF]))
        assert np.isnan(d[0])
        _, d = delta_encode(np.array([NEG_INF, 2.0]))
        assert np.isnan(d[0])

    def test_mask_gain_and_loss_each_count_once(self):
        v = np.array([1.0, 2.0, 3.0, 4.0])
        w = v.copy()
        w[2] = NEG_INF  # deltas 1 and 2 become nan markers
        assert changed_delta_count(v, w) == 2
        # Symmetric: recovering the position is the same two changes.
        assert changed_delta_count(w, v) == 2

    def test_stable_mask_with_shift_counts_zero(self, rng):
        """A band-edge -inf that stays put while the finite part shifts
        uniformly is tropical parallelism: zero changed deltas."""
        v = rng.integers(-10, 11, size=20).astype(float)
        v[[0, 7, 19]] = NEG_INF
        w = v.copy()
        fin = np.isfinite(w)
        w[fin] += 5.0
        assert changed_delta_count(v, w) == 0

    def test_anchor_neg_inf_vectors_countable(self):
        """Vectors whose *anchor* is -inf still diff positionally (the
        planner never decodes them, only counts)."""
        v = np.array([NEG_INF, 1.0, 2.0])
        w = np.array([NEG_INF, 1.0, 5.0])
        assert changed_delta_count(v, w) == 1

    def test_fixup_work_never_below_anchor_cost(self, rng):
        for _ in range(20):
            n = int(rng.integers(2, 30))
            v = rng.integers(-5, 6, size=n).astype(float)
            w = rng.integers(-5, 6, size=n).astype(float)
            v[rng.random(n) < 0.2] = NEG_INF
            w[rng.random(n) < 0.2] = NEG_INF
            assert 1.0 <= delta_fixup_work(v, w) <= float(n)


class TestBoundaryDiff:
    def test_roundtrip_random(self, rng):
        for _ in range(50):
            n = int(rng.integers(1, 40))
            old = rng.integers(-50, 50, size=n).astype(float)
            new = rng.integers(-50, 50, size=n).astype(float)
            old[rng.random(n) < 0.2] = NEG_INF
            new[rng.random(n) < 0.2] = NEG_INF
            diff = encode_boundary_diff(old, new)
            np.testing.assert_array_equal(diff.apply(old), new)

    def test_parallel_vectors_ship_offset_only(self, rng):
        old = rng.integers(-10, 11, size=16).astype(float)
        new = old + 3.0
        diff = encode_boundary_diff(old, new)
        assert diff.idx.size == 0
        assert diff.num_bytes == 16  # offset + length, no overrides
        np.testing.assert_array_equal(diff.apply(old), new)

    def test_identity_is_bitwise_copy(self):
        old = np.array([-0.0, 1.0, NEG_INF])
        diff = encode_boundary_diff(old, old)
        out = diff.apply(old)
        np.testing.assert_array_equal(out, old)
        # -0.0 must survive the no-offset path (old + 0.0 would flip it).
        assert np.signbit(out[0])

    def test_mask_change_becomes_override(self):
        old = np.array([1.0, NEG_INF, 3.0])
        new = np.array([1.0, 7.0, 3.0])
        diff = encode_boundary_diff(old, new)
        np.testing.assert_array_equal(diff.idx, [1])
        np.testing.assert_array_equal(diff.apply(old), new)

    def test_neg_inf_anchor_falls_back_to_zero_offset(self):
        old = np.array([NEG_INF, 1.0, 2.0])
        new = np.array([NEG_INF, 4.0, 5.0])
        diff = encode_boundary_diff(old, new)
        assert diff.offset == 0.0
        np.testing.assert_array_equal(diff.apply(old), new)

    def test_apply_rejects_wrong_size(self):
        diff = encode_boundary_diff(np.zeros(4), np.ones(4))
        with pytest.raises(DimensionError):
            diff.apply(np.zeros(5))

    def test_encode_rejects_shape_mismatch(self):
        with pytest.raises(DimensionError):
            encode_boundary_diff(np.zeros(3), np.zeros(4))

    def test_num_bytes_vs_dense_crossover(self, rng):
        """The planner ships the diff only when smaller than 8*size;
        a fully-changed vector must therefore price itself out."""
        old = np.arange(8, dtype=float)
        new = old[::-1].copy()
        diff = encode_boundary_diff(old, new)
        assert diff.num_bytes >= 8 * old.size
