"""Tests for the §4.1 blocked matrix-product baseline."""

import numpy as np
import pytest

from repro.datagen.sequences import random_dna
from repro.ltdp.blocked import solve_blocked
from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential

from tests.ltdp.test_parallel import permutation_chain_problem


class TestBlockedSolver:
    @pytest.mark.parametrize("num_procs", [1, 2, 4, 7])
    def test_matches_sequential(self, num_procs):
        rng = np.random.default_rng(3)
        p = random_matrix_problem(20, 5, rng, integer=True)
        seq = solve_sequential(p)
        blk = solve_blocked(p, num_procs=num_procs)
        np.testing.assert_array_equal(seq.path, blk.path)
        assert seq.score == blk.score

    def test_works_without_convergence(self, rng):
        """No rank assumption: adversarial chains are handled exactly."""
        p = permutation_chain_problem(16, 5, rng)
        seq = solve_sequential(p)
        blk = solve_blocked(p, num_procs=4)
        np.testing.assert_array_equal(seq.path, blk.path)

    def test_objective_problems_supported(self, rng):
        from repro.problems.alignment.smith_waterman import SmithWatermanProblem

        q = random_dna(6, rng)
        db = random_dna(40, rng)
        sp = SmithWatermanProblem(q, db)
        seq = solve_sequential(sp)
        blk = solve_blocked(sp, num_procs=3)
        assert blk.score == seq.score
        assert blk.objective_stage == seq.objective_stage

    def test_matrix_matrix_overhead_recorded(self, rng):
        """The recorded work must show the Θ(width) overhead of §4.1."""
        width = 8
        p = random_matrix_problem(32, width, rng, integer=True)
        blk = solve_blocked(p, num_procs=4)
        par = solve_parallel(p, num_procs=4)
        # Blocked forward work ≈ stages·width³; LTDP ≈ stages·width²·(1+ε).
        blk_fwd = blk.metrics.supersteps[0].total_work
        par_fwd = par.metrics.total_work
        assert blk_fwd > 2.0 * par_fwd

    def test_superstep_labels(self, rng):
        p = random_matrix_problem(12, 4, rng, integer=True)
        blk = solve_blocked(p, num_procs=3)
        labels = [s.label for s in blk.metrics.supersteps]
        assert labels == ["partial-products", "prefix-scan", "re-sweep", "backward"]


class TestTreeScan:
    @pytest.mark.parametrize("num_procs", [1, 2, 4, 7, 8])
    def test_tree_scan_matches_sequential(self, num_procs):
        rng = np.random.default_rng(4)
        p = random_matrix_problem(20, 5, rng, integer=True)
        seq = solve_sequential(p)
        blk = solve_blocked(p, num_procs=num_procs, tree_scan=True)
        np.testing.assert_array_equal(seq.path, blk.path)
        assert seq.score == blk.score

    def test_tree_scan_matches_linear_scan(self, rng):
        p = random_matrix_problem(24, 4, rng, integer=True)
        linear = solve_blocked(p, num_procs=6, tree_scan=False)
        tree = solve_blocked(p, num_procs=6, tree_scan=True)
        np.testing.assert_array_equal(linear.path, tree.path)
        assert linear.score == tree.score

    def test_log_depth_rounds(self, rng):
        p = random_matrix_problem(32, 4, rng, integer=True)
        blk = solve_blocked(p, num_procs=8, tree_scan=True)
        rounds = [
            s for s in blk.metrics.supersteps if s.label.startswith("tree-scan[")
        ]
        assert len(rounds) == 3  # ceil(log2 8)

    def test_tree_scan_total_work_exceeds_linear(self, rng):
        """Log depth costs O(P log P) products vs O(P) applications."""
        p = random_matrix_problem(32, 6, rng, integer=True)
        linear = solve_blocked(p, num_procs=8, tree_scan=False)
        tree = solve_blocked(p, num_procs=8, tree_scan=True)
        lin_scan = sum(
            s.total_work
            for s in linear.metrics.supersteps
            if "scan" in s.label
        )
        tree_scan_work = sum(
            s.total_work
            for s in tree.metrics.supersteps
            if "tree-scan" in s.label
        )
        assert tree_scan_work > lin_scan

    @staticmethod
    def _scan_critical(solution, key):
        return sum(
            s.critical_work
            for s in solution.metrics.supersteps
            if key in s.label
        )

    def test_tree_scan_critical_path_shorter_only_when_p_exceeds_width(self, rng):
        """The §4.1 moral: the log-depth scan's rounds cost width³ each,
        so it only beats the linear scan's P·width² when P ≫ width —
        "requires linear number of processors to observe constant
        speed ups"."""
        # P >> width: tree scan wins.
        narrow = random_matrix_problem(64, 2, rng, integer=True)
        lin = solve_blocked(narrow, num_procs=32, tree_scan=False)
        tree = solve_blocked(narrow, num_procs=32, tree_scan=True)
        assert self._scan_critical(tree, "tree-scan") < self._scan_critical(
            lin, "scan"
        )
        # P < width: the linear scan's serial matvecs are cheaper than
        # even one round of matrix-matrix products.
        wide = random_matrix_problem(64, 16, rng, integer=True)
        lin_w = solve_blocked(wide, num_procs=8, tree_scan=False)
        tree_w = solve_blocked(wide, num_procs=8, tree_scan=True)
        assert self._scan_critical(tree_w, "tree-scan") > self._scan_critical(
            lin_w, "scan"
        )
