"""Tests for LTDP well-formedness validation."""

import numpy as np
import pytest

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.matrix_problem import MatrixLTDPProblem, random_matrix_problem
from repro.ltdp.problem import LTDPProblem
from repro.ltdp.validation import validate_problem
from repro.semiring.tropical import NEG_INF


class NonLinearProblem(LTDPProblem):
    """max(…, 0) without a zero anchor — the §5 SW pitfall."""

    @property
    def num_stages(self):
        return 4

    def stage_width(self, i):
        return 3

    def initial_vector(self):
        return np.zeros(3)

    def apply_stage(self, i, v):
        v = np.asarray(v, dtype=float)
        return np.maximum(np.roll(v, 1) + 1.0, 0.0)  # affine, not linear!


class TrivialRowProblem(LTDPProblem):
    @property
    def num_stages(self):
        return 2

    def stage_width(self, i):
        return 2

    def initial_vector(self):
        return np.zeros(2)

    def apply_stage(self, i, v):
        v = np.asarray(v, dtype=float)
        return np.array([np.max(v), NEG_INF])  # second row is trivial


class InconsistentPredProblem(MatrixLTDPProblem):
    def apply_stage_with_pred(self, i, v):
        vals, pred = super().apply_stage_with_pred(i, v)
        return vals, np.zeros_like(pred)  # bogus predecessors


class TestValidation:
    def test_valid_matrix_problem_passes(self, rng):
        p = random_matrix_problem(8, 4, rng, integer=True)
        report = validate_problem(p)
        assert report.ok
        assert bool(report)

    def test_nonlinear_kernel_detected(self):
        report = validate_problem(NonLinearProblem())
        assert not report.ok
        assert any("homogeneous" in f or "additive" in f for f in report.failures)

    def test_trivial_row_detected(self):
        report = validate_problem(TrivialRowProblem())
        assert not report.ok
        assert any("-inf" in f or "all--inf" in f or "non-zero" in f for f in report.failures)

    def test_inconsistent_predecessors_detected(self, rng):
        base = random_matrix_problem(6, 4, rng, integer=True)
        p = InconsistentPredProblem(
            base.initial_vector(), [base.stage_matrix(i) for i in range(1, 7)]
        )
        report = validate_problem(p)
        # Bogus predecessors only escape detection if index 0 happens to
        # achieve every maximum; with dense random matrices that is
        # essentially impossible across all sampled stages.
        assert not report.ok

    def test_raise_if_failed(self):
        report = validate_problem(TrivialRowProblem())
        with pytest.raises(ProblemDefinitionError):
            report.raise_if_failed()

    def test_stages_sampled_across_sequence(self, rng):
        p = random_matrix_problem(100, 3, rng, integer=True)
        report = validate_problem(p, num_stage_samples=4)
        assert report.stages_checked[0] == 1
        assert report.stages_checked[-1] == 100

    def test_deterministic(self, rng):
        p = random_matrix_problem(8, 4, rng, integer=True)
        a = validate_problem(p, seed=5)
        b = validate_problem(p, seed=5)
        assert a.failures == b.failures
