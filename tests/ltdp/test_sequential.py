"""Tests for the sequential LTDP algorithm (paper Fig 2)."""

import numpy as np
import pytest

from repro.exceptions import ZeroVectorError
from repro.ltdp.matrix_problem import MatrixLTDPProblem, random_matrix_problem
from repro.ltdp.sequential import (
    backward_sequential,
    forward_sequential,
    solve_sequential,
)
from repro.semiring.tropical import NEG_INF

from tests.conftest import brute_force_ltdp


class TestForward:
    def test_final_vector_matches_chain(self, rng):
        p = random_matrix_problem(6, 4, rng, integer=True)
        final, pred, vectors, best = forward_sequential(p, keep_stage_vectors=True)
        v = p.initial_vector()
        for i in range(1, 7):
            v = p.apply_stage(i, v)
        np.testing.assert_array_equal(final, v)
        assert best is None

    def test_stage_vectors_kept_when_requested(self, rng):
        p = random_matrix_problem(4, 3, rng)
        _, _, vectors, _ = forward_sequential(p, keep_stage_vectors=True)
        assert vectors is not None and len(vectors) == 5
        np.testing.assert_array_equal(vectors[0], p.initial_vector())

    def test_stage_vectors_omitted_by_default(self, rng):
        p = random_matrix_problem(4, 3, rng)
        _, _, vectors, _ = forward_sequential(p)
        assert vectors is None

    def test_pred_slot_zero_unused(self, rng):
        p = random_matrix_problem(4, 3, rng)
        _, pred, _, _ = forward_sequential(p)
        assert pred[0] is None
        assert all(pr is not None for pr in pred[1:])

    def test_zero_vector_raises(self):
        # A trivial row forces a -inf entry; an all-trivial matrix
        # collapses the whole vector.
        bad = np.full((2, 2), NEG_INF)
        p = MatrixLTDPProblem(np.zeros(2), [bad], allow_trivial=True)
        with pytest.raises(ZeroVectorError):
            forward_sequential(p)


class TestBackward:
    def test_path_indexes_predecessors(self, rng):
        p = random_matrix_problem(5, 4, rng, integer=True)
        _, pred, _, _ = forward_sequential(p)
        path = backward_sequential(pred)
        assert path[-1] == 0
        for i in range(5, 0, -1):
            assert path[i - 1] == pred[i][path[i]]

    def test_start_stage_limits_traversal(self, rng):
        p = random_matrix_problem(5, 4, rng, integer=True)
        _, pred, _, _ = forward_sequential(p)
        path = backward_sequential(pred, start_stage=3, start_cell=2)
        assert path[3] == 2
        assert path[4] == 0 and path[5] == 0  # untouched suffix


class TestSolve:
    def test_against_brute_force(self):
        for seed in range(10):
            rng = np.random.default_rng(seed)
            p = random_matrix_problem(5, 3, rng, integer=True)
            sol = solve_sequential(p)
            expected_score, expected_path = brute_force_ltdp(
                p.initial_vector(), [p.stage_matrix(i) for i in range(1, 6)]
            )
            assert sol.score == expected_score
            np.testing.assert_array_equal(sol.path, expected_path)

    def test_path_prices_to_score(self, rng):
        p = random_matrix_problem(6, 4, rng, integer=True)
        sol = solve_sequential(p)
        total = p.initial_vector()[sol.path[0]]
        for i in range(1, 7):
            total += p.stage_matrix(i)[sol.path[i], sol.path[i - 1]]
        assert total == sol.score

    def test_metrics_when_requested(self, rng):
        p = random_matrix_problem(4, 3, rng)
        sol = solve_sequential(p, with_metrics=True)
        assert sol.metrics is not None
        assert sol.metrics.num_procs == 1
        assert sol.metrics.critical_path_work == p.total_cells() + 4

    def test_no_metrics_by_default(self, rng):
        p = random_matrix_problem(4, 3, rng)
        assert solve_sequential(p).metrics is None

    def test_single_stage_problem(self, rng):
        p = random_matrix_problem(1, 3, rng, integer=True)
        sol = solve_sequential(p)
        assert sol.path.shape == (2,)
        assert sol.score == p.apply_stage(1, p.initial_vector())[0]
