"""Parameter-space robustness: unusual but legal problem configurations."""

import numpy as np
import pytest

from repro.datagen.packets import random_packet
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.reference import (
    lcs_length_reference,
    nw_score_reference,
    sw_score_reference,
)
from repro.problems.alignment.scoring import ScoringScheme
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.convolutional import ConvolutionalCode, ViterbiDecoderProblem


class TestAlignmentParameterSpace:
    def test_nw_with_substitution_matrix(self, rng):
        sub = rng.integers(-4, 5, size=(4, 4)).astype(float)
        sub = (sub + sub.T) / 2.0  # symmetric like real matrices
        scoring = ScoringScheme(gap_open=2.0, gap_extend=2.0, substitution=sub)
        a = rng.integers(0, 4, 25)
        b = rng.integers(0, 4, 25)
        p = NeedlemanWunschProblem(a, b, width=50, scoring=scoring)
        assert solve_sequential(p).score == nw_score_reference(a, b, scoring)

    def test_nw_zero_gap_penalty(self, rng):
        scoring = ScoringScheme(match=1.0, mismatch=-1.0, gap_open=0.0, gap_extend=0.0)
        a = rng.integers(0, 4, 15)
        b = rng.integers(0, 4, 15)
        p = NeedlemanWunschProblem(a, b, width=30, scoring=scoring)
        # Free gaps + unit matches: optimum = LCS length.
        assert solve_sequential(p).score == lcs_length_reference(a, b)

    def test_lcs_unary_alphabet(self, rng):
        a = np.zeros(12, dtype=np.int64)
        b = np.zeros(9, dtype=np.int64)
        p = LCSProblem(a, b, width=6)
        assert solve_sequential(p).score == 9.0

    def test_sw_huge_gap_penalties_forbid_gaps(self, rng):
        scoring = ScoringScheme(
            match=2.0, mismatch=-1.0, gap_open=100.0, gap_extend=100.0
        )
        q = rng.integers(0, 4, 10)
        db = rng.integers(0, 4, 50)
        p = SmithWatermanProblem(q, db, scoring=scoring)
        assert solve_sequential(p).score == sw_score_reference(q, db, scoring)

    def test_sw_single_symbol_query(self, rng):
        q = np.array([2], dtype=np.int64)
        db = rng.integers(0, 4, 30)
        p = SmithWatermanProblem(q, db)
        sol = solve_sequential(p)
        expected = p.scoring.match if np.any(db == 2) else 0.0
        assert sol.score == expected

    def test_asymmetric_band_long_vs_short(self, rng):
        a = rng.integers(0, 4, 60)
        b = rng.integers(0, 4, 20)  # |len difference| = 40
        p = LCSProblem(a, b, width=45)
        par = solve_parallel(p, num_procs=4)
        seq = solve_sequential(p)
        assert par.score == seq.score


class TestViterbiParameterSpace:
    def test_minimal_constraint_length(self, rng):
        code = ConvolutionalCode("K2", 2, (0o3, 0o1))
        payload = random_packet(40, rng)
        encoded = code.encode(payload)
        p = ViterbiDecoderProblem(code, encoded)
        decoded = p.extract(solve_sequential(p))
        np.testing.assert_array_equal(decoded, payload)

    def test_rate_one_code(self, rng):
        code = ConvolutionalCode("R1", 3, (0o7,))  # single generator
        payload = random_packet(30, rng)
        encoded = code.encode(payload)
        p = ViterbiDecoderProblem(code, encoded)
        decoded = p.extract(solve_sequential(p))
        np.testing.assert_array_equal(decoded, payload)

    def test_high_rate_redundancy(self, rng):
        code = ConvolutionalCode("R8", 4, (0o17, 0o13, 0o15, 0o11) * 2)
        payload = random_packet(24, rng)
        encoded = code.encode(payload)
        # Flip a hefty 10% of bits: rate-1/8 redundancy still recovers.
        from repro.datagen.packets import transmit_bsc

        noisy = transmit_bsc(encoded, rng, error_rate=0.10)
        p = ViterbiDecoderProblem(code, noisy)
        decoded = p.extract(solve_sequential(p))
        assert (decoded != payload).mean() < 0.1

    def test_single_payload_bit(self, rng):
        code = ConvolutionalCode("K3", 3, (0o7, 0o5))
        payload = np.array([1], dtype=np.uint8)
        p = ViterbiDecoderProblem(code, code.encode(payload))
        np.testing.assert_array_equal(p.extract(solve_sequential(p)), payload)

    def test_parallel_on_tiny_packet(self, rng):
        code = ConvolutionalCode("K3", 3, (0o7, 0o5))
        payload = random_packet(4, rng)
        p = ViterbiDecoderProblem(code, code.encode(payload))
        par = solve_parallel(p, num_procs=16)  # clamps to 6 stages
        seq = solve_sequential(p)
        np.testing.assert_array_equal(par.path, seq.path)
