"""Tests for Smith–Waterman: LTDP formulation, striped baseline, objective."""

import numpy as np
import pytest

from repro.datagen.sequences import random_dna
from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.alignment.reference import sw_score_reference, sw_table
from repro.problems.alignment.scoring import ScoringScheme
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.alignment.striped import build_query_profile, sw_score_striped

AFFINE = ScoringScheme(match=2.0, mismatch=-1.0, gap_open=3.0, gap_extend=1.0)
LINEAR = ScoringScheme(match=2.0, mismatch=-1.0, gap_open=2.0, gap_extend=2.0)


class TestStripedBaseline:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("scoring", [AFFINE, LINEAR], ids=["affine", "linear"])
    def test_matches_gotoh_reference(self, seed, scoring):
        rng = np.random.default_rng(seed)
        q = random_dna(int(rng.integers(3, 25)), rng)
        db = random_dna(int(rng.integers(3, 60)), rng)
        assert sw_score_striped(q, db, scoring, alphabet_size=4) == pytest.approx(
            sw_score_reference(q, db, scoring)
        )

    def test_empty_inputs_score_zero(self):
        assert sw_score_striped(np.array([], int), np.array([1])) == 0.0

    def test_query_profile_shape(self, rng):
        q = random_dna(10, rng)
        prof = build_query_profile(q, AFFINE, 4)
        assert prof.shape == (4, 10)
        assert prof[int(q[0]), 0] == AFFINE.match

    def test_lazy_f_loop_exercised(self):
        """A long vertical gap chain forces multiple lazy-F passes."""
        q = np.array([0, 1, 1, 1, 1, 1, 1, 0], dtype=int)
        db = np.array([0, 0], dtype=int)
        scoring = ScoringScheme(match=10.0, mismatch=-1.0, gap_open=1.0, gap_extend=1.0)
        assert sw_score_striped(q, db, scoring, alphabet_size=4) == pytest.approx(
            sw_score_reference(q, db, scoring)
        )


class TestSWProblem:
    @pytest.mark.parametrize("seed", range(6))
    def test_score_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        q = random_dna(15, rng)
        db = random_dna(80, rng)
        p = SmithWatermanProblem(q, db, scoring=AFFINE)
        sol = solve_sequential(p)
        assert sol.score == sw_score_reference(q, db, AFFINE)

    def test_objective_stage_is_argmax_column(self, rng):
        q = random_dna(12, rng)
        db = random_dna(60, rng)
        p = SmithWatermanProblem(q, db, scoring=AFFINE)
        sol = solve_sequential(p)
        H = sw_table(q, db, AFFINE)
        best_by_column = H.max(axis=0)
        assert best_by_column[sol.objective_stage] == sol.score
        # earliest column achieving the max (sequential tie-break)
        assert sol.objective_stage == int(np.argmax(best_by_column >= sol.score))

    def test_planted_hit_found(self, rng):
        q = random_dna(25, rng)
        db = random_dna(300, rng)
        db[150:175] = q
        p = SmithWatermanProblem(q, db)
        sol = solve_sequential(p)
        assert sol.score == 25 * p.scoring.match
        summary = p.extract(sol)
        assert summary.db_window == (151, 175)
        assert summary.query_window == (1, 25)

    def test_parallel_equals_sequential(self, rng):
        q = random_dna(20, rng)
        db = random_dna(400, rng)
        db[60:80] = q[:20]
        p = SmithWatermanProblem(q, db)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=8)
        assert seq.score == par.score
        assert seq.objective_stage == par.objective_stage
        assert seq.objective_cell == par.objective_cell
        np.testing.assert_array_equal(seq.path, par.path)

    def test_parallel_converges_despite_early_global_max(self, rng):
        """The reduction design: an early hit must not devolve the fix-up."""
        q = random_dna(16, rng)
        db = random_dna(800, rng)
        db[10:26] = q  # global max in processor 1's range
        p = SmithWatermanProblem(q, db)
        par = solve_parallel(p, num_procs=8)
        assert par.metrics.forward_fixup_iterations <= 2
        assert par.score == sw_score_reference(q, db, p.scoring)

    def test_no_hit_scores_zero_like(self, rng):
        q = np.zeros(5, dtype=int)
        db = np.ones(30, dtype=int)
        scoring = ScoringScheme(match=1.0, mismatch=-5.0, gap_open=5.0, gap_extend=5.0)
        p = SmithWatermanProblem(q, db, scoring=scoring)
        sol = solve_sequential(p)
        assert sol.score == 0.0

    def test_stage_objective_shift_invariant(self, rng):
        q = random_dna(10, rng)
        db = random_dna(20, rng)
        p = SmithWatermanProblem(q, db)
        v = rng.integers(-5, 6, size=p.stage_width(0)).astype(float)
        val1, cell1 = p.stage_objective(3, v)
        val2, cell2 = p.stage_objective(3, v + 17.0)
        assert val1 == val2 and cell1 == cell2

    def test_is_valid_ltdp(self, rng):
        p = SmithWatermanProblem(random_dna(8, rng), random_dna(30, rng))
        report = validate_problem(p)
        assert report.ok, report.failures

    def test_empty_inputs_rejected(self, rng):
        with pytest.raises(ProblemDefinitionError):
            SmithWatermanProblem(np.array([], int), random_dna(5, rng))

    def test_vector_layout(self, rng):
        p = SmithWatermanProblem(random_dna(7, rng), random_dna(9, rng))
        assert p.stage_width(0) == 15  # Z + 7 H + 7 E
        v0 = p.initial_vector()
        assert v0[0] == 0.0
        assert np.all(v0[1:8] == 0.0)
        assert np.all(np.isneginf(v0[8:]))

    def test_single_column_database(self, rng):
        q = random_dna(6, rng)
        db = q[:1].copy()
        p = SmithWatermanProblem(q, db)
        sol = solve_sequential(p)
        assert sol.score == sw_score_reference(q, db, p.scoring)
