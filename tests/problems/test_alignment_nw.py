"""Tests for Needleman–Wunsch global alignment as LTDP."""

import numpy as np
import pytest

from repro.datagen.sequences import homologous_pair, random_dna
from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.reference import (
    banded_nw_score_reference,
    nw_score_reference,
)
from repro.problems.alignment.scoring import ScoringScheme


class TestScoringScheme:
    def test_linear_detection(self):
        assert ScoringScheme.unit_linear().is_linear
        assert not ScoringScheme(gap_open=3, gap_extend=1).is_linear

    def test_negative_penalties_rejected(self):
        with pytest.raises(ValueError):
            ScoringScheme(gap_open=-1.0)

    def test_open_below_extend_rejected(self):
        with pytest.raises(ValueError):
            ScoringScheme(gap_open=1.0, gap_extend=2.0)

    def test_gap_cost(self):
        s = ScoringScheme(gap_open=3.0, gap_extend=1.0)
        assert s.gap_cost(0) == 0.0
        assert s.gap_cost(1) == 3.0
        assert s.gap_cost(4) == 6.0
        with pytest.raises(ValueError):
            s.gap_cost(-1)

    def test_substitution_matrix(self):
        sub = np.array([[2.0, -3.0], [-3.0, 2.0]])
        s = ScoringScheme(substitution=sub)
        assert s.score_pair(0, 1) == -3.0
        np.testing.assert_array_equal(
            s.score_row(0, np.array([0, 1, 0])), [2.0, -3.0, 2.0]
        )

    def test_substitution_matrix_must_be_square(self):
        with pytest.raises(ValueError):
            ScoringScheme(substitution=np.zeros((2, 3)))

    def test_encode_sequence(self):
        from repro.problems.alignment.scoring import encode_sequence

        np.testing.assert_array_equal(encode_sequence("ACGT"), [0, 1, 2, 3])
        with pytest.raises(ValueError):
            encode_sequence("ACGX")


class TestNWProblem:
    @pytest.mark.parametrize("seed", range(6))
    def test_banded_score_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        a = random_dna(35, rng)
        b = random_dna(35, rng)
        scoring = ScoringScheme.unit_linear(gap=1.0)
        p = NeedlemanWunschProblem(a, b, width=7, scoring=scoring)
        sol = solve_sequential(p)
        assert sol.score == banded_nw_score_reference(a, b, scoring, 7)

    def test_wide_band_equals_unbanded(self, rng):
        a = random_dna(25, rng)
        b = random_dna(25, rng)
        scoring = ScoringScheme.unit_linear(gap=2.0)
        p = NeedlemanWunschProblem(a, b, width=50, scoring=scoring)
        sol = solve_sequential(p)
        assert sol.score == nw_score_reference(a, b, scoring)

    def test_alignment_prices_to_score(self, rng):
        a, b = homologous_pair(60, rng, divergence=0.1)
        scoring = ScoringScheme.unit_linear(gap=1.0)
        p = NeedlemanWunschProblem(a, b, width=12, scoring=scoring)
        sol = solve_sequential(p)
        aln = p.extract(sol)
        assert aln.priced_score(scoring) == sol.score

    def test_alignment_consumes_both_sequences(self, rng):
        a, b = homologous_pair(40, rng, divergence=0.1)
        p = NeedlemanWunschProblem(a, b, width=10)
        aln = p.extract(solve_sequential(p))
        assert (aln.top != aln.GAP).sum() == len(a)
        assert (aln.bottom != aln.GAP).sum() == len(b)

    def test_identical_sequences_align_perfectly(self, rng):
        a = random_dna(20, rng)
        p = NeedlemanWunschProblem(a, a, width=5)
        sol = solve_sequential(p)
        assert sol.score == 20.0  # all matches at +1
        aln = p.extract(sol)
        assert len(aln) == 20
        np.testing.assert_array_equal(aln.top, aln.bottom)

    def test_parallel_equals_sequential(self, rng):
        a, b = homologous_pair(100, rng, divergence=0.08)
        p = NeedlemanWunschProblem(a, b, width=12)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=4)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score

    def test_affine_scoring_rejected(self, rng):
        a = random_dna(5, rng)
        with pytest.raises(ProblemDefinitionError):
            NeedlemanWunschProblem(
                a, a, width=3, scoring=ScoringScheme(gap_open=3, gap_extend=1)
            )

    def test_render_alignment(self, rng):
        a = random_dna(8, rng)
        p = NeedlemanWunschProblem(a, a, width=3)
        text = p.extract(solve_sequential(p)).render()
        top, bottom = text.splitlines()
        assert top == bottom and len(top) == 8

    def test_is_valid_ltdp(self, rng):
        p = NeedlemanWunschProblem(random_dna(18, rng), random_dna(18, rng), width=5)
        report = validate_problem(p)
        assert report.ok, report.failures

    def test_edge_weight_matches_probe(self, rng):
        from repro.ltdp.parallel import edge_weight_by_probe

        p = NeedlemanWunschProblem(random_dna(10, rng), random_dna(10, rng), width=3)
        for i in (1, 4, 10, 11):
            w_out = p.stage_width(i)
            w_in = p.stage_width(i - 1)
            for j in range(w_out):
                for k in range(w_in):
                    assert p.edge_weight(i, j, k) == edge_weight_by_probe(p, i, j, k)

    def test_base_case_column_zero(self):
        """s[i, 0] = -i·d must emerge from the linear recurrence alone."""
        a = np.zeros(4, dtype=int)
        b = np.ones(4, dtype=int)  # no matches at all
        scoring = ScoringScheme(match=1.0, mismatch=-10.0, gap_open=1.0, gap_extend=1.0)
        p = NeedlemanWunschProblem(a, b, width=8, scoring=scoring)
        sol = solve_sequential(p, keep_stage_vectors=True)
        # Row i, column 0 is vector entry 0 while the band starts at 0.
        for i in range(1, 5):
            assert sol.stage_vectors[i][0] == -float(i)
