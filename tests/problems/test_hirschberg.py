"""Tests for Hirschberg's linear-space global alignment."""

import numpy as np
import pytest

from repro.datagen.sequences import homologous_pair, random_dna
from repro.problems.alignment.hirschberg import (
    hirschberg_alignment,
    nw_score_last_row,
)
from repro.problems.alignment.reference import nw_score_reference, nw_table
from repro.problems.alignment.scoring import ScoringScheme

SCORING = ScoringScheme.unit_linear(gap=1.0)


class TestLastRow:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_table(self, seed):
        rng = np.random.default_rng(seed)
        a = random_dna(int(rng.integers(1, 15)), rng)
        b = random_dna(int(rng.integers(1, 15)), rng)
        row = nw_score_last_row(a, b, SCORING)
        table = nw_table(a, b, SCORING)
        np.testing.assert_allclose(row, table[len(a)])

    def test_empty_b(self, rng):
        a = random_dna(5, rng)
        row = nw_score_last_row(a, np.array([], dtype=np.int64), SCORING)
        np.testing.assert_allclose(row, [-5.0])

    def test_affine_rejected(self, rng):
        a = random_dna(3, rng)
        with pytest.raises(ValueError):
            nw_score_last_row(a, a, ScoringScheme(gap_open=3, gap_extend=1))


class TestHirschberg:
    @pytest.mark.parametrize("seed", range(10))
    def test_score_is_optimal(self, seed):
        rng = np.random.default_rng(seed)
        a = random_dna(int(rng.integers(1, 30)), rng)
        b = random_dna(int(rng.integers(1, 30)), rng)
        aln = hirschberg_alignment(a, b, SCORING)
        assert aln.score == nw_score_reference(a, b, SCORING)

    def test_alignment_consumes_sequences(self, rng):
        a, b = homologous_pair(60, rng, divergence=0.15)
        aln = hirschberg_alignment(a, b, SCORING)
        assert (aln.top != aln.GAP).sum() == len(a)
        assert (aln.bottom != aln.GAP).sum() == len(b)

    def test_priced_score_consistent(self, rng):
        a, b = homologous_pair(40, rng, divergence=0.2)
        aln = hirschberg_alignment(a, b, SCORING)
        assert aln.priced_score(SCORING) == aln.score

    def test_matches_banded_ltdp_with_full_band(self, rng):
        from repro.ltdp.sequential import solve_sequential
        from repro.problems.alignment.needleman_wunsch import (
            NeedlemanWunschProblem,
        )

        a, b = homologous_pair(50, rng, divergence=0.1)
        ltdp = solve_sequential(
            NeedlemanWunschProblem(a, b, width=100, scoring=SCORING)
        )
        aln = hirschberg_alignment(a, b, SCORING)
        assert aln.score == ltdp.score

    def test_identical_sequences(self, rng):
        a = random_dna(20, rng)
        aln = hirschberg_alignment(a, a, SCORING)
        assert aln.score == 20.0
        np.testing.assert_array_equal(aln.top, aln.bottom)

    def test_empty_against_nonempty(self, rng):
        b = random_dna(6, rng)
        aln = hirschberg_alignment(np.array([], dtype=np.int64), b, SCORING)
        assert aln.score == -6.0
        assert (aln.top == aln.GAP).all()

    def test_one_symbol_cases(self, rng):
        a = np.array([2], dtype=np.int64)
        b = random_dna(8, rng)
        aln = hirschberg_alignment(a, b, SCORING)
        assert aln.score == nw_score_reference(a, b, SCORING)

    def test_substitution_matrix_scoring(self, rng):
        sub = np.array(
            [
                [3.0, -2, -2, -2],
                [-2, 3.0, -2, -2],
                [-2, -2, 3.0, -2],
                [-2, -2, -2, 3.0],
            ]
        )
        scoring = ScoringScheme(gap_open=2.0, gap_extend=2.0, substitution=sub)
        a = random_dna(20, rng)
        b = random_dna(18, rng)
        aln = hirschberg_alignment(a, b, scoring)
        assert aln.score == nw_score_reference(a, b, scoring)
