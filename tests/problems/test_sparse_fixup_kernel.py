"""Bit-identity of the §4.7 sparse fix-up kernel (banded alignment).

``apply_stage_sparse`` repairs a cached stage evaluation against a new
input that differs in a few *delta* positions.  Its contract is brutal:
whenever it does not return ``None`` it must reproduce the dense
kernel's output vector AND predecessor vector bit-for-bit — the
parallel solver's equality-with-sequential guarantee rides on it.
These tests fuzz the kernel directly with band-edge ``-inf`` patterns,
anchor offsets, suffix shifts (changed deltas) and chained cached
states, and pin the documented fallback conditions.
"""

import numpy as np
import pytest

from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.scoring import ScoringScheme
from repro.semiring.tropical import NEG_INF


def make_problem(rng, cls):
    n = int(rng.integers(8, 60))
    m = int(rng.integers(8, 60))
    a = rng.integers(0, 4, size=n)
    b = rng.integers(0, 4, size=m)
    width = int(rng.integers(max(1, abs(n - m)), abs(n - m) + 30))
    return cls(a, b, width=width)


def perturb_in_delta_space(rng, base):
    """Anchor offset + a few suffix shifts = a few changed deltas."""
    v = base.copy()
    fin = np.isfinite(v)
    v[fin] += float(rng.integers(-5, 6))
    for _ in range(int(rng.integers(0, max(1, v.size // 3)))):
        k = int(rng.integers(0, v.size))
        sel = fin.copy()
        sel[:k] = False
        v[sel] += float(rng.integers(-4, 5))
    return v


@pytest.mark.parametrize("cls", [LCSProblem, NeedlemanWunschProblem])
def test_sparse_kernel_bit_identical_to_dense(cls):
    rng = np.random.default_rng(17)
    ran = 0
    for _ in range(80):
        prob = make_problem(rng, cls)
        assert prob.supports_sparse_fixup  # integral default scoring
        i = int(rng.integers(1, prob.num_stages + 1))
        w_in = prob.stage_width(i - 1)
        base = rng.integers(-20, 20, size=w_in).astype(float)
        ninf = rng.random(w_in) < 0.15
        if ninf.all():
            ninf[int(rng.integers(0, w_in))] = False
        base[ninf] = NEG_INF
        _, _, state = prob.apply_stage_with_state(i, base)
        v = perturb_in_delta_space(rng, base)
        res = prob.apply_stage_sparse(i, v, state, crossover=1.1)
        dense_out, dense_pred = prob.apply_stage_with_pred(i, v)
        if res is None:
            continue  # legal fallback (e.g. -inf mask interactions)
        ran += 1
        out, pred, new_state, cells = res
        np.testing.assert_array_equal(out, dense_out)
        np.testing.assert_array_equal(pred, dense_pred)
        assert 1.0 <= cells <= prob.stage_cost(i)
        # The captured state must chain: repair the *next* stage from it.
        if i < prob.num_stages and not isinstance(new_state, str):
            _, _, st1 = prob.apply_stage_with_state(i + 1, out)
            v2 = perturb_in_delta_space(rng, out)
            res2 = prob.apply_stage_sparse(i + 1, v2, st1, crossover=1.1)
            d2out, d2pred = prob.apply_stage_with_pred(i + 1, v2)
            if res2 is not None:
                np.testing.assert_array_equal(res2[0], d2out)
                np.testing.assert_array_equal(res2[1], d2pred)
    assert ran >= 40  # the sparse path must actually be exercised


def test_parallel_input_costs_one_cell():
    rng = np.random.default_rng(3)
    prob = make_problem(rng, LCSProblem)
    i = 3
    base = rng.integers(0, 10, size=prob.stage_width(i - 1)).astype(float)
    out0, pred0, state = prob.apply_stage_with_state(i, base)
    out, pred, _, cells = prob.apply_stage_sparse(i, base + 7.0, state, 0.25)
    assert cells == 1.0
    np.testing.assert_array_equal(out, out0 + 7.0)
    np.testing.assert_array_equal(pred, pred0)


def test_crossover_triggers_dense_fallback():
    rng = np.random.default_rng(5)
    prob = make_problem(rng, NeedlemanWunschProblem)
    i = 2
    w_in = prob.stage_width(i - 1)
    base = rng.integers(0, 10, size=w_in).astype(float)
    _, _, state = prob.apply_stage_with_state(i, base)
    scrambled = rng.integers(0, 10, size=w_in).astype(float)  # all deltas move
    assert prob.apply_stage_sparse(i, scrambled, state, crossover=0.1) is None


def test_non_integral_values_fall_back():
    """The kernel refuses non-integral inputs: shifted recomputation is
    only bit-exact when every float64 op is on integers."""
    rng = np.random.default_rng(9)
    prob = make_problem(rng, LCSProblem)
    i = 2
    base = rng.integers(0, 10, size=prob.stage_width(i - 1)).astype(float)
    _, _, state = prob.apply_stage_with_state(i, base)
    v = base + 0.5
    v[0] += 1.0
    assert prob.apply_stage_sparse(i, v, state, crossover=1.0) is None


def test_mask_change_falls_back():
    rng = np.random.default_rng(11)
    prob = make_problem(rng, LCSProblem)
    i = 2
    base = rng.integers(0, 10, size=prob.stage_width(i - 1)).astype(float)
    _, _, state = prob.apply_stage_with_state(i, base)
    v = base.copy()
    v[v.size // 2] = NEG_INF  # a position joined the band mask
    assert prob.apply_stage_sparse(i, v, state, crossover=1.0) is None


def test_missing_state_falls_back():
    rng = np.random.default_rng(13)
    prob = make_problem(rng, NeedlemanWunschProblem)
    base = rng.integers(0, 10, size=prob.stage_width(0)).astype(float)
    assert prob.apply_stage_sparse(1, base, None, crossover=1.0) is None


def test_non_integral_scoring_disables_sparse_support():
    rng = np.random.default_rng(15)
    a = rng.integers(0, 4, size=20)
    b = rng.integers(0, 4, size=20)
    prob = NeedlemanWunschProblem(
        a, b, width=8, scoring=ScoringScheme(match=1.5, mismatch=-0.25)
    )
    assert not prob.supports_sparse_fixup
