"""Tests for seam carving as LTDP."""

import numpy as np
import pytest

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.seam import (
    SeamCarvingProblem,
    gradient_energy,
    seam_energy_reference,
)


class TestEnergy:
    def test_gradient_energy_flat_image_is_zero(self):
        assert gradient_energy(np.full((5, 5), 3.0)).sum() == 0.0

    def test_gradient_energy_detects_edges(self):
        img = np.zeros((4, 6))
        img[:, 3:] = 1.0
        e = gradient_energy(img)
        assert e[:, 3].sum() > 0
        assert e[:, 1].sum() == 0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            gradient_energy(np.zeros(5))


class TestSeamProblem:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_dp(self, seed):
        rng = np.random.default_rng(seed)
        E = rng.random((20, 12))
        p = SeamCarvingProblem(E)
        sol = solve_sequential(p)
        assert -sol.score == pytest.approx(seam_energy_reference(E))

    def test_seam_is_connected(self, rng):
        E = rng.random((30, 15))
        p = SeamCarvingProblem(E)
        seam = p.extract(solve_sequential(p))
        assert seam.shape == (30,)
        assert np.all(np.abs(np.diff(seam)) <= 1)

    def test_seam_prices_to_score(self, rng):
        E = rng.random((25, 10))
        p = SeamCarvingProblem(E)
        sol = solve_sequential(p)
        seam = p.extract(sol)
        total = sum(E[i, seam[i]] for i in range(25))
        assert total == pytest.approx(-sol.score)

    def test_avoids_high_energy_column(self, rng):
        E = rng.random((20, 9)) * 0.1
        E[:, 4] = 100.0  # wall
        seam = SeamCarvingProblem(E).extract(
            solve_sequential(SeamCarvingProblem(E))
        )
        assert not np.any(seam == 4)

    def test_parallel_equals_sequential(self, rng):
        E = rng.random((100, 16))
        p = SeamCarvingProblem(E)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=5)
        assert par.score == pytest.approx(seq.score, abs=1e-9)
        np.testing.assert_array_equal(seq.path, par.path)

    def test_single_row_image(self, rng):
        E = rng.random((1, 6))
        sol = solve_sequential(SeamCarvingProblem(E))
        assert -sol.score == pytest.approx(E.min())

    def test_single_column_image(self, rng):
        E = rng.random((5, 1))
        sol = solve_sequential(SeamCarvingProblem(E))
        assert -sol.score == pytest.approx(E.sum())

    def test_nonfinite_energy_rejected(self):
        E = np.ones((3, 3))
        E[1, 1] = np.inf
        with pytest.raises(ProblemDefinitionError):
            SeamCarvingProblem(E)

    def test_is_valid_ltdp(self, rng):
        p = SeamCarvingProblem(rng.random((10, 8)))
        report = validate_problem(p, tol=1e-9)
        assert report.ok, report.failures
