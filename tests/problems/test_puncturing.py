"""Tests for punctured (rate-matched) Viterbi decoding."""

import numpy as np
import pytest

from repro.datagen.packets import random_packet, transmit_bsc
from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.convolutional import (
    VOYAGER,
    PuncturedViterbiDecoderProblem,
    ViterbiDecoderProblem,
    puncture,
)

#: Standard rate-2/3 pattern for a rate-1/2 mother code: per two input
#: bits (4 output bits) transmit 3.
RATE_23 = np.array([True, True, True, False])


class TestPunctureUtility:
    def test_drops_marked_positions(self):
        enc = np.array([1, 0, 1, 1, 0, 1, 0, 0], dtype=np.uint8)
        out = puncture(enc, RATE_23)
        np.testing.assert_array_equal(out, [1, 0, 1, 0, 1, 0])

    def test_pattern_tiles_over_stream(self):
        enc = np.arange(10, dtype=np.uint8) % 2
        out = puncture(enc, np.array([True, False]))
        assert out.size == 5

    def test_all_false_pattern_rejected(self):
        with pytest.raises(ValueError):
            puncture(np.zeros(4, dtype=np.uint8), np.array([False, False]))


class TestPuncturedDecoding:
    def roundtrip(self, rng, error_rate=0.0, payload_bits=120):
        payload = random_packet(payload_bits, rng)
        encoded = VOYAGER.encode(payload)
        tx = puncture(encoded, RATE_23)
        rx = transmit_bsc(tx, rng, error_rate=error_rate) if error_rate else tx
        problem = PuncturedViterbiDecoderProblem(VOYAGER, rx, RATE_23)
        return payload, problem

    def test_noiseless_decode_recovers_payload(self, rng):
        payload, problem = self.roundtrip(rng)
        decoded = problem.extract(solve_sequential(problem))
        np.testing.assert_array_equal(decoded, payload)

    def test_noisy_decode_mostly_correct(self, rng):
        payload, problem = self.roundtrip(rng, error_rate=0.01)
        decoded = problem.extract(solve_sequential(problem))
        assert (decoded != payload).mean() < 0.05

    def test_punctured_worse_than_unpunctured_at_high_noise(self):
        """Rate matching trades redundancy for throughput."""
        rng = np.random.default_rng(3)
        punct_errors = full_errors = total = 0
        for _ in range(4):
            payload = random_packet(200, rng)
            encoded = VOYAGER.encode(payload)
            noisy_full = transmit_bsc(encoded, rng, error_rate=0.08)
            full_problem = ViterbiDecoderProblem(VOYAGER, noisy_full)
            tx = puncture(encoded, RATE_23)
            noisy_tx = transmit_bsc(tx, rng, error_rate=0.08)
            punct_problem = PuncturedViterbiDecoderProblem(VOYAGER, noisy_tx, RATE_23)
            full_dec = full_problem.extract(solve_sequential(full_problem))
            punct_dec = punct_problem.extract(solve_sequential(punct_problem))
            full_errors += int((full_dec != payload).sum())
            punct_errors += int((punct_dec != payload).sum())
            total += payload.size
        assert punct_errors >= full_errors

    def test_parallel_equals_sequential(self, rng):
        payload, problem = self.roundtrip(rng, error_rate=0.02)
        seq = solve_sequential(problem)
        par = solve_parallel(problem, num_procs=4)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score

    def test_is_valid_ltdp(self, rng):
        _, problem = self.roundtrip(rng, error_rate=0.02)
        assert validate_problem(problem, num_stage_samples=3).ok

    def test_incompatible_lengths_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            PuncturedViterbiDecoderProblem(
                VOYAGER, np.zeros(5, dtype=np.uint8), RATE_23
            )

    def test_bad_pattern_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            PuncturedViterbiDecoderProblem(
                VOYAGER, np.zeros(4, dtype=np.uint8), np.zeros(2, dtype=bool)
            )

    def test_edge_weight_matches_probe(self, rng):
        from repro.ltdp.parallel import edge_weight_by_probe

        _, problem = self.roundtrip(rng, error_rate=0.02, payload_bits=24)
        for j in (0, 21, 63):
            for k in (0, 42):
                assert problem.edge_weight(3, j, k) == edge_weight_by_probe(
                    problem, 3, j, k
                )
