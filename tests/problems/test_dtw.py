"""Tests for dynamic time warping as LTDP."""

import numpy as np
import pytest

from repro.datagen.sequences import random_series
from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.dtw import DTWProblem, dtw_distance_reference


class TestDTW:
    @pytest.mark.parametrize("seed", range(5))
    def test_wide_band_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        x = random_series(30, rng)
        y = random_series(30, rng)
        p = DTWProblem(x, y, width=60)
        sol = solve_sequential(p)
        assert -sol.score == pytest.approx(dtw_distance_reference(x, y))

    def test_identical_series_distance_zero(self, rng):
        x = random_series(25, rng)
        p = DTWProblem(x, x, width=5)
        assert -solve_sequential(p).score == pytest.approx(0.0)

    def test_band_restricts_distance(self, rng):
        """A narrow band can only increase (never decrease) the distance."""
        x = random_series(40, rng)
        y = random_series(40, rng)
        wide = -solve_sequential(DTWProblem(x, y, width=80)).score
        narrow = -solve_sequential(DTWProblem(x, y, width=2)).score
        assert narrow >= wide - 1e-12

    def test_parallel_equals_sequential(self, rng):
        x = random_series(120, rng)
        y = random_series(120, rng)
        p = DTWProblem(x, y, width=15)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=4)
        assert par.score == pytest.approx(seq.score, abs=1e-9)
        np.testing.assert_array_equal(seq.path, par.path)

    def test_warping_path_is_monotone(self, rng):
        x = random_series(40, rng)
        y = random_series(40, rng)
        p = DTWProblem(x, y, width=10)
        path = p.extract(solve_sequential(p))
        rows = [r for r, _ in path]
        cols = [c for _, c in path]
        assert rows == list(range(1, 41))
        assert all(c2 >= c1 for c1, c2 in zip(cols, cols[1:]))
        assert cols[-1] == 40  # ends at the last column

    def test_shifted_series_needs_warping(self, rng):
        base = np.sin(np.linspace(0, 6 * np.pi, 50))
        shifted = np.sin(np.linspace(0, 6 * np.pi, 50) + 0.4)
        d_dtw = -solve_sequential(DTWProblem(base, shifted, width=10)).score
        d_euclid = float(np.abs(base - shifted).sum())
        assert d_dtw < d_euclid  # warping absorbs the phase shift

    def test_band_validation(self, rng):
        with pytest.raises(ProblemDefinitionError):
            DTWProblem(random_series(30, rng), random_series(10, rng), width=3)

    def test_empty_rejected(self, rng):
        with pytest.raises(ProblemDefinitionError):
            DTWProblem(np.array([]), random_series(5, rng), width=3)

    def test_is_valid_ltdp(self, rng):
        p = DTWProblem(random_series(15, rng), random_series(15, rng), width=4)
        report = validate_problem(p, tol=1e-9)
        assert report.ok, report.failures

    def test_edge_weight_matches_probe(self, rng):
        from repro.ltdp.parallel import edge_weight_by_probe

        p = DTWProblem(random_series(8, rng), random_series(8, rng), width=3)
        for i in (1, 4, 8):
            for j in range(p.stage_width(i)):
                for k in range(p.stage_width(i - 1)):
                    assert p.edge_weight(i, j, k) == pytest.approx(
                        edge_weight_by_probe(p, i, j, k), abs=1e-12
                    )
