"""Adversarial-alphabet regression tests for the bit-parallel LCS.

The mask table in ``bitparallel.py`` is a hash map keyed by symbol.
Before symbols were canonicalized, ``.tolist()`` on mixed dtypes
produced values that hash or compare differently from their integer
twins — ``np.float64`` NaN payloads, ``2.0`` vs ``2`` in object arrays
— silently turning matches into mask misses and *under-reporting* the
LCS length.  The fix canonicalizes bool/int/integral-float inputs to
Python ints and rejects everything else loudly; these tests pin both
halves, then fuzz the whole kernel against the quadratic reference
table (including empty/singleton sequences and band edges via the
banded reference).
"""

import numpy as np
import pytest

from repro.problems.alignment.bitparallel import (
    build_match_masks,
    canonical_symbols,
    lcs_length_bitparallel,
    lcs_row_lengths_bitparallel,
)
from repro.problems.alignment.reference import (
    banded_lcs_length_reference,
    lcs_length_reference,
    lcs_table,
)


class TestCanonicalSymbols:
    def test_integer_dtypes_pass_through(self):
        for dtype in (np.int64, np.int32, np.int8, np.uint8, np.uint64):
            assert canonical_symbols(np.array([3, 1, 2], dtype=dtype)) == [3, 1, 2]

    def test_bool_maps_to_binary_alphabet(self):
        assert canonical_symbols(np.array([True, False, True])) == [1, 0, 1]

    def test_integral_floats_canonicalize_to_ints(self):
        out = canonical_symbols(np.array([2.0, 0.0, 5.0]))
        assert out == [2, 0, 5]
        assert all(type(x) is int for x in out)

    def test_nan_rejected_loudly(self):
        # Pre-fix: NaN went into the mask table as a float key that
        # compares unequal even to itself — every occurrence silently
        # became a mismatch.
        with pytest.raises(ValueError, match="non-integral float"):
            canonical_symbols(np.array([1.0, np.nan, 2.0]))

    def test_fractional_floats_rejected(self):
        with pytest.raises(ValueError, match="non-integral float"):
            canonical_symbols(np.array([1.0, 2.5]))

    def test_infinity_rejected(self):
        with pytest.raises(ValueError, match="non-integral float"):
            canonical_symbols(np.array([1.0, np.inf]))

    def test_object_arrays_rejected(self):
        with pytest.raises(TypeError, match="dtype"):
            canonical_symbols(np.array([1, "a"], dtype=object))

    def test_string_arrays_rejected(self):
        with pytest.raises(TypeError, match="dtype"):
            canonical_symbols(np.array(["A", "C", "G"]))

    def test_negative_and_large_symbols_exact(self):
        vals = [-5, 2**40, -(2**33), 0]
        assert canonical_symbols(np.array(vals, dtype=np.int64)) == vals

    def test_error_names_the_offending_sequence(self):
        with pytest.raises(ValueError, match="query sequence"):
            lcs_length_bitparallel(np.array([1, 2]), np.array([0.5]))
        with pytest.raises(ValueError, match="mask sequence"):
            lcs_length_bitparallel(np.array([0.5]), np.array([1, 2]))


class TestDtypeCrossIdentity:
    """Mixed dtypes naming the same symbols must build the same masks."""

    def test_float_and_int_twins_share_masks(self):
        ints = np.array([2, 0, 1, 2, 3])
        floats = ints.astype(np.float64)
        assert build_match_masks(ints) == build_match_masks(floats)

    def test_mixed_dtype_pair_matches_reference(self):
        rng = np.random.default_rng(9)
        a = rng.integers(0, 4, 50)
        b = rng.integers(0, 4, 45)
        expected = lcs_length_reference(a, b)
        assert lcs_length_bitparallel(a.astype(np.float64), b) == expected
        assert lcs_length_bitparallel(a, b.astype(np.float64)) == expected
        assert lcs_length_bitparallel(a.astype(np.int8), b.astype(np.uint8)) == expected

    def test_bool_pair_matches_reference(self):
        rng = np.random.default_rng(10)
        a = rng.integers(0, 2, 40).astype(bool)
        b = rng.integers(0, 2, 35).astype(bool)
        assert lcs_length_bitparallel(a, b) == lcs_length_reference(
            a.astype(int), b.astype(int)
        )


def _random_sequence(rng, length, alphabet, dtype):
    seq = rng.integers(0, alphabet, length)
    if dtype == "float":
        return seq.astype(np.float64)
    if dtype == "bool":
        return (seq % 2).astype(bool)
    return seq.astype(dtype)


class TestFuzzAgainstReference:
    """400 random trials vs the quadratic DP table.

    Lengths are drawn from a distribution that includes 0 and 1 (the
    historical off-by-one traps), alphabets from degenerate (unary —
    everything matches) to wide (mostly mismatches), and dtypes from
    the full canonicalized set.
    """

    TRIALS = 400

    def test_fuzz_row_lengths(self):
        rng = np.random.default_rng(20140222)
        lengths = [0, 1, 2] + [int(x) for x in rng.integers(3, 40, 64)]
        dtypes = [np.int64, np.int32, np.uint8, "float", "bool"]
        for trial in range(self.TRIALS):
            n = lengths[int(rng.integers(0, len(lengths)))]
            m = lengths[int(rng.integers(0, len(lengths)))]
            alphabet = int(rng.choice([1, 2, 4, 16]))
            dt_a = dtypes[trial % len(dtypes)]
            dt_b = dtypes[(trial // len(dtypes)) % len(dtypes)]
            a = _random_sequence(rng, n, alphabet, dt_a)
            b = _random_sequence(rng, m, alphabet, dt_b)
            ref_a = a.astype(np.int64)
            ref_b = b.astype(np.int64)
            table = lcs_table(ref_a, ref_b)
            assert lcs_length_bitparallel(a, b) == int(table[n, m]), (
                f"trial {trial}: n={n} m={m} alphabet={alphabet} "
                f"dtypes=({dt_a}, {dt_b})"
            )
            rows = lcs_row_lengths_bitparallel(a, b)
            np.testing.assert_array_equal(rows, table[n, :]), trial

    def test_fuzz_band_edges(self):
        """The banded solver consumes the same sequences; widths at and
        below the length gap are the edge the kernel gate must respect
        (reference truncates, bit-parallel is full-band)."""
        rng = np.random.default_rng(77)
        for _ in range(60):
            n = int(rng.integers(1, 30))
            m = int(rng.integers(1, 30))
            a = rng.integers(0, 4, n)
            b = rng.integers(0, 4, m)
            full = lcs_length_bitparallel(a, b)
            assert full == lcs_length_reference(a, b)
            # A band at least max(n, m) wide is unconstrained: the
            # banded reference must agree with the bit-parallel length.
            width = max(n, m)
            assert banded_lcs_length_reference(a, b, width) == full

    def test_empty_and_singleton_cases(self):
        empty = np.array([], dtype=np.int64)
        one = np.array([3])
        assert lcs_length_bitparallel(empty, empty) == 0
        assert lcs_length_bitparallel(empty, one) == 0
        assert lcs_length_bitparallel(one, empty) == 0
        assert lcs_length_bitparallel(one, one) == 1
        assert lcs_length_bitparallel(one, np.array([4])) == 0
        np.testing.assert_array_equal(
            lcs_row_lengths_bitparallel(one, np.array([4, 3, 3])),
            np.array([0, 0, 1, 1]),
        )
