"""Tests for LCS: LTDP formulation, bit-parallel baseline, references."""

import numpy as np
import pytest

from repro.datagen.sequences import homologous_pair, random_dna
from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.alignment.bitparallel import (
    lcs_length_bitparallel,
    lcs_row_lengths_bitparallel,
)
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.reference import (
    banded_lcs_length_reference,
    lcs_backtrack,
    lcs_length_reference,
    lcs_table,
)


def is_common_subsequence(sub, a, b) -> bool:
    def is_subseq(sub, seq):
        it = iter(seq)
        return all(any(s == x for x in it) for s in sub)

    return is_subseq(list(sub), list(a)) and is_subseq(list(sub), list(b))


class TestBitParallel:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        a = random_dna(int(rng.integers(1, 40)), rng)
        b = random_dna(int(rng.integers(1, 40)), rng)
        assert lcs_length_bitparallel(a, b) == lcs_length_reference(a, b)

    def test_identical_strings(self, rng):
        a = random_dna(30, rng)
        assert lcs_length_bitparallel(a, a) == 30

    def test_disjoint_alphabets(self):
        assert lcs_length_bitparallel(np.zeros(5, int), np.ones(5, int)) == 0

    def test_empty(self):
        assert lcs_length_bitparallel(np.array([]), np.array([1, 2])) == 0

    def test_row_sweep_matches_table(self, rng):
        a = random_dna(20, rng)
        b = random_dna(25, rng)
        table = lcs_table(a, b)
        rows = lcs_row_lengths_bitparallel(a, b)
        np.testing.assert_array_equal(rows, table[len(a), :])

    def test_wide_inputs_use_bignum(self, rng):
        # > 64 symbols forces multi-word bignum behaviour.
        a = random_dna(200, rng)
        b = random_dna(180, rng)
        assert lcs_length_bitparallel(a, b) == lcs_length_reference(a, b)

    def test_backtrack_is_valid(self, rng):
        a = random_dna(25, rng)
        b = random_dna(25, rng)
        sub = lcs_backtrack(a, b)
        assert len(sub) == lcs_length_reference(a, b)
        assert is_common_subsequence(sub, a, b)


class TestLCSProblem:
    @pytest.mark.parametrize("seed", range(6))
    def test_banded_score_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        a = random_dna(40, rng)
        b = random_dna(40, rng)
        width = 8
        p = LCSProblem(a, b, width=width)
        sol = solve_sequential(p)
        assert sol.score == banded_lcs_length_reference(a, b, width)

    def test_wide_band_equals_unbanded_lcs(self, rng):
        a = random_dna(30, rng)
        b = random_dna(30, rng)
        p = LCSProblem(a, b, width=60)
        sol = solve_sequential(p)
        assert sol.score == lcs_length_reference(a, b)
        assert sol.score == lcs_length_bitparallel(a, b)

    def test_witness_is_valid_common_subsequence(self, rng):
        a, b = homologous_pair(50, rng, divergence=0.15)
        p = LCSProblem(a, b, width=100)
        sol = solve_sequential(p)
        sub = p.extract(sol)
        assert len(sub) == int(sol.score)
        assert is_common_subsequence(sub, a, b)

    def test_parallel_equals_sequential(self, rng):
        a, b = homologous_pair(120, rng, divergence=0.1)
        p = LCSProblem(a, b, width=16)
        seq = solve_sequential(p)
        par = solve_parallel(p, num_procs=5)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score
        np.testing.assert_array_equal(p.extract(seq), p.extract(par))

    def test_band_must_reach_endpoint(self, rng):
        with pytest.raises(ProblemDefinitionError):
            LCSProblem(random_dna(30, rng), random_dna(10, rng), width=5)

    def test_empty_sequences_rejected(self, rng):
        with pytest.raises(ProblemDefinitionError):
            LCSProblem(np.array([], dtype=int), random_dna(4, rng), width=8)

    def test_width_validation(self, rng):
        with pytest.raises(ProblemDefinitionError):
            LCSProblem(random_dna(5, rng), random_dna(5, rng), width=0)

    def test_identical_strings_score_full(self, rng):
        a = random_dna(25, rng)
        sol = solve_sequential(LCSProblem(a, a, width=6))
        assert sol.score == 25.0

    def test_selector_stage_width_one(self, rng):
        p = LCSProblem(random_dna(10, rng), random_dna(10, rng), width=4)
        assert p.stage_width(p.num_stages) == 1
        assert p.num_stages == 11

    def test_is_valid_ltdp(self, rng):
        p = LCSProblem(random_dna(20, rng), random_dna(20, rng), width=5)
        report = validate_problem(p)
        assert report.ok, report.failures

    def test_unequal_lengths(self, rng):
        a = random_dna(30, rng)
        b = random_dna(24, rng)
        p = LCSProblem(a, b, width=10)
        sol = solve_sequential(p)
        assert sol.score == banded_lcs_length_reference(a, b, 10)

    def test_edge_weight_matches_probe(self, rng):
        from repro.ltdp.parallel import edge_weight_by_probe

        p = LCSProblem(random_dna(12, rng), random_dna(12, rng), width=4)
        for i in (1, 5, 12):
            w_out = p.stage_width(i)
            w_in = p.stage_width(i - 1)
            for j in range(0, w_out, 3):
                for k in range(0, w_in, 3):
                    assert p.edge_weight(i, j, k) == edge_weight_by_probe(p, i, j, k)
