"""Tests for alignment move expansion and the Alignment container."""

import numpy as np
import pytest

from repro.datagen.sequences import homologous_pair, random_dna
from repro.ltdp.sequential import solve_sequential
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.scoring import ScoringScheme
from repro.problems.alignment.traceback import Alignment, expand_banded_path


class TestExpandBandedPath:
    def test_moves_consume_sequences_exactly_once(self, rng):
        a, b = homologous_pair(40, rng, divergence=0.15)
        p = NeedlemanWunschProblem(a, b, width=10)
        moves = expand_banded_path(p, solve_sequential(p))
        consumed_a = [i for op, i, _ in moves if op in ("D", "U")]
        consumed_b = [j for op, _, j in moves if op in ("D", "L")]
        assert consumed_a == list(range(1, len(a) + 1))
        assert consumed_b == list(range(1, len(b) + 1))

    def test_moves_are_monotone(self, rng):
        a, b = homologous_pair(30, rng, divergence=0.2)
        p = LCSProblem(a, b, width=8)
        moves = expand_banded_path(p, solve_sequential(p))
        rows = [i for op, i, _ in moves if op in ("D", "U")]
        assert rows == sorted(rows)

    def test_identical_sequences_all_diagonal(self, rng):
        a = random_dna(15, rng)
        p = NeedlemanWunschProblem(a, a, width=4)
        moves = expand_banded_path(p, solve_sequential(p))
        assert all(op == "D" for op, _, _ in moves)

    def test_pure_insertion_alignment(self):
        a = np.array([0], dtype=np.int64)
        b = np.array([0, 1, 2, 3], dtype=np.int64)
        p = NeedlemanWunschProblem(a, b, width=4)
        moves = expand_banded_path(p, solve_sequential(p))
        ops = [op for op, _, _ in moves]
        assert ops.count("D") == 1
        assert ops.count("L") == 3


class TestAlignmentContainer:
    def make_alignment(self, rng):
        a, b = homologous_pair(30, rng, divergence=0.1)
        scoring = ScoringScheme.unit_linear(gap=1.0)
        p = NeedlemanWunschProblem(a, b, width=8, scoring=scoring)
        sol = solve_sequential(p)
        return p.extract(sol), sol, scoring

    def test_length_counts_columns(self, rng):
        aln, _, _ = self.make_alignment(rng)
        assert len(aln) == aln.top.size == aln.bottom.size

    def test_no_double_gaps(self, rng):
        aln, _, _ = self.make_alignment(rng)
        both_gaps = (aln.top == Alignment.GAP) & (aln.bottom == Alignment.GAP)
        assert not both_gaps.any()

    def test_priced_score_matches_solution(self, rng):
        aln, sol, scoring = self.make_alignment(rng)
        assert aln.priced_score(scoring) == sol.score

    def test_render_shapes(self, rng):
        aln, _, _ = self.make_alignment(rng)
        top, bottom = aln.render().splitlines()
        assert len(top) == len(bottom) == len(aln)
        assert set(top) <= set("ACGT-")

    def test_from_moves_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Alignment.from_moves(
                np.array([0]), np.array([0]), [("Z", 1, 1)], score=0.0
            )
