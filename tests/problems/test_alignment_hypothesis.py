"""Property-based tests: alignment LTDP formulations vs reference DPs.

Hypothesis generates arbitrary small sequence pairs and scoring
parameters; the LTDP solutions must match the plain O(nm) oracles and
the parallel solver must match the sequential one on every instance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.problems.alignment.bitparallel import lcs_length_bitparallel
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.reference import (
    banded_lcs_length_reference,
    banded_nw_score_reference,
    lcs_length_reference,
    nw_score_reference,
    sw_score_reference,
)
from repro.problems.alignment.scoring import ScoringScheme
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.alignment.striped import sw_score_striped

dna = st.lists(st.integers(0, 3), min_size=1, max_size=24).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


@settings(max_examples=40, deadline=None)
@given(a=dna, b=dna)
def test_lcs_ltdp_matches_reference_and_bitparallel(a, b):
    width = len(a) + len(b)  # unbanded
    problem = LCSProblem(a, b, width=width)
    sol = solve_sequential(problem)
    assert sol.score == lcs_length_reference(a, b)
    assert sol.score == lcs_length_bitparallel(a, b)


@settings(max_examples=30, deadline=None)
@given(a=dna, b=dna, width=st.integers(1, 12))
def test_banded_lcs_matches_banded_reference(a, b, width):
    if abs(len(a) - len(b)) > width:
        width = abs(len(a) - len(b)) + width
    problem = LCSProblem(a, b, width=width)
    sol = solve_sequential(problem)
    assert sol.score == banded_lcs_length_reference(a, b, width)


@settings(max_examples=30, deadline=None)
@given(
    a=dna,
    b=dna,
    match=st.integers(0, 4),
    mismatch=st.integers(-4, 0),
    gap=st.integers(0, 4),
)
def test_nw_ltdp_matches_reference(a, b, match, mismatch, gap):
    scoring = ScoringScheme(
        match=float(match), mismatch=float(mismatch),
        gap_open=float(gap), gap_extend=float(gap),
    )
    width = len(a) + len(b)
    problem = NeedlemanWunschProblem(a, b, width=width, scoring=scoring)
    sol = solve_sequential(problem)
    assert sol.score == nw_score_reference(a, b, scoring)


@settings(max_examples=25, deadline=None)
@given(a=dna, b=dna, width=st.integers(1, 10))
def test_banded_nw_matches_banded_reference(a, b, width):
    if abs(len(a) - len(b)) > width:
        width = abs(len(a) - len(b)) + width
    scoring = ScoringScheme.unit_linear(gap=1.0)
    problem = NeedlemanWunschProblem(a, b, width=width, scoring=scoring)
    sol = solve_sequential(problem)
    assert sol.score == banded_nw_score_reference(a, b, scoring, width)


@settings(max_examples=30, deadline=None)
@given(
    q=dna,
    db=dna,
    match=st.integers(1, 4),
    mismatch=st.integers(-4, -1),
    open_extra=st.integers(0, 3),
    extend=st.integers(1, 3),
)
def test_sw_ltdp_and_striped_match_gotoh(q, db, match, mismatch, open_extra, extend):
    scoring = ScoringScheme(
        match=float(match),
        mismatch=float(mismatch),
        gap_open=float(extend + open_extra),
        gap_extend=float(extend),
    )
    expected = sw_score_reference(q, db, scoring)
    problem = SmithWatermanProblem(q, db, scoring=scoring)
    assert solve_sequential(problem).score == expected
    assert sw_score_striped(q, db, scoring, alphabet_size=4) == expected


@settings(max_examples=20, deadline=None)
@given(a=dna, b=dna, procs=st.integers(2, 6), seed=st.integers(0, 1000))
def test_parallel_lcs_equals_sequential_always(a, b, procs, seed):
    width = max(4, abs(len(a) - len(b)) + 2)
    problem = LCSProblem(a, b, width=width)
    seq = solve_sequential(problem)
    par = solve_parallel(problem, num_procs=procs, seed=seed)
    np.testing.assert_array_equal(seq.path, par.path)
    assert seq.score == par.score


@settings(max_examples=20, deadline=None)
@given(q=dna, db=dna, procs=st.integers(2, 6))
def test_parallel_sw_equals_sequential_always(q, db, procs):
    problem = SmithWatermanProblem(q, db)
    seq = solve_sequential(problem)
    par = solve_parallel(problem, num_procs=procs, seed=3)
    assert seq.score == par.score
    assert seq.objective_stage == par.objective_stage
    np.testing.assert_array_equal(seq.path, par.path)
