"""Tests for convolutional codes and the Viterbi decoder problem."""

import numpy as np
import pytest

from repro.datagen.packets import make_received_packet, random_packet, transmit_bsc
from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.convolutional import (
    CDMA_IS95,
    LTE,
    MARS,
    MARS_SCALED,
    STANDARD_CODES,
    VOYAGER,
    ConvolutionalCode,
    ViterbiDecoderProblem,
)


class TestCodeDefinitions:
    def test_standard_state_counts(self):
        assert VOYAGER.num_states == 64
        assert LTE.num_states == 64
        assert CDMA_IS95.num_states == 256
        assert MARS.num_states == 16384
        assert MARS_SCALED.num_states == 1024

    def test_rates(self):
        assert VOYAGER.rate_denominator == 2
        assert LTE.rate_denominator == 3
        assert MARS.rate_denominator == 6

    def test_registry(self):
        assert set(STANDARD_CODES) == {
            "Voyager",
            "LTE",
            "CDMA",
            "MARS",
            "MARS-scaled",
        }

    def test_generator_must_fit(self):
        with pytest.raises(ProblemDefinitionError):
            ConvolutionalCode("bad", 3, (0o777,))

    def test_constraint_bounds(self):
        with pytest.raises(ProblemDefinitionError):
            ConvolutionalCode("bad", 1, (1,))
        with pytest.raises(ProblemDefinitionError):
            ConvolutionalCode("bad", 20, (1,))

    def test_no_generators(self):
        with pytest.raises(ProblemDefinitionError):
            ConvolutionalCode("bad", 5, ())


class TestEncoder:
    def test_known_k3_code(self):
        """K=3, generators 7/5 — a textbook example with known output."""
        code = ConvolutionalCode("K3", 3, (0o7, 0o5))
        # Input 1 from state 00: register = 100b; g7=111 → parity(100)=1;
        # g5=101 → parity(100)=1. Next state = 10b.
        out = code.encode(np.array([1], dtype=np.uint8), terminate=False)
        np.testing.assert_array_equal(out, [1, 1])

    def test_known_k3_sequence(self):
        code = ConvolutionalCode("K3", 3, (0o7, 0o5))
        # Standard example: input 1011 → output 11 10 00 01 (g=[7,5],
        # MSB-newest convention).
        out = code.encode(np.array([1, 0, 1, 1], dtype=np.uint8), terminate=False)
        np.testing.assert_array_equal(out, [1, 1, 1, 0, 0, 0, 0, 1])

    def test_termination_appends_flush_bits(self):
        bits = np.array([1, 0, 1], dtype=np.uint8)
        out = VOYAGER.encode(bits, terminate=True)
        assert out.size == 2 * (3 + 6)

    def test_zero_input_gives_zero_output(self):
        out = VOYAGER.encode(np.zeros(10, dtype=np.uint8))
        assert not out.any()

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            VOYAGER.encode(np.array([0, 2], dtype=np.uint8))

    def test_trellis_tables_consistent_with_encoder(self):
        """pred/out tables must agree with step-by-step encoding."""
        code = ConvolutionalCode("K4", 4, (0o17, 0o13))
        tables = code._tables
        K = code.constraint_length
        for s_prev in range(code.num_states):
            for b in (0, 1):
                reg = (b << (K - 1)) | s_prev
                ns = reg >> 1
                branch = reg & 1
                assert tables["pred"][ns, branch] == s_prev
                assert tables["input_bit"][ns, branch] == b
                for g_idx, g in enumerate(code.generators):
                    expected = bin(reg & g).count("1") & 1
                    assert tables["out"][ns, branch, g_idx] == expected

    def test_pred_branch_order_is_sorted(self):
        """Branch 0 must be the lower predecessor (tie-break assumption)."""
        for code in (VOYAGER, CDMA_IS95):
            pred = code._tables["pred"]
            assert np.all(pred[:, 0] < pred[:, 1])


class TestDecoderProblem:
    def test_noiseless_decode_recovers_payload(self, rng):
        payload = random_packet(64, rng)
        encoded = VOYAGER.encode(payload)
        problem = ViterbiDecoderProblem(VOYAGER, encoded)
        sol = solve_sequential(problem)
        np.testing.assert_array_equal(problem.extract(sol), payload)

    def test_noiseless_score_is_bit_count(self, rng):
        payload = random_packet(32, rng)
        encoded = VOYAGER.encode(payload)
        problem = ViterbiDecoderProblem(VOYAGER, encoded)
        sol = solve_sequential(problem)
        assert sol.score == float(encoded.size)  # every bit agrees

    @pytest.mark.parametrize("code", [VOYAGER, LTE, CDMA_IS95])
    def test_noisy_decode_at_low_error_rate(self, code, rng):
        payload, problem = make_received_packet(code, 128, rng, error_rate=0.02)
        sol = solve_sequential(problem)
        decoded = problem.extract(sol)
        # ML decoding at 2% BSC on these codes corrects essentially always.
        assert (decoded != payload).mean() < 0.05

    def test_parallel_equals_sequential(self, rng):
        payload, problem = make_received_packet(VOYAGER, 96, rng, error_rate=0.03)
        seq = solve_sequential(problem)
        par = solve_parallel(problem, num_procs=4)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score
        np.testing.assert_array_equal(problem.extract(seq), problem.extract(par))

    def test_unterminated_variant(self, rng):
        payload = random_packet(40, rng)
        encoded = VOYAGER.encode(payload, terminate=False)
        problem = ViterbiDecoderProblem(VOYAGER, encoded, terminated=False)
        assert problem.num_stages == 41  # extra max-selection stage
        assert problem.stage_width(problem.num_stages) == 1
        sol = solve_sequential(problem)
        decoded = problem.extract(sol)
        # Without termination the tail is unprotected but the bulk decodes.
        np.testing.assert_array_equal(decoded[:30], payload[:30])

    def test_received_length_validation(self):
        with pytest.raises(ProblemDefinitionError):
            ViterbiDecoderProblem(VOYAGER, np.zeros(3, dtype=np.uint8))

    def test_received_bit_validation(self):
        with pytest.raises(ProblemDefinitionError):
            ViterbiDecoderProblem(VOYAGER, np.array([0, 2], dtype=np.uint8))

    def test_stage_cost_counts_acs_ops(self, rng):
        _, problem = make_received_packet(VOYAGER, 16, rng)
        assert problem.stage_cost(1) == 2.0 * 64

    def test_edge_weight_matches_probe(self, rng):
        from repro.ltdp.parallel import edge_weight_by_probe

        _, problem = make_received_packet(VOYAGER, 8, rng)
        for j in (0, 5, 63):
            for k in (0, 31, 63):
                assert problem.edge_weight(3, j, k) == edge_weight_by_probe(
                    problem, 3, j, k
                )

    def test_is_valid_ltdp(self, rng):
        _, problem = make_received_packet(VOYAGER, 24, rng)
        assert validate_problem(problem, num_stage_samples=3).ok


class TestChannel:
    def test_bsc_flip_rate(self, rng):
        bits = np.zeros(20_000, dtype=np.uint8)
        noisy = transmit_bsc(bits, rng, error_rate=0.1)
        assert 0.08 < noisy.mean() < 0.12

    def test_bsc_zero_noise_identity(self, rng):
        bits = random_packet(100, rng)
        np.testing.assert_array_equal(
            transmit_bsc(bits, rng, error_rate=0.0), bits
        )

    def test_bsc_rate_validation(self, rng):
        with pytest.raises(ValueError):
            transmit_bsc(np.zeros(4, dtype=np.uint8), rng, error_rate=0.5)
