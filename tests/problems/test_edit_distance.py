"""Tests for the edit-distance (min-plus) LTDP wrapper."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.sequences import homologous_pair, random_dna
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.problems.alignment.edit_distance import (
    EditDistanceProblem,
    edit_distance_reference,
)

dna = st.lists(st.integers(0, 3), min_size=1, max_size=16).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


class TestEditDistance:
    @settings(max_examples=40, deadline=None)
    @given(a=dna, b=dna)
    def test_matches_levenshtein_reference(self, a, b):
        width = len(a) + len(b)  # unbanded
        problem = EditDistanceProblem(a, b, width=width)
        sol = solve_sequential(problem)
        assert EditDistanceProblem.distance(sol) == edit_distance_reference(a, b)

    def test_identical_strings_distance_zero(self, rng):
        a = random_dna(20, rng)
        sol = solve_sequential(EditDistanceProblem(a, a, width=4))
        assert EditDistanceProblem.distance(sol) == 0

    def test_known_example(self):
        # "kitten" -> "sitting" over a mapped alphabet: distance 3.
        mapping = {c: i for i, c in enumerate("kitensg")}
        a = np.array([mapping[c] for c in "kitten"])
        b = np.array([mapping[c] for c in "sitting"])
        sol = solve_sequential(EditDistanceProblem(a, b, width=13))
        assert EditDistanceProblem.distance(sol) == 3

    def test_narrow_band_never_underestimates(self, rng):
        a = random_dna(40, rng)
        b = random_dna(40, rng)
        exact = edit_distance_reference(a, b)
        banded = EditDistanceProblem.distance(
            solve_sequential(EditDistanceProblem(a, b, width=2))
        )
        assert banded >= exact

    def test_parallel_equals_sequential(self, rng):
        a, b = homologous_pair(120, rng, divergence=0.1)
        problem = EditDistanceProblem(a, b, width=12)
        seq = solve_sequential(problem)
        par = solve_parallel(problem, num_procs=4)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score

    def test_distance_tracks_divergence(self, rng):
        a1, b1 = homologous_pair(300, rng, divergence=0.02)
        a2, b2 = homologous_pair(300, rng, divergence=0.3)
        d1 = EditDistanceProblem.distance(
            solve_sequential(EditDistanceProblem(a1, b1, width=30))
        )
        d2 = EditDistanceProblem.distance(
            solve_sequential(EditDistanceProblem(a2, b2, width=30))
        )
        assert d1 < d2
