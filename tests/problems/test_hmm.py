"""Tests for discrete HMMs and Viterbi inference."""

import itertools

import numpy as np
import pytest

from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.hmm import DiscreteHMM, HMMViterbiProblem


def brute_force_viterbi(hmm: DiscreteHMM, obs: np.ndarray):
    """Enumerate all state sequences (tiny instances only)."""
    best_lp = -np.inf
    best_seq = None
    S = hmm.num_states
    with np.errstate(divide="ignore"):
        lt = np.log(hmm.transition)
        le = np.log(hmm.emission)
        lp0 = np.log(hmm.initial)
    for seq in itertools.product(range(S), repeat=len(obs)):
        lp = lp0[seq[0]] + le[seq[0], obs[0]]
        for t in range(1, len(obs)):
            lp += lt[seq[t - 1], seq[t]] + le[seq[t], obs[t]]
        if lp > best_lp:
            best_lp = lp
            best_seq = seq
    return best_lp, np.asarray(best_seq)


def small_hmm(rng, S=3, O=3, peakedness=2.0):
    return DiscreteHMM.random(S, O, rng, peakedness=peakedness)


class TestModelValidation:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ProblemDefinitionError):
            DiscreteHMM(
                np.array([[0.5, 0.2], [0.5, 0.5]]),
                np.full((2, 2), 0.5),
                np.array([0.5, 0.5]),
            )

    def test_square_transition_required(self):
        with pytest.raises(ProblemDefinitionError):
            DiscreteHMM(np.full((2, 3), 1 / 3), np.full((2, 2), 0.5), [0.5, 0.5])

    def test_negative_probability_rejected(self):
        with pytest.raises(ProblemDefinitionError):
            DiscreteHMM(
                np.array([[1.5, -0.5], [0.5, 0.5]]),
                np.full((2, 2), 0.5),
                [0.5, 0.5],
            )

    def test_random_model_is_valid(self, rng):
        m = small_hmm(rng)
        assert m.num_states == 3 and m.num_observables == 3

    def test_peakedness_validation(self, rng):
        with pytest.raises(ValueError):
            DiscreteHMM.random(2, 2, rng, peakedness=0.0)


class TestSampling:
    def test_shapes(self, rng):
        m = small_hmm(rng)
        states, obs = m.sample(50, rng)
        assert states.shape == obs.shape == (50,)
        assert states.max() < 3 and obs.max() < 3

    def test_length_validation(self, rng):
        with pytest.raises(ValueError):
            small_hmm(rng).sample(0, rng)


class TestViterbiCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_against_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        m = small_hmm(rng)
        _, obs = m.sample(6, rng)
        problem = m.viterbi_problem(obs)
        sol = solve_sequential(problem)
        expected_lp, expected_seq = brute_force_viterbi(m, obs)
        assert sol.score == pytest.approx(expected_lp)
        np.testing.assert_array_equal(problem.extract(sol), expected_seq)

    def test_parallel_equals_sequential(self, rng):
        m = DiscreteHMM.random(8, 5, rng, peakedness=3.0)
        _, obs = m.sample(120, rng)
        problem = m.viterbi_problem(obs)
        seq = solve_sequential(problem)
        par = solve_parallel(problem, num_procs=4)
        np.testing.assert_array_equal(seq.path, par.path)
        assert par.score == pytest.approx(seq.score, abs=1e-9)

    def test_selector_stage_shape(self, rng):
        m = small_hmm(rng)
        _, obs = m.sample(10, rng)
        p = m.viterbi_problem(obs)
        assert p.num_stages == 10
        assert p.stage_width(10) == 1
        assert p.stage_width(9) == 3

    def test_single_observation(self, rng):
        m = small_hmm(rng)
        p = m.viterbi_problem(np.array([1]))
        sol = solve_sequential(p)
        assert sol.score == pytest.approx(
            np.max(np.log(m.initial) + np.log(m.emission[:, 1]))
        )

    def test_observation_range_validated(self, rng):
        m = small_hmm(rng)
        with pytest.raises(ProblemDefinitionError):
            m.viterbi_problem(np.array([0, 7]))

    def test_empty_observations_rejected(self, rng):
        m = small_hmm(rng)
        with pytest.raises(ProblemDefinitionError):
            m.viterbi_problem(np.array([], dtype=np.int64))

    def test_unreachable_state_rejected(self):
        # State 1 has no incoming transitions: its matrix row is trivial.
        t = np.array([[1.0, 0.0], [1.0, 0.0]])
        e = np.full((2, 2), 0.5)
        with pytest.raises(ProblemDefinitionError):
            HMMViterbiProblem(
                DiscreteHMM(t, e, [0.5, 0.5]), np.array([0, 1])
            )

    def test_is_valid_ltdp(self, rng):
        m = DiscreteHMM.random(5, 4, rng, peakedness=2.0)
        _, obs = m.sample(20, rng)
        report = validate_problem(m.viterbi_problem(obs), tol=1e-9)
        assert report.ok, report.failures

    def test_edge_weight_matches_matrix(self, rng):
        m = small_hmm(rng)
        _, obs = m.sample(10, rng)
        p = m.viterbi_problem(obs)
        A = p.stage_matrix(4)
        for j in range(3):
            for k in range(3):
                assert p.edge_weight(4, j, k) == pytest.approx(A[j, k])

    def test_peaked_models_converge_faster(self):
        """§4.8: dominant paths ⇒ faster rank convergence."""
        from repro.ltdp.convergence import measure_convergence_steps

        rng = np.random.default_rng(0)
        peaked_model = DiscreteHMM.random(6, 6, rng, peakedness=8.0)
        flat_model = DiscreteHMM.random(6, 6, rng, peakedness=0.3)
        _, obs_p = peaked_model.sample(150, rng)
        _, obs_f = flat_model.sample(150, rng)
        s_peaked = measure_convergence_steps(
            peaked_model.viterbi_problem(obs_p), num_trials=10, seed=1
        )
        s_flat = measure_convergence_steps(
            flat_model.viterbi_problem(obs_f), num_trials=10, seed=1
        )
        # Peaked models should converge at least as often, and when both
        # converge, do so at least as fast on the median.
        assert s_peaked.convergence_fraction >= s_flat.convergence_fraction
        if s_peaked.median_steps and s_flat.median_steps:
            assert s_peaked.median_steps <= s_flat.median_steps


class TestForwardAlgorithm:
    def test_against_brute_force_sum(self, rng):
        import itertools

        m = small_hmm(rng)
        _, obs = m.sample(5, rng)
        S = m.num_states
        total = 0.0
        for seq in itertools.product(range(S), repeat=len(obs)):
            p = m.initial[seq[0]] * m.emission[seq[0], obs[0]]
            for t in range(1, len(obs)):
                p *= m.transition[seq[t - 1], seq[t]] * m.emission[seq[t], obs[t]]
            total += p
        assert m.log_likelihood(obs) == pytest.approx(np.log(total))

    def test_upper_bounds_viterbi(self, rng):
        m = DiscreteHMM.random(6, 4, rng, peakedness=2.0)
        _, obs = m.sample(40, rng)
        viterbi_lp = solve_sequential(m.viterbi_problem(obs)).score
        assert m.log_likelihood(obs) >= viterbi_lp - 1e-9

    def test_likelihood_decreases_with_length(self, rng):
        m = small_hmm(rng)
        _, obs = m.sample(30, rng)
        assert m.log_likelihood(obs) < m.log_likelihood(obs[:10])

    def test_validation(self, rng):
        m = small_hmm(rng)
        with pytest.raises(ProblemDefinitionError):
            m.log_likelihood(np.array([], dtype=np.int64))
        with pytest.raises(ProblemDefinitionError):
            m.log_likelihood(np.array([99]))
