"""Tests for AWGN channel models and soft-decision Viterbi decoding."""

import numpy as np
import pytest

from repro.datagen.packets import random_packet
from repro.exceptions import ProblemDefinitionError
from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.ltdp.validation import validate_problem
from repro.problems.channel import (
    awgn_channel,
    bpsk_modulate,
    ebn0_to_noise_sigma,
    hard_decision,
    quantize_llr,
)
from repro.problems.convolutional import (
    VOYAGER,
    SoftViterbiDecoderProblem,
    ViterbiDecoderProblem,
)


class TestChannelPrimitives:
    def test_bpsk_mapping(self):
        np.testing.assert_array_equal(
            bpsk_modulate(np.array([0, 1, 0], dtype=np.uint8)), [1.0, -1.0, 1.0]
        )

    def test_bpsk_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bpsk_modulate(np.array([2], dtype=np.uint8))

    def test_awgn_statistics(self, rng):
        clean = np.ones(50_000)
        noisy = awgn_channel(clean, rng, sigma=0.5)
        assert abs(noisy.mean() - 1.0) < 0.02
        assert abs(noisy.std() - 0.5) < 0.02

    def test_awgn_zero_sigma_identity(self, rng):
        clean = bpsk_modulate(random_packet(64, rng))
        np.testing.assert_array_equal(awgn_channel(clean, rng, sigma=0.0), clean)

    def test_hard_decision_roundtrip(self, rng):
        bits = random_packet(100, rng)
        np.testing.assert_array_equal(hard_decision(bpsk_modulate(bits)), bits)

    def test_ebn0_conversion_monotone(self):
        # Higher Eb/N0 ⇒ less noise; lower code rate ⇒ more noise/symbol.
        assert ebn0_to_noise_sigma(6.0, 0.5) < ebn0_to_noise_sigma(2.0, 0.5)
        assert ebn0_to_noise_sigma(4.0, 1 / 3) > ebn0_to_noise_sigma(4.0, 1 / 2)
        with pytest.raises(ValueError):
            ebn0_to_noise_sigma(4.0, 0.0)

    def test_quantize_llr_integer_and_clipped(self, rng):
        y = awgn_channel(bpsk_modulate(random_packet(1000, rng)), rng, sigma=0.7)
        q = quantize_llr(y, sigma=0.7, num_bits=4)
        assert q.dtype == np.int64
        assert q.max() <= 7 and q.min() >= -7

    def test_quantize_llr_sign_tracks_symbol(self):
        q = quantize_llr(np.array([1.0, -1.0]), sigma=0.5, num_bits=4)
        assert q[0] > 0 > q[1]

    def test_quantize_validation(self):
        with pytest.raises(ValueError):
            quantize_llr(np.zeros(2), sigma=0.0)
        with pytest.raises(ValueError):
            quantize_llr(np.zeros(2), sigma=1.0, num_bits=1)


def _soft_problem(code, payload, rng, *, ebn0_db):
    encoded = code.encode(payload)
    sigma = ebn0_to_noise_sigma(ebn0_db, 1.0 / code.rate_denominator)
    received = awgn_channel(bpsk_modulate(encoded), rng, sigma=sigma)
    llrs = quantize_llr(received, sigma=sigma, num_bits=5)
    return (
        SoftViterbiDecoderProblem(code, llrs),
        ViterbiDecoderProblem(code, hard_decision(received)),
    )


class TestSoftDecoder:
    def test_clean_channel_decodes_exactly(self, rng):
        payload = random_packet(64, rng)
        soft, _ = _soft_problem(VOYAGER, payload, rng, ebn0_db=40.0)
        decoded = soft.extract(solve_sequential(soft))
        np.testing.assert_array_equal(decoded, payload)

    def test_parallel_equals_sequential(self, rng):
        payload = random_packet(96, rng)
        soft, _ = _soft_problem(VOYAGER, payload, rng, ebn0_db=2.0)
        seq = solve_sequential(soft)
        par = solve_parallel(soft, num_procs=4)
        np.testing.assert_array_equal(seq.path, par.path)
        assert seq.score == par.score

    def test_soft_beats_hard_at_low_snr(self):
        """The classic ~2 dB soft-decision gain, as a BER comparison."""
        rng = np.random.default_rng(0)
        soft_errors = 0
        hard_errors = 0
        total = 0
        for _ in range(6):
            payload = random_packet(256, rng)
            soft, hard = _soft_problem(VOYAGER, payload, rng, ebn0_db=1.0)
            soft_dec = soft.extract(solve_sequential(soft))
            hard_dec = hard.extract(solve_sequential(hard))
            soft_errors += int((soft_dec != payload).sum())
            hard_errors += int((hard_dec != payload).sum())
            total += payload.size
        assert soft_errors < hard_errors, (soft_errors, hard_errors, total)

    def test_is_valid_ltdp(self, rng):
        payload = random_packet(32, rng)
        soft, _ = _soft_problem(VOYAGER, payload, rng, ebn0_db=3.0)
        report = validate_problem(soft, num_stage_samples=3)
        assert report.ok, report.failures

    def test_llr_validation(self):
        with pytest.raises(ProblemDefinitionError):
            SoftViterbiDecoderProblem(VOYAGER, np.zeros(3))
        with pytest.raises(ProblemDefinitionError):
            SoftViterbiDecoderProblem(VOYAGER, np.array([1.0, np.inf]))

    def test_edge_weight_matches_probe(self, rng):
        from repro.ltdp.parallel import edge_weight_by_probe

        payload = random_packet(16, rng)
        soft, _ = _soft_problem(VOYAGER, payload, rng, ebn0_db=3.0)
        for j in (0, 17, 63):
            for k in (0, 40):
                assert soft.edge_weight(2, j, k) == edge_weight_by_probe(
                    soft, 2, j, k
                )
