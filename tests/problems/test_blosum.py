"""Tests for BLOSUM62 protein scoring."""

import numpy as np
import pytest

from repro.ltdp.parallel import solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.problems.alignment.blosum import (
    AMINO_ACIDS,
    BLOSUM62,
    blosum62_scoring,
    encode_protein,
)
from repro.problems.alignment.reference import sw_score_reference
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.alignment.striped import sw_score_striped


class TestMatrix:
    def test_shape_and_symmetry(self):
        assert BLOSUM62.shape == (20, 20)
        np.testing.assert_array_equal(BLOSUM62, BLOSUM62.T)

    def test_known_entries(self):
        idx = {aa: i for i, aa in enumerate(AMINO_ACIDS)}
        assert BLOSUM62[idx["W"], idx["W"]] == 11  # the famous tryptophan max
        assert BLOSUM62[idx["A"], idx["A"]] == 4
        assert BLOSUM62[idx["I"], idx["V"]] == 3
        assert BLOSUM62[idx["W"], idx["D"]] == -4

    def test_diagonal_dominates_rows(self):
        # Every residue matches itself better than any substitution.
        diag = np.diag(BLOSUM62)
        off = BLOSUM62 - np.diag(diag)
        assert (diag[:, None] > off).all()


class TestEncoding:
    def test_roundtrip_alphabet(self):
        np.testing.assert_array_equal(
            encode_protein(AMINO_ACIDS), np.arange(20)
        )

    def test_lowercase_accepted(self):
        np.testing.assert_array_equal(encode_protein("arnd"), [0, 1, 2, 3])

    def test_unknown_symbol_rejected(self):
        with pytest.raises(ValueError):
            encode_protein("AXB")


class TestProteinSearch:
    def test_sw_with_blosum_matches_reference(self, rng):
        scoring = blosum62_scoring()
        query = rng.integers(0, 20, size=12).astype(np.int64)
        db = rng.integers(0, 20, size=60).astype(np.int64)
        expected = sw_score_reference(query, db, scoring)
        problem = SmithWatermanProblem(query, db, scoring=scoring)
        assert solve_sequential(problem).score == expected
        assert sw_score_striped(query, db, scoring, alphabet_size=20) == expected

    def test_planted_protein_motif_found(self, rng):
        scoring = blosum62_scoring()
        motif = encode_protein("WWHKDEFGLMNWW")  # W-rich: very high self-score
        db = rng.integers(0, 20, size=400).astype(np.int64)
        db[200 : 200 + len(motif)] = motif
        problem = SmithWatermanProblem(motif, db, scoring=scoring)
        par = solve_parallel(problem, num_procs=4)
        seq = solve_sequential(problem)
        assert par.score == seq.score
        summary = problem.extract(par)
        assert summary.db_window[0] >= 195 and summary.db_window[1] <= 218

    def test_self_alignment_score_is_sum_of_diagonal(self):
        scoring = blosum62_scoring()
        seq = encode_protein("ACDEFGHIKLMNPQRSTVWY")
        problem = SmithWatermanProblem(seq, seq, scoring=scoring)
        sol = solve_sequential(problem)
        expected = sum(BLOSUM62[s, s] for s in seq)
        assert sol.score == expected
