"""Tests for the finite-traceback-depth streaming Viterbi decoder."""

import numpy as np
import pytest

from repro.datagen.packets import random_packet, transmit_bsc
from repro.exceptions import ProblemDefinitionError
from repro.ltdp.sequential import solve_sequential
from repro.problems.convolutional import VOYAGER, ViterbiDecoderProblem
from repro.problems.streaming import StreamingViterbiDecoder


def make_stream(rng, bits=300, error_rate=0.0):
    payload = random_packet(bits, rng)
    encoded = VOYAGER.encode(payload, terminate=True)
    rx = transmit_bsc(encoded, rng, error_rate=error_rate) if error_rate else encoded
    return payload, rx


class TestStreamingDecoder:
    def test_default_depth_is_5k(self):
        dec = StreamingViterbiDecoder(VOYAGER)
        assert dec.depth == 35

    def test_depth_validation(self):
        with pytest.raises(ProblemDefinitionError):
            StreamingViterbiDecoder(VOYAGER, traceback_depth=0)

    def test_stream_length_validation(self, rng):
        dec = StreamingViterbiDecoder(VOYAGER)
        with pytest.raises(ProblemDefinitionError):
            dec.decode(np.zeros(3, dtype=np.uint8))

    def test_noiseless_stream_decodes_exactly(self, rng):
        payload, rx = make_stream(rng)
        dec = StreamingViterbiDecoder(VOYAGER)
        out = dec.decode(rx)
        # Output covers payload + flush bits; the payload prefix must match.
        np.testing.assert_array_equal(out[: payload.size], payload)

    def test_matches_full_viterbi_at_low_noise(self, rng):
        payload, rx = make_stream(rng, error_rate=0.02)
        stream_bits = StreamingViterbiDecoder(VOYAGER).decode(rx)
        full_problem = ViterbiDecoderProblem(VOYAGER, rx)
        full_bits = full_problem.extract(solve_sequential(full_problem))
        # Finite depth ≈ full ML at 5K depth: identical or near-identical.
        agree = (stream_bits[: full_bits.size] == full_bits).mean()
        assert agree > 0.99

    def test_truncation_loss_at_tiny_depth(self):
        """Tiny traceback depth degrades BER — the merge-depth effect."""
        rng = np.random.default_rng(7)
        deep_err = shallow_err = 0
        for _ in range(4):
            payload, rx = make_stream(rng, bits=400, error_rate=0.06)
            deep = StreamingViterbiDecoder(VOYAGER, traceback_depth=35).decode(rx)
            shallow = StreamingViterbiDecoder(VOYAGER, traceback_depth=3).decode(rx)
            deep_err += int((deep[: payload.size] != payload).sum())
            shallow_err += int((shallow[: payload.size] != payload).sum())
        assert shallow_err > deep_err

    def test_short_stream_flush_only(self, rng):
        """Streams shorter than the depth decode entirely via the flush."""
        payload, rx = make_stream(rng, bits=10)
        out = StreamingViterbiDecoder(VOYAGER, traceback_depth=64).decode(rx)
        np.testing.assert_array_equal(out[: payload.size], payload)

    def test_whole_stream_flush_when_depth_reaches_length(self, rng):
        """``traceback_depth >= n``: every bit comes out of the flush.

        Regression for the flush accounting (formerly a bare ``assert``,
        invisible under ``python -O``): at ``depth == n`` the main loop
        emits zero bits and the flush must cover the entire stream —
        exactly ``n`` bits out, identical to a comfortably-deep decode.
        """
        payload, rx = make_stream(rng, bits=40)
        n = rx.size // VOYAGER.rate_denominator
        reference = StreamingViterbiDecoder(
            VOYAGER, traceback_depth=4 * n
        ).decode(rx)
        assert reference.size == n
        np.testing.assert_array_equal(reference[: payload.size], payload)
        for depth in (n - 1, n, n + 7):
            out = StreamingViterbiDecoder(
                VOYAGER, traceback_depth=depth
            ).decode(rx)
            assert out.size == n
            np.testing.assert_array_equal(out, reference)

    def test_merge_depth_tracks_convergence_steps(self):
        """The depth at which streaming matches full ML is of the same
        order as Table 1's steps-to-convergence for the code."""
        rng = np.random.default_rng(3)
        payload, rx = make_stream(rng, bits=500, error_rate=0.04)
        full_problem = ViterbiDecoderProblem(VOYAGER, rx)
        full_bits = full_problem.extract(solve_sequential(full_problem))
        # Table 1 (measured): Voyager converges in ~30-52 steps; a depth
        # comfortably above that must agree with full ML on ~everything.
        deep = StreamingViterbiDecoder(VOYAGER, traceback_depth=60).decode(rx)
        agree = (deep[: full_bits.size] == full_bits).mean()
        assert agree > 0.995
