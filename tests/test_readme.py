"""The README's code snippets must actually run."""

import pathlib
import re

README = pathlib.Path(__file__).parent.parent / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_snippet():
    assert python_blocks(), "README lost its quickstart snippet"


def test_readme_quickstart_executes():
    for block in python_blocks():
        exec(compile(block, str(README), "exec"), {})  # noqa: S102


def test_readme_mentions_all_benchmark_modules():
    text = README.read_text()
    bench_dir = pathlib.Path(__file__).parent.parent / "benchmarks"
    for module in bench_dir.glob("test_*.py"):
        assert module.name in text, f"README does not mention {module.name}"
