"""Tests for tropical spectral theory (max cycle mean, eigenvectors)."""

import itertools

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.semiring.spectral import (
    critical_nodes,
    is_irreducible,
    max_cycle_mean,
    tropical_eigenvector,
)
from repro.semiring.tropical import NEG_INF, tropical_matvec


def brute_force_cycle_mean(A: np.ndarray) -> float:
    """Enumerate all simple cycles (tiny matrices only)."""
    n = A.shape[0]
    best = NEG_INF
    for length in range(1, n + 1):
        for nodes in itertools.permutations(range(n), length):
            total = 0.0
            ok = True
            for a, b in zip(nodes, nodes[1:] + (nodes[0],)):
                w = A[b, a]  # edge a -> b
                if w == NEG_INF:
                    ok = False
                    break
                total += w
            if ok:
                best = max(best, total / length)
    return best


class TestMaxCycleMean:
    def test_self_loop(self):
        A = np.array([[3.0]])
        assert max_cycle_mean(A) == 3.0

    def test_two_cycle(self):
        A = np.full((2, 2), NEG_INF)
        A[1, 0] = 4.0  # 0 -> 1
        A[0, 1] = 2.0  # 1 -> 0
        assert max_cycle_mean(A) == pytest.approx(3.0)

    def test_acyclic_is_neg_inf(self):
        A = np.full((3, 3), NEG_INF)
        A[1, 0] = 1.0
        A[2, 1] = 1.0
        assert max_cycle_mean(A) == NEG_INF

    @pytest.mark.parametrize("seed", range(8))
    def test_against_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        A = rng.integers(-5, 6, size=(4, 4)).astype(float)
        mask = rng.random((4, 4)) < 0.4
        A[mask] = NEG_INF
        assert max_cycle_mean(A) == pytest.approx(brute_force_cycle_mean(A))

    def test_dense_matrix_max_diag_lower_bound(self, rng):
        A = rng.integers(-5, 6, size=(5, 5)).astype(float)
        assert max_cycle_mean(A) >= np.max(np.diag(A))

    def test_non_square_rejected(self):
        with pytest.raises(DimensionError):
            max_cycle_mean(np.zeros((2, 3)))


class TestIrreducibility:
    def test_dense_is_irreducible(self, rng):
        A = rng.integers(-3, 4, size=(4, 4)).astype(float)
        assert is_irreducible(A)

    def test_triangular_is_reducible(self):
        A = np.full((3, 3), NEG_INF)
        A[1, 0] = 1.0
        A[2, 1] = 1.0
        A[0, 0] = 0.0
        assert not is_irreducible(A)


class TestEigenvector:
    @pytest.mark.parametrize("seed", range(6))
    def test_eigen_equation_holds(self, seed):
        rng = np.random.default_rng(seed)
        A = rng.integers(-5, 6, size=(5, 5)).astype(float)  # dense ⇒ irreducible
        lam = max_cycle_mean(A)
        v = tropical_eigenvector(A)
        lhs = tropical_matvec(A, v)
        finite = np.isfinite(v)
        assert finite.all()  # irreducible ⇒ finite eigenvector
        np.testing.assert_allclose(lhs, v + lam, atol=1e-9)

    def test_acyclic_has_no_eigenvalue(self):
        A = np.full((2, 2), NEG_INF)
        A[1, 0] = 1.0
        with pytest.raises(ValueError):
            tropical_eigenvector(A)

    def test_critical_nodes_on_best_cycle(self):
        A = np.full((3, 3), NEG_INF)
        A[1, 0] = 5.0  # 0 -> 1
        A[0, 1] = 5.0  # 1 -> 0: mean-5 cycle {0, 1}
        A[2, 2] = 1.0  # mean-1 self loop at 2
        A[2, 0] = 0.0  # connect
        crit = critical_nodes(A)
        assert set(crit) == {0, 1}

    def test_eigenvalue_is_power_growth_rate(self, rng):
        """(A^k) v grows by λ per step once aligned with the eigenvector."""
        A = rng.integers(-4, 5, size=(4, 4)).astype(float)
        lam = max_cycle_mean(A)
        v = rng.integers(-3, 4, size=4).astype(float)
        prev = v
        growths = []
        for _ in range(60):
            nxt = tropical_matvec(A, prev)
            growths.append(np.max(nxt) - np.max(prev))
            prev = nxt
        assert np.mean(growths[-10:]) == pytest.approx(lam, abs=1e-6)


class TestSpectralProperties:
    def test_eigen_equation_hypothesis(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from hypothesis.extra.numpy import arrays

        elems = st.integers(-8, 8).map(float)

        @settings(max_examples=25, deadline=None)
        @given(arrays(np.float64, (4, 4), elements=elems))
        def run(A):
            lam = max_cycle_mean(A)
            v = tropical_eigenvector(A)
            lhs = tropical_matvec(A, v)
            finite = np.isfinite(v)
            np.testing.assert_allclose(
                lhs[finite], v[finite] + lam, atol=1e-9
            )

        run()

    def test_cycle_mean_shift_equivariance(self, rng):
        """Adding c to every edge adds c to the max cycle mean."""
        A = rng.integers(-5, 6, size=(5, 5)).astype(float)
        lam = max_cycle_mean(A)
        assert max_cycle_mean(A + 3.0) == pytest.approx(lam + 3.0)

    def test_cycle_mean_upper_bounds_diagonal_powers(self, rng):
        """λ ≥ (A^k)[i,i] / k for any i, k (cycle means never exceed the max)."""
        from repro.semiring.tropical import tropical_matrix_power

        A = rng.integers(-5, 6, size=(4, 4)).astype(float)
        lam = max_cycle_mean(A)
        for k in (1, 2, 3, 5):
            Pk = tropical_matrix_power(A, k)
            assert np.max(np.diag(Pk)) / k <= lam + 1e-9
