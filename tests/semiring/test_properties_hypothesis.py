"""Property-based tests: semiring laws and tropical linear-algebra invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.semiring.base import LOG_PROB, MAX_PLUS, MIN_PLUS
from repro.semiring.properties import (
    check_additive_associativity,
    check_additive_commutativity,
    check_additive_identity,
    check_annihilation,
    check_left_distributivity,
    check_multiplicative_associativity,
    check_multiplicative_identity,
    check_right_distributivity,
)
from repro.semiring.rank import is_rank_one
from repro.semiring.tropical import (
    NEG_INF,
    tropical_matmat,
    tropical_matvec,
    tropical_outer,
    predecessor_product,
)
from repro.semiring.vector import are_parallel, normalize

# Tropical scalars: finite reals plus -inf (the additive identity).
finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
tropical_scalar = st.one_of(st.just(-math.inf), finite)
minplus_scalar = st.one_of(st.just(math.inf), finite)
logprob_scalar = st.one_of(
    st.just(-math.inf),
    st.floats(min_value=-50.0, max_value=0.0, allow_nan=False),
)

# Small integer-valued matrices/vectors: keeps float arithmetic exact.
int_elems = st.integers(min_value=-20, max_value=20).map(float)
trop_elems = st.one_of(st.just(-math.inf), int_elems)


def int_matrix(rows, cols):
    return arrays(np.float64, (rows, cols), elements=int_elems)


def int_vector(n):
    return arrays(np.float64, (n,), elements=int_elems)


class TestMaxPlusLaws:
    @given(tropical_scalar, tropical_scalar, tropical_scalar)
    def test_additive_associativity(self, x, y, z):
        assert check_additive_associativity(MAX_PLUS, x, y, z)

    @given(tropical_scalar, tropical_scalar)
    def test_additive_commutativity(self, x, y):
        assert check_additive_commutativity(MAX_PLUS, x, y)

    @given(tropical_scalar)
    def test_identities_and_annihilation(self, x):
        assert check_additive_identity(MAX_PLUS, x)
        assert check_multiplicative_identity(MAX_PLUS, x)
        assert check_annihilation(MAX_PLUS, x)

    @given(tropical_scalar, tropical_scalar, tropical_scalar)
    def test_multiplicative_associativity(self, x, y, z):
        assert check_multiplicative_associativity(MAX_PLUS, x, y, z)

    @given(tropical_scalar, tropical_scalar, tropical_scalar)
    def test_distributivity(self, x, y, z):
        assert check_left_distributivity(MAX_PLUS, x, y, z)
        assert check_right_distributivity(MAX_PLUS, x, y, z)


class TestMinPlusLaws:
    @given(minplus_scalar, minplus_scalar, minplus_scalar)
    def test_distributivity(self, x, y, z):
        assert check_left_distributivity(MIN_PLUS, x, y, z)
        assert check_right_distributivity(MIN_PLUS, x, y, z)

    @given(minplus_scalar)
    def test_identities(self, x):
        assert check_additive_identity(MIN_PLUS, x)
        assert check_annihilation(MIN_PLUS, x)


class TestLogProbLaws:
    @given(logprob_scalar, logprob_scalar)
    def test_commutativity(self, x, y):
        assert check_additive_commutativity(LOG_PROB, x, y)

    @given(logprob_scalar)
    def test_identities(self, x):
        assert check_additive_identity(LOG_PROB, x)
        assert check_multiplicative_identity(LOG_PROB, x)
        assert check_annihilation(LOG_PROB, x)


class TestMatrixAlgebraProperties:
    @settings(max_examples=30, deadline=None)
    @given(int_matrix(3, 3), int_matrix(3, 3), int_vector(3))
    def test_product_action_composes(self, A, B, v):
        """(A ⨂ B) ⨂ v == A ⨂ (B ⨂ v) — the assoc. the algorithm relies on."""
        np.testing.assert_array_equal(
            tropical_matvec(tropical_matmat(A, B), v),
            tropical_matvec(A, tropical_matvec(B, v)),
        )

    @settings(max_examples=30, deadline=None)
    @given(int_matrix(4, 4), int_vector(4), int_elems)
    def test_matvec_homogeneous(self, A, v, c):
        """A ⨂ (v ⊗ c) == (A ⨂ v) ⊗ c — why offsets propagate unchanged."""
        np.testing.assert_array_equal(
            tropical_matvec(A, v + c), tropical_matvec(A, v) + c
        )

    @settings(max_examples=30, deadline=None)
    @given(int_matrix(4, 4), int_vector(4), int_vector(4))
    def test_matvec_additive(self, A, u, v):
        np.testing.assert_array_equal(
            tropical_matvec(A, np.maximum(u, v)),
            np.maximum(tropical_matvec(A, u), tropical_matvec(A, v)),
        )

    @settings(max_examples=30, deadline=None)
    @given(int_vector(4), int_vector(5))
    def test_outer_products_are_rank_one(self, c, r):
        assert is_rank_one(tropical_outer(c, r))

    @settings(max_examples=30, deadline=None)
    @given(int_vector(4), int_vector(4), int_vector(4))
    def test_lemma2_property(self, c, r, v):
        """Every rank-1 image lies on one line."""
        A = tropical_outer(c, r)
        u = np.zeros(4)
        assert are_parallel(tropical_matvec(A, u), tropical_matvec(A, v))

    @settings(max_examples=30, deadline=None)
    @given(int_matrix(5, 5), int_vector(5), int_elems)
    def test_lemma3_property(self, A, v, c):
        """Parallel inputs give identical predecessor products."""
        np.testing.assert_array_equal(
            predecessor_product(A, v), predecessor_product(A, v + c)
        )

    @settings(max_examples=30, deadline=None)
    @given(int_vector(6), int_elems)
    def test_normalize_canonical(self, v, c):
        np.testing.assert_array_equal(normalize(v), normalize(v + c))
