"""Tests for tropical vector predicates (parallelism is the fix-up test)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.semiring.tropical import NEG_INF
from repro.semiring.vector import (
    are_parallel,
    is_all_nonzero,
    is_zero_vector,
    normalize,
    parallel_offset,
    random_nonzero_vector,
)


class TestPredicates:
    def test_all_nonzero_true(self):
        assert is_all_nonzero(np.array([1.0, -2.0, 0.0]))

    def test_all_nonzero_false(self):
        assert not is_all_nonzero(np.array([1.0, NEG_INF]))

    def test_zero_vector(self):
        assert is_zero_vector(np.array([NEG_INF, NEG_INF]))
        assert not is_zero_vector(np.array([NEG_INF, 0.0]))


class TestParallel:
    def test_paper_example(self):
        # "[1 0 2]ᵀ and [3 2 4]ᵀ are parallel vectors differing by 2"
        assert are_parallel(np.array([1.0, 0, 2]), np.array([3.0, 2, 4]))

    def test_offset(self):
        off = parallel_offset(np.array([3.0, 2, 4]), np.array([1.0, 0, 2]))
        assert off == 2.0

    def test_not_parallel(self):
        assert not are_parallel(np.array([1.0, 0, 2]), np.array([3.0, 2, 5]))

    def test_mask_mismatch_not_parallel(self):
        assert not are_parallel(
            np.array([1.0, NEG_INF]), np.array([1.0, 0.0])
        )

    def test_matching_masks_parallel(self):
        assert are_parallel(
            np.array([1.0, NEG_INF, 3.0]), np.array([0.0, NEG_INF, 2.0])
        )

    def test_zero_vectors_are_parallel(self):
        z = np.array([NEG_INF, NEG_INF])
        assert are_parallel(z, z)

    def test_zero_vector_offset_undefined(self):
        z = np.array([NEG_INF, NEG_INF])
        with pytest.raises(ValueError):
            parallel_offset(z, z)

    def test_offset_requires_parallel(self):
        with pytest.raises(ValueError):
            parallel_offset(np.array([1.0, 2]), np.array([1.0, 3]))

    def test_tolerance(self):
        u = np.array([1.0, 2.0])
        v = u + 5.0
        v[1] += 1e-10
        assert not are_parallel(u, v)
        assert are_parallel(u, v, tol=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(DimensionError):
            are_parallel(np.zeros(2), np.zeros(3))

    def test_reflexive_symmetric(self, rng):
        v = rng.integers(-5, 6, size=8).astype(float)
        u = v + 3.0
        assert are_parallel(v, v)
        assert are_parallel(u, v) and are_parallel(v, u)

    def test_transitive(self, rng):
        v = rng.integers(-5, 6, size=8).astype(float)
        assert are_parallel(v + 1.0, v + 4.0)


class TestNormalize:
    def test_max_is_zero(self, rng):
        v = rng.uniform(-5, 5, size=10)
        n = normalize(v)
        assert np.max(n) == 0.0

    def test_parallel_iff_equal_normalized(self, rng):
        v = rng.integers(-5, 6, size=6).astype(float)
        np.testing.assert_array_equal(normalize(v), normalize(v + 11.0))

    def test_preserves_neg_inf_mask(self):
        v = np.array([NEG_INF, 3.0, 1.0])
        n = normalize(v)
        assert n[0] == NEG_INF and n[1] == 0.0 and n[2] == -2.0

    def test_zero_vector_unchanged(self):
        z = np.array([NEG_INF, NEG_INF])
        np.testing.assert_array_equal(normalize(z), z)

    def test_does_not_mutate_input(self):
        v = np.array([1.0, 2.0])
        normalize(v)
        np.testing.assert_array_equal(v, [1.0, 2.0])


class TestRandomNonzero:
    def test_all_finite(self, rng):
        v = random_nonzero_vector(100, rng)
        assert np.isfinite(v).all()

    def test_integer_default(self, rng):
        v = random_nonzero_vector(100, rng)
        assert np.array_equal(v, np.round(v))

    def test_float_mode(self, rng):
        v = random_nonzero_vector(100, rng, integer=False)
        assert not np.array_equal(v, np.round(v))

    def test_bounds(self, rng):
        v = random_nonzero_vector(1000, rng, low=-3, high=3)
        assert v.min() >= -3 and v.max() <= 3

    def test_invalid_length(self, rng):
        with pytest.raises(ValueError):
            random_nonzero_vector(0, rng)

    def test_invalid_range(self, rng):
        with pytest.raises(ValueError):
            random_nonzero_vector(5, rng, low=2, high=2)

    def test_deterministic_given_seed(self):
        a = random_nonzero_vector(10, np.random.default_rng(7))
        b = random_nonzero_vector(10, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)
