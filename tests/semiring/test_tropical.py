"""Tests for the vectorized max-plus kernels."""

import math

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.semiring.tropical import (
    NEG_INF,
    as_tropical_matrix,
    as_tropical_vector,
    matvec_with_pred,
    predecessor_product,
    tropical_closure,
    tropical_inner,
    tropical_matmat,
    tropical_matrix_power,
    tropical_matvec,
    tropical_outer,
    tropical_vecmat,
)


def brute_matvec(A, v):
    out = np.full(A.shape[0], NEG_INF)
    for i in range(A.shape[0]):
        for k in range(A.shape[1]):
            if A[i, k] != NEG_INF and v[k] != NEG_INF:
                out[i] = max(out[i], A[i, k] + v[k])
    return out


class TestValidation:
    def test_vector_rejects_nan(self):
        with pytest.raises(ValueError):
            as_tropical_vector([1.0, float("nan")])

    def test_vector_rejects_plus_inf(self):
        with pytest.raises(ValueError):
            as_tropical_vector([1.0, math.inf])

    def test_vector_rejects_2d(self):
        with pytest.raises(DimensionError):
            as_tropical_vector(np.zeros((2, 2)))

    def test_matrix_rejects_1d(self):
        with pytest.raises(DimensionError):
            as_tropical_matrix(np.zeros(3))

    def test_matrix_allows_neg_inf(self):
        m = as_tropical_matrix([[NEG_INF, 0.0], [1.0, NEG_INF]])
        assert m[0, 0] == NEG_INF

    def test_copy_flag_returns_independent_array(self):
        src = np.zeros(3)
        out = as_tropical_vector(src, copy=True)
        out[0] = 5.0
        assert src[0] == 0.0


class TestMatVec:
    def test_example_from_paper_section2(self):
        # A = [1 2 3]ᵀ ⨂ [0 1 2] — the worked rank-1 example of §2.
        A = np.array([[1.0, 2, 3], [2, 3, 4], [3, 4, 5]])
        u = np.array([1.0, NEG_INF, 3])
        v = np.array([NEG_INF, 2.0, 0])
        np.testing.assert_array_equal(tropical_matvec(A, u), [6, 7, 8])
        np.testing.assert_array_equal(tropical_matvec(A, v), [4, 5, 6])

    @pytest.mark.parametrize("shape", [(1, 1), (3, 5), (7, 2)])
    def test_matches_brute_force(self, rng, shape):
        A = rng.integers(-5, 6, size=shape).astype(float)
        v = rng.integers(-5, 6, size=shape[1]).astype(float)
        np.testing.assert_array_equal(tropical_matvec(A, v), brute_matvec(A, v))

    def test_neg_inf_annihilates(self):
        A = np.array([[NEG_INF, NEG_INF], [0.0, NEG_INF]])
        v = np.array([NEG_INF, NEG_INF])
        out = tropical_matvec(A, v)
        np.testing.assert_array_equal(out, [NEG_INF, NEG_INF])

    def test_shape_mismatch(self):
        with pytest.raises(DimensionError):
            tropical_matvec(np.zeros((2, 3)), np.zeros(2))

    def test_vecmat_is_transpose_matvec(self, rng):
        A = rng.integers(-5, 6, size=(4, 3)).astype(float)
        v = rng.integers(-5, 6, size=4).astype(float)
        np.testing.assert_array_equal(
            tropical_vecmat(v, A), tropical_matvec(A.T, v)
        )


class TestMatMat:
    def test_associativity_lemma1(self, rng):
        A = rng.integers(-4, 5, size=(3, 4)).astype(float)
        B = rng.integers(-4, 5, size=(4, 2)).astype(float)
        C = rng.integers(-4, 5, size=(2, 5)).astype(float)
        left = tropical_matmat(tropical_matmat(A, B), C)
        right = tropical_matmat(A, tropical_matmat(B, C))
        np.testing.assert_array_equal(left, right)

    def test_matvec_consistency(self, rng):
        A = rng.integers(-4, 5, size=(3, 4)).astype(float)
        B = rng.integers(-4, 5, size=(4, 2)).astype(float)
        v = rng.integers(-4, 5, size=2).astype(float)
        via_product = tropical_matvec(tropical_matmat(A, B), v)
        via_chain = tropical_matvec(A, tropical_matvec(B, v))
        np.testing.assert_array_equal(via_product, via_chain)

    def test_identity(self):
        A = np.array([[1.0, 2], [3, 4]])
        eye = np.full((2, 2), NEG_INF)
        np.fill_diagonal(eye, 0.0)
        np.testing.assert_array_equal(tropical_matmat(A, eye), A)
        np.testing.assert_array_equal(tropical_matmat(eye, A), A)

    def test_zero_annihilates(self):
        A = np.array([[1.0, 2], [3, 4]])
        zero = np.full((2, 2), NEG_INF)
        np.testing.assert_array_equal(tropical_matmat(A, zero), zero)

    def test_blocked_path_matches_direct(self, rng):
        # Exercise the row-blocking fallback with a larger product.
        A = rng.integers(-4, 5, size=(40, 30)).astype(float)
        B = rng.integers(-4, 5, size=(30, 20)).astype(float)
        direct = np.max(A[:, :, None] + B[None, :, :], axis=1)
        np.testing.assert_array_equal(tropical_matmat(A, B), direct)


class TestPredecessorProduct:
    def test_ties_break_to_lowest_index(self):
        A = np.zeros((1, 3))
        v = np.array([5.0, 5.0, 5.0])
        assert predecessor_product(A, v)[0] == 0

    def test_achieves_maximum(self, rng):
        A = rng.integers(-5, 6, size=(4, 6)).astype(float)
        v = rng.integers(-5, 6, size=6).astype(float)
        vals = tropical_matvec(A, v)
        pred = predecessor_product(A, v)
        achieved = A[np.arange(4), pred] + v[pred]
        np.testing.assert_array_equal(achieved, vals)

    def test_fused_matches_separate(self, rng):
        A = rng.integers(-5, 6, size=(5, 5)).astype(float)
        v = rng.integers(-5, 6, size=5).astype(float)
        vals, pred = matvec_with_pred(A, v)
        np.testing.assert_array_equal(vals, tropical_matvec(A, v))
        np.testing.assert_array_equal(pred, predecessor_product(A, v))

    def test_lemma3_parallel_vectors_same_predecessors(self, rng):
        """Lemma 3: u ∥ v ⇒ A ⋆ u == A ⋆ v."""
        A = rng.integers(-5, 6, size=(6, 6)).astype(float)
        u = rng.integers(-5, 6, size=6).astype(float)
        v = u + 7.0  # parallel with offset 7
        np.testing.assert_array_equal(
            predecessor_product(A, u), predecessor_product(A, v)
        )


class TestPowerAndClosure:
    def test_power_zero_is_identity(self, rng):
        A = rng.integers(-3, 4, size=(4, 4)).astype(float)
        P0 = tropical_matrix_power(A, 0)
        assert np.all(np.diag(P0) == 0.0)
        off = P0[~np.eye(4, dtype=bool)]
        assert np.all(off == NEG_INF)

    def test_power_matches_repeated_product(self, rng):
        A = rng.integers(-3, 4, size=(3, 3)).astype(float)
        expected = A.copy()
        for _ in range(4):
            expected = tropical_matmat(expected, A)
        np.testing.assert_array_equal(tropical_matrix_power(A, 5), expected)

    def test_power_negative_raises(self):
        with pytest.raises(ValueError):
            tropical_matrix_power(np.zeros((2, 2)), -1)

    def test_power_non_square_raises(self):
        with pytest.raises(DimensionError):
            tropical_matrix_power(np.zeros((2, 3)), 2)

    def test_closure_is_longest_path(self):
        """Cross-check A* against networkx longest path on a DAG."""
        import networkx as nx

        n = 6
        rng = np.random.default_rng(3)
        A = np.full((n, n), NEG_INF)
        g = nx.DiGraph()
        g.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):  # DAG: edges forward only
                if rng.random() < 0.6:
                    w = float(rng.integers(1, 5))
                    A[j, i] = w  # A[dst, src] matches matvec orientation
                    g.add_edge(i, j, weight=w)
        star = tropical_closure(A)
        for src in range(n):
            lengths = nx.single_source_bellman_ford_path_length(
                g, src, weight=lambda u, v, d: -d["weight"]
            )
            for dst, neg_len in lengths.items():
                assert star[dst, src] == -neg_len

    def test_closure_diverges_on_positive_cycle(self):
        A = np.array([[1.0]])  # self-loop of weight +1
        with pytest.raises(ValueError):
            tropical_closure(A)


class TestInnerOuter:
    def test_inner(self):
        assert tropical_inner(np.array([1.0, 2]), np.array([3.0, 1])) == 4.0

    def test_inner_shape_mismatch(self):
        with pytest.raises(DimensionError):
            tropical_inner(np.zeros(2), np.zeros(3))

    def test_outer_is_rank_one_structure(self):
        c = np.array([1.0, 2, 3])
        r = np.array([0.0, 1, 2])
        out = tropical_outer(c, r)
        expected = np.array([[1.0, 2, 3], [2, 3, 4], [3, 4, 5]])
        np.testing.assert_array_equal(out, expected)

    def test_outer_with_neg_inf(self):
        out = tropical_outer(np.array([NEG_INF, 0.0]), np.array([1.0]))
        np.testing.assert_array_equal(out, [[NEG_INF], [1.0]])
