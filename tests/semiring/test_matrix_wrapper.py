"""Tests for the TropicalMatrix convenience wrapper."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.semiring.matrix import TropicalMatrix, identity_matrix, zero_matrix
from repro.semiring.tropical import NEG_INF, tropical_matmat, tropical_matvec


class TestConstruction:
    def test_data_is_read_only(self):
        m = TropicalMatrix([[1.0, 2.0]])
        with pytest.raises(ValueError):
            m.data[0, 0] = 5.0

    def test_source_array_not_aliased(self):
        src = np.array([[1.0, 2.0]])
        m = TropicalMatrix(src)
        src[0, 0] = 9.0
        assert m[0, 0] == 1.0

    def test_identity(self):
        eye = identity_matrix(3)
        v = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(eye @ v, v)

    def test_zero(self):
        z = zero_matrix(2, 3)
        assert z.shape == (2, 3)
        assert np.all(z.data == NEG_INF)

    def test_zero_square_default(self):
        assert zero_matrix(4).shape == (4, 4)


class TestOps:
    def test_matmul_matrix(self, rng):
        a = rng.integers(-4, 5, size=(3, 4)).astype(float)
        b = rng.integers(-4, 5, size=(4, 2)).astype(float)
        got = TropicalMatrix(a) @ TropicalMatrix(b)
        np.testing.assert_array_equal(got.data, tropical_matmat(a, b))

    def test_matmul_vector(self, rng):
        a = rng.integers(-4, 5, size=(3, 4)).astype(float)
        v = rng.integers(-4, 5, size=4).astype(float)
        np.testing.assert_array_equal(TropicalMatrix(a) @ v, tropical_matvec(a, v))

    def test_matmul_raw_matrix(self, rng):
        a = rng.integers(-4, 5, size=(3, 3)).astype(float)
        b = rng.integers(-4, 5, size=(3, 3)).astype(float)
        got = TropicalMatrix(a) @ b
        assert isinstance(got, TropicalMatrix)

    def test_matmul_bad_rank(self):
        with pytest.raises(DimensionError):
            TropicalMatrix(np.zeros((2, 2))) @ np.zeros((2, 2, 2))

    def test_power(self, rng):
        a = rng.integers(-4, 5, size=(3, 3)).astype(float)
        m = TropicalMatrix(a)
        np.testing.assert_array_equal((m ** 3).data, (m @ m @ m).data)

    def test_star(self, rng):
        a = rng.integers(-4, 5, size=(3, 3)).astype(float)
        v = rng.integers(-4, 5, size=3).astype(float)
        pred = TropicalMatrix(a).star(v)
        achieved = a[np.arange(3), pred] + v[pred]
        np.testing.assert_array_equal(achieved, TropicalMatrix(a) @ v)

    def test_scale(self):
        m = TropicalMatrix([[1.0, NEG_INF], [0.0, 2.0]])
        s = m.scale(3.0)
        np.testing.assert_array_equal(s.data, [[4.0, NEG_INF], [3.0, 5.0]])

    def test_transpose(self):
        m = TropicalMatrix([[1.0, 2.0, 3.0]])
        assert m.T.shape == (3, 1)

    def test_equality_and_hash(self):
        a = TropicalMatrix([[1.0, 2.0]])
        b = TropicalMatrix([[1.0, 2.0]])
        c = TropicalMatrix([[1.0, 3.0]])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a.__eq__(42) is NotImplemented

    def test_repr(self):
        assert "shape=(2, 2)" in repr(identity_matrix(2))


class TestRankQueries:
    def test_rank_one(self):
        m = TropicalMatrix([[1.0, 2, 3], [2, 3, 4], [3, 4, 5]])
        assert m.is_rank_one()
        c, r = m.rank_one_factors()
        assert c.shape == (3,) and r.shape == (3,)
        assert m.rank_upper_bound() == 1

    def test_non_trivial(self):
        assert identity_matrix(3).is_non_trivial()
        bad = TropicalMatrix(np.full((2, 2), NEG_INF))
        assert not bad.is_non_trivial()
