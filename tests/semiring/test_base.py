"""Tests for the semiring abstractions (paper §2 axioms)."""

import math

import numpy as np
import pytest

from repro.semiring.base import BOOLEAN, LOG_PROB, MAX_PLUS, MIN_PLUS
from repro.semiring.properties import check_all_laws, law_violations
from repro.semiring.tropical import tropical_matmat, tropical_matvec

ALL_SEMIRINGS = [MAX_PLUS, MIN_PLUS, BOOLEAN, LOG_PROB]

TROPICAL_ELEMENTS = [-math.inf, -3.5, -1.0, 0.0, 0.5, 2.0, 7.25]
MINPLUS_ELEMENTS = [math.inf, -3.5, -1.0, 0.0, 0.5, 2.0, 7.25]
BOOL_ELEMENTS = [0.0, 1.0]
LOGPROB_ELEMENTS = [-math.inf, -5.0, -1.0, -0.25, 0.0]


class TestSemiringLaws:
    def test_max_plus_laws(self):
        assert check_all_laws(MAX_PLUS, TROPICAL_ELEMENTS)

    def test_min_plus_laws(self):
        assert check_all_laws(MIN_PLUS, MINPLUS_ELEMENTS)

    def test_boolean_laws(self):
        assert check_all_laws(BOOLEAN, BOOL_ELEMENTS)

    def test_log_prob_laws(self):
        assert check_all_laws(LOG_PROB, LOGPROB_ELEMENTS)

    def test_violations_reported_for_broken_semiring(self):
        from repro.semiring.base import Semiring

        broken = Semiring(
            name="broken",
            add=lambda a, b: a - b,  # not commutative / associative
            mul=lambda a, b: a + b,
            zero=0.0,
            one=0.0,
        )
        assert law_violations(broken, [1.0, 2.0, 3.0])


class TestIdentities:
    @pytest.mark.parametrize("s", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_add_many_empty_is_zero(self, s):
        assert s.add_many([]) == s.zero

    @pytest.mark.parametrize("s", ALL_SEMIRINGS, ids=lambda s: s.name)
    def test_mul_many_empty_is_one(self, s):
        assert s.mul_many([]) == s.one

    def test_max_plus_add_is_max(self):
        assert MAX_PLUS.add(3.0, 5.0) == 5.0
        assert MAX_PLUS.add(-math.inf, 5.0) == 5.0

    def test_max_plus_mul_is_plus(self):
        assert MAX_PLUS.mul(3.0, 5.0) == 8.0

    def test_min_plus_add_is_min(self):
        assert MIN_PLUS.add(3.0, 5.0) == 3.0

    def test_log_prob_add_is_logsumexp(self):
        got = LOG_PROB.add(math.log(0.25), math.log(0.5))
        assert got == pytest.approx(math.log(0.75))

    def test_log_prob_add_with_zero(self):
        assert LOG_PROB.add(-math.inf, -1.5) == -1.5
        assert LOG_PROB.add(-1.5, -math.inf) == -1.5

    def test_is_zero(self):
        assert MAX_PLUS.is_zero(-math.inf)
        assert not MAX_PLUS.is_zero(0.0)
        assert MIN_PLUS.is_zero(math.inf)


class TestReferenceMatrixOps:
    """The generic (slow) semiring mat-ops agree with the fast tropical kernels."""

    def test_matvec_agrees_with_tropical_kernel(self, rng):
        A = rng.integers(-5, 6, size=(4, 6)).astype(float)
        v = rng.integers(-5, 6, size=6).astype(float)
        np.testing.assert_array_equal(MAX_PLUS.matvec(A, v), tropical_matvec(A, v))

    def test_matmat_agrees_with_tropical_kernel(self, rng):
        A = rng.integers(-5, 6, size=(3, 4)).astype(float)
        B = rng.integers(-5, 6, size=(4, 5)).astype(float)
        np.testing.assert_array_equal(MAX_PLUS.matmat(A, B), tropical_matmat(A, B))

    def test_matvec_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MAX_PLUS.matvec(np.zeros((2, 3)), np.zeros(4))

    def test_matmat_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            MAX_PLUS.matmat(np.zeros((2, 3)), np.zeros((4, 2)))

    def test_boolean_matmat_is_reachability(self):
        A = np.array([[1.0, 0.0], [0.0, 1.0]])
        B = np.array([[0.0, 1.0], [1.0, 0.0]])
        got = BOOLEAN.matmat(A, B)
        np.testing.assert_array_equal(got, B)

    def test_min_plus_matvec_is_shortest_path_step(self):
        A = np.array([[0.0, 2.0], [1.0, math.inf]])
        v = np.array([5.0, 3.0])
        got = MIN_PLUS.matvec(A, v)
        np.testing.assert_array_equal(got, [5.0, 6.0])
