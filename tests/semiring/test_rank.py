"""Tests for tropical rank: the paper's Lemmas 2/5 and Equation (3)."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.semiring.rank import (
    column_space_dimension,
    factor_rank_upper_bound,
    is_rank_one,
    is_tropically_singular,
    rank_one_factorization,
    tropical_rank_exact,
)
from repro.semiring.tropical import (
    NEG_INF,
    predecessor_product,
    tropical_matmat,
    tropical_matvec,
    tropical_outer,
)
from repro.semiring.vector import are_parallel


def random_rank_one(rng, n, m):
    c = rng.integers(-5, 6, size=n).astype(float)
    r = rng.integers(-5, 6, size=m).astype(float)
    return tropical_outer(c, r)


class TestRankOneDetection:
    def test_paper_example_is_rank_one(self):
        A = np.array([[1.0, 2, 3], [2, 3, 4], [3, 4, 5]])
        assert is_rank_one(A)

    @pytest.mark.parametrize("shape", [(1, 1), (2, 3), (5, 5), (4, 1)])
    def test_outer_products_are_rank_one(self, rng, shape):
        assert is_rank_one(random_rank_one(rng, *shape))

    def test_identity_is_not_rank_one(self):
        eye = np.full((3, 3), NEG_INF)
        np.fill_diagonal(eye, 0.0)
        assert not is_rank_one(eye)

    def test_generic_random_is_not_rank_one(self, rng):
        A = rng.integers(-9, 10, size=(4, 4)).astype(float)
        # A random integer matrix is rank 1 only with negligible probability;
        # verify via the definition instead of assuming.
        fac = rank_one_factorization(A)
        if fac is not None:
            c, r = fac
            np.testing.assert_array_equal(tropical_outer(c, r), A)

    def test_factorization_reconstructs(self, rng):
        A = random_rank_one(rng, 4, 6)
        c, r = rank_one_factorization(A)
        np.testing.assert_array_equal(tropical_outer(c, r), A)

    def test_rank_one_with_zero_rows_and_cols(self):
        # finite support must form a rectangle
        c = np.array([NEG_INF, 1.0, 2.0])
        r = np.array([0.0, NEG_INF, 3.0])
        A = tropical_outer(c, r)
        assert is_rank_one(A)
        cc, rr = rank_one_factorization(A)
        np.testing.assert_array_equal(tropical_outer(cc, rr), A)

    def test_non_rectangular_support_is_not_rank_one(self):
        A = np.array([[0.0, NEG_INF], [NEG_INF, 0.0]])
        assert not is_rank_one(A)

    def test_all_zero_matrix_is_rank_at_most_one(self):
        A = np.full((3, 2), NEG_INF)
        assert is_rank_one(A)

    def test_tolerance(self):
        A = np.array([[1.0, 2.0], [2.0, 3.0 + 1e-12]])
        assert not is_rank_one(A)
        assert is_rank_one(A, tol=1e-9)


class TestLemma2:
    """A rank-1 matrix maps every vector to the same tropical line."""

    @pytest.mark.parametrize("trial", range(5))
    def test_rank_one_maps_to_parallel(self, trial):
        rng = np.random.default_rng(trial)
        A = random_rank_one(rng, 5, 5)
        u = rng.integers(-8, 9, size=5).astype(float)
        v = rng.integers(-8, 9, size=5).astype(float)
        assert are_parallel(tropical_matvec(A, u), tropical_matvec(A, v))


class TestLemma5:
    """All elements of (rank-1 A) ⋆ v are equal."""

    @pytest.mark.parametrize("trial", range(5))
    def test_predecessor_rows_agree(self, trial):
        rng = np.random.default_rng(100 + trial)
        A = random_rank_one(rng, 4, 6)
        v = rng.integers(-8, 9, size=6).astype(float)
        pred = predecessor_product(A, v)
        assert np.all(pred == pred[0])


class TestEquationThree:
    """rank(A ⨂ B) <= min(rank A, rank B), via the upper bound."""

    @pytest.mark.parametrize("trial", range(8))
    def test_product_bound_never_increases(self, trial):
        rng = np.random.default_rng(200 + trial)
        A = rng.integers(-5, 6, size=(4, 4)).astype(float)
        B = rng.integers(-5, 6, size=(4, 4)).astype(float)
        bound_a = factor_rank_upper_bound(A)
        bound_b = factor_rank_upper_bound(B)
        bound_ab = factor_rank_upper_bound(tropical_matmat(A, B))
        assert bound_ab <= min(bound_a, bound_b) or bound_ab <= 4

    def test_product_with_rank_one_is_rank_one(self, rng):
        A = random_rank_one(rng, 4, 4)
        B = rng.integers(-5, 6, size=(4, 4)).astype(float)
        assert is_rank_one(tropical_matmat(A, B))
        assert is_rank_one(tropical_matmat(B, A))

    def test_long_products_converge_to_rank_one(self):
        """Empirical rank convergence (§4.2) on random dense chains."""
        rng = np.random.default_rng(42)
        M = rng.integers(-5, 6, size=(5, 5)).astype(float)
        converged_at = None
        for k in range(1, 60):
            M = tropical_matmat(rng.integers(-5, 6, size=(5, 5)).astype(float), M)
            if is_rank_one(M):
                converged_at = k
                break
        assert converged_at is not None, "random products failed to converge"


class TestColumnSpaceAndBounds:
    def test_rank_one_has_dimension_one(self, rng):
        A = random_rank_one(rng, 4, 5)
        assert column_space_dimension(A) == 1

    def test_identity_has_full_dimension(self):
        eye = np.full((3, 3), NEG_INF)
        np.fill_diagonal(eye, 0.0)
        assert column_space_dimension(eye) == 3

    def test_zero_columns_ignored(self):
        A = np.array([[1.0, NEG_INF], [2.0, NEG_INF]])
        assert column_space_dimension(A) == 1

    def test_bound_is_symmetric_minimum(self, rng):
        A = random_rank_one(rng, 3, 7)
        assert factor_rank_upper_bound(A) == 1


class TestExactTropicalRank:
    def test_singular_square(self):
        # All permutations achieve the same weight sum.
        A = np.zeros((2, 2))
        assert is_tropically_singular(A)

    def test_nonsingular_square(self):
        A = np.array([[5.0, 0.0], [0.0, 5.0]])
        assert not is_tropically_singular(A)

    def test_all_zero_is_singular(self):
        assert is_tropically_singular(np.full((2, 2), NEG_INF))

    def test_non_square_raises(self):
        with pytest.raises(DimensionError):
            is_tropically_singular(np.zeros((2, 3)))

    def test_rank_of_outer_product_is_one(self, rng):
        A = random_rank_one(rng, 3, 3)
        assert tropical_rank_exact(A) == 1

    def test_rank_of_diagonal_is_full(self):
        A = np.full((3, 3), NEG_INF)
        np.fill_diagonal(A, [5.0, 5.0, 5.0])
        # -inf off-diagonal: permanent only finite for identity perm.
        assert tropical_rank_exact(A) == 3

    def test_rank_lower_bounds_factor_bound(self, rng):
        for seed in range(5):
            r = np.random.default_rng(seed)
            A = r.integers(-5, 6, size=(4, 4)).astype(float)
            assert tropical_rank_exact(A) <= 4
            assert tropical_rank_exact(A) >= 1

    def test_too_large_raises(self):
        with pytest.raises(ValueError):
            tropical_rank_exact(np.zeros((7, 7)))
