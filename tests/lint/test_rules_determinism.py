"""REP003: nondeterminism reachable from the pool worker entry points.

Fixtures build a virtual project whose paths mirror the real layout —
``src/repro/machine/pool.py`` (worker loop root) and helper modules the
loop calls — so the call-graph reachability matches production scoping.
"""

from tests.lint.conftest import codes, run_lint_files

POOL = "src/repro/machine/pool.py"
HELPER = "src/repro/ltdp/engine/helper.py"


def worker_calling(helper_import: str, call: str) -> str:
    return f"""\
    {helper_import}

    def _pool_worker_main(conn):
        while True:
            {call}
    """


class TestTriggers:
    def test_stdlib_random_in_worker_loop(self):
        r = run_lint_files(
            {POOL: worker_calling("import random", "x = random.random()")}
        )
        assert codes(r) == ["REP003"]
        assert "process-global stdlib RNG" in r.findings[0].message

    def test_wall_clock_read_reached_through_helper(self):
        # Nondeterminism two hops away: worker -> helper -> time.time().
        r = run_lint_files(
            {
                HELPER: """\
                import time

                def stamp():
                    return time.time()
                """,
                POOL: worker_calling(
                    "from repro.ltdp.engine.helper import stamp", "t = stamp()"
                ),
            }
        )
        assert codes(r) == ["REP003"]
        assert "wall clock" in r.findings[0].message
        assert r.findings[0].path == HELPER

    def test_datetime_now(self):
        r = run_lint_files(
            {
                POOL: worker_calling(
                    "import datetime", "t = datetime.datetime.now()"
                )
            }
        )
        assert codes(r) == ["REP003"]

    def test_environ_mutation(self):
        r = run_lint_files(
            {POOL: worker_calling("import os", 'os.environ["X"] = "1"')}
        )
        assert codes(r) == ["REP003"]

    def test_module_global_write(self):
        r = run_lint_files(
            {
                POOL: """\
                _CACHE = None

                def _pool_worker_main(conn):
                    global _CACHE
                    _CACHE = conn.recv()
                """
            }
        )
        assert codes(r) == ["REP003"]
        assert "_CACHE" in r.findings[0].message

    def test_unseeded_numpy_rng(self):
        r = run_lint_files(
            {
                POOL: worker_calling(
                    "import numpy as np", "rng = np.random.default_rng()"
                )
            }
        )
        assert codes(r) == ["REP003"]

    def test_legacy_global_numpy_rng(self):
        r = run_lint_files(
            {
                POOL: worker_calling(
                    "import numpy as np", "x = np.random.rand(3)"
                )
            }
        )
        assert codes(r) == ["REP003"]


class TestNearMisses:
    def test_perf_counter_is_allowlisted(self):
        # Trace stamps are fine: they never feed computed values.
        r = run_lint_files(
            {POOL: worker_calling("import time", "t = time.perf_counter()")}
        )
        assert codes(r) == []

    def test_seeded_numpy_rng(self):
        r = run_lint_files(
            {
                POOL: worker_calling(
                    "import numpy as np", "rng = np.random.default_rng(seed)"
                )
            }
        )
        assert codes(r) == []

    def test_unreachable_code_not_flagged(self):
        # random in a module the worker never calls into is out of scope.
        r = run_lint_files(
            {
                HELPER: """\
                import random

                def unused():
                    return random.random()
                """,
                POOL: worker_calling("import time", "t = time.perf_counter()"),
            }
        )
        assert codes(r) == []

    def test_driver_side_code_not_flagged(self):
        # The same call outside any worker root is driver-side and legal.
        r = run_lint_files(
            {
                "src/repro/analysis/fake.py": """\
                import random

                def shuffle_trials(xs):
                    random.shuffle(xs)
                """
            }
        )
        assert codes(r) == []

    def test_environ_read_is_fine(self):
        r = run_lint_files(
            {POOL: worker_calling("import os", 'x = os.environ.get("X")')}
        )
        assert codes(r) == []
