"""Shared helpers for the ``repro lint`` tests.

Fixtures are linted *in memory* via :func:`repro.lint.runner.lint_sources`
with virtual paths — rule scoping only looks at the package-relative
path, so ``src/repro/ltdp/fake.py`` scopes exactly like a real engine
file without touching the working tree.
"""

from __future__ import annotations

import textwrap

from repro.lint.runner import lint_sources


def run_lint(path: str, source: str, **kwargs):
    """Lint one dedented in-memory file; return the LintResult."""
    return lint_sources([(path, textwrap.dedent(source))], **kwargs)


def run_lint_files(files: dict[str, str], **kwargs):
    """Lint several in-memory files (path -> source) as one project."""
    return lint_sources(
        [(path, textwrap.dedent(src)) for path, src in files.items()], **kwargs
    )


def codes(result) -> list[str]:
    return [f.code for f in result.findings]
