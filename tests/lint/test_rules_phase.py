"""REP004: phase/label vocabulary pinned to ``machine/metrics.py``."""

from tests.lint.conftest import codes, run_lint

PATH = "src/repro/analysis/fake.py"
HEAD = "from repro.machine.metrics import SuperstepRecord\n"


class TestTriggers:
    def test_unknown_record_phase_literal(self):
        r = run_lint(
            PATH, HEAD + 'SuperstepRecord(label="forward", work=[], phase="sideways")\n'
        )
        assert codes(r) == ["REP004"]
        assert "'sideways'" in r.findings[0].message

    def test_pr3_regression_unknown_label_without_phase(self):
        # The exact bug shape PR 3 fixed at runtime: a record whose label
        # matches no known prefix and that sets no explicit phase used to
        # be silently priced as forward work by the cost model.
        r = run_lint(
            PATH, HEAD + 'rec = SuperstepRecord(label="mystery-step", work=[1.0])\n'
        )
        assert codes(r) == ["REP004"]
        assert "silently priced" in r.findings[0].message

    def test_unknown_positional_label(self):
        r = run_lint(PATH, HEAD + 'rec = SuperstepRecord("mystery", [1.0])\n')
        assert codes(r) == ["REP004"]

    def test_unknown_phase_attribute_assignment(self):
        r = run_lint(PATH, HEAD + 'rec.phase = "weird"\n')
        assert codes(r) == ["REP004"]

    def test_unknown_tracer_span_phase(self):
        r = run_lint(PATH, 'tracer.span("superstep", phase="cooldown")\n')
        assert codes(r) == ["REP004"]
        assert "'cooldown'" in r.findings[0].message

    def test_unknown_tracer_span_name(self):
        r = run_lint(PATH, 'tracer.span("warmup")\n')
        assert codes(r) == ["REP004"]
        assert "'warmup'" in r.findings[0].message
        assert "TRACE_SPAN_NAMES" in r.findings[0].message

    def test_unknown_add_span_name(self):
        r = run_lint(PATH, 'tracer.add_span("mystery", 0.0, 1.0)\n')
        assert codes(r) == ["REP004"]


class TestNearMisses:
    def test_canonical_phases_accepted(self):
        src = HEAD + (
            'SuperstepRecord(label="forward", work=[], phase="forward")\n'
            'SuperstepRecord(label="bwd-fixup[1]", work=[], phase="backward")\n'
        )
        assert codes(run_lint(PATH, src)) == []

    def test_known_label_prefix_needs_no_phase(self):
        src = HEAD + (
            'SuperstepRecord(label="fixup[3]", work=[1.0])\n'
            'SuperstepRecord(label="backward", work=[1.0])\n'
        )
        assert codes(run_lint(PATH, src)) == []

    def test_fstring_label_with_known_prefix(self):
        src = HEAD + 'SuperstepRecord(label=f"fixup[{k}]", work=[1.0])\n'
        assert codes(run_lint(PATH, src)) == []

    def test_dynamic_phase_expression_is_not_checked(self):
        src = HEAD + 'SuperstepRecord(label="x", work=[], phase=phase_var)\n'
        assert codes(run_lint(PATH, src)) == []

    def test_canonical_span_names_accepted(self):
        src = (
            'tracer.span("runner.pull", runner=1)\n'
            'tracer.span("program.instr", seq=3)\n'
            'tracer.span("dispatch")\n'
        )
        assert codes(run_lint(PATH, src)) == []

    def test_dynamic_span_name_is_not_checked(self):
        assert codes(run_lint(PATH, "tracer.span(name_var)\n")) == []

    def test_objective_is_legal_for_tracer_spans_only(self):
        # 'objective' is in TRACE_PHASES but not RECORD_PHASES.
        assert codes(run_lint(PATH, 'tracer.span("phase", phase="objective")\n')) == []
        r = run_lint(
            PATH, HEAD + 'SuperstepRecord(label="x", work=[], phase="objective")\n'
        )
        assert codes(r) == ["REP004"]

    def test_unrelated_phase_free_assignment(self):
        assert codes(run_lint(PATH, 'rec.label = "anything"\n')) == []
