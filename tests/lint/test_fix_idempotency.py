"""``--fix`` idempotency: fixing twice is byte-for-byte a no-op.

The autofix path (REP001) rewrites literals and inserts imports; if a
second application changed anything, CI runs and developer runs would
fight each other.  These tests pin: fix → clean re-lint, and fix∘fix
== fix at the byte level, through both the library and the CLI.
"""

import textwrap

from repro.lint.runner import apply_fixes, lint_sources, run_lint_command

DIRTY = textwrap.dedent(
    """\
    import math

    def kernel(row):
        lo = float("-inf")
        hi = -math.inf
        return lo, hi
    """
)


def fix_once(path: str, source: str) -> tuple[str, int]:
    result = lint_sources([(path, source)])
    fixable = [f for f in result.findings if f.fix is not None]
    return apply_fixes(path, source, fixable)


class TestLibraryIdempotency:
    def test_double_apply_is_byte_identical(self):
        path = "src/repro/ltdp/fake.py"
        once, n1 = fix_once(path, DIRTY)
        assert n1 == 2
        twice, n2 = fix_once(path, once)
        assert n2 == 0
        assert twice == once  # byte-for-byte

    def test_fixed_source_lints_clean(self):
        path = "src/repro/ltdp/fake.py"
        once, _ = fix_once(path, DIRTY)
        result = lint_sources([(path, once)])
        assert result.findings == []

    def test_import_inserted_exactly_once(self):
        path = "src/repro/ltdp/fake.py"
        once, _ = fix_once(path, DIRTY)
        assert once.count("from repro.semiring.tropical import NEG_INF") == 1


class TestCliIdempotency:
    def test_cli_fix_twice_is_noop(self, tmp_path):
        target = tmp_path / "fake.py"
        target.write_text(DIRTY)
        assert run_lint_command([str(target), "--fix"]) == 0
        after_first = target.read_bytes()
        assert run_lint_command([str(target), "--fix"]) == 0
        assert target.read_bytes() == after_first

    def test_cli_fix_then_plain_lint_is_clean(self, tmp_path):
        target = tmp_path / "fake.py"
        target.write_text(DIRTY)
        assert run_lint_command([str(target), "--fix"]) == 0
        assert run_lint_command([str(target)]) == 0
