"""REP007/REP008/REP009: the concurrency lint tier.

Trigger AND near-miss fixtures for each rule — the near-misses are the
annotations' whole value proposition: caller-locked methods, transport
-role locks and own-condition waits are exactly the legitimate patterns
the live runner/pool/serve code uses.
"""

from tests.lint.conftest import codes, run_lint, run_lint_files

FAKE = "src/repro/machine/fake.py"


# -- REP007: guarded-by discipline --------------------------------------


class TestGuardedByTriggers:
    def test_unlocked_write_of_declared_field(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: self._lock

                def bump(self):
                    self._n += 1
            """,
        )
        assert codes(r) == ["REP007"]
        assert "write to `self._n`" in r.findings[0].message
        assert "Counter.bump" in r.findings[0].message

    def test_unlocked_read_of_declared_field(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: self._lock

                def peek(self):
                    return self._n
            """,
        )
        assert codes(r) == ["REP007"]
        assert "read of `self._n`" in r.findings[0].message

    def test_guarded_fields_class_declaration(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Counter:
                guarded_fields = {"_n": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    self._n += 1
            """,
        )
        assert codes(r) == ["REP007"]

    def test_guard_naming_unknown_lock_is_flagged(self):
        # A typo in the guard must be loud, not silently unenforced.
        r = run_lint(
            FAKE,
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: self._locc
            """,
        )
        assert codes(r) == ["REP007"]
        assert "not a discovered lock" in r.findings[0].message


class TestGuardedByNearMisses:
    def test_access_inside_with_lock_is_clean(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: self._lock

                def bump(self):
                    with self._lock:
                        self._n += 1
            """,
        )
        assert r.findings == []

    def test_caller_locked_method_is_clean(self):
        # The near-miss the annotation syntax exists for: a helper only
        # ever invoked with the lock already held.
        r = run_lint(
            FAKE,
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0  # guarded-by: self._lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):  # repro: locked[self._lock]
                    self._n += 1
            """,
        )
        assert r.findings == []

    def test_init_is_exempt(self):
        # Construction happens-before publication; __init__ writes are
        # not findings even for declared fields.
        r = run_lint(
            FAKE,
            """\
            import threading

            class Counter:
                guarded_fields = {"_n": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0
                    self._n = self._n + 1
            """,
        )
        assert r.findings == []

    def test_undeclared_field_is_not_checked(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    self._n += 1
            """,
        )
        assert r.findings == []


# -- REP008: lock-order deadlock detection ------------------------------

#: A miniature pool with a seeded two-lock cycle: ``dispatch`` nests
#: worker[i] inside state (the ISSUE's canonical order), while ``ping``
#: nests state inside worker[i] — the inversion.  Two threads running
#: one each deadlock.
CYCLE_POOL = """\
import threading

class MiniPool:
    def __init__(self, n: int):
        self._state_lock = threading.RLock()
        self._worker_locks: list[threading.RLock] = []
        self._seq = 0

    def dispatch(self, w):
        with self._state_lock:
            with self._worker_locks[w]:
                pass

    def ping(self, w):
        with self._worker_locks[w]:
            with self._state_lock:
                self._seq += 1
"""


class TestLockOrderTriggers:
    def test_two_lock_cycle_reports_full_path(self):
        r = run_lint(FAKE, CYCLE_POOL)
        assert codes(r) == ["REP008"]
        msg = r.findings[0].message
        assert "lock-order cycle" in msg
        # The full cycle path, with both directed edges and their
        # witnesses, is in the one message.
        assert "MiniPool._state_lock" in msg
        assert "MiniPool._worker_locks[i]" in msg
        assert "MiniPool.dispatch" in msg
        assert "MiniPool.ping" in msg
        assert FAKE in msg  # per-edge witness locations

    def test_cycle_through_a_call_is_found(self):
        # The inversion hides one hop away: ping holds worker[i] and
        # calls a helper that takes the state lock.
        r = run_lint(
            FAKE,
            """\
            import threading

            class MiniPool:
                def __init__(self):
                    self._state_lock = threading.RLock()
                    self._worker_locks: list[threading.RLock] = []
                    self._seq = 0

                def _next_seq(self):
                    with self._state_lock:
                        self._seq += 1
                        return self._seq

                def dispatch(self, w):
                    with self._state_lock:
                        with self._worker_locks[w]:
                            pass

                def ping(self, w):
                    with self._worker_locks[w]:
                        return self._next_seq()
            """,
        )
        assert "REP008" in codes(r)
        assert any("lock-order cycle" in f.message for f in r.findings)

    def test_acquire_without_release(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Leaky:
                def __init__(self):
                    self._lock = threading.Lock()

                def grab(self):
                    self._lock.acquire()
                    return 1
            """,
        )
        assert codes(r) == ["REP008"]
        assert "no matching `release()`" in r.findings[0].message

    def test_nonreentrant_reacquisition(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class SelfDeadlock:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """,
        )
        assert codes(r) == ["REP008"]
        assert "self-deadlock" in r.findings[0].message


class TestLockOrderNearMisses:
    def test_consistent_nesting_is_clean(self):
        # Same two locks, always state -> worker[i]: an ordered pair is
        # fine; only the inversion closes a cycle.
        r = run_lint(
            FAKE,
            """\
            import threading

            class MiniPool:
                def __init__(self):
                    self._state_lock = threading.RLock()
                    self._worker_locks: list[threading.RLock] = []

                def dispatch(self, w):
                    with self._state_lock:
                        with self._worker_locks[w]:
                            pass

                def ping(self, w):
                    with self._state_lock:
                        with self._worker_locks[w]:
                            pass
            """,
        )
        assert r.findings == []

    def test_acquire_with_release_in_finally_is_clean(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Careful:
                def __init__(self):
                    self._lock = threading.Lock()

                def grab(self):
                    self._lock.acquire()
                    try:
                        return 1
                    finally:
                        self._lock.release()
            """,
        )
        assert r.findings == []

    def test_reentrant_reacquisition_is_clean(self):
        # RLock self-nesting (dispatch -> recover -> ping on the same
        # worker lock) is the pool's documented pattern.
        r = run_lint(
            FAKE,
            """\
            import threading

            class Nested:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """,
        )
        assert r.findings == []


# -- REP009: blocking-call-under-lock -----------------------------------


class TestBlockingUnderLockTriggers:
    def test_pipe_send_under_state_lock(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Pool:
                def __init__(self, conn):
                    self._state_lock = threading.RLock()
                    self._conn = conn

                def push(self, msg):
                    with self._state_lock:
                        self._conn.send(msg)
            """,
        )
        assert codes(r) == ["REP009"]
        assert "pipe I/O" in r.findings[0].message
        assert "_state_lock" in r.findings[0].message

    def test_thread_join_under_lock(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Crew:
                def __init__(self, t):
                    self._lock = threading.Lock()
                    self._t = t

                def stop(self):
                    with self._lock:
                        self._t.join()
            """,
        )
        assert codes(r) == ["REP009"]
        assert "join" in r.findings[0].message

    def test_blocking_reached_through_a_call(self):
        # Interprocedural: the lock holder calls a helper whose body
        # does the pipe I/O; the trail is named in the message.
        r = run_lint(
            FAKE,
            """\
            import threading

            class Pool:
                def __init__(self, conn):
                    self._state_lock = threading.RLock()
                    self._conn = conn

                def _send(self, msg):
                    self._conn.send(msg)

                def push(self, msg):
                    with self._state_lock:
                        self._send(msg)
            """,
        )
        assert codes(r) == ["REP009"]
        assert "Pool._send" in r.findings[0].message

    def test_pickling_under_lock(self):
        r = run_lint(
            FAKE,
            """\
            import pickle
            import threading

            class Pool:
                def __init__(self):
                    self._state_lock = threading.RLock()

                def pack(self, msg):
                    with self._state_lock:
                        return pickle.dumps(msg)
            """,
        )
        assert codes(r) == ["REP009"]
        assert "pickle" in r.findings[0].message


class TestBlockingUnderLockNearMisses:
    def test_transport_role_lock_is_exempt(self):
        # The pool's per-worker pipe locks: serializing this I/O is the
        # lock's purpose.
        r = run_lint(
            FAKE,
            """\
            import threading

            class Pool:
                def __init__(self, conn):
                    self._pipe_lock = threading.Lock()  # lock-role: transport
                    self._conn = conn

                def push(self, msg):
                    with self._pipe_lock:
                        self._conn.send(msg)
            """,
        )
        assert r.findings == []

    def test_waiting_on_own_condition_is_exempt(self):
        # Condition.wait_for releases the condition it blocks on — the
        # canonical WorkQueue.pull pattern.
        r = run_lint(
            FAKE,
            """\
            import threading

            class Queue:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._items = []  # guarded-by: self._cond

                def pull(self):
                    with self._cond:
                        self._cond.wait_for(lambda: self._items)
                        return self._items.pop()
            """,
        )
        assert r.findings == []

    def test_waiting_on_another_condition_is_flagged(self):
        # Holding lock A while waiting on condition B does NOT release
        # A: every A-contender stalls until the wait returns.
        r = run_lint(
            FAKE,
            """\
            import threading

            class TwoLocks:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cond = threading.Condition()

                def bad_wait(self):
                    with self._lock:
                        with self._cond:
                            self._cond.wait()
            """,
        )
        assert "REP009" in codes(r)

    def test_blocking_outside_the_lock_is_clean(self):
        r = run_lint(
            FAKE,
            """\
            import threading

            class Pool:
                def __init__(self, conn):
                    self._state_lock = threading.RLock()
                    self._conn = conn

                def push(self, msg):
                    with self._state_lock:
                        seq = 1
                    self._conn.send((seq, msg))
            """,
        )
        assert r.findings == []


# -- thread-root reachability (REP003 extension) ------------------------


class TestThreadRootReachability:
    def test_thread_target_method_is_a_determinism_root(self):
        # A runner loop spawned via threading.Thread(target=...) is a
        # concurrency entry point: nondeterminism inside it (or anything
        # it calls) is REP003 even though no pool-worker main names it.
        r = run_lint_files(
            {
                "src/repro/ltdp/engine/crew.py": """\
                import threading
                import time

                class Crew:
                    def __init__(self):
                        self._t = threading.Thread(target=self._loop)

                    def _loop(self):
                        return time.time()
                """
            }
        )
        assert codes(r) == ["REP003"]
        assert "wall clock" in r.findings[0].message

    def test_unspawned_method_is_not_a_root(self):
        r = run_lint_files(
            {
                "src/repro/ltdp/engine/crew.py": """\
                import time

                class Crew:
                    def _loop(self):
                        return time.time()
                """
            }
        )
        assert r.findings == []

    def test_module_function_target_resolves_through_import(self):
        r = run_lint_files(
            {
                "src/repro/ltdp/engine/loops.py": """\
                import time

                def batcher_loop():
                    return time.time()
                """,
                "src/repro/ltdp/engine/crew.py": """\
                import threading

                from repro.ltdp.engine.loops import batcher_loop

                def start():
                    return threading.Thread(target=batcher_loop)
                """,
            }
        )
        assert codes(r) == ["REP003"]
        assert r.findings[0].path == "src/repro/ltdp/engine/loops.py"
