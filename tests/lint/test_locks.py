"""Unit tests for the static lock model (``repro.lint.locks``)."""

import ast
import textwrap

from repro.lint.core import FileContext
from repro.lint.locks import (
    ROLE_STATE,
    ROLE_TRANSPORT,
    build_class_models,
    build_project_model,
    site_block_reason,
)
from repro.lint.runner import package_relpath


def make_ctx(path: str, source: str) -> FileContext:
    source = textwrap.dedent(source)
    return FileContext(
        path=path,
        relpath=package_relpath(path),
        source=source,
        tree=ast.parse(source),
    )


def model_of(source: str, path: str = "src/repro/machine/fake.py"):
    models = build_class_models(make_ctx(path, source))
    assert len(models) == 1
    return models[0]


class TestLockDiscovery:
    def test_plain_ctor_assignment(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._rl = threading.RLock()
                    self._cond = threading.Condition()
            """
        )
        assert set(m.locks) == {"_lock", "_rl", "_cond"}
        assert m.locks["_lock"].reentrant is False
        assert m.locks["_rl"].reentrant is True
        assert m.locks["_cond"].reentrant is True
        assert m.locks["_lock"].role == ROLE_STATE

    def test_annotated_list_of_locks(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._worker_locks: list[threading.RLock] = []

                def grow(self):
                    self._worker_locks.append(threading.RLock())
            """
        )
        info = m.locks["_worker_locks"]
        assert info.is_list is True
        assert info.node_name == "C._worker_locks[i]"

    def test_transport_role_comment(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._pipe_lock = threading.Lock()  # lock-role: transport
                    self._state = threading.Lock()
            """
        )
        assert m.locks["_pipe_lock"].role == ROLE_TRANSPORT
        assert m.locks["_state"].role == ROLE_STATE

    def test_unknown_role_is_a_problem(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._l = threading.Lock()  # lock-role: turbo
            """
        )
        assert any("lock-role" in msg for _, msg in m.problems)
        assert m.locks["_l"].role == ROLE_STATE  # falls back to state


class TestGuardDeclarations:
    def test_inline_guarded_by_comment(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: self._lock
            """
        )
        assert m.guarded == {"_items": "_lock"}

    def test_class_level_guarded_fields_dict(self):
        m = model_of(
            """
            import threading

            class C:
                guarded_fields = {"_items": "_lock", "_n": "_lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []
                    self._n = 0
            """
        )
        assert m.guarded == {"_items": "_lock", "_n": "_lock"}

    def test_guard_naming_unknown_lock_is_a_problem(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []  # guarded-by: self._lokc
            """
        )
        assert any("not a discovered lock" in msg for _, msg in m.problems)

    def test_non_literal_guarded_fields_is_a_problem(self):
        m = model_of(
            """
            import threading

            class C:
                guarded_fields = dict(_items="_lock")

                def __init__(self):
                    self._lock = threading.Lock()
            """
        )
        assert any("literal dict" in msg for _, msg in m.problems)


class TestHeldTracking:
    def test_with_block_holds_and_releases(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def inc(self):
                    with self._lock:
                        self._n += 1
                    self._n = 0
            """
        )
        accesses = [
            a for a in m.methods["inc"].accesses if a.attr == "_n"
        ]
        held = [("_lock" in a.held) for a in accesses]
        # Inside the with (read + write of the AugAssign), then outside.
        assert held[:-1] == [True] * (len(held) - 1)
        assert held[-1] is False

    def test_caller_locked_method_starts_held(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def _inc_locked(self):  # repro: locked[self._lock]
                    self._n += 1
            """
        )
        assert m.methods["_inc_locked"].caller_locked == frozenset({"_lock"})
        assert all("_lock" in a.held for a in m.methods["_inc_locked"].accesses)

    def test_caller_locked_unknown_lock_is_a_problem(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._lock = threading.Lock()

                def f(self):  # repro: locked[self._nope]
                    pass
            """
        )
        assert any("names no discovered lock" in msg for _, msg in m.problems)

    def test_local_alias_acquire_release(self):
        m = model_of(
            """
            import threading

            class C:
                def __init__(self):
                    self._worker_locks: list[threading.RLock] = []

                def use(self, ws):
                    locks = [self._worker_locks[w] for w in sorted(ws)]
                    for lock in locks:
                        lock.acquire()
                    try:
                        self.work()
                    finally:
                        for lock in reversed(locks):
                            lock.release()
            """
        )
        method = m.methods["use"]
        assert [a.attr for a in method.acquisitions] == ["_worker_locks"]
        assert method.releases == {"_worker_locks"}
        # The call to self.work() happens with the worker lock held.
        work_sites = [
            s for s in method.call_sites if s.attr_name == "work"
        ]
        assert work_sites and "_worker_locks" in work_sites[0].held


class TestBlockingPredicate:
    def _sites(self, body: str):
        src = (
            "import os\n"
            "import threading\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "    def f(self, conn, t, xs):\n"
            + "".join(f"        {line}\n" for line in body.splitlines())
        )
        m = model_of(src)
        return m.methods["f"].call_sites

    def test_pipe_and_join_block(self):
        sites = self._sites("conn.send(1)\nt.join()\n")
        reasons = [site_block_reason(s) for s in sites]
        assert any(r and "pipe" in r for r in reasons)
        assert any(r and "join" in r for r in reasons)

    def test_string_join_is_not_blocking(self):
        sites = self._sites("y = ','.join(xs)\nz = os.path.join('a', 'b')\n")
        assert all(site_block_reason(s) is None for s in sites)


class TestProjectModel:
    def test_transitive_acquires_through_typed_call(self):
        ctx = make_ctx(
            "src/repro/machine/fake.py",
            """
            import threading

            class Inner:
                def __init__(self):
                    self._b = threading.Lock()

                def locked_op(self):
                    with self._b:
                        pass

            class Outer:
                def __init__(self):
                    self._a = threading.Lock()
                    self._inner = Inner()

                def op(self):
                    with self._a:
                        self._inner.locked_op()
            """,
        )
        from repro.lint.core import ProjectContext

        model = build_project_model(ProjectContext(files=[ctx]))
        op_uid = ("c", "repro.machine.fake", "Outer", "op")
        assert "Inner._b" in model.transitive_acquires[op_uid]

    def test_ambiguous_class_names_dropped_from_resolution(self):
        ctx_a = make_ctx(
            "src/repro/machine/a.py",
            """
            class Dup:
                def m(self):
                    pass
            """,
        )
        ctx_b = make_ctx(
            "src/repro/machine/b.py",
            """
            class Dup:
                def m(self):
                    pass
            """,
        )
        from repro.lint.core import ProjectContext

        model = build_project_model(ProjectContext(files=[ctx_a, ctx_b]))
        assert "Dup" not in model.classes_by_name
