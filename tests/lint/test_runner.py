"""Runner plumbing: CLI entry points, reports, exit codes, self-lint."""

import json
import os

import pytest

from repro.cli import main as repro_main
from repro.lint.runner import run_lint_command

from tests.lint.conftest import run_lint

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src", "repro")


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "fake.py"
    path.write_text('v = float("-inf")\n')
    return str(path)


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "fake.py"
    path.write_text("v = 1\n")
    return str(path)


class TestExitCodes:
    def test_clean_is_zero(self, clean_file, capsys):
        assert run_lint_command([clean_file]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_are_one(self, dirty_file, capsys):
        assert run_lint_command([dirty_file]) == 1
        out = capsys.readouterr().out
        assert "REP001" in out and "[fixable]" in out

    def test_missing_path_is_two(self, tmp_path, capsys):
        assert run_lint_command([str(tmp_path / "nope.py")]) == 2

    def test_syntax_error_is_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(:\n")
        assert run_lint_command([str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().out


class TestOptions:
    def test_select_restricts_rules(self, dirty_file, capsys):
        assert run_lint_command([dirty_file, "--select", "REP004"]) == 0

    def test_list_rules(self, capsys):
        assert run_lint_command(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
        ):
            assert code in out

    def test_json_report(self, dirty_file, capsys):
        assert run_lint_command([dirty_file, "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema_version"] == 2
        assert report["counts"] == {"REP001": 1}
        assert report["findings"][0]["fixable"] is True
        # Per-rule catalog is zero-filled: every active rule is listed.
        by_code = {r["code"]: r for r in report["rules"]}
        assert by_code["REP001"]["findings"] == 1
        assert by_code["REP009"]["findings"] == 0
        assert by_code["REP007"]["name"] == "guarded-by-discipline"

    def test_json_report_validates(self, dirty_file, tmp_path, capsys):
        from repro.lint.runner import validate_report

        run_lint_command([dirty_file, "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert validate_report(report) == []
        # --check-report round-trip through a file.
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        assert run_lint_command(["--check-report", str(path)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_check_report_rejects_tampered_report(self, dirty_file, tmp_path, capsys):
        run_lint_command([dirty_file, "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        report["counts"] = {"REP001": 7}  # disagree with findings
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        assert run_lint_command(["--check-report", str(path)]) == 2
        assert "disagree" in capsys.readouterr().out

    def test_check_report_rejects_old_schema(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"schema_version": 1}))
        assert run_lint_command(["--check-report", str(path)]) == 2
        assert "schema_version" in capsys.readouterr().out

    def test_fix_rewrites_file_to_clean(self, dirty_file, capsys):
        assert run_lint_command([dirty_file, "--fix"]) == 0
        with open(dirty_file) as fh:
            fixed = fh.read()
        assert "NEG_INF" in fixed and 'float("-inf")' not in fixed
        assert run_lint_command([dirty_file]) == 0


class TestCliIntegration:
    def test_repro_lint_subcommand(self, dirty_file, capsys):
        assert repro_main(["lint", dirty_file]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_repro_lint_list_rules(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0


class TestReportShape:
    def test_text_summary_counts_by_code(self):
        result = run_lint(
            "src/repro/ltdp/fake.py",
            'a = float("-inf")\nb = max(xs)\nc = max(ys)\n',
        )
        summary = result.render_text().splitlines()[-1]
        assert "REP001×1" in summary and "REP002×2" in summary

    def test_findings_sorted_by_location(self):
        result = run_lint(
            "src/repro/ltdp/fake.py", 'b = max(xs)\na = float("-inf")\n'
        )
        assert [f.line for f in result.findings] == [1, 2]


class TestSelfLint:
    def test_package_lints_clean(self, capsys):
        # The CI gate: the shipped package must satisfy its own rules.
        assert run_lint_command([REPO_SRC]) == 0
        assert "0 finding(s)" in capsys.readouterr().out
