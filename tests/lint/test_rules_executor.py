"""REP005: the executor exception contract."""

from tests.lint.conftest import codes, run_lint

EXECUTOR = "src/repro/machine/executor.py"
POOLRT = "src/repro/ltdp/engine/poolrt.py"


class TestRaiseSites:
    def test_raw_runtime_error_flagged(self):
        r = run_lint(EXECUTOR, 'raise RuntimeError("worker died")\n')
        assert codes(r) == ["REP005"]
        assert "RuntimeError" in r.findings[0].message

    def test_executor_error_accepted(self):
        src = (
            "from repro.exceptions import ExecutorError\n"
            'raise ExecutorError("worker died")\n'
        )
        assert codes(run_lint(EXECUTOR, src)) == []

    def test_executor_error_subclass_accepted(self):
        src = (
            "from repro.exceptions import WorkerCrashError\n"
            'raise WorkerCrashError("gone")\n'
        )
        assert codes(run_lint(EXECUTOR, src)) == []

    def test_validation_errors_exempt(self):
        src = 'raise ValueError("max_workers must be >= 1")\n'
        assert codes(run_lint(EXECUTOR, src)) == []

    def test_bare_reraise_accepted(self):
        src = "try:\n    f()\nexcept OSError:\n    raise\n"
        assert codes(run_lint(EXECUTOR, src)) == []

    def test_raises_outside_scope_not_checked(self):
        r = run_lint("src/repro/analysis/fake.py", 'raise RuntimeError("x")\n')
        assert codes(r) == []


class TestExceptHandlers:
    def test_except_exception_flagged(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        r = run_lint(POOLRT, src)
        assert codes(r) == ["REP005"]
        assert "narrow the exception types" in r.findings[0].message

    def test_bare_except_flagged(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert codes(run_lint(EXECUTOR, src)) == ["REP005"]

    def test_base_exception_in_tuple_flagged(self):
        src = "try:\n    f()\nexcept (OSError, BaseException):\n    pass\n"
        assert codes(run_lint(EXECUTOR, src)) == ["REP005"]

    def test_narrow_handler_accepted(self):
        src = "try:\n    f()\nexcept (BrokenPipeError, OSError):\n    pass\n"
        assert codes(run_lint(POOLRT, src)) == []

    def test_reasoned_suppression_honored(self):
        src = (
            "try:\n"
            "    f()\n"
            "except Exception:  # repro: noqa[REP005]: child must report all\n"
            "    pass\n"
        )
        r = run_lint(EXECUTOR, src)
        assert codes(r) == []
        assert r.suppressed == 1
