"""REP001 (raw tropical zero) and REP002 (identity-unsafe reductions)."""

import textwrap

from repro.lint.runner import apply_fixes, lint_sources

from tests.lint.conftest import codes, run_lint


class TestRep001Triggers:
    def test_float_neg_inf(self):
        r = run_lint("src/repro/ltdp/fake.py", 'v = float("-inf")\n')
        assert codes(r) == ["REP001"]
        assert r.findings[0].fix is not None

    def test_neg_math_inf(self):
        r = run_lint("src/repro/ltdp/fake.py", "import math\nv = -math.inf\n")
        assert codes(r) == ["REP001"]

    def test_neg_np_inf(self):
        r = run_lint(
            "src/repro/ltdp/fake.py", "import numpy as np\nv = -np.inf\n"
        )
        assert codes(r) == ["REP001"]

    def test_negated_float_inf(self):
        r = run_lint("src/repro/ltdp/fake.py", 'v = -float("inf")\n')
        assert codes(r) == ["REP001"]


class TestRep001NearMisses:
    def test_semiring_package_is_exempt(self):
        r = run_lint("src/repro/semiring/fake.py", 'v = float("-inf")\n')
        assert codes(r) == []

    def test_positive_inf_is_fine(self):
        r = run_lint("src/repro/ltdp/fake.py", 'v = float("inf")\n')
        assert codes(r) == []

    def test_unrelated_float_call(self):
        r = run_lint("src/repro/ltdp/fake.py", 'v = float("3.5")\n')
        assert codes(r) == []

    def test_plain_math_inf_attribute(self):
        r = run_lint("src/repro/ltdp/fake.py", "import math\nv = math.inf\n")
        assert codes(r) == []


class TestRep001Autofix:
    def test_fix_replaces_literal_and_adds_import(self):
        path = "src/repro/ltdp/fake.py"
        source = textwrap.dedent(
            '''\
            """Doc."""

            import numpy as np

            def f():
                return np.full(3, float("-inf"))
            '''
        )
        result = lint_sources([(path, source)])
        fixed, applied = apply_fixes(path, source, result.findings)
        assert applied == 1
        assert 'float("-inf")' not in fixed
        assert "np.full(3, NEG_INF)" in fixed
        assert "from repro.semiring.tropical import NEG_INF" in fixed
        # The rewritten file is clean.
        assert lint_sources([(path, fixed)]).findings == []

    def test_fix_does_not_duplicate_existing_import(self):
        path = "src/repro/ltdp/fake.py"
        source = (
            "from repro.semiring.tropical import NEG_INF\n"
            'v = float("-inf")\n'
        )
        result = lint_sources([(path, source)])
        fixed, applied = apply_fixes(path, source, result.findings)
        assert applied == 1
        assert fixed.count("from repro.semiring.tropical import NEG_INF") == 1


class TestRep002Triggers:
    def test_bare_max_over_list(self):
        r = run_lint("src/repro/ltdp/fake.py", "m = max(values)\n")
        assert codes(r) == ["REP002"]

    def test_max_over_generic_comprehension(self):
        r = run_lint(
            "src/repro/ltdp/fake.py", "m = max(v for v in candidates)\n"
        )
        assert codes(r) == ["REP002"]

    def test_np_maximum_reduce_without_initial(self):
        r = run_lint(
            "src/repro/semiring/fake.py",
            "import numpy as np\nm = np.maximum.reduce(rows)\n",
        )
        assert codes(r) == ["REP002"]


class TestRep002NearMisses:
    def test_max_with_default(self):
        r = run_lint(
            "src/repro/ltdp/fake.py",
            "from repro.semiring.tropical import NEG_INF\n"
            "m = max(values, default=NEG_INF)\n",
        )
        assert codes(r) == []

    def test_two_argument_max(self):
        r = run_lint("src/repro/ltdp/fake.py", "m = max(a, b)\n")
        assert codes(r) == []

    def test_range_comprehension_is_exempt(self):
        # Stage-index ranges are non-empty by the LTDP problem contract.
        r = run_lint(
            "src/repro/ltdp/fake.py", "m = max(w(i) for i in range(n))\n"
        )
        assert codes(r) == []

    def test_reduce_with_initial(self):
        r = run_lint(
            "src/repro/ltdp/fake.py",
            "import numpy as np\n"
            "from repro.semiring.tropical import NEG_INF\n"
            "m = np.maximum.reduce(rows, initial=NEG_INF)\n",
        )
        assert codes(r) == []

    def test_out_of_scope_package_is_exempt(self):
        r = run_lint("src/repro/analysis/fake.py", "m = max(values)\n")
        assert codes(r) == []
