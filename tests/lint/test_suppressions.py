"""Suppression comments: honored waivers, mandatory reasons, REP000."""

from repro.lint.core import collect_suppressions

from tests.lint.conftest import codes, run_lint

# A REP001 trigger usable from any non-semiring path.
TRIGGER = 'x = float("-inf")\n'


class TestParsing:
    def test_parses_codes_and_reason(self):
        sups, problems = collect_suppressions(
            "x = 1  # repro: noqa[REP001,REP004]: legacy table kept raw\n"
        )
        assert problems == []
        assert sups[1].codes == frozenset({"REP001", "REP004"})
        assert sups[1].reason == "legacy table kept raw"

    def test_missing_reason_is_rep000(self):
        _, problems = collect_suppressions("x = 1  # repro: noqa[REP001]\n")
        assert [p.code for p in problems] == ["REP000"]
        assert "no reason" in problems[0].message

    def test_invalid_code_is_rep000(self):
        _, problems = collect_suppressions(
            "x = 1  # repro: noqa[BLE001]: wrong linter\n"
        )
        assert [p.code for p in problems] == ["REP000"]

    def test_empty_code_list_is_rep000(self):
        _, problems = collect_suppressions("x = 1  # repro: noqa[]: because\n")
        assert [p.code for p in problems] == ["REP000"]

    def test_docstrings_and_strings_are_not_suppressions(self):
        # Only real comment tokens count: mentioning the syntax in a
        # docstring or string literal must neither waive nor REP000.
        sups, problems = collect_suppressions(
            '"""Use # repro: noqa[REP001]: reason to waive."""\n'
            's = "# repro: noqa[REP001]"\n'
        )
        assert sups == {}
        assert problems == []


class TestFiltering:
    def test_suppression_silences_matching_code(self):
        result = run_lint(
            "src/repro/demo.py",
            TRIGGER[:-1] + "  # repro: noqa[REP001]: raw literal needed here\n",
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_suppression_for_other_code_does_not_silence(self):
        # The REP004 waiver does not silence the REP001 finding — and it
        # is itself stale (REP004 never fired on that line).
        result = run_lint(
            "src/repro/demo.py",
            TRIGGER[:-1] + "  # repro: noqa[REP004]: wrong code\n",
        )
        assert sorted(codes(result)) == ["REP000", "REP001"]
        assert result.suppressed == 0

    def test_reasonless_suppression_reports_rep000_and_finding(self):
        result = run_lint(
            "src/repro/demo.py", TRIGGER[:-1] + "  # repro: noqa[REP001]\n"
        )
        assert sorted(codes(result)) == ["REP000", "REP001"]

    def test_suppression_only_applies_to_its_line(self):
        # The waiver on line 1 silences nothing there (stale → REP000)
        # and does not reach the trigger on line 2.
        result = run_lint(
            "src/repro/demo.py",
            "y = 0  # repro: noqa[REP001]: wrong line\n" + TRIGGER,
        )
        assert sorted(codes(result)) == ["REP000", "REP001"]


class TestStaleWaivers:
    def test_stale_waiver_reported_by_default(self):
        result = run_lint(
            "src/repro/demo.py",
            "x = 1  # repro: noqa[REP001]: nothing fires here\n",
        )
        assert codes(result) == ["REP000"]
        assert "stale waiver" in result.findings[0].message
        assert "REP001" in result.findings[0].message

    def test_live_waiver_is_not_stale(self):
        result = run_lint(
            "src/repro/demo.py",
            TRIGGER[:-1] + "  # repro: noqa[REP001]: raw literal needed\n",
        )
        assert result.findings == []
        assert result.suppressed == 1

    def test_opt_out_flag_silences_stale_report(self):
        from repro.lint.runner import lint_sources

        result = lint_sources(
            [
                (
                    "src/repro/demo.py",
                    "x = 1  # repro: noqa[REP001]: nothing fires here\n",
                )
            ],
            report_unused_waivers=False,
        )
        assert result.findings == []

    def test_inactive_rule_waiver_is_not_declared_stale(self):
        # Near-miss: under --select REP001 a REP003 waiver must not be
        # reported stale — its rule simply did not run.
        from repro.lint.runner import lint_sources

        result = lint_sources(
            [
                (
                    "src/repro/demo.py",
                    "x = 1  # repro: noqa[REP003]: covered by another run\n",
                )
            ],
            select=["REP001"],
        )
        assert result.findings == []
