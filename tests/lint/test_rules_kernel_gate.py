"""REP006: registered fast-path kernels declare their bit-identity gate."""

from tests.lint.conftest import codes, run_lint_files

KERNEL = "src/repro/kernels/custom.py"
INIT = "src/repro/kernels/__init__.py"


def _kernel_class(gate_line: str) -> str:
    return f"""
    from repro.kernels.base import BlockSweep, StageBlockKernel

    class CustomKernel(StageBlockKernel):
        name = "custom"
    {gate_line}
        def plan(self, problem):
            return None
    """


class TestTrigger:
    def test_registered_gateless_kernel_flagged(self):
        r = run_lint_files(
            {
                KERNEL: _kernel_class(""),
                INIT: """
                from repro.kernels.custom import CustomKernel
                from repro.kernels.registry import register_kernel

                register_kernel(object, CustomKernel())
                """,
            }
        )
        assert codes(r) == ["REP006"]
        assert "CustomKernel" in r.findings[0].message
        assert "bit_identity_gate" in r.findings[0].message

    def test_empty_string_gate_flagged(self):
        r = run_lint_files(
            {
                KERNEL: _kernel_class('    bit_identity_gate = "   "'),
                INIT: """
                from repro.kernels.custom import CustomKernel
                from repro.kernels.registry import register_kernel

                register_kernel(object, CustomKernel())
                """,
            }
        )
        assert codes(r) == ["REP006"]

    def test_registration_outside_kernels_package_still_flagged(self):
        r = run_lint_files(
            {
                KERNEL: _kernel_class(""),
                "src/repro/ltdp/engine/poolrt.py": """
                from repro.kernels import register_kernel
                from repro.kernels.custom import CustomKernel

                register_kernel(object, CustomKernel())
                """,
            }
        )
        assert codes(r) == ["REP006"]


class TestNearMisses:
    def test_gated_kernel_clean(self):
        r = run_lint_files(
            {
                KERNEL: _kernel_class(
                    '    bit_identity_gate = "first block stage re-derived densely"'
                ),
                INIT: """
                from repro.kernels.custom import CustomKernel
                from repro.kernels.registry import register_kernel

                register_kernel(object, CustomKernel())
                """,
            }
        )
        assert codes(r) == []

    def test_unregistered_gateless_class_not_flagged(self):
        # An abstract intermediate base never reaches the registry; the
        # runtime check guards anything built from it dynamically.
        r = run_lint_files({KERNEL: _kernel_class("")})
        assert codes(r) == []

    def test_instance_variable_registration_left_to_runtime(self):
        r = run_lint_files(
            {
                KERNEL: _kernel_class(""),
                INIT: """
                from repro.kernels.custom import CustomKernel
                from repro.kernels.registry import register_kernel

                kernel = CustomKernel()
                register_kernel(object, kernel)
                """,
            }
        )
        assert codes(r) == []

    def test_unrelated_register_function_not_flagged(self):
        r = run_lint_files(
            {
                INIT: """
                def register_handler(kind, handler):
                    pass

                class Handler:
                    pass

                register_handler(object, Handler())
                """,
            }
        )
        assert codes(r) == []

    def test_shipped_kernels_package_is_clean(self):
        import pathlib

        from repro.lint.runner import lint_sources

        root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro" / "kernels"
        files = [
            (str(p), p.read_text()) for p in sorted(root.glob("*.py"))
        ]
        result = lint_sources(files)
        assert [f.code for f in result.findings if f.code == "REP006"] == []


class TestRuntimeEnforcementParity:
    def test_registry_raises_what_the_rule_flags(self):
        """REP006 and ``register_kernel`` enforce the same contract."""
        import pytest

        from repro.exceptions import KernelRegistrationError
        from repro.kernels import StageBlockKernel, register_kernel

        class Gateless(StageBlockKernel):
            name = "gateless"

        with pytest.raises(KernelRegistrationError, match="bit_identity_gate"):
            register_kernel(object, Gateless())
