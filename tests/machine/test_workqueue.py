"""Unit tests for the dependency-tracking work queue.

The queue is the contract surface between the driver (enqueueing
instruction deliveries) and the runner threads (pulling ready ones):
dependency release, deliberate duplicate delivery, pull ordering and
abandon-on-teardown are each pinned here in isolation, single-threaded
where possible so failures point at queue logic rather than races.
"""

import threading

import pytest

from repro.machine.workqueue import WorkQueue


class TestReadiness:
    def test_fifo_order_among_ready(self):
        q = WorkQueue()
        q.put(1, "a")
        q.put(2, "b")
        q.put(3, "c")
        assert [q.pull(timeout=0)[1] for _ in range(3)] == ["a", "b", "c"]

    def test_lifo_order_among_ready(self):
        q = WorkQueue(order="lifo")
        q.put(1, "a")
        q.put(2, "b")
        q.put(3, "c")
        assert [q.pull(timeout=0)[1] for _ in range(3)] == ["c", "b", "a"]

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            WorkQueue(order="random")

    def test_dependency_blocks_until_marked_done(self):
        q = WorkQueue()
        q.put(2, "dependent", deps=(1,))
        assert q.pull(timeout=0) is None  # not ready yet
        assert q.pending() == 1  # ... but not lost either
        q.mark_done(1)
        assert q.pull(timeout=0) == (2, "dependent")

    def test_done_dependency_is_satisfied_at_put(self):
        q = WorkQueue()
        q.mark_done(1)
        q.put(2, "dependent", deps=(1,))
        assert q.pull(timeout=0) == (2, "dependent")

    def test_multiple_deps_release_only_when_all_done(self):
        q = WorkQueue()
        q.put(3, "join", deps=(1, 2))
        q.mark_done(1)
        assert q.pull(timeout=0) is None
        q.mark_done(2)
        assert q.pull(timeout=0) == (3, "join")

    def test_one_done_releases_all_waiters(self):
        q = WorkQueue()
        q.put(2, "x", deps=(1,))
        q.put(3, "y", deps=(1,))
        q.mark_done(1)
        assert {q.pull(timeout=0)[0] for _ in range(2)} == {2, 3}

    def test_mark_done_is_idempotent(self):
        q = WorkQueue()
        q.put(2, "x", deps=(1,))
        q.mark_done(1)
        q.mark_done(1)  # duplicate deliveries each mark once
        assert q.pull(timeout=0) == (2, "x")
        assert q.pull(timeout=0) is None

    def test_is_done(self):
        q = WorkQueue()
        assert not q.is_done(1)
        q.mark_done(1)
        assert q.is_done(1)


class TestDuplicateDelivery:
    def test_same_id_enqueued_twice_delivers_twice(self):
        """The queue never deduplicates — repeat delivery is the
        redelivery suite's injection mechanism; harmlessness is the
        consumer's contract, not the queue's."""
        q = WorkQueue()
        q.put(1, "first")
        q.put(1, "second")
        assert q.pull(timeout=0) == (1, "first")
        assert q.pull(timeout=0) == (1, "second")

    def test_blocked_duplicates_both_release(self):
        q = WorkQueue()
        q.put(2, "a", deps=(1,))
        q.put(2, "b", deps=(1,))
        assert q.pending() == 2
        q.mark_done(1)
        assert q.pull(timeout=0) == (2, "a")
        assert q.pull(timeout=0) == (2, "b")


class TestAbandon:
    def test_abandon_reports_dropped_and_kills_queue(self):
        q = WorkQueue()
        q.put(1, "ready")
        q.put(3, "blocked", deps=(2,))
        assert q.abandon() == 2
        assert q.abandoned
        assert q.pull(timeout=None) is None  # returns, never blocks
        with pytest.raises(RuntimeError, match="abandoned"):
            q.put(4, "late")

    def test_abandon_wakes_blocked_puller(self):
        q = WorkQueue()
        got = []
        t = threading.Thread(target=lambda: got.append(q.pull()))
        t.start()
        q.abandon()
        t.join(timeout=5)
        assert not t.is_alive()
        assert got == [None]

    def test_pull_timeout_returns_none(self):
        q = WorkQueue()
        assert q.pull(timeout=0.01) is None


class TestConcurrency:
    def test_many_threads_drain_everything_exactly_once_per_delivery(self):
        q = WorkQueue()
        total = 200
        for i in range(1, total + 1):
            q.put(i, i, deps=(i - 1,) if i > 1 else ())
        pulled = []
        lock = threading.Lock()

        def worker():
            while True:
                item = q.pull(timeout=1.0)
                if item is None:
                    return
                with lock:
                    pulled.append(item[0])
                q.mark_done(item[0])

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        # A chain DAG forces strictly increasing delivery order.
        assert pulled == list(range(1, total + 1))
