"""Tests for execution-trace construction and rendering."""

import numpy as np
import pytest

from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import solve_parallel
from repro.machine.cost_model import CostModel
from repro.machine.metrics import RunMetrics, SuperstepRecord
from repro.machine.trace import build_trace, render_gantt, utilization


def simple_metrics():
    m = RunMetrics(num_procs=2)
    m.record(SuperstepRecord(label="forward", work=[10.0, 5.0]))
    m.record(SuperstepRecord(label="fixup[1]", work=[0.0, 4.0]))
    return m


class TestBuildTrace:
    def test_interval_structure(self):
        cm = CostModel(cell_cost=1.0, barrier_latency=0.0)
        intervals, makespan = build_trace(simple_metrics(), cm)
        # Three busy intervals: P1 forward, P2 forward, P2 fixup.
        assert len(intervals) == 3
        assert makespan == pytest.approx(14.0)
        p1 = [iv for iv in intervals if iv.proc == 1]
        assert p1[0].duration == pytest.approx(10.0)

    def test_supersteps_do_not_overlap(self):
        cm = CostModel(cell_cost=1.0, barrier_latency=2.0)
        intervals, _ = build_trace(simple_metrics(), cm)
        fixup = [iv for iv in intervals if iv.label.startswith("fixup")]
        forward = [iv for iv in intervals if iv.label == "forward"]
        assert min(f.start for f in fixup) >= max(f.end for f in forward)

    def test_barrier_shifts_following_superstep(self):
        no_barrier = build_trace(simple_metrics(), CostModel(cell_cost=1.0, barrier_latency=0.0))
        with_barrier = build_trace(simple_metrics(), CostModel(cell_cost=1.0, barrier_latency=3.0))
        assert with_barrier[1] == pytest.approx(no_barrier[1] + 6.0)

    def test_utilization_bounds(self):
        cm = CostModel(cell_cost=1.0, barrier_latency=0.0)
        util = utilization(simple_metrics(), cm)
        assert len(util) == 2
        assert all(0.0 <= u <= 1.0 for u in util)
        # P1 works 10 of 14; P2 works 9 of 14.
        assert util[0] == pytest.approx(10 / 14)
        assert util[1] == pytest.approx(9 / 14)


class TestRenderGantt:
    def test_renders_all_processors(self):
        cm = CostModel(cell_cost=1.0)
        text = render_gantt(simple_metrics(), cm, columns=40)
        assert text.count("|") == 4  # two rows, two bars each
        assert "P1" in text and "P2" in text
        assert "makespan" in text

    def test_glyphs_present(self):
        cm = CostModel(cell_cost=1.0)
        text = render_gantt(simple_metrics(), cm, columns=40)
        assert "F" in text and "x" in text

    def test_columns_validated(self):
        with pytest.raises(ValueError):
            render_gantt(simple_metrics(), CostModel(), columns=5)

    def test_real_run_traces(self):
        rng = np.random.default_rng(0)
        p = random_matrix_problem(40, 4, rng, integer=True)
        par = solve_parallel(p, num_procs=4)
        text = render_gantt(par.metrics, CostModel(cell_cost=1e-6), columns=60)
        assert text.count("P") >= 4
