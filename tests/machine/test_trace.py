"""Tests for execution-trace construction and rendering."""

import json
import time

import numpy as np
import pytest

from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import solve_parallel
from repro.machine.cost_model import CostModel
from repro.machine.metrics import RunMetrics, SuperstepRecord
from repro.machine.trace import (
    TRACE_SCHEMA_VERSION,
    Tracer,
    build_trace,
    render_gantt,
    utilization,
)


def simple_metrics():
    m = RunMetrics(num_procs=2)
    m.record(SuperstepRecord(label="forward", work=[10.0, 5.0]))
    m.record(SuperstepRecord(label="fixup[1]", work=[0.0, 4.0]))
    return m


class TestBuildTrace:
    def test_interval_structure(self):
        cm = CostModel(cell_cost=1.0, barrier_latency=0.0)
        intervals, makespan = build_trace(simple_metrics(), cm)
        # Three busy intervals: P1 forward, P2 forward, P2 fixup.
        assert len(intervals) == 3
        assert makespan == pytest.approx(14.0)
        p1 = [iv for iv in intervals if iv.proc == 1]
        assert p1[0].duration == pytest.approx(10.0)

    def test_supersteps_do_not_overlap(self):
        cm = CostModel(cell_cost=1.0, barrier_latency=2.0)
        intervals, _ = build_trace(simple_metrics(), cm)
        fixup = [iv for iv in intervals if iv.label.startswith("fixup")]
        forward = [iv for iv in intervals if iv.label == "forward"]
        assert min(f.start for f in fixup) >= max(f.end for f in forward)

    def test_barrier_shifts_following_superstep(self):
        no_barrier = build_trace(simple_metrics(), CostModel(cell_cost=1.0, barrier_latency=0.0))
        with_barrier = build_trace(simple_metrics(), CostModel(cell_cost=1.0, barrier_latency=3.0))
        assert with_barrier[1] == pytest.approx(no_barrier[1] + 6.0)

    def test_utilization_bounds(self):
        cm = CostModel(cell_cost=1.0, barrier_latency=0.0)
        util = utilization(simple_metrics(), cm)
        assert len(util) == 2
        assert all(0.0 <= u <= 1.0 for u in util)
        # P1 works 10 of 14; P2 works 9 of 14.
        assert util[0] == pytest.approx(10 / 14)
        assert util[1] == pytest.approx(9 / 14)


class TestRenderGantt:
    def test_renders_all_processors(self):
        cm = CostModel(cell_cost=1.0)
        text = render_gantt(simple_metrics(), cm, columns=40)
        assert text.count("|") == 4  # two rows, two bars each
        assert "P1" in text and "P2" in text
        assert "makespan" in text

    def test_glyphs_present(self):
        cm = CostModel(cell_cost=1.0)
        text = render_gantt(simple_metrics(), cm, columns=40)
        assert "F" in text and "x" in text

    def test_columns_validated(self):
        with pytest.raises(ValueError):
            render_gantt(simple_metrics(), CostModel(), columns=5)

    def test_real_run_traces(self):
        rng = np.random.default_rng(0)
        p = random_matrix_problem(40, 4, rng, integer=True)
        par = solve_parallel(p, num_procs=4)
        text = render_gantt(par.metrics, CostModel(cell_cost=1e-6), columns=60)
        assert text.count("P") >= 4


class TestTracer:
    def test_disabled_tracer_is_falsy_and_records_nothing(self):
        t = Tracer(enabled=False)
        assert not t
        with t.span("phase", phase="forward"):
            pass
        t.add_span("superstep", 0.0, 1.0)
        t.event("worker-respawn", worker=0)
        with t.context(superstep=1):
            t.add_span("dispatch", 0.0, 1.0)
        assert t.spans == [] and t.events == []

    def test_enabled_tracer_is_truthy(self):
        assert Tracer()

    def test_span_context_manager_times_and_tags(self):
        t = Tracer()
        with t.span("phase", phase="forward"):
            pass
        (span,) = t.spans
        assert span.name == "phase"
        assert span.attrs == {"phase": "forward"}
        assert span.end >= span.start >= 0.0
        assert span.duration == span.end - span.start

    def test_add_span_is_epoch_relative(self):
        t = Tracer()
        now = time.perf_counter()
        t.add_span("superstep", now, now + 0.5, label="forward")
        (span,) = t.spans
        assert span.start >= 0.0
        assert span.duration == pytest.approx(0.5)

    def test_context_attrs_merge_into_spans_and_events(self):
        t = Tracer()
        with t.context(superstep=3, label="fixup[1]"):
            now = time.perf_counter()
            t.add_span("dispatch", now, now, worker=1)
            t.event("dispatch-retry", worker=1)
        t.event("outside")
        assert t.spans[0].attrs == {"superstep": 3, "label": "fixup[1]", "worker": 1}
        assert t.events[0].attrs == {"superstep": 3, "label": "fixup[1]", "worker": 1}
        assert t.events[1].attrs == {}

    def test_iter_records_header_first(self):
        t = Tracer()
        with t.span("phase", phase="forward"):
            t.event("solve-start")
        records = list(t.iter_records())
        assert records[0] == {
            "type": "header",
            "schema_version": TRACE_SCHEMA_VERSION,
            "clock": "perf_counter",
            "time_unit": "seconds",
        }
        kinds = {r["type"] for r in records[1:]}
        assert kinds == {"span", "event"}

    def test_dump_jsonl_roundtrips(self, tmp_path):
        t = Tracer()
        with t.span("phase", phase="forward", width=np.int64(8)):
            pass
        path = tmp_path / "trace.jsonl"
        t.dump_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["schema_version"] == TRACE_SCHEMA_VERSION
        assert lines[1]["name"] == "phase"
        assert lines[1]["width"] == 8  # numpy scalar serialized as plain int
        assert lines[1]["dur"] == pytest.approx(lines[1]["t1"] - lines[1]["t0"])

    def test_summary_aggregates_spans_and_dispatch(self):
        t = Tracer()
        now = time.perf_counter()
        t.add_span("superstep", now, now + 1.0, label="forward")
        t.add_span(
            "dispatch",
            now,
            now + 0.25,
            worker=0,
            send_seconds=0.01,
            queue_wait_seconds=0.02,
            compute_seconds=0.2,
            request_bytes=100,
            reply_bytes=50,
        )
        t.event("worker-respawn", worker=0)
        s = t.summary()
        assert s["spans"]["superstep"]["count"] == 1
        assert s["dispatch"]["count"] == 1
        assert s["dispatch"]["compute_seconds"] == pytest.approx(0.2)
        assert s["dispatch"]["request_bytes"] == 100
        assert s["events"]["worker-respawn"] == 1
        assert "superstep" in t.format_summary()
