"""Executor close contract: dispatch-after-close raises, deterministically.

The serve layer's drain path relies on every executor kind failing fast
after ``close()`` — a request racing shutdown must get a clean
:class:`ExecutorError`, never a hang, a silent no-op, or a lazily
revived worker.
"""

import multiprocessing as mp
from functools import partial

import pytest

from repro.exceptions import ExecutorError
from repro.machine.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.machine.pool import PoolProcessExecutor


# Module-level so the pool transport can pickle them.
def _square(x):
    return x * x


def _ns_noop(ns):
    return None


def make_tasks(n=3):
    return [partial(_square, i) for i in range(n)]


FACTORIES = {
    "serial": SerialExecutor,
    "thread": lambda: ThreadExecutor(max_workers=2),
    "process": lambda: ProcessExecutor(max_workers=2),
    "pool": lambda: PoolProcessExecutor(max_workers=2),
}


@pytest.mark.parametrize("kind", sorted(FACTORIES))
class TestRunSuperstepAfterClose:
    def test_close_is_permanent_and_raises(self, kind):
        ex = FACTORIES[kind]()
        assert not ex.closed
        assert ex.run_superstep(make_tasks()) == [0, 1, 4]
        ex.close()
        assert ex.closed
        with pytest.raises(ExecutorError, match="closed"):
            ex.run_superstep(make_tasks())
        # close() is idempotent and the error is stable, not one-shot.
        ex.close()
        with pytest.raises(ExecutorError, match="closed"):
            ex.run_superstep(make_tasks())

    def test_close_without_use_still_guards(self, kind):
        ex = FACTORIES[kind]()
        ex.close()
        with pytest.raises(ExecutorError, match="closed"):
            ex.run_superstep(make_tasks())


class TestPoolCloseLeavesNoWorkers:
    def test_no_lazy_revival_and_no_leaked_workers(self):
        ex = PoolProcessExecutor(max_workers=2)
        assert ex.run_superstep(make_tasks()) == [0, 1, 4]
        pids = set(ex.worker_pids())
        ex.close()
        # Workers are reaped at close — none may be respawned by the
        # failing dispatch (the old lazy-revival behaviour raced the
        # serve layer's drain).
        with pytest.raises(ExecutorError, match="closed"):
            ex.run_superstep(make_tasks())
        with pytest.raises(ExecutorError, match="closed"):
            ex.call_slots([(1, _ns_noop, ())])
        with pytest.raises(ExecutorError, match="closed"):
            ex.broadcast(_ns_noop, ())
        alive = {p.pid for p in mp.active_children()}
        assert not (pids & alive)
