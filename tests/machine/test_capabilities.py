"""Typed executor capabilities: loud probes instead of silent getattr.

The bug these tests pin down: fast-path selection used
``getattr(executor, "supports_resident_state", False)``, so a typoed
capability name read as "unsupported" and silently disabled the fast
path.  With :class:`ExecutorCapabilities` the set of names is closed
and probing an undeclared name raises — these tests fail on the old
getattr-based probing (no ``capability`` API, no error on typos).
"""

import pytest

from repro.exceptions import ExecutorError
from repro.machine.executor import (
    CAPABILITY_NAMES,
    ExecutorCapabilities,
    SerialExecutor,
    ThreadExecutor,
    executor_capability,
    get_executor,
)


class TestCapabilityProbe:
    def test_unknown_capability_name_raises(self):
        # The exact failure mode of the old code: a typo silently read
        # as False.  Now it is a loud error naming the declared set.
        with pytest.raises(ExecutorError, match="unknown executor capability"):
            executor_capability(SerialExecutor(), "supports_resident_státe")

    def test_legacy_attribute_name_is_not_a_capability(self):
        # "supports_resident_state" was the attribute name, not the
        # capability name — probing it must raise, not return False.
        with pytest.raises(ExecutorError, match="unknown executor capability"):
            SerialExecutor().capability("supports_resident_state")

    def test_undeclared_executor_raises(self):
        class Bare:
            pass

        with pytest.raises(ExecutorError, match="ExecutorCapabilities"):
            executor_capability(Bare(), "resident_state")

    def test_declared_names_are_closed_and_typed(self):
        assert "resident_state" in CAPABILITY_NAMES
        assert "block_kernels" in CAPABILITY_NAMES
        caps = ExecutorCapabilities()
        for name in CAPABILITY_NAMES:
            assert isinstance(getattr(caps, name), bool)


class TestExecutorDeclarations:
    def test_serial_and_thread_are_not_resident(self):
        for ex in (SerialExecutor(), ThreadExecutor(max_workers=1)):
            try:
                assert ex.capability("resident_state") is False
                assert ex.capability("block_kernels") is True
                assert ex.supports_resident_state is False
            finally:
                ex.close()

    def test_pool_declares_resident_state_and_block_kernels(self):
        pool = get_executor("pool", max_workers=2)
        try:
            assert pool.capability("resident_state") is True
            assert pool.capability("block_kernels") is True
            # The legacy property survives, derived from the declaration.
            assert pool.supports_resident_state is True
        finally:
            pool.close()


class TestCallSiteMigration:
    def test_service_rejects_undeclared_executor_loudly(self):
        from repro.serve.service import LTDPService

        class Bare:
            supports_resident_state = True  # old duck-typing, now ignored

        with pytest.raises(ExecutorError, match="ExecutorCapabilities"):
            LTDPService(executor=Bare())

    def test_driver_routes_on_declared_capability(self):
        from repro.ltdp.engine.driver import _make_runtime
        from repro.ltdp.engine.runtime import LocalRuntime
        from repro.ltdp.partition import partition_stages
        from repro.problems.alignment.lcs import LCSProblem

        problem = LCSProblem([1, 2, 3], [1, 3, 2], width=4)
        ranges = partition_stages(problem.num_stages, 2)
        ex = SerialExecutor()
        runtime = _make_runtime(ex, problem, ranges)
        try:
            assert isinstance(runtime, LocalRuntime)
        finally:
            runtime.finish()
            ex.close()
