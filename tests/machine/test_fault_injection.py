"""Fault-injection suite for the self-healing pool runtime.

The pool's recovery contract: a worker SIGKILLed at *any* dispatch of a
parallel solve is respawned, its resident state is rebuilt by replaying
its journalled supersteps (recovery-by-replay — paper Fig 4's loop is
restartable from any boundary vector), the in-flight message is re-sent,
and the solve completes **bit-identically** to the serial executor, with
the recovery visible in ``RunMetrics``.

Also covers the pool-protocol regressions fixed alongside: the
partial-send desync (stale replies now discarded by sequence number),
worker tracebacks in :class:`ExecutorError`, dispatch timeouts, health
checks, and finalizer-based worker reaping.
"""

import gc
import multiprocessing as mp
import os
import signal
import time
from functools import partial

import numpy as np
import pytest

from repro.exceptions import ExecutorError
from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.machine.executor import SerialExecutor
from repro.machine.pool import FAULT_PLAN_ENV, PoolProcessExecutor

NUM_PROCS = 4
SEED = 3


# --- module-level helpers: pool payloads must be picklable -------------

def _square(x):
    return x * x


def _task_pid():
    return os.getpid()


def _sleep_then_pid():
    time.sleep(2.0)
    return os.getpid()


def _make_closure(x):  # closes over a local → unpicklable on purpose
    def f():
        return x

    return f


def _die():
    os._exit(3)


def _ns_fail(ns):
    raise ValueError("resident kaboom")


def _make_problem():
    rng = np.random.default_rng(7)
    return random_matrix_problem(48, 6, rng, integer=True)


def _solve(problem, executor):
    opts = ParallelOptions(num_procs=NUM_PROCS, seed=SEED, executor=executor)
    return solve_parallel(problem, opts)


@pytest.fixture(scope="module")
def baseline():
    """Serial reference solution + the pooled solve's dispatch schedule.

    A clean pooled solve issues one ``_dispatch`` per superstep plus the
    initial problem broadcast, so superstep labels map 1:1 onto dispatch
    sequence numbers — which is what fault plans key off.  (A trailing
    session-drop broadcast from ``PoolRuntime.finish`` closes the solve;
    it comes after every superstep, so the mapping is unaffected.)
    """
    problem = _make_problem()
    serial = _solve(problem, SerialExecutor())
    with PoolProcessExecutor(max_workers=2) as ex:
        pooled = _solve(problem, ex)
        # Pin the framing: without faults, seq == dispatch index
        # (reset broadcast + supersteps + finish-time session drop).
        assert ex.dispatch_count == 2 + len(pooled.metrics.supersteps)
        assert ex.recovery_stats.respawns == 0
    np.testing.assert_array_equal(pooled.path, serial.path)
    seq_of = {"reset": 1}
    for i, record in enumerate(pooled.metrics.supersteps):
        seq_of.setdefault(record.label, 2 + i)
    return problem, serial, seq_of


def _assert_identical_to_serial(got, serial):
    np.testing.assert_array_equal(got.path, serial.path)
    assert got.score == serial.score
    m, base = got.metrics, serial.metrics
    assert m.forward_fixup_iterations == base.forward_fixup_iterations
    assert m.backward_fixup_iterations == base.backward_fixup_iterations
    assert m.fixup_stages == base.fixup_stages
    assert m.converged_first_iteration == base.converged_first_iteration


class TestCrashRecoveryMidSolve:
    """Kill one worker at a chosen superstep; the solve must not notice."""

    @pytest.mark.parametrize(
        "phase,worker",
        [
            ("reset", 0),  # during the problem broadcast
            ("forward", 0),  # mid-forward initial pass
            ("forward", 1),
            ("fixup[1]", 0),  # mid-fix-up
            ("fixup[1]", 1),
            ("backward", 0),  # mid-traceback
            ("bwd-fixup[1]", 1),
        ],
    )
    def test_kill_recovers_bit_identical(self, baseline, phase, worker):
        problem, serial, seq_of = baseline
        if phase not in seq_of:
            pytest.skip(f"this instance has no {phase!r} superstep")
        plan = {seq_of[phase]: worker}
        with PoolProcessExecutor(max_workers=2, fault_plan=plan) as ex:
            got = _solve(problem, ex)
            assert ex.recovery_stats.respawns == 1
            assert ex.recovery_stats.retries >= 1
        _assert_identical_to_serial(got, serial)
        # Recovery is surfaced on the solve's metrics.
        assert got.metrics.worker_respawns == 1
        assert got.metrics.dispatch_retries >= 1
        if phase not in ("reset", "forward"):
            # By fix-up time the worker's journal holds replayable specs.
            assert got.metrics.replayed_supersteps >= 1

    def test_two_kills_in_one_solve(self, baseline):
        problem, serial, seq_of = baseline
        # Seq 2 is the forward pass; the first recovery consumes a ping
        # and a replay seq, so seq 6 lands on a later superstep dispatch.
        with PoolProcessExecutor(
            max_workers=2, fault_plan={2: 0, 6: 1}
        ) as ex:
            got = _solve(problem, ex)
            assert ex.recovery_stats.respawns == 2
        _assert_identical_to_serial(got, serial)
        assert got.metrics.worker_respawns == 2

    def test_env_driven_fault_plan(self, baseline, monkeypatch):
        problem, serial, seq_of = baseline
        monkeypatch.setenv(FAULT_PLAN_ENV, f"{seq_of['forward']}:1")
        with PoolProcessExecutor(max_workers=2) as ex:
            got = _solve(problem, ex)
            assert ex.recovery_stats.respawns == 1
        _assert_identical_to_serial(got, serial)

    def test_state_survives_into_next_solve_after_recovery(self, baseline):
        """A pool that healed mid-solve is a healthy pool afterwards."""
        problem, serial, seq_of = baseline
        with PoolProcessExecutor(
            max_workers=2, fault_plan={seq_of["fixup[1]"]: 0}
        ) as ex:
            first = _solve(problem, ex)
            second = _solve(problem, ex)
            assert ex.recovery_stats.respawns == 1  # only the planned one
        _assert_identical_to_serial(first, serial)
        _assert_identical_to_serial(second, serial)
        # The second solve caused no recovery, and its metrics say so.
        assert second.metrics.worker_respawns == 0


class TestGenericTaskRecovery:
    def test_run_superstep_recovers_from_kill(self):
        # Seq 1 is the very first dispatch.
        with PoolProcessExecutor(max_workers=2, fault_plan={1: 0}) as ex:
            tasks = [partial(_square, i) for i in range(5)]
            assert ex.run_superstep(tasks) == [0, 1, 4, 9, 16]
            assert ex.recovery_stats.respawns == 1
            # Pool remains healthy.
            assert ex.run_superstep(tasks) == [0, 1, 4, 9, 16]
            assert ex.recovery_stats.respawns == 1

    def test_check_health_respawns_killed_worker(self):
        with PoolProcessExecutor(max_workers=2) as ex:
            pids = ex.worker_pids()
            os.kill(pids[0], signal.SIGKILL)
            new_pids = ex.check_health()
            assert ex.recovery_stats.respawns == 1
            assert new_pids[0] != pids[0]
            assert new_pids[1] == pids[1]
            assert ex.run_superstep([partial(_square, 3)]) == [9]


class TestProtocolRegressions:
    def test_partial_send_failure_does_not_poison_next_superstep(self):
        """Regression (pre-fault-tolerance pool): a dispatch that failed
        after its first send left an unread reply in worker 0's pipe,
        silently corrupting every later superstep.  Sequence-numbered
        framing discards the stale reply instead."""
        with PoolProcessExecutor(max_workers=2) as ex:
            with pytest.raises(ExecutorError, match="picklable"):
                # Worker 0's send succeeds, worker 1's raises on pickle.
                ex.run_superstep([_task_pid, _make_closure(1)])
            tasks = [partial(_square, i) for i in range(4)]
            assert ex.run_superstep(tasks) == [0, 1, 4, 9]
            # And again, to prove the pipes are fully drained.
            assert ex.run_superstep(tasks) == [0, 1, 4, 9]

    def test_call_slots_failure_names_slot_with_traceback(self):
        with PoolProcessExecutor(max_workers=2) as ex:
            with pytest.raises(
                ExecutorError, match="processor 4 failed"
            ) as excinfo:
                ex.call_slots([(4, _ns_fail, ())])
            text = str(excinfo.value)
            assert "Traceback (most recent call last)" in text
            assert "resident kaboom" in text
            assert "_ns_fail" in text

    def test_dispatch_timeout_fails_fast_and_marks_broken(self):
        with PoolProcessExecutor(max_workers=1, dispatch_timeout=0.2) as ex:
            with pytest.raises(ExecutorError, match="dispatch timeout"):
                ex.run_superstep([_sleep_then_pid])
            # A hung protocol is unrecoverable: the executor says so
            # instead of silently desynchronizing.
            with pytest.raises(ExecutorError, match="broken"):
                ex.run_superstep([_task_pid])

    def test_worker_death_exhausts_retries_then_raises(self):
        """A task that kills its own worker dies again on every re-send;
        after ``max_retries`` respawns the pool gives up loudly."""
        with PoolProcessExecutor(
            max_workers=1, max_retries=2, retry_backoff=0.01
        ) as ex:
            with pytest.raises(ExecutorError, match="kept dying"):
                ex.run_superstep([_die])
            assert ex.recovery_stats.respawns == 2
            with pytest.raises(ExecutorError, match="broken"):
                ex.run_superstep([_task_pid])


class TestLifecycle:
    def test_workers_reaped_on_gc_without_close(self):
        ex = PoolProcessExecutor(max_workers=2)
        assert ex.run_superstep([partial(_square, 2)]) == [4]
        pids = set(ex.worker_pids())
        del ex
        gc.collect()
        alive = {p.pid for p in mp.active_children()}
        assert not (pids & alive)

    def test_context_manager_reaps_workers(self):
        with PoolProcessExecutor(max_workers=2) as ex:
            pids = set(ex.worker_pids())
        alive = {p.pid for p in mp.active_children()}
        assert not (pids & alive)
