"""Tests for the persistent worker-pool executor.

The pool's contract is what distinguishes it from the fork-per-task
``ProcessExecutor``: workers are spawned once, their PIDs stay stable
across supersteps *and* solves, and per-slot state survives between
calls in the worker's namespace.
"""

import os

import numpy as np
import pytest

from repro.exceptions import ExecutorError
from repro.ltdp.matrix_problem import random_matrix_problem
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.machine.pool import PoolProcessExecutor


# --- module-level helpers: run_superstep tasks must be picklable -------

def _square(x):
    return x * x


def _task_pid():
    return os.getpid()


def _boom():
    raise ValueError("boom")


def _make_square(x):
    def task():
        return x * x

    return task


# namespace functions for call_slots / broadcast ------------------------

def _ns_put(ns, key, value):
    ns[key] = value
    return os.getpid()


def _ns_get(ns, key):
    return ns.get(key)


def _ns_pid(ns):
    return os.getpid()


class TestGenericTasks:
    def test_results_in_order(self):
        with PoolProcessExecutor(max_workers=2) as ex:
            from functools import partial

            tasks = [partial(_square, i) for i in range(7)]
            assert ex.run_superstep(tasks) == [0, 1, 4, 9, 16, 25, 36]

    def test_empty_superstep(self):
        with PoolProcessExecutor(max_workers=1) as ex:
            assert ex.run_superstep([]) == []

    def test_at_most_max_workers_processes(self):
        with PoolProcessExecutor(max_workers=2) as ex:
            pids = ex.run_superstep([_task_pid for _ in range(8)])
            assert len(set(pids)) <= 2
            assert set(pids) <= set(ex.worker_pids())

    def test_pids_stable_across_supersteps(self):
        with PoolProcessExecutor(max_workers=2) as ex:
            first = set(ex.run_superstep([_task_pid for _ in range(4)]))
            for _ in range(5):
                again = set(ex.run_superstep([_task_pid for _ in range(4)]))
                assert again == first

    def test_pid_log_subset_of_spawned_workers(self):
        with PoolProcessExecutor(max_workers=3) as ex:
            spawned = set(ex.worker_pids())
            for _ in range(3):
                ex.run_superstep([_task_pid for _ in range(6)])
            assert ex.pid_log
            for step_pids in ex.pid_log:
                assert step_pids <= spawned

    def test_error_contract_names_task_and_slot(self):
        """Failures name the 0-based task index AND its 1-based slot,
        and carry the worker-side traceback."""
        with PoolProcessExecutor(max_workers=2) as ex:
            with pytest.raises(
                ExecutorError, match=r"task 1 \(processor 2\) failed"
            ) as excinfo:
                ex.run_superstep([_task_pid, _boom, _task_pid])
            assert "Traceback (most recent call last)" in str(excinfo.value)
            assert "_boom" in str(excinfo.value)
            # The pool survives a failed superstep.
            assert ex.run_superstep([_task_pid]) != []

    def test_unpicklable_task_raises_executor_error(self):
        closure = _make_square(3)  # closes over a local, not picklable
        with PoolProcessExecutor(max_workers=1) as ex:
            with pytest.raises(ExecutorError, match="picklable"):
                ex.run_superstep([closure])

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError):
            PoolProcessExecutor(max_workers=0)

    def test_close_idempotent(self):
        ex = PoolProcessExecutor(max_workers=1)
        ex.run_superstep([_task_pid])
        ex.close()
        ex.close()


class TestResidentState:
    def test_state_persists_between_calls(self):
        with PoolProcessExecutor(max_workers=2) as ex:
            ex.call_slots([(1, _ns_put, ("x", 11)), (2, _ns_put, ("x", 22))])
            values = ex.call_slots([(1, _ns_get, ("x",)), (2, _ns_get, ("x",))])
            assert values == [11, 22]

    def test_slots_map_to_fixed_workers(self):
        with PoolProcessExecutor(max_workers=2) as ex:
            # Slots 1 and 3 share worker 0; slot 2 lives on worker 1.
            p1, p2, p3 = ex.call_slots(
                [(1, _ns_pid, ()), (2, _ns_pid, ()), (3, _ns_pid, ())]
            )
            assert p1 == p3
            assert p1 != p2
            # Stable on repeat.
            assert ex.call_slots([(1, _ns_pid, ())]) == [p1]

    def test_shared_worker_shares_namespace(self):
        """Slots co-located on one worker see one namespace dict; the
        LTDP runtime namespaces its keys per slot for this reason."""
        with PoolProcessExecutor(max_workers=1) as ex:
            ex.call_slots([(1, _ns_put, ("k", "from-slot-1"))])
            assert ex.call_slots([(2, _ns_get, ("k",))]) == ["from-slot-1"]

    def test_broadcast_hits_every_worker(self):
        with PoolProcessExecutor(max_workers=3) as ex:
            pids = ex.broadcast(_ns_pid)
            assert sorted(pids) == sorted(ex.worker_pids())

    def test_call_slots_error_names_slot(self):
        def bad(ns):  # local → unpicklable, but check the message path
            raise RuntimeError("nope")

        with PoolProcessExecutor(max_workers=1) as ex:
            with pytest.raises(ExecutorError):
                ex.call_slots([(4, bad, ())])


class TestSolveIntegration:
    def test_stable_pids_across_whole_solves(self):
        rng = np.random.default_rng(5)
        problem = random_matrix_problem(40, 6, rng, integer=True)
        with PoolProcessExecutor(max_workers=2) as ex:
            opts = ParallelOptions(num_procs=4, executor=ex)
            first = solve_parallel(problem, opts)
            baseline_pids = set(ex.worker_pids())
            second = solve_parallel(problem, opts)
            np.testing.assert_array_equal(first.path, second.path)
            assert first.score == second.score
            # Every superstep of both solves ran on the original workers.
            assert ex.pid_log
            for step_pids in ex.pid_log:
                assert step_pids <= baseline_pids
            assert len(baseline_pids) <= 2
