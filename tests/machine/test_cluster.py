"""Tests for SimCluster presets and pricing."""

import pytest

from repro.machine.cluster import SimCluster
from repro.machine.cost_model import CostModel
from repro.machine.metrics import RunMetrics, SuperstepRecord


class TestSimCluster:
    def test_invalid_procs(self):
        with pytest.raises(ValueError):
            SimCluster(num_procs=0)

    def test_presets_differ_in_communication(self):
        st = SimCluster.stampede(16)
        sm = SimCluster.shared_memory(16)
        assert st.cost_model.barrier_latency > sm.cost_model.barrier_latency
        assert st.cost_model.comm_latency > sm.cost_model.comm_latency

    def test_with_procs_preserves_cost_model(self):
        c = SimCluster.stampede(4, cell_cost=7e-9)
        c2 = c.with_procs(32)
        assert c2.num_procs == 32
        assert c2.cost_model == c.cost_model

    def test_time_of(self):
        c = SimCluster(2, cost_model=CostModel(cell_cost=1.0, barrier_latency=0.0))
        m = RunMetrics(num_procs=2)
        m.record(SuperstepRecord(label="forward", work=[5.0, 7.0]))
        assert c.time_of(m) == pytest.approx(7.0)

    def test_sequential_time(self):
        c = SimCluster(1, cost_model=CostModel(cell_cost=2.0, traceback_cell_cost=1.0))
        assert c.sequential_time(10.0, traceback_steps=3.0) == pytest.approx(23.0)

    def test_parallel_beats_sequential_on_converged_run(self):
        """End-to-end: a real converged run must price faster than sequential."""
        import numpy as np

        from repro.ltdp.matrix_problem import random_matrix_problem
        from repro.ltdp.parallel import solve_parallel

        rng = np.random.default_rng(0)
        p = random_matrix_problem(200, 4, rng, integer=True)
        # Compute-dominated regime: tiny instances under the default
        # cost model are barrier-bound (the paper's small-packet effect),
        # so pick a cell cost that makes work the dominant term.
        cluster = SimCluster.stampede(8, cell_cost=1e-5)
        par = solve_parallel(p, num_procs=8, exact_score=False)
        t_par = cluster.time_of(par.metrics)
        t_seq = cluster.sequential_time(p.total_cells(), traceback_steps=200.0)
        assert par.metrics.converged_first_iteration
        assert t_par < t_seq


class TestClusterExecutorIntegration:
    def test_cluster_executor_usable_by_solver(self):
        """The cluster's executor field plugs into ParallelOptions."""
        import numpy as np

        from repro.ltdp.matrix_problem import random_matrix_problem
        from repro.ltdp.parallel import ParallelOptions, solve_parallel
        from repro.machine.executor import ThreadExecutor

        rng = np.random.default_rng(3)
        p = random_matrix_problem(20, 4, rng, integer=True)
        cluster = SimCluster(4, executor=ThreadExecutor(max_workers=4))
        try:
            sol = solve_parallel(
                p,
                ParallelOptions(
                    num_procs=cluster.num_procs, executor=cluster.executor, seed=1
                ),
            )
        finally:
            cluster.executor.close()
        from repro.ltdp.sequential import solve_sequential

        np.testing.assert_array_equal(sol.path, solve_sequential(p).path)
