"""Tests for work/communication accounting."""

import pytest

from repro.machine.metrics import CommEvent, RunMetrics, SuperstepRecord


class TestSuperstepRecord:
    def test_critical_and_total(self):
        s = SuperstepRecord(label="forward", work=[3.0, 5.0, 2.0])
        assert s.critical_work == 5.0
        assert s.total_work == 10.0

    def test_empty_work(self):
        s = SuperstepRecord(label="x", work=[])
        assert s.critical_work == 0.0


class TestRunMetrics:
    def make(self):
        m = RunMetrics(num_procs=3)
        m.record(SuperstepRecord(label="forward", work=[4.0, 4.0, 4.0]))
        m.record(
            SuperstepRecord(
                label="fixup[1]",
                work=[0.0, 2.0, 3.0],
                comm=[CommEvent(1, 2, 80), CommEvent(2, 3, 80)],
            )
        )
        return m

    def test_critical_path(self):
        assert self.make().critical_path_work == 7.0

    def test_total_work(self):
        assert self.make().total_work == 17.0

    def test_barriers_count_supersteps(self):
        assert self.make().num_barriers == 2

    def test_bytes(self):
        assert self.make().bytes_communicated == 160

    def test_work_by_processor(self):
        assert self.make().work_by_processor() == [4.0, 6.0, 7.0]

    def test_record_validates_width(self):
        m = RunMetrics(num_procs=2)
        with pytest.raises(ValueError):
            m.record(SuperstepRecord(label="x", work=[1.0]))

    def test_merge(self):
        a = self.make()
        b = RunMetrics(num_procs=3)
        b.record(SuperstepRecord(label="backward", work=[1.0, 1.0, 1.0]))
        b.backward_fixup_iterations = 2
        merged = a.merged_with([b])
        assert merged.num_barriers == 3
        assert merged.backward_fixup_iterations == 2
        # originals untouched
        assert a.num_barriers == 2

    def test_merge_sums_recovery_counters(self):
        a = self.make()
        a.worker_respawns = 1
        a.dispatch_retries = 2
        b = RunMetrics(num_procs=3)
        b.worker_respawns = 1
        b.replayed_supersteps = 4
        merged = a.merged_with([b])
        assert merged.worker_respawns == 2
        assert merged.dispatch_retries == 2
        assert merged.replayed_supersteps == 4

    def test_merge_mismatched_procs_rejected(self):
        a = self.make()
        b = RunMetrics(num_procs=2)
        with pytest.raises(ValueError):
            a.merged_with([b])

    def test_merge_sums_fixup_stages(self):
        # Regression: merged_with used to drop other.fixup_stages
        # entirely, so backward-phase recomputation stages vanished from
        # the merged per-processor counts.
        a = self.make()
        a.fixup_stages = {0: 2, 1: 1}
        b = RunMetrics(num_procs=3, fixup_stages={1: 4, 2: 5})
        merged = a.merged_with([b])
        assert merged.fixup_stages == {0: 2, 1: 5, 2: 5}
        # originals untouched
        assert a.fixup_stages == {0: 2, 1: 1}
        assert b.fixup_stages == {1: 4, 2: 5}


class TestResolvedPhase:
    def test_explicit_phase_wins_over_label(self):
        s = SuperstepRecord(label="backward", work=[1.0], phase="forward")
        assert s.resolved_phase() == "forward"

    def test_known_label_prefixes_classify(self):
        assert SuperstepRecord(label="fixup[3]", work=[]).resolved_phase() == "forward"
        assert SuperstepRecord(label="bwd-fixup[1]", work=[]).resolved_phase() == "backward"

    def test_unknown_label_without_phase_raises(self):
        # Regression: an unrecognised label used to be silently priced
        # as forward work by the cost model.
        with pytest.raises(ValueError, match="no explicit phase"):
            SuperstepRecord(label="epilogue-walk", work=[]).resolved_phase()

    def test_invalid_phase_value_raises(self):
        with pytest.raises(ValueError, match="unknown phase"):
            SuperstepRecord(label="forward", work=[], phase="sideways").resolved_phase()
