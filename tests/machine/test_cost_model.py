"""Tests for the BSP cost model and kernel calibration."""

import numpy as np
import pytest

from repro.machine.cost_model import CostModel, calibrate_cell_cost
from repro.machine.metrics import CommEvent, RunMetrics, SuperstepRecord


class TestCostModel:
    def test_sequential_time(self):
        cm = CostModel(cell_cost=1e-9, traceback_cell_cost=1e-10)
        assert cm.sequential_time(1e9) == pytest.approx(1.0)
        assert cm.sequential_time(0, traceback_steps=1e10) == pytest.approx(1.0)

    def test_superstep_time_components(self):
        cm = CostModel(
            cell_cost=1e-6,
            barrier_latency=1e-3,
            comm_latency=1e-4,
            comm_byte_cost=1e-8,
        )
        t = cm.superstep_time(1000.0, [CommEvent(1, 2, 100)])
        assert t == pytest.approx(1e-3 + 1e-3 + 1e-4 + 1e-6)

    def test_backward_supersteps_use_traceback_cost(self):
        cm = CostModel(cell_cost=1.0, traceback_cell_cost=0.5, barrier_latency=0.0)
        m = RunMetrics(num_procs=1)
        m.record(SuperstepRecord(label="backward", work=[10.0]))
        assert cm.run_time(m) == pytest.approx(5.0)

    def test_run_time_sums_supersteps(self):
        cm = CostModel(cell_cost=1.0, barrier_latency=0.0)
        m = RunMetrics(num_procs=2)
        m.record(SuperstepRecord(label="forward", work=[3.0, 4.0]))
        m.record(SuperstepRecord(label="fixup[1]", work=[0.0, 2.0]))
        assert cm.run_time(m) == pytest.approx(6.0)

    def test_explicit_phase_overrides_label(self):
        # Regression: run_time used to classify by label prefix alone,
        # so a backward-phase record with a non-standard label was
        # priced at the (much larger) forward cell cost.
        cm = CostModel(cell_cost=1.0, traceback_cell_cost=0.25, barrier_latency=0.0)
        m = RunMetrics(num_procs=1)
        m.record(SuperstepRecord(label="epilogue-walk", work=[8.0], phase="backward"))
        assert cm.run_time(m) == pytest.approx(2.0)

    def test_unknown_label_without_phase_raises(self):
        # Regression: unknown labels were silently priced as forward work.
        cm = CostModel(cell_cost=1.0, barrier_latency=0.0)
        m = RunMetrics(num_procs=1)
        m.record(SuperstepRecord(label="epilogue-walk", work=[8.0]))
        with pytest.raises(ValueError, match="no explicit phase"):
            cm.run_time(m)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            CostModel(cell_cost=-1.0)

    def test_with_cell_cost(self):
        cm = CostModel(cell_cost=1.0).with_cell_cost(2.0)
        assert cm.cell_cost == 2.0

    def test_more_work_costs_more(self):
        cm = CostModel()
        a = cm.superstep_time(100.0, [])
        b = cm.superstep_time(200.0, [])
        assert b > a


class TestCalibration:
    def test_returns_positive_per_cell_cost(self):
        a = np.zeros(1000)

        def kernel():
            np.maximum(a, 1.0)

        cost = calibrate_cell_cost(kernel, 1000, min_seconds=0.01)
        assert 0 < cost < 1e-3

    def test_rejects_bad_cell_count(self):
        with pytest.raises(ValueError):
            calibrate_cell_cost(lambda: None, 0)

    def test_slower_kernel_costs_more(self):
        a = np.zeros(200_000)

        def fast():
            a + 1.0

        def slow():
            np.sort(a + 1.0)

        fast_cost = calibrate_cell_cost(fast, a.size, min_seconds=0.02)
        slow_cost = calibrate_cell_cost(slow, a.size, min_seconds=0.02)
        assert slow_cost > fast_cost
