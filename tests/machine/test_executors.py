"""Tests for the superstep executors."""

import os
import time

import numpy as np
import pytest

from repro.exceptions import ExecutorError
from repro.machine.executor import (
    EXECUTOR_KINDS,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from repro.machine.pool import PoolProcessExecutor


def make_tasks(n=5):
    return [lambda i=i: i * i for i in range(n)]


class TestSerialExecutor:
    def test_results_in_order(self):
        assert SerialExecutor().run_superstep(make_tasks()) == [0, 1, 4, 9, 16]

    def test_empty(self):
        assert SerialExecutor().run_superstep([]) == []

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            SerialExecutor().run_superstep([boom])


class TestThreadExecutor:
    def test_results_in_order(self):
        with ThreadExecutor(max_workers=3) as ex:
            assert ex.run_superstep(make_tasks()) == [0, 1, 4, 9, 16]

    def test_exception_becomes_executor_error_with_index(self):
        """Matches ProcessExecutor's contract: ExecutorError naming the
        0-based task index and its 1-based processor slot, original
        exception chained."""

        def ok():
            return 1

        def boom():
            raise ValueError("boom")

        with ThreadExecutor() as ex:
            with pytest.raises(
                ExecutorError, match=r"task 1 \(processor 2\)"
            ) as excinfo:
                ex.run_superstep([ok, boom, ok])
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_failure_drains_running_siblings(self):
        """After a failed superstep no sibling task is still running."""
        finished = []

        def boom():
            raise ValueError("boom")

        def slow(i):
            def task():
                time.sleep(0.05)
                finished.append(i)

            return task

        with ThreadExecutor(max_workers=4) as ex:
            with pytest.raises(ExecutorError):
                ex.run_superstep([boom, slow(1), slow(2), slow(3)])
            # Started siblings were drained (ran to completion) before the
            # raise; cancelled ones never ran.  Either way nothing is
            # still in flight now.
            snapshot = list(finished)
        assert snapshot == finished

    def test_close_idempotent(self):
        ex = ThreadExecutor()
        ex.close()
        ex.close()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork required")
class TestProcessExecutor:
    def test_results_in_order(self):
        with ProcessExecutor() as ex:
            assert ex.run_superstep(make_tasks()) == [0, 1, 4, 9, 16]

    def test_numpy_arrays_roundtrip(self):
        arr = np.arange(100, dtype=np.float64)

        def task():
            return arr * 2

        with ProcessExecutor() as ex:
            (result,) = ex.run_superstep([task])
        np.testing.assert_array_equal(result, arr * 2)

    def test_closures_inherited_through_fork(self):
        captured = {"value": 41}

        def task():
            return captured["value"] + 1

        with ProcessExecutor() as ex:
            assert ex.run_superstep([task]) == [42]

    def test_worker_exception_becomes_executor_error(self):
        def boom():
            raise RuntimeError("worker exploded")

        with ProcessExecutor() as ex:
            with pytest.raises(ExecutorError, match="worker exploded"):
                ex.run_superstep([boom])

    def test_worker_death_detected(self):
        def die():
            os._exit(3)

        with ProcessExecutor() as ex:
            with pytest.raises(ExecutorError, match="died"):
                ex.run_superstep([die])

    def test_max_workers_accepted_and_results_ordered(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.run_superstep(make_tasks(7)) == [0, 1, 4, 9, 16, 25, 36]

    def test_max_workers_caps_concurrent_forks(self):
        """With max_workers=2, no more than 2 children exist at once."""

        def count_children():
            import multiprocessing as mp

            return len(mp.active_children())

        observed = []

        def task():
            # Each forked child sees the parent's children via /proc is
            # not portable; instead record how many sibling pids exist
            # from the parent's perspective after the wave started.
            time.sleep(0.02)
            return os.getpid()

        ex = ProcessExecutor(max_workers=2)
        import threading

        stop = threading.Event()

        def sampler():
            while not stop.is_set():
                observed.append(count_children())
                time.sleep(0.005)

        t = threading.Thread(target=sampler)
        t.start()
        try:
            pids = ex.run_superstep([task for _ in range(6)])
        finally:
            stop.set()
            t.join()
        assert len(set(pids)) == 6  # still one fork per task...
        assert max(observed, default=0) <= 2  # ...but never more than 2 alive

    def test_invalid_max_workers(self):
        with pytest.raises(ValueError):
            ProcessExecutor(max_workers=0)


class TestFactory:
    def test_kinds(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)
        pool = get_executor("pool", max_workers=1)
        try:
            assert isinstance(pool, PoolProcessExecutor)
        finally:
            pool.close()

    def test_executor_kinds_constant_matches_factory(self):
        for kind in EXECUTOR_KINDS:
            kwargs = {} if kind == "serial" else {"max_workers": 1}
            ex = get_executor(kind, **kwargs)
            ex.close()

    def test_process_accepts_max_workers_kwarg(self):
        # Regression: this used to raise TypeError.
        ex = get_executor("process", max_workers=3)
        assert ex.max_workers == 3

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            get_executor("gpu")

    def test_all_executors_agree(self):
        tasks = make_tasks(8)
        expected = [t() for t in tasks]
        for kind in ("serial", "thread", "process"):
            ex = get_executor(kind)
            try:
                assert ex.run_superstep(tasks) == expected
            finally:
                ex.close()
