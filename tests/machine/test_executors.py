"""Tests for the superstep executors."""

import os

import numpy as np
import pytest

from repro.exceptions import ExecutorError
from repro.machine.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)


def make_tasks(n=5):
    return [lambda i=i: i * i for i in range(n)]


class TestSerialExecutor:
    def test_results_in_order(self):
        assert SerialExecutor().run_superstep(make_tasks()) == [0, 1, 4, 9, 16]

    def test_empty(self):
        assert SerialExecutor().run_superstep([]) == []

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            SerialExecutor().run_superstep([boom])


class TestThreadExecutor:
    def test_results_in_order(self):
        with ThreadExecutor(max_workers=3) as ex:
            assert ex.run_superstep(make_tasks()) == [0, 1, 4, 9, 16]

    def test_exception_propagates(self):
        def boom():
            raise ValueError("boom")

        with ThreadExecutor() as ex:
            with pytest.raises(ValueError):
                ex.run_superstep([boom])

    def test_close_idempotent(self):
        ex = ThreadExecutor()
        ex.close()
        ex.close()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork required")
class TestProcessExecutor:
    def test_results_in_order(self):
        with ProcessExecutor() as ex:
            assert ex.run_superstep(make_tasks()) == [0, 1, 4, 9, 16]

    def test_numpy_arrays_roundtrip(self):
        arr = np.arange(100, dtype=np.float64)

        def task():
            return arr * 2

        with ProcessExecutor() as ex:
            (result,) = ex.run_superstep([task])
        np.testing.assert_array_equal(result, arr * 2)

    def test_closures_inherited_through_fork(self):
        captured = {"value": 41}

        def task():
            return captured["value"] + 1

        with ProcessExecutor() as ex:
            assert ex.run_superstep([task]) == [42]

    def test_worker_exception_becomes_executor_error(self):
        def boom():
            raise RuntimeError("worker exploded")

        with ProcessExecutor() as ex:
            with pytest.raises(ExecutorError, match="worker exploded"):
                ex.run_superstep([boom])

    def test_worker_death_detected(self):
        def die():
            os._exit(3)

        with ProcessExecutor() as ex:
            with pytest.raises(ExecutorError, match="died"):
                ex.run_superstep([die])


class TestFactory:
    def test_kinds(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("thread"), ThreadExecutor)
        assert isinstance(get_executor("process"), ProcessExecutor)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            get_executor("gpu")

    def test_all_executors_agree(self):
        tasks = make_tasks(8)
        expected = [t() for t in tasks]
        for kind in ("serial", "thread", "process"):
            ex = get_executor(kind)
            try:
                assert ex.run_superstep(tasks) == expected
            finally:
                ex.close()
