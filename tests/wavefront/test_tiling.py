"""Tests for tile decomposition."""

import pytest

from repro.wavefront.tiling import TileGrid


class TestTileGrid:
    def test_counts(self):
        g = TileGrid(rows=10, cols=8, tile_rows=4, tile_cols=4)
        assert g.num_row_blocks == 3
        assert g.num_col_blocks == 2
        assert g.num_tiles == 6
        assert g.num_waves == 4

    def test_edge_tiles_clipped(self):
        g = TileGrid(rows=10, cols=8, tile_rows=4, tile_cols=4)
        t = g.tile(2, 1)
        assert (t.row_stop - t.row_start) == 2  # 10 = 4+4+2
        assert t.num_cells == 8

    def test_tiles_cover_table_exactly(self):
        g = TileGrid(rows=13, cols=7, tile_rows=5, tile_cols=3)
        total = sum(
            g.tile(rb, cb).num_cells
            for rb in range(g.num_row_blocks)
            for cb in range(g.num_col_blocks)
        )
        assert total == 13 * 7

    def test_wave_membership(self):
        g = TileGrid(rows=8, cols=8, tile_rows=4, tile_cols=4)
        waves = [
            {(t.row_block, t.col_block) for t in g.wave_tiles(w)}
            for w in range(g.num_waves)
        ]
        assert waves == [{(0, 0)}, {(0, 1), (1, 0)}, {(1, 1)}]

    def test_wave_tiles_are_independent(self):
        """Tiles in one wave never neighbour each other."""
        g = TileGrid(rows=20, cols=20, tile_rows=4, tile_cols=4)
        for tiles in g.waves():
            blocks = {(t.row_block, t.col_block) for t in tiles}
            for rb, cb in blocks:
                assert (rb - 1, cb) not in blocks
                assert (rb, cb - 1) not in blocks
                assert (rb - 1, cb - 1) not in blocks

    def test_tile_index_bounds(self):
        g = TileGrid(rows=4, cols=4, tile_rows=2, tile_cols=2)
        with pytest.raises(IndexError):
            g.tile(2, 0)
        with pytest.raises(IndexError):
            g.wave_tiles(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TileGrid(0, 4, 1, 1)
        with pytest.raises(ValueError):
            TileGrid(4, 4, 0, 1)
