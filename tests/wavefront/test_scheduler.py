"""Tests for wavefront scheduling and its cost accounting."""

import numpy as np
import pytest

from repro.machine.cost_model import CostModel
from repro.wavefront.scheduler import (
    execute_wavefront,
    simulate_wavefront,
    wavefront_time,
)
from repro.wavefront.tiling import TileGrid


class TestSimulation:
    def test_one_proc_makespan_is_total(self):
        g = TileGrid(rows=8, cols=8, tile_rows=2, tile_cols=2)
        s = simulate_wavefront(g, num_procs=1)
        assert s.critical_cells == pytest.approx(64.0)

    def test_total_cells_preserved(self):
        g = TileGrid(rows=12, cols=10, tile_rows=3, tile_cols=4)
        s = simulate_wavefront(g, num_procs=4)
        assert s.total_cells == pytest.approx(120.0)

    def test_more_procs_never_slower(self):
        g = TileGrid(rows=64, cols=64, tile_rows=8, tile_cols=8)
        spans = [
            simulate_wavefront(g, num_procs=p).critical_cells for p in (1, 2, 4, 8)
        ]
        assert all(b <= a for a, b in zip(spans, spans[1:]))

    def test_parallelism_limited_by_wave_width(self):
        """Beyond the widest anti-diagonal, extra processors do nothing."""
        g = TileGrid(rows=16, cols=16, tile_rows=4, tile_cols=4)  # max wave = 4 tiles
        s4 = simulate_wavefront(g, num_procs=4)
        s64 = simulate_wavefront(g, num_procs=64)
        assert s4.critical_cells == s64.critical_cells

    def test_tile_overhead_scales_work(self):
        g = TileGrid(rows=8, cols=8, tile_rows=2, tile_cols=2)
        base = simulate_wavefront(g, num_procs=2)
        padded = simulate_wavefront(g, num_procs=2, tile_overhead=1.5)
        assert padded.critical_cells == pytest.approx(1.5 * base.critical_cells)

    def test_barriers_count_waves(self):
        g = TileGrid(rows=8, cols=8, tile_rows=2, tile_cols=2)
        assert simulate_wavefront(g, 2).num_barriers == g.num_waves

    def test_validation(self):
        g = TileGrid(4, 4, 2, 2)
        with pytest.raises(ValueError):
            simulate_wavefront(g, 0)
        with pytest.raises(ValueError):
            simulate_wavefront(g, 2, tile_overhead=0.5)

    def test_time_combines_cells_and_barriers(self):
        g = TileGrid(rows=8, cols=8, tile_rows=4, tile_cols=4)
        s = simulate_wavefront(g, num_procs=2)
        cm = CostModel(cell_cost=1.0, barrier_latency=10.0)
        expected = s.critical_cells + 10.0 * s.num_barriers
        assert wavefront_time(s, cm) == pytest.approx(expected)


class TestExecution:
    def test_dependency_order_respected(self):
        g = TileGrid(rows=9, cols=9, tile_rows=3, tile_cols=3)
        done: set[tuple[int, int]] = set()

        def tile_fn(tile):
            if tile.row_block > 0:
                assert (tile.row_block - 1, tile.col_block) in done
            if tile.col_block > 0:
                assert (tile.row_block, tile.col_block - 1) in done
            done.add((tile.row_block, tile.col_block))

        execute_wavefront(g, tile_fn)
        assert len(done) == g.num_tiles

    def test_wavefront_executed_lcs_matches_reference(self, rng):
        """Actually compute an LCS table tile by tile in wave order."""
        from repro.datagen.sequences import random_dna
        from repro.problems.alignment.reference import lcs_table

        a = random_dna(18, rng)
        b = random_dna(14, rng)
        C = np.zeros((19, 15), dtype=np.int64)
        g = TileGrid(rows=18, cols=14, tile_rows=5, tile_cols=4)

        def tile_fn(tile):
            for i in range(tile.row_start + 1, tile.row_stop + 1):
                for j in range(tile.col_start + 1, tile.col_stop + 1):
                    if a[i - 1] == b[j - 1]:
                        C[i, j] = C[i - 1, j - 1] + 1
                    else:
                        C[i, j] = max(C[i - 1, j], C[i, j - 1])

        execute_wavefront(g, tile_fn)
        np.testing.assert_array_equal(C, lcs_table(a, b))


class TestThreadedExecution:
    def test_threaded_lcs_matches_reference(self, rng):
        from repro.datagen.sequences import random_dna
        from repro.problems.alignment.reference import lcs_table
        from repro.wavefront.scheduler import execute_wavefront_threaded

        a = random_dna(24, rng)
        b = random_dna(20, rng)
        C = np.zeros((25, 21), dtype=np.int64)
        g = TileGrid(rows=24, cols=20, tile_rows=6, tile_cols=5)

        def tile_fn(tile):
            for i in range(tile.row_start + 1, tile.row_stop + 1):
                for j in range(tile.col_start + 1, tile.col_stop + 1):
                    if a[i - 1] == b[j - 1]:
                        C[i, j] = C[i - 1, j - 1] + 1
                    else:
                        C[i, j] = max(C[i - 1, j], C[i, j - 1])

        order = execute_wavefront_threaded(g, tile_fn, num_threads=3)
        np.testing.assert_array_equal(C, lcs_table(a, b))
        assert len(order) == g.num_waves

    def test_threaded_exceptions_propagate(self):
        from repro.wavefront.scheduler import execute_wavefront_threaded

        g = TileGrid(rows=4, cols=4, tile_rows=2, tile_cols=2)

        def boom(tile):
            raise RuntimeError("tile failed")

        with pytest.raises(RuntimeError):
            execute_wavefront_threaded(g, boom, num_threads=2)

    def test_thread_count_validated(self):
        from repro.wavefront.scheduler import execute_wavefront_threaded

        g = TileGrid(rows=2, cols=2, tile_rows=1, tile_cols=1)
        with pytest.raises(ValueError):
            execute_wavefront_threaded(g, lambda t: None, num_threads=0)
