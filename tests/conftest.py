"""Shared fixtures and helpers for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ltdp.matrix_problem import random_matrix_problem
from repro.semiring.tropical import NEG_INF


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests needing other seeds create their own."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix_problem(rng):
    """A small dense random LTDP instance with integer weights."""
    return random_matrix_problem(12, 5, rng, integer=True)


def brute_force_ltdp(initial: np.ndarray, matrices: list[np.ndarray]):
    """Enumerate all stage-paths of a tiny LTDP instance.

    Returns ``(best_value, best_path)`` where ``best_path[i]`` is the
    subproblem index at stage ``i`` and the objective is the value of
    subproblem 0 of the last stage:
    ``initial[p0] + Σ A_i[p_i, p_{i-1}]`` maximized over paths ending
    at ``p_n = 0``.  Exponential — keep widths/stages tiny.
    Tie-break matches the library: at each choice the lowest index wins,
    resolved by a right-to-left DP rather than naive enumeration.
    """
    # DP over stages gives both the exact value and deterministic path.
    n = len(matrices)
    values = [np.asarray(initial, dtype=float)]
    for A in matrices:
        prev = values[-1]
        vals = np.max(A + prev[np.newaxis, :], axis=1)
        values.append(vals)
    # Backward: follow lowest-index argmax predecessors from cell 0.
    path = [0]
    for i in range(n, 0, -1):
        A = matrices[i - 1]
        prev = values[i - 1]
        j = path[-1]
        row = A[j] + prev
        path.append(int(np.argmax(row)))
    path.reverse()
    return float(values[-1][0]), np.asarray(path, dtype=np.int64)


def random_tropical_matrix(
    rng: np.random.Generator,
    rows: int,
    cols: int,
    *,
    density: float = 1.0,
    low: int = -6,
    high: int = 6,
) -> np.ndarray:
    """Random integer-valued tropical matrix, optionally sparse (-inf holes)."""
    a = rng.integers(low, high + 1, size=(rows, cols)).astype(float)
    if density < 1.0:
        mask = rng.random((rows, cols)) >= density
        a[mask] = NEG_INF
        # Keep every row non-trivial.
        for r in range(rows):
            if not np.isfinite(a[r]).any():
                a[r, rng.integers(0, cols)] = float(rng.integers(low, high + 1))
    return a
