"""Tests for table/series rendering."""

import pytest

from repro.analysis.tables import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # all lines equal width

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159]], float_fmt=".2f")
        assert "3.14" in out

    def test_row_length_validated(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_header_separator(self):
        out = format_table(["ab"], [[1]])
        assert "--" in out.splitlines()[1]


class TestFormatSeries:
    def test_series_layout(self):
        out = format_series(
            "cores", [1, 2, 4], {"speedup": [1.0, 1.9, 3.5], "eff": [1.0, 0.95, 0.88]}
        )
        lines = out.splitlines()
        assert "cores" in lines[0] and "speedup" in lines[0] and "eff" in lines[0]
        assert len(lines) == 2 + 3

    def test_values_in_rows(self):
        out = format_series("p", [8], {"s": [4.2]})
        assert "8" in out and "4.2" in out
