"""Tests for scaling sweeps and throughput metrics."""

import numpy as np
import pytest

from repro.analysis.speedup import (
    scaling_sweep,
    throughput_gcups,
    throughput_mbps,
)
from repro.ltdp.matrix_problem import random_matrix_problem
from repro.machine.cluster import SimCluster


class TestThroughput:
    def test_mbps(self):
        assert throughput_mbps(2_000_000, 1.0) == pytest.approx(2.0)

    def test_gcups(self):
        assert throughput_gcups(3e9, 2.0) == pytest.approx(1.5)

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            throughput_mbps(1, 0.0)
        with pytest.raises(ValueError):
            throughput_gcups(1, -1.0)


class TestScalingSweep:
    @pytest.fixture
    def curve(self):
        rng = np.random.default_rng(0)
        problem = random_matrix_problem(256, 4, rng, integer=True)
        cluster = SimCluster.stampede(1, cell_cost=1e-6)
        return scaling_sweep(
            problem, cluster, [1, 2, 4, 8], label="rand", seed=0
        )

    def test_labels_and_lengths(self, curve):
        assert curve.label == "rand"
        assert [p.num_procs for p in curve.points] == [1, 2, 4, 8]

    def test_single_proc_speedup_near_one(self, curve):
        p1 = curve.points[0]
        # P=1 runs the plain sequential algorithm: identical time.
        assert p1.speedup == pytest.approx(1.0, rel=0.05)

    def test_speedup_grows_with_convergence(self, curve):
        assert curve.points[-1].speedup > curve.points[0].speedup
        assert curve.best().num_procs == 8

    def test_efficiency_definition(self, curve):
        for p in curve.points:
            assert p.efficiency == pytest.approx(p.speedup / p.num_procs)

    def test_efficiency_at_most_about_one(self, curve):
        for p in curve.points:
            assert p.efficiency <= 1.05

    def test_filled_marker(self, curve):
        for p in curve.points[1:]:
            assert p.filled == (p.fixup_iterations == 1)

    def test_series_accessors(self, curve):
        assert len(curve.speedups()) == 4
        assert len(curve.efficiencies()) == 4


class TestCustomOptions:
    def test_make_options_hook(self):
        from repro.ltdp.parallel import ParallelOptions

        rng = np.random.default_rng(1)
        problem = random_matrix_problem(64, 4, rng, integer=True)
        cluster = SimCluster.stampede(1, cell_cost=1e-6)
        seen = []

        def make_options(p):
            seen.append(p)
            return ParallelOptions(num_procs=p, seed=5, exact_score=False)

        curve = scaling_sweep(
            problem, cluster, [2, 4], make_options=make_options
        )
        assert seen == [2, 4]
        assert len(curve.points) == 2

    def test_delta_flag_threads_through(self):
        rng = np.random.default_rng(1)
        problem = random_matrix_problem(64, 4, rng, integer=True)
        cluster = SimCluster.stampede(1, cell_cost=1e-6)
        plain = scaling_sweep(problem, cluster, [4], seed=2, use_delta=False)
        delta = scaling_sweep(problem, cluster, [4], seed=2, use_delta=True)
        # Delta accounting can only reduce recorded fix-up work.
        assert delta.points[0].total_work_cells <= plain.points[0].total_work_cells
