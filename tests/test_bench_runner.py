"""Tests for the perf-regression harness (``benchmarks/bench_runner.py``).

The runner is a standalone script outside the package (pytest's
``testpaths`` excludes ``benchmarks/``), so it is loaded here by path.
The end-to-end test runs the real smoke sweep — it is the regression
gate for the BENCH_pool.json contract: schema-versioned document at the
repo root, comparison against the previous file, tracing checks.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_RUNNER = pathlib.Path(__file__).parent.parent / "benchmarks" / "bench_runner.py"


@pytest.fixture(scope="module")
def runner():
    spec = importlib.util.spec_from_file_location("bench_runner", _RUNNER)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_runner", module)
    spec.loader.exec_module(module)
    return module


def valid_doc(runner):
    return {
        "schema_version": runner.BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "created": "2026-01-01T00:00:00Z",
        "mode": "smoke",
        "host": {"platform": "x", "python": "3", "cpu_count": 1},
        "results": [
            {
                "problem": "lcs",
                "executor": "pool",
                "procs": 2,
                "repeats": 2,
                "wall_seconds": 0.01,
                "wall_seconds_median": 0.012,
                "supersteps": 4,
                "num_barriers": 4,
                "forward_fixup_iterations": 1,
                "bytes_communicated": 1000,
                "total_work_cells": 5000.0,
                "cells_per_second": 500000.0,
            }
        ],
        "checks": {"tracing_disabled_overhead": {"passed": True}},
    }


class TestSchemaValidation:
    def test_valid_document_passes(self, runner):
        runner.validate_bench_doc(valid_doc(runner))

    def test_rejects_non_object(self, runner):
        with pytest.raises(ValueError, match="must be an object"):
            runner.validate_bench_doc([])

    def test_rejects_wrong_schema_version(self, runner):
        doc = valid_doc(runner)
        doc["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            runner.validate_bench_doc(doc)

    def test_rejects_wrong_kind(self, runner):
        doc = valid_doc(runner)
        doc["kind"] = "other"
        with pytest.raises(ValueError, match="kind"):
            runner.validate_bench_doc(doc)

    def test_rejects_missing_result_field(self, runner):
        doc = valid_doc(runner)
        del doc["results"][0]["wall_seconds"]
        with pytest.raises(ValueError, match="wall_seconds"):
            runner.validate_bench_doc(doc)

    def test_rejects_empty_results(self, runner):
        doc = valid_doc(runner)
        doc["results"] = []
        with pytest.raises(ValueError, match="non-empty"):
            runner.validate_bench_doc(doc)

    def test_rejects_check_without_passed(self, runner):
        doc = valid_doc(runner)
        doc["checks"] = {"broken": {}}
        with pytest.raises(ValueError, match="passed"):
            runner.validate_bench_doc(doc)

    def test_committed_bench_file_is_valid(self, runner):
        committed = runner.DEFAULT_OUT
        assert committed.exists(), "BENCH_pool.json must be committed at repo root"
        runner.validate_bench_doc(json.loads(committed.read_text()))


class TestComparison:
    def test_flags_regressions(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0]["wall_seconds"] = old["results"][0]["wall_seconds"] * 10
        cmp = runner.compare_documents(old, new)
        assert cmp["comparable"]
        assert len(cmp["cells"]) == 1
        assert cmp["regressions"] == cmp["cells"]
        assert cmp["cells"][0]["ratio"] == pytest.approx(10.0)

    def test_within_threshold_is_clean(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0]["wall_seconds"] = old["results"][0]["wall_seconds"] * 1.1
        cmp = runner.compare_documents(old, new)
        assert cmp["regressions"] == []

    def test_mode_mismatch_not_compared(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["mode"] = "full"
        cmp = runner.compare_documents(old, new)
        assert not cmp["comparable"]
        assert cmp["cells"] == []

    def test_new_cells_are_skipped(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0]["procs"] = 64  # no matching baseline cell
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []


class TestZeroDurationGuard:
    """Regression tests for the bench-math zero guard.

    Before the fix, a non-positive best-of-N floor produced
    ``cells_per_second: 0.0`` with no marker — indistinguishable from a
    measured rate of zero — and a zero-duration *baseline* row made
    ``compare_documents`` divide by its wall clock.
    """

    def test_positive_floor_is_valid(self, runner):
        cps, valid = runner.throughput_cells_per_second(5000.0, 0.01)
        assert valid
        assert cps == pytest.approx(500000.0)

    def test_zero_floor_marks_invalid(self, runner):
        assert runner.throughput_cells_per_second(5000.0, 0.0) == (0.0, False)

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_degenerate_floors_mark_invalid(self, runner, bad):
        assert runner.throughput_cells_per_second(5000.0, bad) == (0.0, False)

    def test_validator_accepts_invalid_row_with_zero_wall(self, runner):
        doc = valid_doc(runner)
        doc["results"][0].update(
            wall_seconds=0.0, cells_per_second=0.0, valid=False
        )
        runner.validate_bench_doc(doc)  # must not raise

    def test_validator_rejects_zero_wall_on_valid_row(self, runner):
        doc = valid_doc(runner)
        doc["results"][0]["wall_seconds"] = 0.0
        with pytest.raises(ValueError, match="positive"):
            runner.validate_bench_doc(doc)

    def test_validator_rejects_non_bool_valid(self, runner):
        doc = valid_doc(runner)
        doc["results"][0]["valid"] = "yes"
        with pytest.raises(ValueError, match="valid"):
            runner.validate_bench_doc(doc)

    def test_comparison_skips_invalid_new_row_loudly(self, runner, capsys):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0].update(
            wall_seconds=0.0, cells_per_second=0.0, valid=False
        )
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []
        assert cmp["regressions"] == []
        assert len(cmp["skipped_invalid"]) == 1
        runner._print_comparison(cmp)
        assert "SKIPPED (invalid row)" in capsys.readouterr().out

    def test_comparison_skips_zero_duration_legacy_baseline(self, runner):
        # A pre-guard baseline file can carry wall_seconds == 0 with no
        # ``valid`` marker; comparison must skip it, not divide by it
        # (this raised ZeroDivisionError before the fix).
        old = valid_doc(runner)
        old["results"][0]["wall_seconds"] = 0.0
        new = valid_doc(runner)
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []
        assert len(cmp["skipped_invalid"]) == 1

    def test_comparison_skips_resized_instance_loudly(self, runner, capsys):
        # Growing a benchmark instance (e.g. the xl rows) must not read
        # as a wall-clock regression: rows whose total_work_cells differ
        # are excluded from the ratio check and reported.
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0]["total_work_cells"] = (
            old["results"][0]["total_work_cells"] * 4
        )
        new["results"][0]["wall_seconds"] = (
            old["results"][0]["wall_seconds"] * 4
        )
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []
        assert cmp["regressions"] == []
        assert len(cmp["skipped_resized"]) == 1
        runner._print_comparison(cmp)
        assert "SKIPPED (instance resized)" in capsys.readouterr().out

    def test_comparison_tolerates_baseline_without_work_cells(self, runner):
        # Legacy baseline rows predate total_work_cells; they still
        # compare on wall clock alone.
        old = valid_doc(runner)
        del old["results"][0]["total_work_cells"]
        new = valid_doc(runner)
        cmp = runner.compare_documents(old, new)
        assert len(cmp["cells"]) == 1
        assert cmp["skipped_resized"] == []


class TestKernelTierCells:
    def test_kernel_tier_joins_comparison_key(self, runner):
        old = valid_doc(runner)
        tier_row = dict(old["results"][0], kernel_tier=True, wall_seconds=0.001)
        old["results"].append(tier_row)
        new = valid_doc(runner)
        new["results"].append(dict(tier_row))
        cmp = runner.compare_documents(old, new)
        assert len(cmp["cells"]) == 2
        by_tier = {c["kernel_tier"]: c for c in cmp["cells"]}
        assert by_tier[False]["old_seconds"] == old["results"][0]["wall_seconds"]
        assert by_tier[True]["old_seconds"] == pytest.approx(0.001)

    def test_validator_rejects_non_bool_kernel_tier(self, runner):
        doc = valid_doc(runner)
        doc["results"][0]["kernel_tier"] = "on"
        with pytest.raises(ValueError, match="kernel_tier"):
            runner.validate_bench_doc(doc)

    def test_classic_grid_pins_kernels_off(self, runner):
        # Baseline continuity: the classic rows must keep timing the
        # dense per-stage path even now that a kernel tier exists.
        import inspect

        sig = inspect.signature(runner._timed_solve)
        assert sig.parameters["use_kernels"].default is False


class TestBaselineLaundering:
    """Regression tests for baseline self-laundering.

    Before the fix, a run that *flagged a regression* exited 1 but
    still overwrote ``--out`` — so the very next run compared against
    the regressed floors and passed.  A failing run must leave the
    committed baseline byte-identical and write its document to the
    ``*.failed.json`` sidecar instead.
    """

    def write_baseline(self, runner, path, **row_overrides):
        doc = valid_doc(runner)
        doc["results"][0].update(row_overrides)
        payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        path.write_text(payload)
        return payload

    def test_regressed_run_leaves_baseline_untouched(self, runner, tmp_path, capsys):
        out = tmp_path / "BENCH_pool.json"
        baseline_bytes = self.write_baseline(runner, out, wall_seconds=0.001)
        slow = valid_doc(runner)  # 0.01s: 10x over the 0.001s baseline
        assert runner.finalize_run(slow, out) == 1
        assert out.read_text() == baseline_bytes  # byte-identical
        sidecar = runner.failed_sidecar(out)
        assert sidecar.exists()
        runner.validate_bench_doc(json.loads(sidecar.read_text()))
        captured = capsys.readouterr().out
        assert "left untouched" in captured
        assert "--update-baseline" in captured

    def test_passing_run_updates_baseline(self, runner, tmp_path):
        out = tmp_path / "BENCH_pool.json"
        self.write_baseline(runner, out, wall_seconds=0.011)
        doc = valid_doc(runner)
        assert runner.finalize_run(doc, out) == 0
        assert json.loads(out.read_text())["results"][0]["wall_seconds"] == 0.01
        assert not runner.failed_sidecar(out).exists()

    def test_failed_checks_go_to_sidecar(self, runner, tmp_path):
        out = tmp_path / "BENCH_pool.json"
        doc = valid_doc(runner)
        assert runner.finalize_run(doc, out, checks_ok=False) == 1
        assert not out.exists()
        assert runner.failed_sidecar(out).exists()

    def test_update_baseline_overrides_but_keeps_exit_code(self, runner, tmp_path):
        out = tmp_path / "BENCH_pool.json"
        self.write_baseline(runner, out, wall_seconds=0.001)
        slow = valid_doc(runner)
        assert runner.finalize_run(slow, out, update_baseline=True) == 1
        assert json.loads(out.read_text())["results"][0]["wall_seconds"] == 0.01

    def test_mode_mismatch_never_replaces_baseline_silently(self, runner, tmp_path, capsys):
        # A smoke run against a committed full-mode baseline passes (no
        # timings compared) but must not replace it.
        out = tmp_path / "BENCH_pool.json"
        doc_full = valid_doc(runner)
        doc_full["mode"] = "full"
        baseline_bytes = json.dumps(doc_full, indent=2, sort_keys=True) + "\n"
        out.write_text(baseline_bytes)
        smoke = valid_doc(runner)
        assert runner.finalize_run(smoke, out) == 0
        assert out.read_text() == baseline_bytes
        assert runner.failed_sidecar(out).exists()
        assert "mode 'smoke' != baseline mode" in capsys.readouterr().out

    def test_first_run_writes_fresh_baseline(self, runner, tmp_path):
        out = tmp_path / "BENCH_pool.json"
        assert runner.finalize_run(valid_doc(runner), out) == 0
        assert out.exists()


class TestDuplicateCells:
    """Regression tests for silent duplicate-cell collapse.

    ``compare_documents`` used to index rows into a dict keyed by the
    cell identity — two rows sharing a key silently collapsed to
    whichever came last, so a duplicated (and possibly contradictory)
    measurement never reached the report.  Duplicates on either side
    must now surface under ``duplicate_cells`` and fail the comparison.
    """

    def test_baseline_duplicates_surface_and_exclude(self, runner):
        old = valid_doc(runner)
        old["results"].append(dict(old["results"][0], wall_seconds=0.5))
        new = valid_doc(runner)
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []  # ambiguous cell excluded from ratios
        assert len(cmp["duplicate_cells"]) == 1
        dup = cmp["duplicate_cells"][0]
        assert dup["side"] == "baseline"
        assert dup["count"] == 2
        assert (dup["problem"], dup["executor"]) == ("lcs", "pool")

    def test_new_side_duplicates_surface(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"].append(dict(new["results"][0]))
        cmp = runner.compare_documents(old, new)
        assert [d["side"] for d in cmp["duplicate_cells"]] == ["new"]

    def test_unique_cells_still_compared_alongside_duplicates(self, runner):
        old = valid_doc(runner)
        other = dict(old["results"][0], executor="serial", procs=1)
        old["results"].append(other)
        old["results"].append(dict(old["results"][0]))  # duplicate lcs/pool
        new = valid_doc(runner)
        new["results"].append(dict(other))
        cmp = runner.compare_documents(old, new)
        assert len(cmp["cells"]) == 1
        assert cmp["cells"][0]["executor"] == "serial"

    def test_print_comparison_reports_failure(self, runner, capsys):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"].append(dict(new["results"][0]))
        runner._print_comparison(runner.compare_documents(old, new))
        out = capsys.readouterr().out
        assert "DUPLICATE (new side)" in out
        assert "comparison FAILED" in out

    def test_find_duplicate_cells_counts(self, runner):
        rows = [valid_doc(runner)["results"][0] for _ in range(3)]
        dups = runner.find_duplicate_cells(rows)
        assert len(dups) == 1
        assert dups[0]["count"] == 3
        assert runner.find_duplicate_cells(rows[:1]) == []

    def test_validator_opt_in_rejects_duplicates(self, runner):
        doc = valid_doc(runner)
        doc["results"].append(dict(doc["results"][0]))
        runner.validate_bench_doc(doc)  # lenient by default (legacy docs)
        with pytest.raises(ValueError, match="duplicate result cell"):
            runner.validate_bench_doc(doc, check_duplicates=True)

    def test_finalize_run_fails_on_duplicate_baseline(self, runner, tmp_path, capsys):
        # A duplicated baseline is not "unusable" — it must fail the
        # comparison loudly, not be skipped.
        out = tmp_path / "BENCH_pool.json"
        old = valid_doc(runner)
        old["results"].append(dict(old["results"][0]))
        out.write_text(json.dumps(old, indent=2, sort_keys=True) + "\n")
        assert runner.finalize_run(valid_doc(runner), out) == 1
        assert "duplicate cell key(s)" in capsys.readouterr().out


class TestEndToEnd:
    def test_smoke_run_emits_valid_doc_then_compares(self, runner, tmp_path, capsys):
        out = tmp_path / "BENCH_pool.json"
        doc, code = runner.run_bench(True, 1, out, trace_path=None)
        assert code == 0
        runner.validate_bench_doc(doc)
        on_disk = json.loads(out.read_text())
        assert on_disk["schema_version"] == runner.BENCH_SCHEMA_VERSION
        assert on_disk["mode"] == "smoke"
        assert {(r["problem"], r["executor"]) for r in on_disk["results"]} >= {
            ("lcs", "pool"),
            ("viterbi", "serial"),
        }
        for check in on_disk["checks"].values():
            assert check["passed"]
        assert "comparison" not in on_disk  # first run: nothing to compare

        # Second run compares cell-by-cell against the first.  (Whether
        # any cell is *flagged* depends on real timing noise — the
        # runner's own exit code carries that verdict; here we pin the
        # comparison mechanics.)
        doc2, _ = runner.run_bench(True, 1, out, trace_path=None)
        cmp = doc2["comparison"]
        assert cmp["comparable"]
        assert len(cmp["cells"]) == len(doc["results"])
        for cell in cmp["cells"]:
            assert cell["regressed"] == (
                cell["ratio"] > runner.REGRESSION_RATIO
            )
        assert "comparison vs previous file" in capsys.readouterr().out

    def test_trace_artifact_written(self, runner, tmp_path):
        trace = tmp_path / "trace.jsonl"
        check = runner._check_trace_coverage(True, str(trace))
        assert check["passed"]
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert any(
            r["type"] == "span" and r["name"] == "dispatch" for r in lines[1:]
        )
