"""Tests for the perf-regression harness (``benchmarks/bench_runner.py``).

The runner is a standalone script outside the package (pytest's
``testpaths`` excludes ``benchmarks/``), so it is loaded here by path.
The end-to-end test runs the real smoke sweep — it is the regression
gate for the BENCH_pool.json contract: schema-versioned document at the
repo root, comparison against the previous file, tracing checks.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_RUNNER = pathlib.Path(__file__).parent.parent / "benchmarks" / "bench_runner.py"


@pytest.fixture(scope="module")
def runner():
    spec = importlib.util.spec_from_file_location("bench_runner", _RUNNER)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_runner", module)
    spec.loader.exec_module(module)
    return module


def valid_doc(runner):
    return {
        "schema_version": runner.BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "created": "2026-01-01T00:00:00Z",
        "mode": "smoke",
        "host": {"platform": "x", "python": "3", "cpu_count": 1},
        "results": [
            {
                "problem": "lcs",
                "executor": "pool",
                "procs": 2,
                "repeats": 2,
                "wall_seconds": 0.01,
                "wall_seconds_median": 0.012,
                "supersteps": 4,
                "num_barriers": 4,
                "forward_fixup_iterations": 1,
                "bytes_communicated": 1000,
                "total_work_cells": 5000.0,
                "cells_per_second": 500000.0,
            }
        ],
        "checks": {"tracing_disabled_overhead": {"passed": True}},
    }


class TestSchemaValidation:
    def test_valid_document_passes(self, runner):
        runner.validate_bench_doc(valid_doc(runner))

    def test_rejects_non_object(self, runner):
        with pytest.raises(ValueError, match="must be an object"):
            runner.validate_bench_doc([])

    def test_rejects_wrong_schema_version(self, runner):
        doc = valid_doc(runner)
        doc["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            runner.validate_bench_doc(doc)

    def test_rejects_wrong_kind(self, runner):
        doc = valid_doc(runner)
        doc["kind"] = "other"
        with pytest.raises(ValueError, match="kind"):
            runner.validate_bench_doc(doc)

    def test_rejects_missing_result_field(self, runner):
        doc = valid_doc(runner)
        del doc["results"][0]["wall_seconds"]
        with pytest.raises(ValueError, match="wall_seconds"):
            runner.validate_bench_doc(doc)

    def test_rejects_empty_results(self, runner):
        doc = valid_doc(runner)
        doc["results"] = []
        with pytest.raises(ValueError, match="non-empty"):
            runner.validate_bench_doc(doc)

    def test_rejects_check_without_passed(self, runner):
        doc = valid_doc(runner)
        doc["checks"] = {"broken": {}}
        with pytest.raises(ValueError, match="passed"):
            runner.validate_bench_doc(doc)

    def test_committed_bench_file_is_valid(self, runner):
        committed = runner.DEFAULT_OUT
        assert committed.exists(), "BENCH_pool.json must be committed at repo root"
        runner.validate_bench_doc(json.loads(committed.read_text()))


class TestComparison:
    def test_flags_regressions(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0]["wall_seconds"] = old["results"][0]["wall_seconds"] * 10
        cmp = runner.compare_documents(old, new)
        assert cmp["comparable"]
        assert len(cmp["cells"]) == 1
        assert cmp["regressions"] == cmp["cells"]
        assert cmp["cells"][0]["ratio"] == pytest.approx(10.0)

    def test_within_threshold_is_clean(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0]["wall_seconds"] = old["results"][0]["wall_seconds"] * 1.1
        cmp = runner.compare_documents(old, new)
        assert cmp["regressions"] == []

    def test_mode_mismatch_not_compared(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["mode"] = "full"
        cmp = runner.compare_documents(old, new)
        assert not cmp["comparable"]
        assert cmp["cells"] == []

    def test_new_cells_are_skipped(self, runner):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0]["procs"] = 64  # no matching baseline cell
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []


class TestZeroDurationGuard:
    """Regression tests for the bench-math zero guard.

    Before the fix, a non-positive best-of-N floor produced
    ``cells_per_second: 0.0`` with no marker — indistinguishable from a
    measured rate of zero — and a zero-duration *baseline* row made
    ``compare_documents`` divide by its wall clock.
    """

    def test_positive_floor_is_valid(self, runner):
        cps, valid = runner.throughput_cells_per_second(5000.0, 0.01)
        assert valid
        assert cps == pytest.approx(500000.0)

    def test_zero_floor_marks_invalid(self, runner):
        assert runner.throughput_cells_per_second(5000.0, 0.0) == (0.0, False)

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_degenerate_floors_mark_invalid(self, runner, bad):
        assert runner.throughput_cells_per_second(5000.0, bad) == (0.0, False)

    def test_validator_accepts_invalid_row_with_zero_wall(self, runner):
        doc = valid_doc(runner)
        doc["results"][0].update(
            wall_seconds=0.0, cells_per_second=0.0, valid=False
        )
        runner.validate_bench_doc(doc)  # must not raise

    def test_validator_rejects_zero_wall_on_valid_row(self, runner):
        doc = valid_doc(runner)
        doc["results"][0]["wall_seconds"] = 0.0
        with pytest.raises(ValueError, match="positive"):
            runner.validate_bench_doc(doc)

    def test_validator_rejects_non_bool_valid(self, runner):
        doc = valid_doc(runner)
        doc["results"][0]["valid"] = "yes"
        with pytest.raises(ValueError, match="valid"):
            runner.validate_bench_doc(doc)

    def test_comparison_skips_invalid_new_row_loudly(self, runner, capsys):
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0].update(
            wall_seconds=0.0, cells_per_second=0.0, valid=False
        )
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []
        assert cmp["regressions"] == []
        assert len(cmp["skipped_invalid"]) == 1
        runner._print_comparison(cmp)
        assert "SKIPPED (invalid row)" in capsys.readouterr().out

    def test_comparison_skips_zero_duration_legacy_baseline(self, runner):
        # A pre-guard baseline file can carry wall_seconds == 0 with no
        # ``valid`` marker; comparison must skip it, not divide by it
        # (this raised ZeroDivisionError before the fix).
        old = valid_doc(runner)
        old["results"][0]["wall_seconds"] = 0.0
        new = valid_doc(runner)
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []
        assert len(cmp["skipped_invalid"]) == 1

    def test_comparison_skips_resized_instance_loudly(self, runner, capsys):
        # Growing a benchmark instance (e.g. the xl rows) must not read
        # as a wall-clock regression: rows whose total_work_cells differ
        # are excluded from the ratio check and reported.
        old = valid_doc(runner)
        new = valid_doc(runner)
        new["results"][0]["total_work_cells"] = (
            old["results"][0]["total_work_cells"] * 4
        )
        new["results"][0]["wall_seconds"] = (
            old["results"][0]["wall_seconds"] * 4
        )
        cmp = runner.compare_documents(old, new)
        assert cmp["cells"] == []
        assert cmp["regressions"] == []
        assert len(cmp["skipped_resized"]) == 1
        runner._print_comparison(cmp)
        assert "SKIPPED (instance resized)" in capsys.readouterr().out

    def test_comparison_tolerates_baseline_without_work_cells(self, runner):
        # Legacy baseline rows predate total_work_cells; they still
        # compare on wall clock alone.
        old = valid_doc(runner)
        del old["results"][0]["total_work_cells"]
        new = valid_doc(runner)
        cmp = runner.compare_documents(old, new)
        assert len(cmp["cells"]) == 1
        assert cmp["skipped_resized"] == []


class TestKernelTierCells:
    def test_kernel_tier_joins_comparison_key(self, runner):
        old = valid_doc(runner)
        tier_row = dict(old["results"][0], kernel_tier=True, wall_seconds=0.001)
        old["results"].append(tier_row)
        new = valid_doc(runner)
        new["results"].append(dict(tier_row))
        cmp = runner.compare_documents(old, new)
        assert len(cmp["cells"]) == 2
        by_tier = {c["kernel_tier"]: c for c in cmp["cells"]}
        assert by_tier[False]["old_seconds"] == old["results"][0]["wall_seconds"]
        assert by_tier[True]["old_seconds"] == pytest.approx(0.001)

    def test_validator_rejects_non_bool_kernel_tier(self, runner):
        doc = valid_doc(runner)
        doc["results"][0]["kernel_tier"] = "on"
        with pytest.raises(ValueError, match="kernel_tier"):
            runner.validate_bench_doc(doc)

    def test_classic_grid_pins_kernels_off(self, runner):
        # Baseline continuity: the classic rows must keep timing the
        # dense per-stage path even now that a kernel tier exists.
        import inspect

        sig = inspect.signature(runner._timed_solve)
        assert sig.parameters["use_kernels"].default is False


class TestEndToEnd:
    def test_smoke_run_emits_valid_doc_then_compares(self, runner, tmp_path, capsys):
        out = tmp_path / "BENCH_pool.json"
        doc, code = runner.run_bench(True, 1, out, trace_path=None)
        assert code == 0
        runner.validate_bench_doc(doc)
        on_disk = json.loads(out.read_text())
        assert on_disk["schema_version"] == runner.BENCH_SCHEMA_VERSION
        assert on_disk["mode"] == "smoke"
        assert {(r["problem"], r["executor"]) for r in on_disk["results"]} >= {
            ("lcs", "pool"),
            ("viterbi", "serial"),
        }
        for check in on_disk["checks"].values():
            assert check["passed"]
        assert "comparison" not in on_disk  # first run: nothing to compare

        # Second run compares cell-by-cell against the first.  (Whether
        # any cell is *flagged* depends on real timing noise — the
        # runner's own exit code carries that verdict; here we pin the
        # comparison mechanics.)
        doc2, _ = runner.run_bench(True, 1, out, trace_path=None)
        cmp = doc2["comparison"]
        assert cmp["comparable"]
        assert len(cmp["cells"]) == len(doc["results"])
        for cell in cmp["cells"]:
            assert cell["regressed"] == (
                cell["ratio"] > runner.REGRESSION_RATIO
            )
        assert "comparison vs previous file" in capsys.readouterr().out

    def test_trace_artifact_written(self, runner, tmp_path):
        trace = tmp_path / "trace.jsonl"
        check = runner._check_trace_coverage(True, str(trace))
        assert check["passed"]
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines[0]["type"] == "header"
        assert any(
            r["type"] == "span" and r["name"] == "dispatch" for r in lines[1:]
        )
