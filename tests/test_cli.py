"""Tests for the command-line interface."""

import pytest

from repro.cli import PROBLEM_CHOICES, build_problem, main


class TestInfo:
    def test_lists_problems_and_codes(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        for name in PROBLEM_CHOICES:
            assert name in out
        assert "Voyager" in out and "MARS" in out


class TestSolve:
    @pytest.mark.parametrize("problem", PROBLEM_CHOICES)
    def test_solve_each_problem(self, problem, capsys):
        rc = main(
            [
                "solve",
                "--problem",
                problem,
                "--size",
                "120",
                "--width",
                "12",
                "--procs",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel == seq  : True" in out

    def test_reports_metrics(self, capsys):
        main(["solve", "--problem", "lcs", "--size", "200", "--procs", "4"])
        out = capsys.readouterr().out
        assert "fix-up iterations" in out
        assert "critical work" in out
        assert "measured wall" in out
        assert "recovery" in out
        assert "0 worker respawns" in out

    def test_solve_reports_recovery_after_injected_fault(self, capsys, monkeypatch):
        """A worker killed mid-solve (env-driven fault plan) is healed
        transparently: the solve still matches the sequential answer and
        the report counts the respawn."""
        monkeypatch.setenv("REPRO_POOL_FAULTS", "2:0")  # kill during forward
        rc = main(
            [
                "solve",
                "--problem",
                "lcs",
                "--size",
                "100",
                "--width",
                "10",
                "--procs",
                "3",
                "--executor",
                "pool",
                "--workers",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel == seq  : True" in out
        assert "1 worker respawns" in out

    def test_trace_flag_writes_jsonl_and_prints_summary(self, capsys, tmp_path):
        import json

        path = tmp_path / "solve.jsonl"
        rc = main(
            [
                "solve",
                "--problem",
                "lcs",
                "--size",
                "100",
                "--width",
                "10",
                "--procs",
                "3",
                "--executor",
                "pool",
                "--workers",
                "2",
                "--trace",
                str(path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert f"trace            : {path}" in out
        assert "superstep" in out  # the printed trace summary
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "header"
        names = {r.get("name") for r in records[1:]}
        assert {"superstep", "dispatch", "solve-start"} <= names

    @pytest.mark.parametrize("executor", ["serial", "thread", "process", "pool"])
    def test_executor_flag(self, executor, capsys):
        rc = main(
            [
                "solve",
                "--problem",
                "lcs",
                "--size",
                "100",
                "--width",
                "10",
                "--procs",
                "3",
                "--executor",
                executor,
                "--workers",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "parallel == seq  : True" in out
        assert f"executor         : {executor}" in out

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--problem", "lcs", "--executor", "gpu"])


class TestConvergence:
    def test_reports_table(self, capsys):
        rc = main(
            [
                "convergence",
                "--problem",
                "viterbi",
                "--size",
                "150",
                "--trials",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "median" in out and "5/5" in out


class TestSweep:
    def test_prints_series(self, capsys):
        rc = main(
            [
                "sweep",
                "--problem",
                "lcs",
                "--size",
                "400",
                "--width",
                "16",
                "--procs-list",
                "1,2,4",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" in out and "efficiency" in out
        assert out.count("\n") >= 5

    def test_sweep_accepts_runtime_flags(self, capsys):
        rc = main(
            [
                "sweep",
                "--problem",
                "lcs",
                "--size",
                "200",
                "--width",
                "10",
                "--procs-list",
                "1,2",
                "--executor",
                "pool",
                "--workers",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup" in out


class TestTrace:
    def test_renders_gantt(self, capsys):
        rc = main(
            [
                "trace",
                "--problem",
                "nw",
                "--size",
                "300",
                "--width",
                "16",
                "--procs",
                "4",
                "--columns",
                "60",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "makespan" in out
        assert out.count("|") >= 8


class TestFactory:
    def test_unknown_problem_rejected(self):
        import argparse

        args = argparse.Namespace(problem="nope", seed=0)
        with pytest.raises(ValueError):
            build_problem(args)

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])
