"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.datagen.hmms import make_hmm_workload
from repro.datagen.packets import make_received_packet, random_packet
from repro.datagen.sequences import (
    homologous_pair,
    mutate_sequence,
    random_dna,
    random_series,
)
from repro.problems.convolutional import VOYAGER


class TestSequences:
    def test_random_dna_alphabet(self, rng):
        s = random_dna(500, rng)
        assert s.min() >= 0 and s.max() <= 3

    def test_random_dna_validation(self, rng):
        with pytest.raises(ValueError):
            random_dna(0, rng)

    def test_mutation_rate_controls_divergence(self, rng):
        a = random_dna(2000, rng)
        mild = mutate_sequence(a, rng, substitution_rate=0.01, indel_rate=0.0)
        heavy = mutate_sequence(a, rng, substitution_rate=0.4, indel_rate=0.0)
        mild_diff = (mild != a).mean()
        heavy_diff = (heavy != a).mean()
        assert mild_diff < 0.05 < heavy_diff

    def test_substitutions_always_change_base(self, rng):
        a = random_dna(500, rng)
        mutated = mutate_sequence(a, rng, substitution_rate=1.0, indel_rate=0.0)
        assert (mutated != a).all()

    def test_indels_change_length(self, rng):
        a = random_dna(1000, rng)
        mutated = mutate_sequence(a, rng, substitution_rate=0.0, indel_rate=0.3)
        assert len(mutated) != 1000

    def test_rate_validation(self, rng):
        with pytest.raises(ValueError):
            mutate_sequence(random_dna(5, rng), rng, substitution_rate=1.5)

    def test_homologous_pair_equal_length(self, rng):
        a, b = homologous_pair(300, rng, divergence=0.1)
        assert len(a) == len(b) == 300

    def test_homologous_pair_similarity_tracks_divergence(self, rng):
        a1, b1 = homologous_pair(1000, rng, divergence=0.02)
        a2, b2 = homologous_pair(1000, rng, divergence=0.4)
        sim1 = (a1 == b1).mean()
        sim2 = (a2 == b2).mean()
        assert sim1 > sim2

    def test_unequal_length_mode(self, rng):
        a, b = homologous_pair(200, rng, divergence=0.2, equal_length=False)
        assert len(a) == 200  # b may differ

    def test_random_series_smoothness(self, rng):
        smooth = random_series(2000, rng, smoothness=0.98)
        rough = random_series(2000, rng, smoothness=0.0)
        assert np.abs(np.diff(smooth)).mean() < np.abs(np.diff(rough)).mean()

    def test_series_validation(self, rng):
        with pytest.raises(ValueError):
            random_series(10, rng, smoothness=1.0)


class TestPackets:
    def test_random_packet_bits(self, rng):
        p = random_packet(256, rng)
        assert set(np.unique(p)) <= {0, 1}

    def test_make_received_packet_shapes(self, rng):
        payload, problem = make_received_packet(VOYAGER, 100, rng)
        assert payload.size == 100
        assert problem.num_stages == 100 + 6  # payload + K-1 flush stages

    def test_decodes_at_zero_noise(self, rng):
        from repro.ltdp.sequential import solve_sequential

        payload, problem = make_received_packet(VOYAGER, 64, rng, error_rate=0.0)
        decoded = problem.extract(solve_sequential(problem))
        np.testing.assert_array_equal(decoded, payload)


class TestHMMWorkloads:
    def test_workload_shapes(self, rng):
        model, obs, problem = make_hmm_workload(6, 4, 50, rng)
        assert model.num_states == 6
        assert obs.shape == (50,)
        assert problem.num_stages == 50

    def test_problem_solves(self, rng):
        from repro.ltdp.sequential import solve_sequential

        _, _, problem = make_hmm_workload(4, 3, 30, rng)
        sol = solve_sequential(problem)
        assert np.isfinite(sol.score)
