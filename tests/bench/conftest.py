"""Shared fixtures for the longitudinal bench-layer tests."""

import pytest

from repro.bench.pool_bench import BENCH_SCHEMA_VERSION


def make_pool_row(**overrides) -> dict:
    row = {
        "problem": "lcs",
        "executor": "pool",
        "procs": 2,
        "use_delta": False,
        "kernel_tier": False,
        "repeats": 2,
        "wall_seconds": 0.01,
        "wall_seconds_median": 0.012,
        "supersteps": 4,
        "num_barriers": 4,
        "forward_fixup_iterations": 1,
        "bytes_communicated": 1000,
        "total_work_cells": 5000.0,
        "fixup_cells": 100.0,
        "cells_per_second": 500000.0,
        "valid": True,
    }
    row.update(overrides)
    return row


def make_pool_doc(*rows, mode="smoke", checks=None) -> dict:
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "created": "2026-01-01T00:00:00Z",
        "mode": mode,
        "host": {"platform": "x", "python": "3", "cpu_count": 1, "node": "ci"},
        "results": list(rows) if rows else [make_pool_row()],
        "checks": checks
        if checks is not None
        else {"trace_coverage": {"passed": True}},
    }


@pytest.fixture
def pool_doc():
    return make_pool_doc()
