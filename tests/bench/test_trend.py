"""Trend detection on synthetic histories.

Acceptance scenarios from the issue: stable noise must not flag, a
sustained 2x step must flag as a regression, and a single outlier
sample must not flag.
"""

import pytest

from repro.bench.history import make_history_record
from repro.bench.trend import (
    VERDICT_IMPROVEMENT,
    VERDICT_INSUFFICIENT,
    VERDICT_REGRESSION,
    VERDICT_STABLE,
    TrendPolicy,
    collect_series,
    detect_series,
    row_key,
    row_label,
    row_metric,
    trend_report,
)
from repro.bench.report import (
    render_markdown_report,
    render_text_report,
    render_trend_table,
    sparkline,
    verdict_counts,
)

from tests.bench.conftest import make_pool_doc, make_pool_row

POLICY = TrendPolicy()

STABLE_NOISE = [0.100, 0.103, 0.098, 0.101, 0.099, 0.102, 0.100, 0.097, 0.101, 0.100]


class TestDetectSeries:
    def test_stable_noise_not_flagged(self):
        report = detect_series(STABLE_NOISE, POLICY)
        assert report["verdict"] == VERDICT_STABLE

    def test_sustained_2x_step_flagged(self):
        samples = STABLE_NOISE + [0.205, 0.199, 0.202]
        report = detect_series(samples, POLICY)
        assert report["verdict"] == VERDICT_REGRESSION
        assert report["recent_ratio"] == pytest.approx(2.0, rel=0.1)

    def test_single_outlier_not_flagged(self):
        # One 3x spike in the middle of otherwise-stable noise: a robust
        # detector must not raise a flag on it.
        samples = STABLE_NOISE + [0.300, 0.101, 0.099]
        report = detect_series(samples, POLICY)
        assert report["verdict"] == VERDICT_STABLE

    def test_sustained_speedup_is_improvement(self):
        samples = STABLE_NOISE + [0.050, 0.049, 0.051]
        report = detect_series(samples, POLICY)
        assert report["verdict"] == VERDICT_IMPROVEMENT

    def test_thin_history_is_insufficient(self):
        report = detect_series([0.1, 0.2, 0.1, 0.1], POLICY)
        assert report["verdict"] == VERDICT_INSUFFICIENT

    def test_small_drift_below_min_effect_not_flagged(self):
        # Statistically visible but below the 1.25x practical-effect
        # floor: must stay stable so tiny machines don't cry wolf.
        flat = [0.1000, 0.1001, 0.1000, 0.0999, 0.1000, 0.1001, 0.1000, 0.1000]
        samples = flat + [0.1100, 0.1101, 0.1099]
        report = detect_series(samples, POLICY)
        assert report["verdict"] == VERDICT_STABLE

    def test_zero_variance_window_does_not_divide_by_zero(self):
        samples = [0.1] * 8 + [0.5, 0.5, 0.5]
        report = detect_series(samples, POLICY)
        assert report["verdict"] == VERDICT_REGRESSION


def history_records(series, **row_overrides):
    return [
        make_history_record(
            "pool",
            make_pool_doc(make_pool_row(wall_seconds=value, **row_overrides)),
        )
        for value in series
    ]


class TestSeriesCollection:
    def test_collect_series_groups_by_cell(self):
        records = history_records(STABLE_NOISE)
        records += history_records([0.5, 0.6], executor="serial", procs=1)
        series = collect_series(records, "pool", "smoke")
        assert len(series) == 2
        key = row_key("pool", make_pool_row())
        assert series[key] == STABLE_NOISE

    def test_invalid_rows_skipped(self):
        records = history_records([0.1, 0.2])
        records += history_records([9.9], valid=False)
        series = collect_series(records, "pool", "smoke")
        key = row_key("pool", make_pool_row())
        assert series[key] == [0.1, 0.2]

    def test_row_label_pool(self):
        key = row_key("pool", make_pool_row(use_delta=True, kernel_tier=True))
        assert row_label("pool", key) == "lcs/pool/P2/delta/tier"

    def test_row_metric_rejects_nonpositive(self):
        assert row_metric("pool", make_pool_row(wall_seconds=0.0)) is None
        assert row_metric("pool", make_pool_row(wall_seconds=-1.0)) is None


class TestTrendReport:
    def test_report_flags_only_the_stepped_cell(self):
        records = history_records(STABLE_NOISE + [0.205, 0.199, 0.202])
        stable = history_records(STABLE_NOISE, executor="serial", procs=1)
        # interleave so ordering does not matter
        merged = [r for pair in zip(records, stable) for r in pair]
        merged += records[len(stable):]
        cells = trend_report(merged, POLICY)
        verdicts = {c["cell"]: c["verdict"] for c in cells}
        assert verdicts["lcs/pool/P2"] == VERDICT_REGRESSION
        assert verdicts["lcs/serial/P1"] == VERDICT_STABLE

    def test_report_filters_by_mode(self):
        records = history_records(STABLE_NOISE)
        assert trend_report(records, POLICY, mode="full") == []


class TestRendering:
    def test_sparkline_spans_range(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0]) == "▁▁"

    def test_render_text_and_markdown_smoke(self):
        records = history_records(STABLE_NOISE + [0.205, 0.199, 0.202])
        cells = trend_report(records, POLICY)
        text = render_trend_table(cells, fmt="text")
        assert "lcs/pool/P2" in text and "REGRESSION" in text
        md = render_trend_table(cells, fmt="markdown")
        assert md.startswith("|")
        counts = verdict_counts(cells)
        assert counts["regressions"] == 1

    def test_full_reports_include_summary(self, tmp_path):
        from repro.bench.history import append_record
        from repro.bench.history import load_history

        path = tmp_path / "history.jsonl"
        for record in history_records(STABLE_NOISE):
            append_record(path, record)
        load = load_history(path)
        cells = trend_report(load.records, POLICY)
        text = render_text_report(load, cells)
        assert "10 record" in text
        md = render_markdown_report(load, cells)
        assert "# Bench trend report" in md
