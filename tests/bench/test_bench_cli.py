"""End-to-end tests for the ``repro bench`` subcommands.

The pool sweep is monkeypatched to return a canned document so these
tests exercise the record/compare/trend/report/check plumbing (history
appends, baseline policy, exit codes) without timing real solves.
"""

import json

import pytest

from repro.bench import pool_bench
from repro.bench.history import append_record, load_history, make_history_record
from repro.cli import main

from tests.bench.conftest import make_pool_doc, make_pool_row


@pytest.fixture
def canned_suite(monkeypatch):
    """Replace the real pool sweep with a canned (doc, checks_ok) pair."""

    state = {"doc": make_pool_doc(), "checks_ok": True}

    def fake_run_suite(smoke, repeats, trace_path=None):
        doc = json.loads(json.dumps(state["doc"]))
        doc["mode"] = "smoke" if smoke else "full"
        return doc, state["checks_ok"]

    monkeypatch.setattr(pool_bench, "run_suite", fake_run_suite)
    return state


@pytest.fixture
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestRecord:
    def test_record_twice_yields_two_history_entries(self, canned_suite, workdir, capsys):
        assert main(["bench", "record"]) == 0
        assert main(["bench", "record"]) == 0
        out = capsys.readouterr().out
        assert "history entry #1" in out
        assert "history entry #2" in out
        load = load_history(workdir / "BENCH_history.jsonl")
        assert len(load.records) == 2
        assert all(r["suite"] == "pool" and r["mode"] == "smoke" for r in load.records)

    def test_record_does_not_touch_baseline(self, canned_suite, workdir):
        baseline = workdir / "BENCH_pool.json"
        baseline_doc = make_pool_doc(make_pool_row(wall_seconds=0.02))
        payload = json.dumps(baseline_doc, indent=2) + "\n"
        baseline.write_text(payload)
        assert main(["bench", "record"]) == 0
        assert baseline.read_text() == payload

    def test_record_regression_exits_1_and_keeps_baseline(self, canned_suite, workdir, capsys):
        # Baseline is 10x faster than the canned run -> 1.6x gate trips.
        baseline = workdir / "BENCH_pool.json"
        payload = json.dumps(make_pool_doc(make_pool_row(wall_seconds=0.001))) + "\n"
        baseline.write_text(payload)
        assert main(["bench", "record"]) == 1
        assert baseline.read_text() == payload
        record = load_history(workdir / "BENCH_history.jsonl").records[0]
        assert record["regressions"] == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_record_update_baseline_rewrites(self, canned_suite, workdir):
        baseline = workdir / "BENCH_pool.json"
        baseline.write_text(json.dumps(make_pool_doc(make_pool_row(wall_seconds=0.02))) + "\n")
        assert main(["bench", "record", "--update-baseline"]) == 0
        rewritten = json.loads(baseline.read_text())
        assert rewritten["results"][0]["wall_seconds"] == pytest.approx(0.01)

    def test_record_failed_checks_exit_1_but_still_recorded(self, canned_suite, workdir):
        canned_suite["checks_ok"] = False
        assert main(["bench", "record"]) == 1
        assert len(load_history(workdir / "BENCH_history.jsonl").records) == 1

    def test_record_out_writes_plain_artifact(self, canned_suite, workdir):
        out = workdir / "artifact.json"
        assert main(["bench", "record", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["kind"] == "repro-bench"

    def test_record_explicit_history_path(self, canned_suite, workdir):
        history = workdir / "elsewhere" / "h.jsonl"
        history.parent.mkdir()
        assert main(["bench", "record", "--history", str(history)]) == 0
        assert len(load_history(history).records) == 1


class TestCompare:
    def test_compare_clean(self, workdir, capsys):
        old = workdir / "old.json"
        new = workdir / "new.json"
        old.write_text(json.dumps(make_pool_doc()))
        new.write_text(json.dumps(make_pool_doc()))
        assert main(["bench", "compare", str(old), str(new)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_regression_exits_1(self, workdir, capsys):
        old = workdir / "old.json"
        new = workdir / "new.json"
        old.write_text(json.dumps(make_pool_doc(make_pool_row(wall_seconds=0.001))))
        new.write_text(json.dumps(make_pool_doc(make_pool_row(wall_seconds=0.01))))
        assert main(["bench", "compare", str(old), str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_custom_ratio(self, workdir):
        old = workdir / "old.json"
        new = workdir / "new.json"
        old.write_text(json.dumps(make_pool_doc(make_pool_row(wall_seconds=0.001))))
        new.write_text(json.dumps(make_pool_doc(make_pool_row(wall_seconds=0.01))))
        assert main(["bench", "compare", str(old), str(new), "--ratio", "100"]) == 0

    def test_compare_bad_document_is_clean_failure(self, workdir, capsys):
        old = workdir / "old.json"
        old.write_text("{not json")
        new = workdir / "new.json"
        new.write_text(json.dumps(make_pool_doc()))
        assert main(["bench", "compare", str(old), str(new)]) == 1
        assert "bench compare failed:" in capsys.readouterr().err


def seeded_history(path, series, **row_overrides):
    for value in series:
        doc = make_pool_doc(make_pool_row(wall_seconds=value, **row_overrides))
        append_record(path, make_history_record("pool", doc))


STABLE = [0.100, 0.103, 0.098, 0.101, 0.099, 0.102, 0.100, 0.097, 0.101, 0.100]


class TestTrendAndReport:
    def test_trend_renders_per_cell_report(self, workdir, capsys):
        seeded_history(workdir / "BENCH_history.jsonl", STABLE)
        assert main(["bench", "trend"]) == 0
        out = capsys.readouterr().out
        assert "lcs/pool/P2" in out
        assert "stable" in out

    def test_trend_strict_flags_sustained_regression(self, workdir, capsys):
        seeded_history(workdir / "BENCH_history.jsonl", STABLE + [0.205, 0.199, 0.202])
        assert main(["bench", "trend"]) == 0  # informational by default
        assert main(["bench", "trend", "--strict"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_trend_strict_ok_on_stable_history(self, workdir):
        seeded_history(workdir / "BENCH_history.jsonl", STABLE)
        assert main(["bench", "trend", "--strict"]) == 0

    def test_trend_markdown_format(self, workdir, capsys):
        seeded_history(workdir / "BENCH_history.jsonl", STABLE)
        assert main(["bench", "trend", "--format", "markdown"]) == 0
        assert "# Bench trend report" in capsys.readouterr().out

    def test_trend_missing_history_is_clean_failure(self, workdir, capsys):
        assert main(["bench", "trend"]) == 1
        assert "bench history unusable:" in capsys.readouterr().err

    def test_report_writes_markdown_file(self, workdir):
        seeded_history(workdir / "BENCH_history.jsonl", STABLE)
        out = workdir / "trend.md"
        assert main(["bench", "report", "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# Bench trend report")
        assert "lcs/pool/P2" in text


class TestCheck:
    def test_check_valid_document_and_history(self, workdir, capsys):
        doc = workdir / "doc.json"
        doc.write_text(json.dumps(make_pool_doc()))
        history = workdir / "h.jsonl"
        seeded_history(history, [0.1, 0.2])
        assert main(["bench", "check", str(doc), str(history)]) == 0
        out = capsys.readouterr().out
        assert "valid repro-bench document" in out
        assert "valid history" in out

    def test_check_duplicate_cells_fail(self, workdir, capsys):
        doc = workdir / "doc.json"
        doc.write_text(json.dumps(make_pool_doc(make_pool_row(), make_pool_row())))
        assert main(["bench", "check", str(doc)]) == 1
        assert "duplicate result cell" in capsys.readouterr().err

    def test_check_corrupt_history_fails(self, workdir, capsys):
        history = workdir / "h.jsonl"
        seeded_history(history, [0.1])
        with open(history, "a") as handle:
            handle.write("garbage\n")
        seeded_history(history, [0.2])
        assert main(["bench", "check", str(history)]) == 1
        assert "bench check failed:" in capsys.readouterr().err

    def test_check_missing_file_fails_cleanly(self, workdir, capsys):
        assert main(["bench", "check", str(workdir / "nope.json")]) == 1
        err = capsys.readouterr().err
        assert "bench check failed:" in err
        assert "no such file" in err

    def test_check_mixed_one_bad_fails_overall(self, workdir, capsys):
        good = workdir / "good.json"
        good.write_text(json.dumps(make_pool_doc()))
        bad = workdir / "bad.json"
        bad.write_text("{oops")
        assert main(["bench", "check", str(good), str(bad)]) == 1
        captured = capsys.readouterr()
        assert "valid repro-bench document" in captured.out
        assert "not valid JSON" in captured.err
