"""Round-trip tests for the append-only JSONL history store."""

import json

import pytest

from repro.bench.history import (
    HISTORY_KIND,
    HISTORY_SCHEMA_VERSION,
    append_record,
    git_fingerprint,
    load_history,
    make_history_record,
    validate_history_file,
    validate_history_record,
)
from repro.bench.matrix import BenchDocumentError

from tests.bench.conftest import make_pool_doc, make_pool_row


def record_for(doc=None, **kwargs):
    return make_history_record("pool", doc or make_pool_doc(), **kwargs)


class TestRecordShape:
    def test_record_carries_provenance_and_grid(self):
        doc = make_pool_doc()
        record = record_for(doc, regressions=2)
        assert record["history_schema_version"] == HISTORY_SCHEMA_VERSION
        assert record["kind"] == HISTORY_KIND
        assert record["suite"] == "pool"
        assert record["mode"] == "smoke"
        assert record["host"] == doc["host"]
        assert record["results"] == doc["results"]
        assert record["checks"] == {"trace_coverage": {"passed": True}}
        assert record["regressions"] == 2
        assert "commit" in record and "dirty" in record
        assert "recorded" in record

    def test_git_fingerprint_in_repo(self, tmp_path):
        # The repo itself has a HEAD; an empty tmp dir has none.
        import pathlib

        here = pathlib.Path(__file__).resolve().parent
        fp = git_fingerprint(here)
        assert fp["commit"] is None or len(fp["commit"]) == 40
        outside = git_fingerprint(tmp_path)
        assert outside["commit"] is None

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="suite"):
            make_history_record("warp", make_pool_doc())

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda r: r.pop("suite"), "suite"),
            (lambda r: r.update(suite="warp"), "suite"),
            (lambda r: r.update(kind="other"), "kind"),
            (lambda r: r.update(history_schema_version=999), "history_schema_version"),
            (lambda r: r.update(results=[]), "non-empty"),
            (lambda r: r.update(commit=7), "commit"),
            (lambda r: r.update(dirty="yes"), "dirty"),
            (lambda r: r.update(checks={"x": {}}), "passed"),
            (lambda r: r.update(regressions="two"), "regressions"),
        ],
    )
    def test_validator_rejects_malformed_records(self, mutate, match):
        record = record_for()
        mutate(record)
        with pytest.raises(ValueError, match=match):
            validate_history_record(record)


class TestAppendReload:
    def test_round_trip_preserves_records_in_order(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = record_for(make_pool_doc(make_pool_row(wall_seconds=0.01)))
        second = record_for(make_pool_doc(make_pool_row(wall_seconds=0.02)))
        assert append_record(path, first) == 1
        assert append_record(path, second) == 2
        load = load_history(path)
        assert [r["results"][0]["wall_seconds"] for r in load.records] == [0.01, 0.02]
        assert not load.corrupt_tail

    def test_append_refuses_invalid_record(self, tmp_path):
        path = tmp_path / "history.jsonl"
        with pytest.raises(ValueError):
            append_record(path, {"kind": "junk"})
        assert not path.exists()

    def test_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(BenchDocumentError, match="no such file"):
            load_history(tmp_path / "absent.jsonl")

    def test_corrupt_trailing_line_tolerated(self, tmp_path):
        # A crash mid-append tears at most the tail; the store must keep
        # every complete record and report the torn line.
        path = tmp_path / "history.jsonl"
        append_record(path, record_for())
        append_record(path, record_for())
        with open(path, "a") as handle:
            handle.write('{"kind": "repro-bench-hist')  # torn mid-write
        load = load_history(path)
        assert len(load.records) == 2
        assert load.corrupt_tail

    def test_corrupt_middle_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_record(path, record_for())
        with open(path, "a") as handle:
            handle.write("not json at all\n")
        append_record(path, record_for())
        with pytest.raises(BenchDocumentError, match=r"history\.jsonl:2"):
            load_history(path)

    def test_corrupt_tail_strict_mode_raises(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_record(path, record_for())
        with open(path, "a") as handle:
            handle.write("{torn")
        with pytest.raises(BenchDocumentError, match="corrupt history line"):
            load_history(path, tolerate_corrupt_tail=False)

    def test_invalid_record_in_file_raises_with_lineno(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_record(path, record_for())
        with open(path, "a") as handle:
            handle.write(json.dumps({"kind": "junk"}) + "\n")
        with pytest.raises(BenchDocumentError, match=r"history\.jsonl:2"):
            load_history(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_record(path, record_for())
        with open(path, "a") as handle:
            handle.write("\n\n")
        append_record(path, record_for())
        assert len(load_history(path).records) == 2

    def test_filtered_by_suite_and_mode(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_record(path, record_for(make_pool_doc(mode="smoke")))
        append_record(path, record_for(make_pool_doc(mode="full")))
        load = load_history(path)
        assert len(load.filtered(suite="pool", mode="smoke")) == 1
        assert len(load.filtered(suite="serve")) == 0
        assert len(load.filtered()) == 2


class TestValidateHistoryFile:
    def test_summary_counts(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_record(path, record_for())
        append_record(path, record_for())
        summary = validate_history_file(path)
        assert summary["records"] == 2
        assert summary["suites"] == ["pool"]
        assert summary["corrupt_tail"] is False
