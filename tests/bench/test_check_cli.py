"""``--check`` failure-shape tests for both benchmark entry points.

Before the fix, pointing ``--check`` at a missing or malformed file
died with a raw ``FileNotFoundError`` / ``JSONDecodeError`` traceback.
Both mains must now print a one-line diagnostic to stderr and exit
non-zero cleanly.
"""

import json

import pytest

from repro.bench import pool_bench, serve_bench

from tests.bench.conftest import make_pool_doc


def make_serve_row() -> dict:
    return {
        "row": "mixed-small",
        "num_requests": 60,
        "problem_size": 32,
        "num_procs": 2,
        "max_workers": 2,
        "serve_seconds": 1.5,
        "requests_per_second": 40.0,
        "ok": 58,
        "hits": 20,
        "misses": 38,
        "rejected": 2,
        "errors": 0,
        "hit_rate": 0.33,
        "delta_cells": 1000,
        "latency_mean_seconds": 0.02,
        "latency_max_seconds": 0.1,
        "verified": 58,
        "mismatches": 0,
        "leaked_workers": 0,
    }


def make_serve_doc() -> dict:
    return {
        "schema_version": serve_bench.SERVE_SCHEMA_VERSION,
        "kind": "repro-serve-bench",
        "created": "2026-01-01T00:00:00Z",
        "mode": "smoke",
        "host": {"platform": "x", "python": "3", "cpu_count": 1, "node": "ci"},
        "results": [make_serve_row()],
        "checks": {"bit_identity": {"passed": True}},
    }


@pytest.mark.parametrize(
    "runner_main, valid_doc",
    [
        (pool_bench.main, make_pool_doc),
        (serve_bench.main, make_serve_doc),
    ],
    ids=["pool", "serve"],
)
class TestCheckFlag:
    def test_missing_file_is_one_line_error(self, runner_main, valid_doc, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert runner_main(["--check", str(missing)]) == 1
        err = capsys.readouterr().err
        assert "bench check failed:" in err
        assert "no such file" in err
        assert "Traceback" not in err

    def test_malformed_json_is_one_line_error(self, runner_main, valid_doc, tmp_path, capsys):
        path = tmp_path / "mangled.json"
        path.write_text('{"schema_version": 1, "kind": ')
        assert runner_main(["--check", str(path)]) == 1
        err = capsys.readouterr().err
        assert "bench check failed:" in err
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_wrong_schema_is_one_line_error(self, runner_main, valid_doc, tmp_path, capsys):
        path = tmp_path / "wrong.json"
        doc = valid_doc()
        doc["schema_version"] = 999
        path.write_text(json.dumps(doc))
        assert runner_main(["--check", str(path)]) == 1
        err = capsys.readouterr().err
        assert "bench check failed:" in err
        assert "schema_version" in err

    def test_valid_document_passes(self, runner_main, valid_doc, tmp_path, capsys):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(valid_doc()))
        assert runner_main(["--check", str(path)]) == 0
        assert "valid" in capsys.readouterr().out


class TestPoolCheckDuplicates:
    def test_duplicate_cells_rejected(self, tmp_path, capsys):
        from tests.bench.conftest import make_pool_row

        doc = make_pool_doc(make_pool_row(), make_pool_row())
        path = tmp_path / "dup.json"
        path.write_text(json.dumps(doc))
        assert pool_bench.main(["--check", str(path)]) == 1
        assert "duplicate result cell" in capsys.readouterr().err
