"""Unit tests for the kernel tier: registry, gate, plans, backends.

The tier's contract is *bit-identity with a receipt*: a kernel sweep is
only accepted after its first block stage has been re-derived with the
problem's own dense per-stage method and matched byte-for-byte.  These
tests pin the registry mechanics (registration rules, exact-type
lookup, plan-cache LRU, the tri-state ``use_kernels`` gate), the
per-dispatch cross-check itself (a lying kernel is discarded), full
block-vs-dense equality for every shipped kernel, and backend forcing
via ``REPRO_KERNEL_BACKEND`` (cc / numba / numpy must agree to the
byte; a missing compiler or numba degrades to numpy, never to an
error).
"""

import importlib.util

import numpy as np
import pytest

from repro.exceptions import KernelRegistrationError
from repro.kernels import (
    BlockSweep,
    StageBlockKernel,
    block_sweep,
    get_backend,
    kernel_tier_enabled,
    price_path_fast,
    register_kernel,
    registered_kernels,
    reset_backend_cache,
    reset_plan_cache,
    warm_kernels,
)
from repro.kernels import registry as kregistry
from repro.machine.executor import SerialExecutor
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.scoring import ScoringScheme
from repro.problems.convolutional import (
    VOYAGER,
    PuncturedViterbiDecoderProblem,
    SoftViterbiDecoderProblem,
    ViterbiDecoderProblem,
)
from repro.problems.dtw import DTWProblem

RNG = np.random.default_rng(7)


def build_problems() -> dict:
    a = RNG.integers(0, 4, 60)
    b = RNG.integers(0, 4, 55)
    bits = RNG.integers(0, 2, 120).astype(np.uint8)
    sub = RNG.integers(-2, 3, (4, 4)).astype(np.float64)
    pattern = np.array([1, 1, 0, 1], dtype=bool)
    full = RNG.integers(0, 2, 240).astype(np.uint8)
    kept = full[np.tile(pattern, 60)]
    return {
        "lcs-full": LCSProblem(a, b, width=70),
        "lcs-banded": LCSProblem(a, b, width=12),
        "nw": NeedlemanWunschProblem(a, b, width=15),
        "nw-sub": NeedlemanWunschProblem(
            a, b, width=15,
            scoring=ScoringScheme(gap_open=1.0, gap_extend=1.0, substitution=sub),
        ),
        "vit-hard": ViterbiDecoderProblem(VOYAGER, bits, terminated=True),
        "vit-unterm": ViterbiDecoderProblem(VOYAGER, bits, terminated=False),
        "vit-soft": SoftViterbiDecoderProblem(
            VOYAGER, RNG.normal(0, 1, 120), terminated=True
        ),
        "vit-punct": PuncturedViterbiDecoderProblem(
            VOYAGER, kept, pattern, terminated=True
        ),
    }


PROBLEMS = build_problems()


def dense_sweep(problem, lo, hi, v, capture):
    vals, preds, states = [], [], []
    for i in range(lo + 1, hi + 1):
        if capture:
            v, pr, st = problem.apply_stage_with_state(i, v)
            states.append(st)
        else:
            v, pr = problem.apply_stage_with_pred(i, v)
        vals.append(v)
        preds.append(pr)
    return vals, preds, states


def assert_sweep_matches_dense(problem, lo, hi, v, capture):
    v = np.asarray(v, dtype=np.float64)
    sweep = block_sweep(problem, lo, hi, v, capture_state=capture)
    assert sweep is not None, "every shipped problem family must plan a kernel"
    dv, dp, ds = dense_sweep(problem, lo, hi, v, capture)
    assert len(sweep.values) == len(dv)
    for r, (kv, dvr) in enumerate(zip(sweep.values, dv)):
        assert np.asarray(kv).tobytes() == dvr.tobytes(), f"values differ at stage offset {r}"
    for r, (kp, dpr) in enumerate(zip(sweep.preds, dp)):
        assert np.array_equal(kp, dpr), f"preds differ at stage offset {r}"
    if capture:
        assert sweep.states is not None
        for r, (ks, dsr) in enumerate(zip(sweep.states, ds)):
            assert kregistry._states_equal(ks, dsr), f"state differs at stage offset {r}"
    expected_costs = np.array(
        [problem.stage_cost(i) for i in range(lo + 1, hi + 1)]
    )
    assert np.array_equal(sweep.costs, expected_costs)


class TestBlockSweepBitIdentity:
    """Every kernel's full-block output equals the dense per-stage loop."""

    @pytest.mark.parametrize("capture", [False, True])
    @pytest.mark.parametrize("name", list(PROBLEMS))
    def test_initial_block_matches_dense(self, name, capture):
        problem = PROBLEMS[name]
        if capture and name.startswith("vit"):
            pytest.skip("Viterbi has no sparse-kernel state capture")
        assert_sweep_matches_dense(
            problem, 0, problem.num_stages, problem.initial_vector(), capture
        )

    @pytest.mark.parametrize("name", ["lcs-full", "lcs-banded", "nw", "vit-hard"])
    def test_mid_block_from_arbitrary_boundary(self, name):
        # Fix-up supersteps enter blocks with non-initial boundary rows.
        problem = PROBLEMS[name]
        lo = 10
        rng = np.random.default_rng(5)
        v = rng.uniform(-4.0, 2.0, problem.stage_width(lo))
        assert_sweep_matches_dense(problem, lo, min(40, problem.num_stages), v, False)

    def test_unregistered_problem_gets_no_sweep(self):
        rng = np.random.default_rng(3)
        problem = DTWProblem(rng.random(30), rng.random(30), width=8)
        assert block_sweep(problem, 0, 5, problem.initial_vector()) is None


class _ToyKernel(StageBlockKernel):
    """Test stub: computes ``v + stage_index`` per stage, optionally lying."""

    bit_identity_gate = "test stub; every dispatch cross-checked like the real ones"

    def __init__(self, name, lie):
        self.name = name
        self._lie = lie

    def fingerprint(self, problem):
        return "toy"

    def plan(self, problem):
        return "plan"

    def run(self, problem, plan, lo, hi, v, *, capture_state=False):
        if capture_state:
            return None
        vals, preds = [], []
        cur = np.asarray(v, dtype=np.float64)
        for i in range(lo + 1, hi + 1):
            cur = cur + float(i) + (0.5 if self._lie else 0.0)
            vals.append(cur.copy())
            preds.append(np.arange(cur.size, dtype=np.int64))
        return BlockSweep(
            values=vals,
            preds=preds,
            states=None,
            costs=np.full(hi - lo, float(len(np.asarray(v)))),
            zero_index=None,
        )


def _toy_problem_type():
    class _Toy:
        num_stages = 4

        def initial_vector(self):
            return np.zeros(3)

        def stage_width(self, i):
            return 3

        def apply_stage_with_pred(self, i, v):
            return np.asarray(v, dtype=np.float64) + float(i), np.arange(3, dtype=np.int64)

        def stage_cost(self, i):
            return 3.0

    return _Toy


@pytest.fixture
def scratch_registry():
    """Yield a fresh toy problem type; unregister its kernels after."""
    toy = _toy_problem_type()
    yield toy
    kregistry._KERNELS.pop(toy, None)
    reset_plan_cache()


class TestRegistry:
    def test_missing_bit_identity_gate_rejected(self, scratch_registry):
        kernel = _ToyKernel("gateless", lie=False)
        kernel.bit_identity_gate = "   "
        with pytest.raises(KernelRegistrationError, match="bit_identity_gate"):
            register_kernel(scratch_registry, kernel)

    def test_missing_name_rejected(self, scratch_registry):
        with pytest.raises(KernelRegistrationError, match="name"):
            register_kernel(scratch_registry, _ToyKernel("", lie=False))

    def test_exact_type_lookup_ignores_subclasses(self):
        class SubLCS(LCSProblem):
            pass

        assert registered_kernels(LCSProblem)
        assert registered_kernels(SubLCS) == ()

    def test_dispatch_gate_discards_lying_kernel(self, scratch_registry):
        register_kernel(scratch_registry, _ToyKernel("toy-liar", lie=True))
        problem = scratch_registry()
        assert block_sweep(problem, 0, 4, problem.initial_vector()) is None

    def test_dispatch_gate_accepts_honest_kernel(self, scratch_registry):
        register_kernel(scratch_registry, _ToyKernel("toy-honest", lie=False))
        problem = scratch_registry()
        sweep = block_sweep(problem, 0, 4, problem.initial_vector())
        assert sweep is not None
        assert len(sweep.values) == 4
        np.testing.assert_array_equal(sweep.values[-1], np.full(3, 1.0 + 2 + 3 + 4))


class TestPlanCache:
    def test_equal_content_problems_share_one_plan(self):
        reset_plan_cache()
        a = np.arange(20) % 4
        b = (np.arange(18) + 1) % 4
        warm_kernels(LCSProblem(a, b, width=25))
        size = len(kregistry._PLAN_CACHE)
        assert size > 0
        # A distinct instance with identical content must hit the cache:
        # pool workers unpickle fresh problem objects every solve.
        warm_kernels(LCSProblem(a.copy(), b.copy(), width=25))
        assert len(kregistry._PLAN_CACHE) == size

    def test_cache_is_bounded_lru(self):
        reset_plan_cache()
        for k in range(40):
            a = (np.arange(16) + k) % 7
            warm_kernels(LCSProblem(a, a[::-1].copy(), width=20))
        assert len(kregistry._PLAN_CACHE) <= kregistry._PLAN_CACHE_MAX

    def test_reset_clears(self):
        warm_kernels(PROBLEMS["nw"])
        assert len(kregistry._PLAN_CACHE) > 0
        reset_plan_cache()
        assert len(kregistry._PLAN_CACHE) == 0


class TestTierGate:
    """The tri-state ``use_kernels`` gate (mirrors the sparse kernel's)."""

    def _opts(self, use_kernels):
        from repro.ltdp.parallel import ParallelOptions

        return ParallelOptions(
            num_procs=2, executor=SerialExecutor(), use_kernels=use_kernels
        )

    def test_false_forces_dense(self):
        assert not kernel_tier_enabled(self._opts(False), PROBLEMS["nw"])

    def test_true_overrides_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "off")
        assert kernel_tier_enabled(self._opts(True), PROBLEMS["nw"])

    def test_auto_respects_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "0")
        assert not kernel_tier_enabled(self._opts(None), PROBLEMS["nw"])

    def test_auto_on_for_registered_problem(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernel_tier_enabled(self._opts(None), PROBLEMS["nw"])

    def test_auto_off_for_unregistered_problem(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        rng = np.random.default_rng(1)
        dtw = DTWProblem(rng.random(20), rng.random(20), width=6)
        assert not kernel_tier_enabled(self._opts(None), dtw)


class TestFastPricing:
    @pytest.mark.parametrize("name", ["vit-hard", "vit-punct", "nw", "lcs-banded"])
    def test_price_matches_sequential_scalar_pricing(self, name):
        from repro.ltdp.engine.driver import _price_path
        from repro.ltdp.sequential import solve_sequential

        problem = PROBLEMS[name]
        path = solve_sequential(problem).path
        dense = _price_path(problem, path, use_kernels=False)
        fast = price_path_fast(problem, path)
        assert fast is not None, "a planned kernel must price exactly or decline"
        assert fast == dense  # bit-identical, not approx
        assert _price_path(problem, path, use_kernels=True) == dense

    def test_soft_viterbi_declines_and_falls_back(self):
        # Soft branch metrics are non-integral floats: a vectorized sum
        # cannot guarantee the sequential accumulation order, so the
        # kernel must *decline* pricing and the driver must fall back to
        # the scalar loop rather than return a merely-close score.
        from repro.ltdp.engine.driver import _price_path
        from repro.ltdp.sequential import solve_sequential

        problem = PROBLEMS["vit-soft"]
        path = solve_sequential(problem).path
        assert price_path_fast(problem, path) is None
        dense = _price_path(problem, path, use_kernels=False)
        assert _price_path(problem, path, use_kernels=True) == dense


@pytest.fixture
def forced_backend(monkeypatch):
    def force(kind):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", kind)
        reset_backend_cache()
        return get_backend()

    yield force
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    reset_backend_cache()


class TestBackends:
    def test_auto_backend_resolves(self):
        reset_backend_cache()
        assert get_backend().kind in ("cc", "numba", "numpy")

    def test_numpy_can_be_forced(self, forced_backend):
        assert forced_backend("numpy").kind == "numpy"

    def test_missing_numba_degrades_to_numpy(self, forced_backend):
        backend = forced_backend("numba")
        if importlib.util.find_spec("numba") is None:
            assert backend.kind == "numpy"
        else:
            assert backend.kind == "numba"

    def test_unknown_backend_name_degrades_to_numpy(self, forced_backend):
        assert forced_backend("fortran").kind == "numpy"

    @pytest.mark.parametrize("name", ["lcs-banded", "nw-sub", "vit-hard", "vit-soft"])
    def test_numpy_and_compiled_agree_to_the_byte(self, forced_backend, name):
        problem = PROBLEMS[name]
        v0 = problem.initial_vector()
        hi = min(30, problem.num_stages)

        forced_backend("numpy")
        reset_plan_cache()
        ref = block_sweep(problem, 0, hi, v0)
        assert ref is not None

        for kind in ("cc", "numba"):
            backend = forced_backend(kind)
            if backend.kind == "numpy":
                continue  # toolchain absent in this container
            reset_plan_cache()
            got = block_sweep(problem, 0, hi, v0)
            assert got is not None
            for kv, rv in zip(got.values, ref.values):
                assert np.asarray(kv).tobytes() == np.asarray(rv).tobytes()
            for kp, rp in zip(got.preds, ref.preds):
                assert np.array_equal(kp, rp)
        reset_plan_cache()
