"""Tests for the raw-speed kernel tier (``repro.kernels``)."""
