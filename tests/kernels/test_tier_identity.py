"""Cross-executor bit-identity of the kernel tier.

The tier axis of the PR 5 equivalence matrix: every (executor x
problem) cell must produce byte-identical results with the block-kernel
tier forced on, forced off, and in auto mode — including §4.7 delta
mode, adversarial instruction delivery (duplicates, LIFO ready-queue),
and a worker SIGKILLed mid-program.  The fast path must be invisible in
everything except the wall clock: path, score, fix-up iteration counts
and the per-processor work ledger all join the comparison.
"""

import numpy as np
import pytest

from repro.datagen.packets import make_received_packet
from repro.datagen.sequences import homologous_pair
from repro.ltdp.engine.runner import DeliveryPolicy
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.machine.executor import get_executor
from repro.machine.pool import PoolProcessExecutor
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.convolutional import VOYAGER

NUM_PROCS = 3
SEED = 11


def build_problems():
    rng = np.random.default_rng(41)
    a, b = homologous_pair(60, rng, divergence=0.08)
    _, viterbi = make_received_packet(VOYAGER, 60, rng, error_rate=0.03)
    return {
        "lcs": LCSProblem(a, b, width=10),
        "lcs-full": LCSProblem(a, b, width=70),
        "nw": NeedlemanWunschProblem(a, b, width=10),
        "viterbi": viterbi,
    }


PROBLEMS = build_problems()


def solve_with(problem, executor, **overrides):
    opts = ParallelOptions(
        num_procs=NUM_PROCS, seed=SEED, executor=executor, **overrides
    )
    return solve_parallel(problem, opts)


def assert_identical(got, base):
    np.testing.assert_array_equal(got.path, base.path)
    assert got.score == base.score  # bit-identical, never approx
    assert got.objective_stage == base.objective_stage
    assert got.objective_cell == base.objective_cell
    m, b = got.metrics, base.metrics
    assert m.forward_fixup_iterations == b.forward_fixup_iterations
    assert m.backward_fixup_iterations == b.backward_fixup_iterations
    assert m.fixup_stages == b.fixup_stages
    assert m.work_by_processor() == b.work_by_processor()


@pytest.fixture(scope="module")
def dense_baselines():
    """Serial solves with the tier forced off: the ground truth."""
    return {
        name: solve_with(p, get_executor("serial"), use_kernels=False)
        for name, p in PROBLEMS.items()
    }


class TestTierAxis:
    @pytest.mark.parametrize("kind", ["serial", "thread", "process", "pool"])
    @pytest.mark.parametrize("name", list(PROBLEMS))
    def test_tier_on_bit_identical_everywhere(self, name, kind, dense_baselines):
        ex = get_executor(kind, max_workers=2)
        try:
            got = solve_with(PROBLEMS[name], ex, use_kernels=True)
        finally:
            ex.close()
        assert_identical(got, dense_baselines[name])

    @pytest.mark.parametrize("name", list(PROBLEMS))
    def test_auto_mode_matches_sequential(self, name, dense_baselines):
        seq = solve_sequential(PROBLEMS[name])
        got = solve_with(PROBLEMS[name], get_executor("serial"), use_kernels=None)
        np.testing.assert_array_equal(got.path, seq.path)
        assert got.score == seq.score
        assert_identical(got, dense_baselines[name])

    @pytest.mark.parametrize("kind", ["serial", "pool"])
    @pytest.mark.parametrize("name", ["lcs", "nw"])
    def test_tier_composes_with_delta_mode(self, name, kind, dense_baselines):
        """With ``use_kernels=True`` the block path covers the initial
        pass and dense fix-ups; §4.7 sparse fix-up rounds keep the
        per-stage path (they need resident sparse state).  The splice
        point must be invisible."""
        ex = get_executor(kind, max_workers=2)
        try:
            got = solve_with(PROBLEMS[name], ex, use_kernels=True, use_delta=True)
        finally:
            ex.close()
        base = dense_baselines[name]
        np.testing.assert_array_equal(got.path, base.path)
        assert got.score == base.score
        assert (
            got.metrics.forward_fixup_iterations
            == base.metrics.forward_fixup_iterations
        )

    def test_env_kill_switch_end_to_end(self, monkeypatch, dense_baselines):
        monkeypatch.setenv("REPRO_KERNELS", "off")
        got = solve_with(PROBLEMS["nw"], get_executor("serial"), use_kernels=None)
        assert_identical(got, dense_baselines["nw"])


class TestTierUnderAdversarialDelivery:
    @pytest.mark.parametrize("name", ["nw", "viterbi"])
    def test_duplicate_delivery(self, name, dense_baselines):
        with get_executor("thread", max_workers=2) as ex:
            got = solve_with(
                PROBLEMS[name],
                ex,
                use_kernels=True,
                runners=3,
                delivery=DeliveryPolicy(duplicates=2),
            )
        assert_identical(got, dense_baselines[name])

    @pytest.mark.parametrize("name", ["lcs", "viterbi"])
    def test_lifo_delivery(self, name, dense_baselines):
        with get_executor("thread", max_workers=2) as ex:
            got = solve_with(
                PROBLEMS[name],
                ex,
                use_kernels=True,
                runners=4,
                delivery=DeliveryPolicy(order="lifo"),
            )
        assert_identical(got, dense_baselines[name])

    def test_duplicates_on_pool_with_delta(self, dense_baselines):
        with PoolProcessExecutor(max_workers=2) as ex:
            got = solve_with(
                PROBLEMS["nw"],
                ex,
                use_kernels=True,
                use_delta=True,
                runners=2,
                delivery=DeliveryPolicy(duplicates=2),
            )
        base = dense_baselines["nw"]
        np.testing.assert_array_equal(got.path, base.path)
        assert got.score == base.score


class TestTierUnderFaults:
    @pytest.mark.parametrize("name", ["viterbi", "nw"])
    def test_sigkill_mid_program_stays_bit_identical(self, name, dense_baselines):
        """A worker SIGKILLed at the forward dispatch is respawned and
        its journal replayed — with block kernels doing the replayed
        work.  Recovery must not perturb a single byte."""
        with PoolProcessExecutor(max_workers=2, fault_plan={2: 0}) as ex:
            got = solve_with(PROBLEMS[name], ex, use_kernels=True)
            assert ex.recovery_stats.respawns == 1
        assert_identical(got, dense_baselines[name])
        assert got.metrics.worker_respawns == 1

    def test_sigkill_during_fixup_with_tier(self, dense_baselines):
        with PoolProcessExecutor(max_workers=2, fault_plan={4: 1}) as ex:
            got = solve_with(PROBLEMS["lcs"], ex, use_kernels=True)
            assert ex.recovery_stats.respawns == 1
        assert_identical(got, dense_baselines["lcs"])
