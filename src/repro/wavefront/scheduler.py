"""Wavefront scheduling: execution order, work accounting, cost model.

Wavefront parallelism processes anti-diagonals of tiles; all tiles in
a wave run concurrently on the available processors, with a barrier
between waves (paper §6.4).  Two entry points:

- :func:`execute_wavefront` — actually run a per-tile kernel in wave
  order (used by tests and the wavefront-executed alignment check);
- :func:`simulate_wavefront` — exact schedule accounting (per-wave
  makespan with LPT assignment of tiles to processors) evaluated by
  the same :class:`~repro.machine.cost_model.CostModel` as the LTDP
  runs, so the Fig 11 head-to-head compares like with like.

The paper also notes the tiled+SIMD baseline is *slower per cell* than
the straight-line sequential code ("the sequential performance of the
baseline with tiling is slower than the baseline without tiling");
``tile_overhead`` models that per-cell penalty.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable

from repro.machine.cost_model import CostModel
from repro.wavefront.tiling import Tile, TileGrid

__all__ = [
    "WavefrontSchedule",
    "simulate_wavefront",
    "wavefront_time",
    "execute_wavefront",
    "execute_wavefront_threaded",
]


@dataclass
class WavefrontSchedule:
    """Exact accounting of one wavefront execution.

    ``wave_makespans[w]`` is the critical-path cell count of wave ``w``
    under LPT assignment of its tiles to ``num_procs`` processors.
    """

    num_procs: int
    wave_makespans: list[float]
    total_cells: float
    num_barriers: int

    @property
    def critical_cells(self) -> float:
        return float(sum(self.wave_makespans))


def _lpt_makespan(weights: list[float], num_procs: int) -> float:
    """Longest-processing-time-first makespan of independent tasks."""
    if not weights:
        return 0.0
    loads = [0.0] * min(num_procs, len(weights))
    heap = list(loads)
    heapq.heapify(heap)
    for w in sorted(weights, reverse=True):
        lightest = heapq.heappop(heap)
        heapq.heappush(heap, lightest + w)
    return max(heap)


def simulate_wavefront(
    grid: TileGrid,
    num_procs: int,
    *,
    tile_overhead: float = 1.0,
) -> WavefrontSchedule:
    """Schedule every wave's tiles onto ``num_procs`` processors (LPT)."""
    if num_procs < 1:
        raise ValueError("num_procs must be >= 1")
    if tile_overhead < 1.0:
        raise ValueError("tile_overhead is a multiplicative penalty >= 1")
    makespans = []
    total = 0.0
    for tiles in grid.waves():
        weights = [t.num_cells * tile_overhead for t in tiles]
        total += sum(weights)
        makespans.append(_lpt_makespan(weights, num_procs))
    return WavefrontSchedule(
        num_procs=num_procs,
        wave_makespans=makespans,
        total_cells=total,
        num_barriers=grid.num_waves,
    )


def wavefront_time(schedule: WavefrontSchedule, cost_model: CostModel) -> float:
    """Simulated wall-clock seconds of a wavefront schedule."""
    return (
        schedule.critical_cells * cost_model.cell_cost
        + schedule.num_barriers * cost_model.barrier_latency
    )


def execute_wavefront(
    grid: TileGrid,
    tile_fn: Callable[[Tile], None],
) -> list[list[Tile]]:
    """Run ``tile_fn`` over all tiles in wave (dependency-respecting) order.

    Returns the wave decomposition actually used, so tests can assert
    ordering invariants.  Execution is serial — on this host wavefront
    concurrency is modeled, not realized, exactly like the LTDP runs.
    """
    order: list[list[Tile]] = []
    for tiles in grid.waves():
        for tile in tiles:
            tile_fn(tile)
        order.append(list(tiles))
    return order


def execute_wavefront_threaded(
    grid: TileGrid,
    tile_fn: Callable[[Tile], None],
    *,
    num_threads: int = 4,
) -> list[list[Tile]]:
    """Run ``tile_fn`` with real thread-level concurrency per wave.

    Tiles within a wave are mutually independent (they touch disjoint
    cell ranges and depend only on earlier waves), so each wave is a
    thread-pool map followed by an implicit barrier — the wavefront
    counterpart of the LTDP `ThreadExecutor`.  ``tile_fn`` must only
    write cells of its own tile for this to be race-free.
    """
    from concurrent.futures import ThreadPoolExecutor

    if num_threads < 1:
        raise ValueError("num_threads must be >= 1")
    order: list[list[Tile]] = []
    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        for tiles in grid.waves():
            futures = [pool.submit(tile_fn, t) for t in tiles]
            for f in futures:
                f.result()  # propagate exceptions; barrier semantics
            order.append(list(tiles))
    return order
