"""Wavefront (anti-diagonal) parallelization — the Fig 11 baseline.

- :mod:`repro.wavefront.tiling` — tile decomposition of a DP table;
- :mod:`repro.wavefront.scheduler` — the tiled anti-diagonal schedule,
  its exact work/barrier accounting and the cost-model evaluation used
  for the head-to-head against across-stage (LTDP) parallelism.
"""

from repro.wavefront.tiling import TileGrid, Tile
from repro.wavefront.scheduler import (
    WavefrontSchedule,
    simulate_wavefront,
    wavefront_time,
)

__all__ = [
    "TileGrid",
    "Tile",
    "WavefrontSchedule",
    "simulate_wavefront",
    "wavefront_time",
]
