"""Tile decomposition of a DP table for wavefront execution.

The paper's wavefront baselines tile the computation table "to group
cells … which greatly reduces the number of barriers involved"
(§6.4, following Martins et al. [19]).  A :class:`TileGrid` splits an
``(rows × cols)`` table into rectangular tiles; tiles on the same
anti-diagonal are mutually independent (a tile depends only on its
left, upper and upper-left neighbours) and execute as one wave.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Tile", "TileGrid"]


@dataclass(frozen=True)
class Tile:
    """One rectangular tile: half-open cell ranges of the DP table."""

    row_block: int
    col_block: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def num_cells(self) -> int:
        return (self.row_stop - self.row_start) * (self.col_stop - self.col_start)

    @property
    def wave(self) -> int:
        """The anti-diagonal index this tile belongs to."""
        return self.row_block + self.col_block


class TileGrid:
    """A grid of tiles over an ``(rows × cols)`` DP table."""

    def __init__(self, rows: int, cols: int, tile_rows: int, tile_cols: int) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("table must be non-empty")
        if tile_rows < 1 or tile_cols < 1:
            raise ValueError("tile dimensions must be >= 1")
        self.rows = rows
        self.cols = cols
        self.tile_rows = tile_rows
        self.tile_cols = tile_cols
        self.num_row_blocks = -(-rows // tile_rows)
        self.num_col_blocks = -(-cols // tile_cols)

    @property
    def num_waves(self) -> int:
        return self.num_row_blocks + self.num_col_blocks - 1

    @property
    def num_tiles(self) -> int:
        return self.num_row_blocks * self.num_col_blocks

    def tile(self, rb: int, cb: int) -> Tile:
        if not (0 <= rb < self.num_row_blocks and 0 <= cb < self.num_col_blocks):
            raise IndexError(f"tile block ({rb}, {cb}) out of range")
        return Tile(
            row_block=rb,
            col_block=cb,
            row_start=rb * self.tile_rows,
            row_stop=min(self.rows, (rb + 1) * self.tile_rows),
            col_start=cb * self.tile_cols,
            col_stop=min(self.cols, (cb + 1) * self.tile_cols),
        )

    def wave_tiles(self, wave: int) -> list[Tile]:
        """All tiles on anti-diagonal ``wave`` (each independent of the others)."""
        if not 0 <= wave < self.num_waves:
            raise IndexError(f"wave {wave} out of range 0..{self.num_waves - 1}")
        tiles = []
        rb_lo = max(0, wave - self.num_col_blocks + 1)
        rb_hi = min(wave, self.num_row_blocks - 1)
        for rb in range(rb_lo, rb_hi + 1):
            tiles.append(self.tile(rb, wave - rb))
        return tiles

    def waves(self):
        """Iterate waves in dependency order."""
        for w in range(self.num_waves):
            yield self.wave_tiles(w)
