"""Plain-text table and series rendering for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and copy-pasteable into
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value: object, fmt: str) -> str:
    if isinstance(value, float):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    *,
    float_fmt: str = ".3g",
    title: str | None = None,
) -> str:
    """Render several y-series against a shared x-axis (one line per x)."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x, *(vals[i] for vals in series.values())])
    return format_table(headers, rows, float_fmt=float_fmt, title=title)
