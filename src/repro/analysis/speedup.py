"""Processor-count sweeps: the x-axes of paper Figures 7-11.

:func:`scaling_sweep` runs the *real* parallel algorithm once per
processor count, prices each run with the cluster's cost model, and
returns the speedup/efficiency series relative to the sequential
algorithm priced by the same model.  ``converged_first_iteration``
distinguishes the paper's filled vs non-filled data points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.problem import LTDPProblem
from repro.machine.cluster import SimCluster

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "scaling_sweep",
    "throughput_mbps",
    "throughput_gcups",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One (processor count, performance) point of a scaling curve."""

    num_procs: int
    time_seconds: float
    speedup: float
    efficiency: float
    fixup_iterations: int
    converged_first_iteration: bool
    total_work_cells: float

    @property
    def filled(self) -> bool:
        """Paper Figs 7/9/10 mark one-iteration convergence with filled points."""
        return self.converged_first_iteration


@dataclass
class ScalingCurve:
    """A full sweep over processor counts for one workload."""

    label: str
    sequential_time: float
    points: list[ScalingPoint]

    def speedups(self) -> list[float]:
        return [p.speedup for p in self.points]

    def efficiencies(self) -> list[float]:
        return [p.efficiency for p in self.points]

    def best(self) -> ScalingPoint:
        return max(self.points, key=lambda p: p.speedup)


def scaling_sweep(
    problem: LTDPProblem,
    cluster: SimCluster,
    proc_counts: Sequence[int],
    *,
    label: str = "",
    seed: int = 0,
    use_delta: bool = False,
    make_options: Callable[[int], ParallelOptions] | None = None,
) -> ScalingCurve:
    """Sweep processor counts on one LTDP instance.

    The sequential baseline is the same problem priced with the same
    cost model (forward cells + traceback steps), mirroring the paper's
    "speedup over the sequential performance of the baseline".
    """
    seq_time = cluster.sequential_time(
        problem.total_cells(), traceback_steps=float(problem.num_stages)
    )
    points: list[ScalingPoint] = []
    for p in proc_counts:
        if make_options is not None:
            opts = make_options(p)
        else:
            opts = ParallelOptions(
                num_procs=p,
                seed=seed,
                use_delta=use_delta,
                exact_score=False,
                executor=cluster.executor,
            )
        solution = solve_parallel(problem, opts)
        metrics = solution.metrics
        assert metrics is not None
        t = cluster.with_procs(p).time_of(metrics)
        points.append(
            ScalingPoint(
                num_procs=p,
                time_seconds=t,
                speedup=seq_time / t if t > 0 else float("inf"),
                efficiency=(seq_time / t / p) if t > 0 else float("inf"),
                fixup_iterations=metrics.forward_fixup_iterations,
                converged_first_iteration=metrics.converged_first_iteration,
                total_work_cells=metrics.total_work,
            )
        )
    return ScalingCurve(label=label, sequential_time=seq_time, points=points)


def throughput_mbps(num_payload_bits: int, time_seconds: float) -> float:
    """Viterbi decoder throughput in megabits/second (paper Fig 7 y-axis)."""
    if time_seconds <= 0:
        raise ValueError("time must be positive")
    return num_payload_bits / time_seconds / 1e6


def throughput_gcups(num_cells: float, time_seconds: float) -> float:
    """Alignment throughput in giga cell-updates/second (Figs 8-10 y-axis)."""
    if time_seconds <= 0:
        raise ValueError("time must be positive")
    return num_cells / time_seconds / 1e9
