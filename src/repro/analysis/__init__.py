"""Analysis utilities: speedup/efficiency series and table rendering.

- :mod:`repro.analysis.speedup` — run processor-count sweeps of the
  parallel algorithm and derive the time/speedup/efficiency series of
  paper Figs 7-11 from the recorded metrics + cost model;
- :mod:`repro.analysis.tables` — plain-text tables and series
  rendering used by the benchmark harness output.
"""

from repro.analysis.speedup import (
    ScalingPoint,
    ScalingCurve,
    scaling_sweep,
    throughput_mbps,
    throughput_gcups,
)
from repro.analysis.tables import format_table, format_series

__all__ = [
    "ScalingPoint",
    "ScalingCurve",
    "scaling_sweep",
    "throughput_mbps",
    "throughput_gcups",
    "format_table",
    "format_series",
]
