"""Shared in-process work queue with dependency tracking.

The runner layer (:mod:`repro.ltdp.engine.runner`) decouples *which
instruction runs next* from *who executes it*: the driver enqueues
sequence-numbered instructions with their dependency edges, and N
concurrent runner threads pull whatever is **ready** — all declared
dependencies marked done.  This module owns that queue.

Design constraints, in order:

- **Idempotent delivery.**  The same item id may be enqueued (and
  therefore delivered) more than once — deliberately so: the redelivery
  suite injects duplicates exactly like numpywren's ``FailureTests``
  insert repeated instructions into the program counter queue.  The
  queue never deduplicates; making repeat delivery harmless is the
  *consumer's* contract (instructions are no-ops once applied).
- **No silent loss.**  ``mark_done`` releases dependents; an item whose
  dependency is never marked done stays blocked until :meth:`abandon`
  drops it — visible in the abandon count, never quietly discarded.
- **Teardown first.**  :meth:`abandon` wakes every blocked puller with
  ``None`` so runner threads can exit *before* the transport executor
  (thread pool / worker pool) is closed underneath them.

Pull order among ready items is FIFO by default; ``order="lifo"``
reverses it, which the redelivery suite uses to prove result
bit-identity is order-independent wherever the dependency DAG allows
reordering.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["WorkQueue"]

_ORDERS = ("fifo", "lifo")


class WorkQueue:
    """Thread-safe ready-queue over a dependency DAG of integer item ids."""

    def __init__(self, *, order: str = "fifo") -> None:
        if order not in _ORDERS:
            raise ValueError(f"order must be one of {_ORDERS}, got {order!r}")
        self.order = order
        self._lock = threading.Condition()
        #: Deliverable entries: ``(item_id, payload)``.
        self._ready: deque[tuple[int, Any]] = deque()  # guarded-by: self._lock
        #: Entries still waiting on dependencies: id -> list of
        #: ``(payload, pending_dep_ids)`` (a list: duplicates allowed).
        self._blocked: dict[int, list[tuple[Any, set[int]]]] = {}  # guarded-by: self._lock
        #: Reverse edges: dep id -> ids of blocked entries waiting on it.
        self._waiters: dict[int, set[int]] = {}  # guarded-by: self._lock
        self._done: set[int] = set()  # guarded-by: self._lock
        self._abandoned = False  # guarded-by: self._lock

    # -- producing ------------------------------------------------------
    def put(self, item_id: int, payload: Any, deps: tuple[int, ...] = ()) -> None:
        """Enqueue one delivery of ``item_id``.

        ``deps`` are item ids that must be :meth:`mark_done` before this
        entry becomes pullable; dependencies already done are satisfied
        immediately.  Enqueueing the same id again is legal and yields
        an additional delivery (see module docstring).
        """
        with self._lock:
            if self._abandoned:
                raise RuntimeError("cannot put into an abandoned WorkQueue")
            pending = {d for d in deps if d not in self._done}
            if not pending:
                self._ready.append((item_id, payload))
                self._lock.notify()
                return
            self._blocked.setdefault(item_id, []).append((payload, pending))
            for dep in pending:
                self._waiters.setdefault(dep, set()).add(item_id)

    def mark_done(self, item_id: int) -> None:
        """Record ``item_id`` complete, releasing entries it blocked.

        Idempotent — duplicate deliveries call this once each.
        """
        with self._lock:
            if item_id in self._done:
                return
            self._done.add(item_id)
            released = 0
            for waiter_id in self._waiters.pop(item_id, ()):
                entries = self._blocked.get(waiter_id)
                if not entries:
                    continue
                still_blocked: list[tuple[Any, set[int]]] = []
                for payload, pending in entries:
                    pending.discard(item_id)
                    if pending:
                        still_blocked.append((payload, pending))
                    else:
                        self._ready.append((waiter_id, payload))
                        released += 1
                if still_blocked:
                    self._blocked[waiter_id] = still_blocked
                else:
                    self._blocked.pop(waiter_id, None)
            if released:
                self._lock.notify(released)

    # -- consuming ------------------------------------------------------
    def pull(self, timeout: float | None = None) -> tuple[int, Any] | None:
        """Block until a ready entry is available; return ``(id, payload)``.

        Returns ``None`` when the queue is abandoned (runners must exit)
        or when ``timeout`` elapses with nothing ready.
        """
        with self._lock:
            satisfied = self._lock.wait_for(
                lambda: self._ready or self._abandoned, timeout=timeout
            )
            if self._abandoned or not satisfied:
                return None
            if self.order == "lifo":
                return self._ready.pop()
            return self._ready.popleft()

    # -- teardown -------------------------------------------------------
    def abandon(self) -> int:
        """Drop everything queued or blocked and wake every puller.

        Returns the number of deliveries dropped.  After this, ``pull``
        returns ``None`` immediately and ``put`` raises — the queue is
        dead, which is exactly what runner threads need to observe
        *before* their executor is closed underneath them.
        """
        with self._lock:
            dropped = len(self._ready) + sum(
                len(entries) for entries in self._blocked.values()
            )
            self._ready.clear()
            self._blocked.clear()
            self._waiters.clear()
            self._abandoned = True
            self._lock.notify_all()
            return dropped

    @property
    def abandoned(self) -> bool:
        with self._lock:
            return self._abandoned

    def pending(self) -> int:
        """Deliveries not yet pulled (ready + blocked)."""
        with self._lock:
            return len(self._ready) + sum(
                len(entries) for entries in self._blocked.values()
            )

    def is_done(self, item_id: int) -> bool:
        with self._lock:
            return item_id in self._done
