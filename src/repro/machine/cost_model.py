"""Cost model: converts exact work/communication counts into seconds.

The parallel algorithm runs for real (every fix-up stage is genuinely
recomputed); what a 1-core host cannot produce is *wall-clock overlap*.
The cost model supplies the clock:

``time = Σ_supersteps [ max_p work_p · cell_cost + barrier + Σ msgs (α + bytes·β) ]``

which is the standard BSP/LogP-style machine abstraction.  The default
communication constants are representative of the paper's FDR
InfiniBand fat-tree (~1-2 µs latency, ~6 GB/s per-link bandwidth);
``cell_cost`` should be **calibrated** against the real kernel with
:func:`calibrate_cell_cost` so that absolute throughput numbers (Mb/s,
GCUPS) are grounded in measured single-core performance.

Speedup/efficiency shapes are dominated by the work terms (they come
from the real algorithm); the constants only set absolute scale and the
small-packet overhead regime.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, replace
from typing import Callable

from repro.machine.metrics import RunMetrics

__all__ = ["CostModel", "calibrate_cell_cost"]


@dataclass(frozen=True)
class CostModel:
    """A BSP-style machine cost model.

    Attributes
    ----------
    cell_cost:
        Seconds to compute one DP cell with the problem's kernel
        (calibrate per kernel!).
    barrier_latency:
        Seconds per global barrier.
    comm_latency:
        Per-message latency α in seconds.
    comm_byte_cost:
        Per-byte cost β in seconds (1/bandwidth).
    traceback_cell_cost:
        Seconds per backward-phase step (a table lookup, far cheaper
        than a forward cell).
    """

    cell_cost: float = 2e-9
    barrier_latency: float = 5e-6
    comm_latency: float = 2e-6
    comm_byte_cost: float = 1.0 / 6e9
    traceback_cell_cost: float = 2e-10

    def __post_init__(self) -> None:
        for name in (
            "cell_cost",
            "barrier_latency",
            "comm_latency",
            "comm_byte_cost",
            "traceback_cell_cost",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    def superstep_time(self, critical_work: float, comm_events, *, backward: bool = False) -> float:
        cell = self.traceback_cell_cost if backward else self.cell_cost
        t = critical_work * cell + self.barrier_latency
        for e in comm_events:
            t += self.comm_latency + e.num_bytes * self.comm_byte_cost
        return t

    def run_time(self, metrics: RunMetrics) -> float:
        """Simulated wall-clock time of a recorded run.

        Each superstep is priced by its explicit
        :attr:`~repro.machine.metrics.SuperstepRecord.phase`; records
        without one fall back to label classification, which raises on
        unknown labels rather than silently pricing them as forward work.
        """
        total = 0.0
        for s in metrics.supersteps:
            total += self.superstep_time(
                s.critical_work, s.comm, backward=s.resolved_phase() == "backward"
            )
        return total

    def sequential_time(self, num_cells: float, *, traceback_steps: float = 0.0) -> float:
        """Time of the sequential algorithm: no barriers, no messages."""
        return num_cells * self.cell_cost + traceback_steps * self.traceback_cell_cost

    def with_cell_cost(self, cell_cost: float) -> "CostModel":
        return replace(self, cell_cost=cell_cost)


def calibrate_cell_cost(
    kernel: Callable[[], object],
    cells_per_call: float,
    *,
    min_seconds: float = 0.05,
    max_calls: int = 10_000,
) -> float:
    """Measure the real per-cell cost of a stage kernel.

    Runs ``kernel`` repeatedly until ``min_seconds`` of wall time
    accumulates (at least 3 calls) and returns seconds per DP cell.
    This grounds the simulator's absolute throughput numbers in the
    actual single-core performance of *this* host and *this* kernel —
    the same role Spiral's measured sequential throughput plays in the
    paper's Fig 7.
    """
    if cells_per_call <= 0:
        raise ValueError("cells_per_call must be positive")
    kernel()  # warm-up (allocations, caches)
    calls = 0
    start = _time.perf_counter()
    elapsed = 0.0
    while (elapsed < min_seconds or calls < 3) and calls < max_calls:
        kernel()
        calls += 1
        elapsed = _time.perf_counter() - start
    return elapsed / (calls * cells_per_call)
