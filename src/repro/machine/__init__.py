"""Parallel machine substrate.

The paper evaluates on Stampede (MPI, up to 128 ranks) and a 40-core
shared-memory Xeon.  This host has a single core, so this subpackage
provides:

- :mod:`repro.machine.metrics` — exact per-processor work/communication
  accounting collected while the *real* parallel algorithm runs;
- :mod:`repro.machine.cost_model` — a calibrated cost model converting
  work counts into seconds / throughput (the simulator's clock);
- :mod:`repro.machine.executor` — executors that run one task per
  virtual processor: serially (deterministic simulation), on threads,
  or on forked processes (real parallelism on multi-core hosts);
- :mod:`repro.machine.pool` — the persistent worker-pool runtime:
  ``max_workers`` processes spawned once, reused across supersteps,
  with per-processor state resident in the workers so only boundary
  vectors cross process boundaries (the paper's BSP cost model);
- :mod:`repro.machine.cluster` — :class:`SimCluster`, the machine
  description (processor count + cost parameters) benchmarks sweep over;
- :mod:`repro.machine.trace` — :class:`Tracer`, the opt-in structured
  span tracer (JSONL export) recording real per-superstep and
  per-worker timing of a parallel solve.

Crucially the *algorithm* is always executed faithfully — every virtual
processor runs the true fix-up loop with real data — only the mapping
from work to wall-clock time is modeled.  See DESIGN.md §3.
"""

from repro.machine.metrics import (
    CommEvent,
    SuperstepRecord,
    RunMetrics,
)
from repro.machine.cost_model import CostModel, calibrate_cell_cost
from repro.machine.executor import (
    EXECUTOR_KINDS,
    Executor,
    SerialExecutor,
    ThreadExecutor,
    ProcessExecutor,
    get_executor,
)
from repro.machine.pool import PoolProcessExecutor
from repro.machine.trace import TRACE_SCHEMA_VERSION, Tracer
from repro.machine.cluster import SimCluster

__all__ = [
    "CommEvent",
    "SuperstepRecord",
    "RunMetrics",
    "CostModel",
    "calibrate_cell_cost",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "PoolProcessExecutor",
    "get_executor",
    "EXECUTOR_KINDS",
    "SimCluster",
    "Tracer",
    "TRACE_SCHEMA_VERSION",
]
