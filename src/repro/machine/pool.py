"""`PoolProcessExecutor`: a persistent worker-pool process runtime.

The legacy :class:`~repro.machine.executor.ProcessExecutor` forks one
process *per task per superstep*, so a parallel LTDP solve with ``k``
fix-up rounds pays ``P·(k+…)`` fork+pickle round-trips.  This pool
spawns ``max_workers`` OS processes **once**, keeps them alive across
supersteps (and across solves), and talks to them over pipes:

- **generic tasks** — :meth:`run_superstep` ships picklable callables
  and returns their results, satisfying the classic
  :class:`~repro.machine.executor.Executor` contract;
- **resident-state calls** — :meth:`call_slots` routes
  ``(slot, fn, args)`` triples to the worker owning each slot and
  invokes ``fn(namespace, *args)`` against that worker's persistent
  namespace dict.  The LTDP engine uses this to ship the problem once,
  keep per-processor stage vectors resident in the workers, and
  exchange only boundary vectors per superstep — the paper's
  O(boundary) communication model made real.

Slots are 1-based virtual processor ids; slot ``p`` always maps to
worker ``(p-1) % max_workers``, so per-slot state stays on one worker
even when there are more virtual processors than OS processes.

Error contract: any worker-side exception is reported per task/call and
re-raised in the driver as :class:`ExecutorError` naming the failing
processor; a dead worker surfaces as :class:`ExecutorError` too.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from collections import deque
from typing import Any, Callable, Sequence

from repro.exceptions import ExecutorError
from repro.machine.executor import Executor, Task

__all__ = ["PoolProcessExecutor"]


def _pool_worker_main(conn) -> None:  # pragma: no cover - runs in the worker
    """Worker loop: request/reply over one duplex pipe.

    ``ns`` is the worker's persistent namespace — it outlives individual
    messages, which is the whole point of the pool.
    """
    ns: dict[str, Any] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        kind = msg[0]
        if kind == "stop":
            break
        replies: list[tuple[bool, Any]] = []
        if kind == "ping":
            replies.append((True, None))
        else:
            for fn, args in msg[1]:
                try:
                    if kind == "nscalls":
                        replies.append((True, fn(ns, *args)))
                    else:  # "calls": plain callables
                        replies.append((True, fn(*args)))
                except BaseException as exc:  # noqa: BLE001 - report any failure
                    replies.append((False, f"{type(exc).__name__}: {exc}"))
        try:
            conn.send((os.getpid(), replies))
        except BrokenPipeError:
            break
    conn.close()


class PoolProcessExecutor(Executor):
    """Persistent multi-process executor with worker-resident state."""

    #: Signals the LTDP engine to use the state-resident pool runtime.
    supports_resident_state = True

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or os.cpu_count() or 1
        method = "fork" if hasattr(os, "fork") else "spawn"
        self._ctx = mp.get_context(method)
        self._procs: list[Any] | None = None
        self._conns: list[Any] = []
        #: One entry per dispatched superstep: the set of worker PIDs
        #: that replied.  Tests use this to assert PID stability.
        self.pid_log: deque[frozenset[int]] = deque(maxlen=1024)

    # ------------------------------------------------------------------
    def _ensure_workers(self) -> None:
        if self._procs is not None:
            return
        procs, conns = [], []
        for _ in range(self.max_workers):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            proc = self._ctx.Process(
                target=_pool_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            conns.append(parent_conn)
        self._procs, self._conns = procs, conns

    @property
    def num_workers(self) -> int:
        self._ensure_workers()
        assert self._procs is not None
        return len(self._procs)

    def worker_pids(self) -> list[int]:
        """PIDs of the (lazily spawned) persistent workers, in slot order."""
        self._ensure_workers()
        assert self._procs is not None
        return [p.pid for p in self._procs]

    def _worker_index(self, slot: int) -> int:
        return (slot - 1) % self.num_workers

    # -- low-level request/reply ---------------------------------------
    def _dispatch(
        self, per_worker: dict[int, tuple[str, list[tuple[Callable, tuple]]]]
    ) -> dict[int, list[tuple[bool, Any]]]:
        """Send one batched message per involved worker, collect replies."""
        self._ensure_workers()
        for w, (kind, calls) in per_worker.items():
            try:
                self._conns[w].send((kind, calls))
            except (BrokenPipeError, OSError) as exc:
                proc = self._procs[w] if self._procs else None
                raise ExecutorError(
                    f"pool worker {w} (pid={getattr(proc, 'pid', '?')}) "
                    "is gone; cannot ship work to it"
                ) from exc
            except Exception as exc:
                raise ExecutorError(
                    f"cannot ship work to pool worker {w}: {exc!r} "
                    "(tasks and their arguments must be picklable)"
                ) from exc
        replies: dict[int, list[tuple[bool, Any]]] = {}
        pids: set[int] = set()
        for w in per_worker:
            try:
                pid, reply = self._conns[w].recv()
            except (EOFError, OSError):
                proc = self._procs[w] if self._procs else None
                raise ExecutorError(
                    f"pool worker {w} (pid={getattr(proc, 'pid', '?')}) "
                    "died without a result"
                ) from None
            pids.add(pid)
            replies[w] = reply
        if pids:
            self.pid_log.append(frozenset(pids))
        return replies

    # -- classic Executor contract -------------------------------------
    def run_superstep(self, tasks: Sequence[Task]) -> list[Any]:
        """Run picklable callables, task ``i`` on worker ``i % max_workers``.

        Unlike the fork-per-task executor, tasks are shipped by pickle —
        closures over local state will not survive the trip; use
        module-level functions (the LTDP engine routes its work through
        :meth:`call_slots` instead, which the pool runtime feeds with
        declarative spec objects).
        """
        if not tasks:
            return []
        per_worker: dict[int, tuple[str, list[tuple[Callable, tuple]]]] = {}
        positions: dict[int, list[int]] = {}
        for idx, task in enumerate(tasks):
            w = idx % self.num_workers
            per_worker.setdefault(w, ("calls", []))[1].append((task, ()))
            positions.setdefault(w, []).append(idx)
        replies = self._dispatch(per_worker)
        results: list[Any] = [None] * len(tasks)
        errors: list[str] = []
        for w, reply in replies.items():
            for idx, (ok, payload) in zip(positions[w], reply):
                if ok:
                    results[idx] = payload
                else:
                    errors.append(f"task for processor {idx} failed: {payload}")
        if errors:
            raise ExecutorError("; ".join(sorted(errors)))
        return results

    # -- resident-state interface (used by the LTDP pool runtime) ------
    def call_slots(
        self, calls: Sequence[tuple[int, Callable, tuple]]
    ) -> list[Any]:
        """Invoke ``fn(namespace, *args)`` on each slot's owning worker.

        Returns results in call order.  The namespace dict persists on
        the worker between calls — resident state lives there.
        """
        if not calls:
            return []
        per_worker: dict[int, tuple[str, list[tuple[Callable, tuple]]]] = {}
        positions: dict[int, list[int]] = {}
        for idx, (slot, fn, args) in enumerate(calls):
            w = self._worker_index(slot)
            per_worker.setdefault(w, ("nscalls", []))[1].append((fn, args))
            positions.setdefault(w, []).append(idx)
        replies = self._dispatch(per_worker)
        results: list[Any] = [None] * len(calls)
        errors: list[str] = []
        for w, reply in replies.items():
            for idx, (ok, payload) in zip(positions[w], reply):
                if ok:
                    results[idx] = payload
                else:
                    slot = calls[idx][0]
                    errors.append(f"processor {slot} failed: {payload}")
        if errors:
            raise ExecutorError("; ".join(sorted(errors)))
        return results

    def broadcast(self, fn: Callable, args: tuple = ()) -> list[Any]:
        """Invoke ``fn(namespace, *args)`` once on *every* worker."""
        self._ensure_workers()
        per_worker = {
            w: ("nscalls", [(fn, args)]) for w in range(self.num_workers)
        }
        replies = self._dispatch(per_worker)
        results = []
        errors = []
        for w in range(self.num_workers):
            ok, payload = replies[w][0]
            if ok:
                results.append(payload)
            else:
                errors.append(f"worker {w} failed: {payload}")
        if errors:
            raise ExecutorError("; ".join(errors))
        return results

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._procs is None:
            return
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1)
        for conn in self._conns:
            conn.close()
        self._procs, self._conns = None, []
