"""`PoolProcessExecutor`: a persistent, fault-tolerant worker-pool runtime.

The legacy :class:`~repro.machine.executor.ProcessExecutor` forks one
process *per task per superstep*, so a parallel LTDP solve with ``k``
fix-up rounds pays ``P·(k+…)`` fork+pickle round-trips.  This pool
spawns ``max_workers`` OS processes **once**, keeps them alive across
supersteps (and across solves), and talks to them over pipes:

- **generic tasks** — :meth:`run_superstep` ships picklable callables
  and returns their results, satisfying the classic
  :class:`~repro.machine.executor.Executor` contract;
- **resident-state calls** — :meth:`call_slots` routes
  ``(slot, fn, args)`` triples to the worker owning each slot and
  invokes ``fn(namespace, *args)`` against that worker's persistent
  namespace dict.  The LTDP engine uses this to ship the problem once,
  keep per-processor stage vectors resident in the workers, and
  exchange only boundary vectors per superstep — the paper's
  O(boundary) communication model made real.

Slots are 1-based virtual processor ids; slot ``p`` always maps to
worker ``(p-1) % max_workers``, so per-slot state stays on one worker
even when there are more virtual processors than OS processes.

Fault tolerance
---------------
Every request/reply pair is framed with a monotonically increasing
**sequence number**, so a stale reply left in a pipe by an abandoned
dispatch (e.g. a partial-send failure) is recognised and discarded
instead of being attributed to the wrong superstep.  While waiting for
a reply the driver health-checks the worker process; a crash triggers
**automatic respawn** with bounded retry/backoff.  After a respawn the
registered *rebuild hooks* (one per resident session, registered by
LTDP pool runtimes via :meth:`add_rebuild_hook`) re-ship each
session's problem and replay the dead slots' journalled supersteps,
reconstructing resident state bit-identically before the in-flight
message is re-sent.  Recovery counters accumulate on
:attr:`recovery_stats`.

Fault injection for tests: pass ``fault_plan={seq: worker}`` (or set
``REPRO_POOL_FAULTS="seq:worker,..."``) to SIGKILL a chosen worker just
before the dispatch with that sequence number is sent.

Error contract: worker-side exceptions are reported per task/call —
with the worker's full traceback — and re-raised in the driver as
:class:`ExecutorError` naming the failing slot; a worker that keeps
dying past ``max_retries`` respawns, or a reply that exceeds
``dispatch_timeout``, marks the executor broken and surfaces as
:class:`ExecutorError` too.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import threading
import time
import traceback
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.exceptions import ExecutorError, WorkerCrashError
from repro.machine.executor import Executor, ExecutorCapabilities, Task

__all__ = ["PoolProcessExecutor", "RecoveryStats", "FAULT_PLAN_ENV"]

#: Environment variable carrying a fault plan as ``"seq:worker,seq:worker"``.
FAULT_PLAN_ENV = "REPRO_POOL_FAULTS"


@dataclass
class RecoveryStats:
    """Counters of the pool's self-healing activity (monotonic per executor)."""

    #: Dead workers replaced with freshly spawned processes.
    respawns: int = 0
    #: In-flight dispatches re-sent after a worker crash.
    retries: int = 0
    #: Journalled superstep specs replayed to rebuild resident state.
    replayed_supersteps: int = 0

    def snapshot(self) -> "RecoveryStats":
        return RecoveryStats(self.respawns, self.retries, self.replayed_supersteps)


def _parse_fault_plan(spec: str) -> dict[int, int]:
    """``"2:0,5:1"`` → ``{2: 0, 5: 1}`` (dispatch seq → worker index)."""
    plan: dict[int, int] = {}
    for part in spec.replace(",", " ").split():
        seq_text, sep, worker_text = part.partition(":")
        if not sep:
            raise ValueError(
                f"malformed fault plan entry {part!r}; expected 'seq:worker'"
            )
        plan[int(seq_text)] = int(worker_text)
    return plan


def _pool_worker_main(conn) -> None:  # pragma: no cover - runs in the worker
    """Worker loop: sequence-framed request/reply over one duplex pipe.

    ``ns`` is the worker's persistent namespace — it outlives individual
    messages, which is the whole point of the pool.  Every reply echoes
    the request's sequence number so the driver can never attribute it
    to the wrong dispatch, plus a timing meta dict (perf_counter stamps
    of receive and completion) from which the driver derives queue-wait
    and compute breakdowns when tracing is on.
    """
    ns: dict[str, Any] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, KeyboardInterrupt):
            break
        recv_t = time.perf_counter()
        kind, seq, payload = msg
        if kind == "stop":
            break
        replies: list[tuple[bool, Any]] = []
        if kind == "ping":
            replies.append((True, None))
        else:
            for fn, args in payload:
                try:
                    if kind == "nscalls":
                        replies.append((True, fn(ns, *args)))
                    else:  # "calls": plain callables
                        replies.append((True, fn(*args)))
                except BaseException as exc:  # repro: noqa[REP005]: worker loop must survive and report every task failure, not die on it
                    replies.append(
                        (
                            False,
                            (
                                f"{type(exc).__name__}: {exc}",
                                traceback.format_exc(),
                            ),
                        )
                    )
        meta = {"recv_t": recv_t, "done_t": time.perf_counter()}
        try:
            conn.send((os.getpid(), seq, replies, meta))
        except BrokenPipeError:
            break
    conn.close()


def _shutdown_workers(procs: list, conns: list) -> None:
    """Stop and reap every worker; shared by ``close()``, ``weakref.finalize``
    and interpreter-exit cleanup (finalizers run atexit by default)."""
    for conn in conns:
        try:
            conn.send(("stop", -1, None))
        except (BrokenPipeError, OSError, ValueError):
            pass
    for proc in procs:
        try:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1)
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
    procs.clear()
    conns.clear()


def _failure_text(payload: Any) -> str:
    """Render a worker failure payload — ``(summary, traceback)`` — as text."""
    if isinstance(payload, tuple) and len(payload) == 2:
        summary, tb = payload
        if tb:
            return f"{summary}\n{str(tb).rstrip()}"
        return str(summary)
    return str(payload)


class PoolProcessExecutor(Executor):
    """Persistent multi-process executor with worker-resident state."""

    #: Typed capability declaration: signals the LTDP engine to use the
    #: state-resident pool runtime and enables the block-kernel tier.
    capabilities = ExecutorCapabilities(resident_state=True, block_kernels=True)

    #: Shared mutable state and the lock that guards it (checked
    #: statically by ``repro lint`` REP007).  Everything here is touched
    #: by concurrent runner threads; ``_broken`` additionally has two
    #: deliberate lock-free fast paths, waived at the access sites.
    guarded_fields = {
        "_seq": "_state_lock",
        "dispatch_count": "_state_lock",
        "_fault_plan": "_state_lock",
        "_rebuild_hooks": "_state_lock",
        "_closing": "_state_lock",
        "recovery_stats": "_state_lock",
        "_broken": "_state_lock",
    }

    def __init__(
        self,
        max_workers: int | None = None,
        *,
        start_method: str | None = None,
        fault_plan: dict[int, int] | Sequence[tuple[int, int]] | None = None,
        dispatch_timeout: float | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.05,
        health_interval: float = 0.05,
        ping_timeout: float = 5.0,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers or os.cpu_count() or 1
        if start_method is None:
            start_method = "fork" if hasattr(os, "fork") else "spawn"
        elif start_method not in mp.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} not available on this platform"
            )
        self.start_method = start_method
        self._ctx = mp.get_context(start_method)
        self.dispatch_timeout = dispatch_timeout
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.health_interval = health_interval
        self.ping_timeout = ping_timeout
        #: Self-healing counters; the LTDP driver folds deltas of these
        #: into the solve's :class:`~repro.machine.metrics.RunMetrics`.
        self.recovery_stats = RecoveryStats()
        # Fault injection: {dispatch seq -> worker index to SIGKILL just
        # before that dispatch is sent}.  Entries are one-shot.
        env_plan = os.environ.get(FAULT_PLAN_ENV)
        self._fault_plan: dict[int, int] = (
            _parse_fault_plan(env_plan) if env_plan else {}
        )
        if fault_plan:
            self._fault_plan.update(dict(fault_plan))
        # Workers.  The lists are mutated in place (never rebound) so the
        # weakref finalizer — which holds them, not ``self`` — always sees
        # the live processes even after respawns.
        self._procs: list[Any] = []
        self._conns: list[Any] = []
        self._finalizer: weakref.finalize | None = None
        # Concurrency: multiple runner threads may dispatch at once
        # (instruction-at-a-time mode).  The state lock guards the
        # shared counters / fault plan / spawn bookkeeping; per-worker
        # locks serialize pipe traffic so two dispatches to one worker
        # can never interleave frames.  RLocks: recovery paths nest
        # (dispatch → recover → ping) on the same worker.
        self._state_lock = threading.RLock()
        # Per-worker locks exist to serialize pipe I/O; blocking under
        # them is their purpose, hence the transport role (REP009 exempt).
        self._worker_locks: list[threading.RLock] = []  # lock-role: transport
        self._closing = False
        self._seq = 0
        #: Total ``_dispatch`` invocations; fault plans key off this.
        self.dispatch_count = 0
        self._broken: str | None = None
        # Rebuild hooks, keyed by owner (one per resident session so
        # several sessions can share the pool); insertion-ordered.
        self._rebuild_hooks: dict[Any, Callable[[int], tuple[list, int]]] = {}
        # Optional span tracer (set by the LTDP pool runtime while a
        # traced solve is in flight).  ``None`` keeps every dispatch on
        # the zero-overhead path.
        self._tracer = None
        #: One entry per dispatched superstep: the set of worker PIDs
        #: that replied.  Tests use this to assert PID stability.
        self.pid_log: deque[frozenset[int]] = deque(maxlen=1024)

    # ------------------------------------------------------------------
    def _spawn_worker(self) -> tuple[Any, Any]:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _ensure_workers(self) -> None:
        with self._state_lock:
            if self._procs:
                return
            if self._closing:
                raise ExecutorError(
                    "PoolProcessExecutor is closed: run_superstep after "
                    "close() is an error (create a new executor to "
                    "dispatch again)"
                )
            for _ in range(self.max_workers):
                proc, conn = self._spawn_worker()
                self._procs.append(proc)
                self._conns.append(conn)
            while len(self._worker_locks) < len(self._procs):
                self._worker_locks.append(threading.RLock())
            if self._finalizer is None:
                self._finalizer = weakref.finalize(
                    self, _shutdown_workers, self._procs, self._conns
                )

    @property
    def num_workers(self) -> int:
        self._ensure_workers()
        return len(self._procs)

    def worker_pids(self) -> list[int]:
        """PIDs of the (lazily spawned) persistent workers, in slot order."""
        self._ensure_workers()
        return [p.pid for p in self._procs]

    def _worker_index(self, slot: int) -> int:
        return (slot - 1) % self.num_workers

    def worker_of_slot(self, slot: int) -> int:
        """Index of the persistent worker that owns 1-based ``slot``."""
        return self._worker_index(slot)

    def add_rebuild_hook(
        self, owner: Any, hook: Callable[[int], tuple[list, int]]
    ) -> None:
        """Register a resident-state reconstruction hook under ``owner``.

        ``hook(worker_index)`` must return ``(calls, replayed)``: a list
        of ``(fn, args)`` namespace calls that rebuild every slot the
        worker owns for the owner's session (run against the fresh
        worker before the in-flight message is re-sent), and the number
        of journalled supersteps those calls replay (for
        :attr:`recovery_stats` accounting).  Multiple owners — one per
        resident session sharing the pool — may register concurrently;
        a respawn runs every registered hook, in registration order.
        """
        with self._state_lock:
            self._rebuild_hooks[owner] = hook

    def remove_rebuild_hook(self, owner: Any) -> None:
        """Deregister ``owner``'s hook (no-op when absent)."""
        with self._state_lock:
            self._rebuild_hooks.pop(owner, None)

    def set_rebuild_hook(
        self, hook: Callable[[int], tuple[list, int]] | None
    ) -> None:
        """Single-session compatibility shim over :meth:`add_rebuild_hook`.

        Registers ``hook`` under a default owner; ``None`` clears it.
        """
        if hook is None:
            self.remove_rebuild_hook("__default__")
        else:
            self.add_rebuild_hook("__default__", hook)

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`~repro.machine.trace.Tracer` (or ``None``).

        While attached, every dispatch emits one ``"dispatch"`` span per
        involved worker — send / queue-wait / compute seconds plus
        request/reply byte counts — and recovery paths emit
        ``worker-respawn`` / ``dispatch-retry`` / ``superstep-replay``
        events.  Cleared (``None``) the pool takes the untraced path.
        """
        self._tracer = tracer

    def _next_seq(self) -> int:
        with self._state_lock:
            self._seq += 1
            return self._seq

    # -- crash detection / recovery ------------------------------------
    def _check_broken(self) -> None:
        broken = self._broken  # repro: noqa[REP007]: lock-free fast path on the hot dispatch route; a stale read only delays the error by one dispatch
        if broken is not None:
            raise ExecutorError(
                f"pool executor is marked broken ({broken}); "
                "create a new executor"
            )

    def _mark_broken(self, reason: str) -> None:
        self._broken = reason  # repro: noqa[REP007]: monotonic error-string write; racing writers both leave the pool broken, which is the point

    def _kill_worker(self, w: int) -> None:
        """SIGKILL worker ``w`` (fault injection)."""
        if not (0 <= w < len(self._procs)):
            return
        proc = self._procs[w]
        try:
            proc.kill()
        except (OSError, ValueError, AttributeError):  # pragma: no cover
            return
        proc.join(timeout=5)

    def _recv(self, w: int, timeout: float | None) -> tuple[int, int, list, dict]:
        """One framed reply from worker ``w``, health-checking while waiting.

        Returns ``(pid, seq, replies, meta)``; ``meta`` carries the
        worker's receive/completion perf_counter stamps plus the reply's
        on-the-wire size (``reply_bytes``, added here).

        Raises :class:`WorkerCrashError` when the worker process dies and
        :class:`ExecutorError` (executor marked broken) on timeout.
        """
        conn = self._conns[w]
        proc = self._procs[w]
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = self.health_interval
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._mark_broken(
                        f"worker {w} did not reply within {timeout}s"
                    )
                    raise ExecutorError(
                        f"pool worker {w} (pid={proc.pid}) did not reply "
                        f"within the {timeout}s dispatch timeout"
                    )
                wait = min(wait, remaining)
            try:
                if conn.poll(wait):
                    return self._decode_reply(conn.recv_bytes())
            except (EOFError, OSError) as exc:
                raise WorkerCrashError(
                    f"pool worker {w} (pid={proc.pid}) died: {exc!r}"
                ) from None
            if not proc.is_alive():
                # Drain anything the worker managed to flush before dying.
                try:
                    if conn.poll(0):
                        return self._decode_reply(conn.recv_bytes())
                except (EOFError, OSError):
                    pass
                raise WorkerCrashError(
                    f"pool worker {w} (pid={proc.pid}) died without a result"
                )

    @staticmethod
    def _decode_reply(buf: bytes) -> tuple[int, int, list, dict]:
        """Unpickle one framed reply, recording its wire size in the meta."""
        pid, seq, replies, meta = pickle.loads(buf)
        meta["reply_bytes"] = len(buf)
        return pid, seq, replies, meta

    def ping(self, w: int, timeout: float | None = None) -> bool:
        """Health check: round-trip a ``ping`` through worker ``w``.

        Stale replies queued ahead of the pong (from abandoned
        dispatches) are discarded by sequence number.  Returns False on
        crash or timeout instead of raising.
        """
        self._ensure_workers()
        with self._worker_locks[w]:
            seq = self._next_seq()
            timeout = self.ping_timeout if timeout is None else timeout
            prior_broken = self._broken  # repro: noqa[REP007]: snapshot under the worker lock only; ping restores whatever brokenness preceded it
            try:
                self._conns[w].send(("ping", seq, None))
                deadline = time.monotonic() + timeout
                while True:
                    _, rseq, _, _ = self._recv(
                        w, max(1e-6, deadline - time.monotonic())
                    )
                    if rseq == seq:
                        return True
                    if rseq > seq:  # pragma: no cover - defensive
                        return False
            except (WorkerCrashError, ExecutorError, BrokenPipeError, OSError):
                self._broken = prior_broken  # repro: noqa[REP007]: a failed ping itself is not fatal; undoes _recv's mark without claiming the state lock inside the worker lock
                return False

    def check_health(self) -> list[int]:
        """Ping every worker, respawning (and rebuilding) any dead one.

        Returns the post-check worker PIDs in slot order.
        """
        self._ensure_workers()
        for w in range(len(self._procs)):
            if not self.ping(w):
                self._recover_worker(w)
                if not self.ping(w):
                    self._mark_broken(
                        f"respawned worker {w} failed its health check"
                    )
                    raise ExecutorError(
                        f"respawned pool worker {w} failed its health check"
                    )
        return self.worker_pids()

    def _recover_worker(self, w: int) -> None:
        """Replace dead worker ``w`` and reconstruct its resident state."""
        with self._state_lock:
            if self._closing:
                raise ExecutorError(
                    "pool executor is closing; refusing to respawn worker "
                    f"{w} mid-teardown"
                )
        self._worker_locks[w].acquire()
        try:
            self._recover_worker_locked(w)
        finally:
            self._worker_locks[w].release()

    def _recover_worker_locked(self, w: int) -> None:
        old = self._procs[w]
        try:
            self._conns[w].close()
        except OSError:  # pragma: no cover - defensive
            pass
        try:
            old.join(timeout=1)
            if old.is_alive():
                old.terminate()
                old.join(timeout=1)
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass
        proc, conn = self._spawn_worker()
        self._procs[w] = proc
        self._conns[w] = conn
        with self._state_lock:
            self.recovery_stats.respawns += 1
        if self._tracer:
            self._tracer.event("worker-respawn", worker=w, pid=proc.pid)
        if not self.ping(w):
            self._mark_broken(f"respawned worker {w} failed its health check")
            raise ExecutorError(
                f"respawned pool worker {w} (pid={proc.pid}) failed its "
                "health check"
            )
        with self._state_lock:
            hooks = list(self._rebuild_hooks.values())
        if not hooks:
            return
        calls: list = []
        replayed = 0
        for hook in hooks:
            hook_calls, hook_replayed = hook(w)
            calls.extend(hook_calls)
            replayed += hook_replayed
        if calls:
            seq = self._next_seq()
            try:
                self._conns[w].send(("nscalls", seq, list(calls)))
                _, rseq, replies, _ = self._recv(w, self.dispatch_timeout)
            except (WorkerCrashError, BrokenPipeError, OSError) as exc:
                self._mark_broken(
                    f"worker {w} died again during state reconstruction"
                )
                raise ExecutorError(
                    f"pool worker {w} died again while replaying resident "
                    "state; giving up"
                ) from exc
            if rseq != seq:  # pragma: no cover - fresh pipe, defensive
                self._mark_broken(f"worker {w} replay reply out of sequence")
                raise ExecutorError(
                    f"pool worker {w} replied out of sequence during replay"
                )
            for ok, payload in replies:
                if not ok:
                    self._mark_broken(f"worker {w} state replay failed")
                    raise ExecutorError(
                        f"replaying resident state on respawned pool worker "
                        f"{w} failed: {_failure_text(payload)}"
                    )
        with self._state_lock:
            self.recovery_stats.replayed_supersteps += replayed
        if self._tracer and replayed:
            self._tracer.event("superstep-replay", worker=w, replayed=replayed)

    # -- low-level request/reply ---------------------------------------
    def _dispatch(
        self, per_worker: dict[int, tuple[str, list[tuple[Callable, tuple]]]]
    ) -> dict[int, list[tuple[bool, Any]]]:
        """Send one batched message per involved worker, collect replies.

        Crashed workers are respawned (resident state rebuilt via the
        hook) and their message re-sent, up to ``max_retries`` times
        each with exponential backoff.  A send that fails because the
        *message* is unpicklable raises without poisoning the protocol:
        workers that did receive the dispatch will answer with this
        sequence number, and the next dispatch discards those replies
        as stale.
        """
        self._ensure_workers()
        self._check_broken()
        # Serialize pipe traffic per worker: concurrent runner threads
        # dispatching to the same worker take turns (sorted acquisition
        # order keeps multi-worker dispatches deadlock-free).
        locks = [self._worker_locks[w] for w in sorted(per_worker)]
        for lock in locks:
            lock.acquire()
        try:
            return self._dispatch_locked(per_worker)
        finally:
            for lock in reversed(locks):
                lock.release()

    def _dispatch_locked(
        self, per_worker: dict[int, tuple[str, list[tuple[Callable, tuple]]]]
    ) -> dict[int, list[tuple[bool, Any]]]:
        tracer = self._tracer
        with self._state_lock:
            seq = self._next_seq()
            self.dispatch_count += 1
            fault = self._fault_plan.pop(seq, None)
        if fault is not None:
            self._kill_worker(fault)
        messages = {
            w: (kind, seq, calls) for w, (kind, calls) in per_worker.items()
        }
        # When tracing, pickle explicitly so the request's wire size and
        # serialization time are measurable; send_bytes produces the
        # identical wire format Connection.send would.
        send_info: dict[int, tuple[float, float, int]] = {}
        for w, msg in messages.items():
            try:
                if tracer:
                    s0 = time.perf_counter()
                    blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
                    self._conns[w].send_bytes(blob)
                    send_info[w] = (s0, time.perf_counter(), len(blob))
                else:
                    self._conns[w].send(msg)
            except (BrokenPipeError, OSError):
                # Worker is gone; the reply loop below recovers it and
                # re-sends.  Nothing reached the pipe.
                pass
            except Exception as exc:  # repro: noqa[REP005]: arbitrary user tasks can fail pickling in arbitrary ways; rewrapped as ExecutorError below
                raise ExecutorError(
                    f"cannot ship work to pool worker {w}: {exc!r} "
                    "(tasks and their arguments must be picklable)"
                ) from exc
        replies: dict[int, list[tuple[bool, Any]]] = {}
        pids: set[int] = set()
        for w, msg in messages.items():
            pid, reply, meta = self._await_reply(w, msg)
            pids.add(pid)
            replies[w] = reply
            if tracer:
                t_end = time.perf_counter()
                s0, s1, nbytes = send_info.get(w, (t_end, t_end, 0))
                # perf_counter shares its epoch across processes on
                # Linux, so the worker's receive stamp minus our send
                # completion approximates pipe/queue wait.
                recv_t = meta.get("recv_t", s1)
                tracer.add_span(
                    "dispatch",
                    s0,
                    t_end,
                    worker=w,
                    pid=pid,
                    seq=seq,
                    kind=msg[0],
                    calls=len(msg[2]) if msg[2] else 0,
                    send_seconds=s1 - s0,
                    queue_wait_seconds=max(0.0, recv_t - s1),
                    compute_seconds=max(
                        0.0, meta.get("done_t", recv_t) - recv_t
                    ),
                    request_bytes=nbytes,
                    reply_bytes=meta.get("reply_bytes", 0),
                )
        if pids:
            self.pid_log.append(frozenset(pids))
        return replies

    def _await_reply(
        self, w: int, msg: tuple[str, int, list]
    ) -> tuple[int, list[tuple[bool, Any]], dict]:
        """Reply matching ``msg``'s sequence number, recovering crashes."""
        seq = msg[1]
        attempts = 0
        while True:
            try:
                pid, rseq, reply, meta = self._recv(w, self.dispatch_timeout)
            except WorkerCrashError as exc:
                attempts += 1
                if attempts > self.max_retries:
                    self._mark_broken(
                        f"worker {w} kept dying ({attempts - 1} retries)"
                    )
                    raise ExecutorError(
                        f"pool worker {w} kept dying; gave up after "
                        f"{self.max_retries} respawn attempts"
                    ) from exc
                with self._state_lock:
                    self.recovery_stats.retries += 1
                if self._tracer:
                    self._tracer.event(
                        "dispatch-retry", worker=w, seq=seq, attempt=attempts
                    )
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * (2 ** (attempts - 1)))
                self._recover_worker(w)
                try:
                    self._conns[w].send(msg)
                except (BrokenPipeError, OSError):
                    continue  # died again already; next _recv notices
                continue
            if rseq == seq:
                return pid, reply, meta
            if rseq < seq:
                continue  # stale reply from an abandoned dispatch: drop
            self._mark_broken(
                f"worker {w} replied with future sequence {rseq}"
            )
            raise ExecutorError(
                f"pool protocol error: worker {w} replied with sequence "
                f"{rseq} while {seq} was awaited"
            )

    # -- classic Executor contract -------------------------------------
    def run_superstep(self, tasks: Sequence[Task]) -> list[Any]:
        """Run picklable callables, task ``i`` on worker ``i % max_workers``.

        Unlike the fork-per-task executor, tasks are shipped by pickle —
        closures over local state will not survive the trip; use
        module-level functions (the LTDP engine routes its work through
        :meth:`call_slots` instead, which the pool runtime feeds with
        declarative spec objects).  Tasks should be side-effect free:
        crash recovery re-sends a dead worker's whole batch.
        """
        self._check_open()
        if not tasks:
            return []
        per_worker: dict[int, tuple[str, list[tuple[Callable, tuple]]]] = {}
        positions: dict[int, list[int]] = {}
        for idx, task in enumerate(tasks):
            w = idx % self.num_workers
            per_worker.setdefault(w, ("calls", []))[1].append((task, ()))
            positions.setdefault(w, []).append(idx)
        replies = self._dispatch(per_worker)
        results: list[Any] = [None] * len(tasks)
        errors: list[str] = []
        for w, reply in replies.items():
            for idx, (ok, payload) in zip(positions[w], reply):
                if ok:
                    results[idx] = payload
                else:
                    errors.append(
                        f"task {idx} (processor {idx + 1}) failed: "
                        f"{_failure_text(payload)}"
                    )
        if errors:
            raise ExecutorError("; ".join(sorted(errors)))
        return results

    # -- resident-state interface (used by the LTDP pool runtime) ------
    def call_slots(
        self, calls: Sequence[tuple[int, Callable, tuple]]
    ) -> list[Any]:
        """Invoke ``fn(namespace, *args)`` on each slot's owning worker.

        Returns results in call order.  The namespace dict persists on
        the worker between calls — resident state lives there.
        """
        self._check_open()
        if not calls:
            return []
        per_worker: dict[int, tuple[str, list[tuple[Callable, tuple]]]] = {}
        positions: dict[int, list[int]] = {}
        for idx, (slot, fn, args) in enumerate(calls):
            w = self._worker_index(slot)
            per_worker.setdefault(w, ("nscalls", []))[1].append((fn, args))
            positions.setdefault(w, []).append(idx)
        replies = self._dispatch(per_worker)
        results: list[Any] = [None] * len(calls)
        errors: list[str] = []
        for w, reply in replies.items():
            for idx, (ok, payload) in zip(positions[w], reply):
                if ok:
                    results[idx] = payload
                else:
                    slot = calls[idx][0]
                    errors.append(
                        f"processor {slot} failed: {_failure_text(payload)}"
                    )
        if errors:
            raise ExecutorError("; ".join(sorted(errors)))
        return results

    def broadcast(self, fn: Callable, args: tuple = ()) -> list[Any]:
        """Invoke ``fn(namespace, *args)`` once on *every* worker."""
        self._check_open()
        self._ensure_workers()
        per_worker = {
            w: ("nscalls", [(fn, args)]) for w in range(self.num_workers)
        }
        replies = self._dispatch(per_worker)
        results = []
        errors = []
        for w in range(self.num_workers):
            ok, payload = replies[w][0]
            if ok:
                results.append(payload)
            else:
                errors.append(f"worker {w} failed: {_failure_text(payload)}")
        if errors:
            raise ExecutorError("; ".join(errors))
        return results

    # ------------------------------------------------------------------
    def __enter__(self) -> "PoolProcessExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Stop and reap the workers.  Idempotent and **permanent**: any
        later dispatch raises :class:`ExecutorError` instead of lazily
        respawning workers.

        (Lazy revival after close was never relied on and raced the
        serve layer's drain path: a request slipping in after close
        would silently restart the worker fleet — and leak it.)

        Even without an explicit ``close()`` (CLI error paths,
        interactive sessions) the workers are reclaimed when the
        executor is garbage-collected or the interpreter exits, via the
        ``weakref.finalize`` registered at spawn time.

        Teardown ordering: registered teardown hooks (runner crews)
        drain first — while the workers are still alive, so in-flight
        instructions can finish or fail cleanly — and ``_closing``
        blocks respawns from the moment teardown starts.
        """
        with self._state_lock:
            self._closing = True
            self._closed = True
        self._drain_teardown_hooks()
        finalizer = self._finalizer
        self._finalizer = None
        if finalizer is not None:
            finalizer()
