"""Execution timelines: turn recorded metrics into a per-processor trace.

Converts a :class:`~repro.machine.metrics.RunMetrics` plus a
:class:`~repro.machine.cost_model.CostModel` into explicit
``(processor, start, end, label)`` intervals — the BSP schedule the
simulated clock implies — and renders them as an ASCII Gantt chart.
Useful for understanding *where* fix-up recomputation and barrier idle
time go (e.g. why small packets stop scaling in Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.cost_model import CostModel
from repro.machine.metrics import RunMetrics

__all__ = ["TraceInterval", "build_trace", "render_gantt", "utilization"]


@dataclass(frozen=True)
class TraceInterval:
    """One busy interval of one processor."""

    proc: int  # 1-based, matching the paper
    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


def build_trace(
    metrics: RunMetrics, cost_model: CostModel
) -> tuple[list[TraceInterval], float]:
    """``(intervals, makespan)`` of the BSP schedule implied by a run.

    Within each superstep every processor starts at the superstep's
    begin time and works for ``work_p · cell_cost``; the superstep ends
    when the slowest processor plus communication/barrier costs are
    done (all processors then resynchronize — idle time is the gap to
    the superstep end).
    """
    intervals: list[TraceInterval] = []
    clock = 0.0
    for step in metrics.supersteps:
        backward = step.label.startswith(("backward", "bwd"))
        cell = cost_model.traceback_cell_cost if backward else cost_model.cell_cost
        for p, work in enumerate(step.work, start=1):
            if work > 0:
                intervals.append(
                    TraceInterval(
                        proc=p,
                        start=clock,
                        end=clock + work * cell,
                        label=step.label,
                    )
                )
        clock += cost_model.superstep_time(
            step.critical_work, step.comm, backward=backward
        )
    return intervals, clock


def utilization(metrics: RunMetrics, cost_model: CostModel) -> list[float]:
    """Per-processor busy fraction of the total makespan."""
    intervals, makespan = build_trace(metrics, cost_model)
    busy = [0.0] * metrics.num_procs
    for iv in intervals:
        busy[iv.proc - 1] += iv.duration
    if makespan <= 0:
        return [0.0] * metrics.num_procs
    return [b / makespan for b in busy]


def render_gantt(
    metrics: RunMetrics,
    cost_model: CostModel,
    *,
    columns: int = 80,
) -> str:
    """ASCII Gantt chart: one row per processor, time left to right.

    Busy time is drawn with a character per superstep kind
    (``F`` forward, ``x`` fix-up, ``o`` objective, ``B`` backward,
    ``b`` backward fix-up); idle time with ``.``.
    """
    if columns < 10:
        raise ValueError("need at least 10 columns")
    intervals, makespan = build_trace(metrics, cost_model)
    if makespan <= 0:
        return "(empty trace)"
    glyphs = {
        "forward": "F",
        "fixup": "x",
        "objective": "o",
        "backward": "B",
        "bwd-fixup": "b",
        "partial-products": "M",
        "prefix-scan": "s",
        "re-sweep": "r",
    }

    def glyph(label: str) -> str:
        for key, g in glyphs.items():
            if label.startswith(key):
                return g
        return "#"

    rows = []
    scale = columns / makespan
    for p in range(1, metrics.num_procs + 1):
        row = ["."] * columns
        for iv in intervals:
            if iv.proc != p:
                continue
            lo = int(iv.start * scale)
            hi = max(lo + 1, int(iv.end * scale))
            g = glyph(iv.label)
            for c in range(lo, min(hi, columns)):
                row[c] = g
        rows.append(f"P{p:<3d} |" + "".join(row) + "|")
    util = utilization(metrics, cost_model)
    rows.append(
        "util  "
        + " ".join(f"P{p + 1}={u:.0%}" for p, u in enumerate(util))
    )
    rows.append(f"makespan = {makespan:.3e} s")
    return "\n".join(rows)
