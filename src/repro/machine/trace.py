"""Execution tracing: simulated BSP timelines *and* real span traces.

Two complementary views live here:

1. **Simulated timeline** (:func:`build_trace`, :func:`render_gantt`,
   :func:`utilization`): converts a
   :class:`~repro.machine.metrics.RunMetrics` plus a
   :class:`~repro.machine.cost_model.CostModel` into explicit
   ``(processor, start, end, label)`` intervals — the BSP schedule the
   simulated clock implies — and renders them as an ASCII Gantt chart.

2. **Real span tracer** (:class:`Tracer`): structured wall-clock spans
   of an actual solve — one span per superstep, per-worker dispatch
   spans with send/queue-wait/compute breakdown and serialized byte
   counts, and point events for pool recovery (respawns, retries,
   replays).  The engine threads a tracer through
   :class:`~repro.ltdp.engine.driver.ParallelOptions`; every
   instrumentation site guards with ``if tracer:`` so the disabled path
   costs a single truthiness check.  Traces export as schema-versioned
   JSONL (:meth:`Tracer.dump_jsonl`).

Span clock: ``time.perf_counter()``.  On Linux this is CLOCK_MONOTONIC,
which shares its epoch across processes on one host, so worker-side
timestamps (pool compute spans) are directly comparable with
driver-side ones; queue-wait is derived from that comparability and is
meaningful only on such platforms.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.machine.cost_model import CostModel
from repro.machine.metrics import RunMetrics

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "TraceEvent",
    "Tracer",
    "TraceInterval",
    "build_trace",
    "render_gantt",
    "utilization",
]

#: Version of the JSONL trace format; bump on incompatible changes.
TRACE_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One timed operation: ``[start, end]`` seconds since the trace epoch."""

    name: str
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TraceEvent:
    """One point-in-time occurrence (e.g. a worker respawn)."""

    name: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects :class:`Span` / :class:`TraceEvent` records of a real run.

    Usage::

        tracer = Tracer()
        solution = solve_parallel(problem, num_procs=8, executor=pool,
                                  tracer=tracer)
        tracer.dump_jsonl("solve.trace.jsonl")
        print(tracer.format_summary())

    A tracer is *falsy* when disabled, and instrumentation sites are
    written ``if tracer: tracer.add_span(...)`` — passing ``None``
    (the default everywhere) or ``Tracer(enabled=False)`` therefore
    short-circuits to one attribute/truthiness check per site, which is
    what keeps tracing's disabled overhead near zero.

    ``context`` attributes (e.g. the current superstep label) are merged
    into every span/event recorded while the context is active, letting
    low layers (the worker pool) tag their spans with high-layer
    information (the superstep) without plumbing arguments through.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []
        self._context: dict[str, Any] = {}
        self._order: list[Span | TraceEvent] = []

    def __bool__(self) -> bool:
        return self.enabled

    # -- recording ------------------------------------------------------
    def add_span(self, name: str, start: float, end: float, **attrs: Any) -> None:
        """Record a finished span; ``start``/``end`` are raw perf_counter values."""
        if not self.enabled:
            return
        span = Span(
            name=name,
            start=start - self.epoch,
            end=end - self.epoch,
            attrs={**self._context, **attrs},
        )
        self.spans.append(span)
        self._order.append(span)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Context manager recording the enclosed block as a span."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_span(name, start, time.perf_counter(), **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event at the current time."""
        if not self.enabled:
            return
        ev = TraceEvent(
            name=name,
            time=time.perf_counter() - self.epoch,
            attrs={**self._context, **attrs},
        )
        self.events.append(ev)
        self._order.append(ev)

    @contextmanager
    def context(self, **attrs: Any) -> Iterator[None]:
        """Merge ``attrs`` into every record made inside the block."""
        if not self.enabled:
            yield
            return
        saved = self._context
        self._context = {**saved, **attrs}
        try:
            yield
        finally:
            self._context = saved

    # -- export ---------------------------------------------------------
    def iter_records(self) -> Iterator[dict[str, Any]]:
        """All records as JSON-ready dicts, header first, in record order."""
        yield {
            "type": "header",
            "schema_version": TRACE_SCHEMA_VERSION,
            "clock": "perf_counter",
            "time_unit": "seconds",
        }
        for rec in self._order:
            if isinstance(rec, Span):
                yield {
                    "type": "span",
                    "name": rec.name,
                    "t0": rec.start,
                    "t1": rec.end,
                    "dur": rec.duration,
                    **rec.attrs,
                }
            else:
                yield {"type": "event", "name": rec.name, "t": rec.time, **rec.attrs}

    def dump_jsonl(self, path) -> None:
        """Write the trace as one JSON object per line (schema-versioned)."""
        with open(path, "w", encoding="utf-8") as fh:
            for record in self.iter_records():
                fh.write(json.dumps(record, default=_json_default) + "\n")

    # -- aggregation ----------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Aggregate totals: per-span-name counts/seconds, dispatch
        breakdown (send / queue-wait / compute seconds, bytes on the
        wire), and per-event-name counts."""
        per_name: dict[str, dict[str, float]] = {}
        for s in self.spans:
            agg = per_name.setdefault(s.name, {"count": 0, "total_seconds": 0.0})
            agg["count"] += 1
            agg["total_seconds"] += s.duration
        out: dict[str, Any] = {"spans": per_name}
        dispatch = [s for s in self.spans if s.name == "dispatch"]
        if dispatch:
            out["dispatch"] = {
                "count": len(dispatch),
                "send_seconds": sum(
                    s.attrs.get("send_seconds", 0.0) for s in dispatch
                ),
                "queue_wait_seconds": sum(
                    s.attrs.get("queue_wait_seconds", 0.0) for s in dispatch
                ),
                "compute_seconds": sum(
                    s.attrs.get("compute_seconds", 0.0) for s in dispatch
                ),
                "request_bytes": int(
                    sum(s.attrs.get("request_bytes", 0) for s in dispatch)
                ),
                "reply_bytes": int(
                    sum(s.attrs.get("reply_bytes", 0) for s in dispatch)
                ),
            }
        events: dict[str, int] = {}
        for e in self.events:
            events[e.name] = events.get(e.name, 0) + 1
        out["events"] = events
        return out

    def format_summary(self) -> str:
        """Human-readable rendering of :meth:`summary`."""
        info = self.summary()
        lines = ["trace summary:"]
        for name in sorted(info["spans"]):
            agg = info["spans"][name]
            lines.append(
                f"  {name:<12s} {agg['count']:>5d} spans  "
                f"{agg['total_seconds']:.4f} s total"
            )
        disp = info.get("dispatch")
        if disp:
            lines.append(
                "  dispatch breakdown: "
                f"send {disp['send_seconds']:.4f} s, "
                f"queue-wait {disp['queue_wait_seconds']:.4f} s, "
                f"compute {disp['compute_seconds']:.4f} s, "
                f"{disp['request_bytes']} B out / {disp['reply_bytes']} B in"
            )
        if info["events"]:
            rendered = ", ".join(
                f"{name}×{count}" for name, count in sorted(info["events"].items())
            )
            lines.append(f"  events: {rendered}")
        return "\n".join(lines)


def _json_default(obj: Any) -> Any:
    """Fallback for numpy scalars and other non-JSON-native attributes."""
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


@dataclass(frozen=True)
class TraceInterval:
    """One busy interval of one processor."""

    proc: int  # 1-based, matching the paper
    start: float
    end: float
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


def build_trace(
    metrics: RunMetrics, cost_model: CostModel
) -> tuple[list[TraceInterval], float]:
    """``(intervals, makespan)`` of the BSP schedule implied by a run.

    Within each superstep every processor starts at the superstep's
    begin time and works for ``work_p · cell_cost``; the superstep ends
    when the slowest processor plus communication/barrier costs are
    done (all processors then resynchronize — idle time is the gap to
    the superstep end).
    """
    intervals: list[TraceInterval] = []
    clock = 0.0
    for step in metrics.supersteps:
        backward = step.resolved_phase() == "backward"
        cell = cost_model.traceback_cell_cost if backward else cost_model.cell_cost
        for p, work in enumerate(step.work, start=1):
            if work > 0:
                intervals.append(
                    TraceInterval(
                        proc=p,
                        start=clock,
                        end=clock + work * cell,
                        label=step.label,
                    )
                )
        clock += cost_model.superstep_time(
            step.critical_work, step.comm, backward=backward
        )
    return intervals, clock


def utilization(metrics: RunMetrics, cost_model: CostModel) -> list[float]:
    """Per-processor busy fraction of the total makespan."""
    intervals, makespan = build_trace(metrics, cost_model)
    busy = [0.0] * metrics.num_procs
    for iv in intervals:
        busy[iv.proc - 1] += iv.duration
    if makespan <= 0:
        return [0.0] * metrics.num_procs
    return [b / makespan for b in busy]


def render_gantt(
    metrics: RunMetrics,
    cost_model: CostModel,
    *,
    columns: int = 80,
) -> str:
    """ASCII Gantt chart: one row per processor, time left to right.

    Busy time is drawn with a character per superstep kind
    (``F`` forward, ``x`` fix-up, ``o`` objective, ``B`` backward,
    ``b`` backward fix-up); idle time with ``.``.
    """
    if columns < 10:
        raise ValueError("need at least 10 columns")
    intervals, makespan = build_trace(metrics, cost_model)
    if makespan <= 0:
        return "(empty trace)"
    glyphs = {
        "forward": "F",
        "fixup": "x",
        "objective": "o",
        "backward": "B",
        "bwd-fixup": "b",
        "partial-products": "M",
        "prefix-scan": "s",
        "re-sweep": "r",
    }

    def glyph(label: str) -> str:
        for key, g in glyphs.items():
            if label.startswith(key):
                return g
        return "#"

    rows = []
    scale = columns / makespan
    for p in range(1, metrics.num_procs + 1):
        row = ["."] * columns
        for iv in intervals:
            if iv.proc != p:
                continue
            lo = int(iv.start * scale)
            hi = max(lo + 1, int(iv.end * scale))
            g = glyph(iv.label)
            for c in range(lo, min(hi, columns)):
                row[c] = g
        rows.append(f"P{p:<3d} |" + "".join(row) + "|")
    util = utilization(metrics, cost_model)
    rows.append(
        "util  "
        + " ".join(f"P{p + 1}={u:.0%}" for p, u in enumerate(util))
    )
    rows.append(f"makespan = {makespan:.3e} s")
    return "\n".join(rows)
