"""Per-processor work and communication accounting.

The parallel LTDP algorithm (paper Figs 4 and 5) is bulk-synchronous:
an initial pass, then fix-up iterations, each separated by barriers.
While it runs, it records a :class:`SuperstepRecord` per superstep with
exact per-processor work (cells computed) and the communication events
(boundary-vector sends).  A :class:`RunMetrics` aggregates records and
derives the quantities the evaluation plots: critical-path work, total
work, fix-up iteration count, per-processor convergence stages.

These are *measurements of the real execution*, not estimates — the
cost model only converts them to seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "CommEvent",
    "SuperstepRecord",
    "RunMetrics",
    "PHASE_FORWARD",
    "PHASE_BACKWARD",
    "PHASE_OBJECTIVE",
    "RECORD_PHASES",
    "TRACE_PHASES",
    "TRACE_SPAN_NAMES",
    "KNOWN_LABEL_PREFIXES",
]

#: Canonical phase tags.  ``phase`` decides which per-cell cost the cost
#: model applies (forward ``cell_cost`` vs backward ``traceback_cell_cost``).
PHASE_FORWARD = "forward"
PHASE_BACKWARD = "backward"
#: Tracer-only phase: the objective scan between forward and backward.
#: It never appears on a :class:`SuperstepRecord` (objective supersteps
#: are forward-priced) but is a legal ``phase`` span attribute.
PHASE_OBJECTIVE = "objective"

#: Legal values of :attr:`SuperstepRecord.phase`.  This set — not ad-hoc
#: string literals — is the vocabulary the cost model prices; the static
#: checker (``repro lint``, rule REP004) enforces membership at the
#: construction sites.
RECORD_PHASES = frozenset({PHASE_FORWARD, PHASE_BACKWARD})

#: Legal ``phase`` attributes on tracer spans (superset of
#: :data:`RECORD_PHASES`: the objective scan is traced but not priced).
TRACE_PHASES = frozenset({PHASE_FORWARD, PHASE_OBJECTIVE, PHASE_BACKWARD})

#: Legal tracer span names.  ``phase``/``superstep``/``compute``/
#: ``dispatch`` are the classic superstep-loop spans; ``runner.pull``
#: and ``program.instr`` are the runner-layer spans (one per queue pull
#: and one per executed instruction).  The static checker (REP004)
#: enforces membership at literal ``tracer.span``/``add_span`` sites so
#: a new layer cannot introduce spans that trace summaries and the
#: bench harness' coverage check silently ignore.
#: ``serve.request`` / ``serve.batch`` are the serving layer's spans
#: (one per served request, one per same-shape batch).
TRACE_SPAN_NAMES = frozenset(
    {
        "phase",
        "superstep",
        "compute",
        "dispatch",
        "runner.pull",
        "program.instr",
        "serve.request",
        "serve.batch",
    }
)

#: Label prefixes with a known phase, used only as a fallback for records
#: built without an explicit ``phase`` (hand-rolled metrics in tests/demos).
_FORWARD_LABEL_PREFIXES = (
    "forward",
    "fixup",
    "repair",
    "objective",
    "partial-products",
    "prefix-scan",
    "tree-scan",
    "re-sweep",
)
_BACKWARD_LABEL_PREFIXES = ("backward", "bwd")

#: Every label prefix :meth:`SuperstepRecord.resolved_phase` can classify.
#: A record whose label matches none of these MUST set ``phase``
#: explicitly, or pricing raises (and REP004 flags it statically).
KNOWN_LABEL_PREFIXES = _FORWARD_LABEL_PREFIXES + _BACKWARD_LABEL_PREFIXES


@dataclass(frozen=True)
class CommEvent:
    """One point-to-point message (magenta arrows in paper Figs 4/5)."""

    src: int
    dst: int
    num_bytes: int


@dataclass
class SuperstepRecord:
    """Work and messages of one barrier-delimited superstep.

    Attributes
    ----------
    label:
        ``"forward"``, ``"fixup[k]"``, ``"backward"``, ``"bwd-fixup[k]"``.
    work:
        ``work[p]`` = cells (or traceback steps) processor ``p`` computed
        in this superstep.  Length = number of processors.
    comm:
        Messages sent during (logically: at the start of) the superstep.
    wall_seconds:
        Real elapsed time of this superstep on the executing runtime
        (barrier to barrier, as measured by the driver).  Unlike
        ``work`` — which feeds the simulated BSP clock — this is actual
        wall-clock, so benchmark files can track genuine speedup and
        per-superstep runtime overhead.  0.0 when not measured.
    phase:
        ``"forward"`` (priced at ``cell_cost``) or ``"backward"``
        (priced at ``traceback_cell_cost``).  The engine always sets
        this explicitly; an empty value falls back to classifying the
        label by prefix and **raises** on labels it does not recognise —
        an unanticipated superstep kind must never be priced silently.
    step:
        Solve-global superstep number from the instruction program's
        counter (1-based), correlating this record with trace span
        ``superstep=`` attributes and instruction ``step`` fields.
        0 for records produced outside the program (e.g. the serial
        backward fallback's accounting-only record).
    """

    label: str
    work: list[float]
    comm: list[CommEvent] = field(default_factory=list)
    wall_seconds: float = 0.0
    phase: str = ""
    step: int = 0

    def resolved_phase(self) -> str:
        """The record's phase, validated; inferred from the label if unset.

        Raises :class:`ValueError` on an unknown phase value or — when
        ``phase`` is empty — on a label whose prefix is not in the known
        forward/backward tables, so miscounted work is loud, not silent.
        """
        if self.phase:
            if self.phase not in RECORD_PHASES:
                raise ValueError(
                    f"superstep {self.label!r} has unknown phase "
                    f"{self.phase!r}; expected {PHASE_FORWARD!r} or "
                    f"{PHASE_BACKWARD!r}"
                )
            return self.phase
        if self.label.startswith(_BACKWARD_LABEL_PREFIXES):
            return PHASE_BACKWARD
        if self.label.startswith(_FORWARD_LABEL_PREFIXES):
            return PHASE_FORWARD
        raise ValueError(
            f"superstep label {self.label!r} carries no explicit phase and "
            "matches no known label prefix; set SuperstepRecord.phase to "
            "'forward' or 'backward' so the cost model prices it correctly"
        )

    @property
    def critical_work(self) -> float:
        """The slowest processor's work — the superstep's makespan driver."""
        return max(self.work) if self.work else 0.0

    @property
    def total_work(self) -> float:
        return float(sum(self.work))


@dataclass
class RunMetrics:
    """Aggregated accounting for one parallel (or sequential) LTDP run."""

    num_procs: int
    supersteps: list[SuperstepRecord] = field(default_factory=list)
    #: Number of iterations the forward fix-up loop executed (0 when P == 1).
    forward_fixup_iterations: int = 0
    #: Number of iterations the backward fix-up loop executed.
    backward_fixup_iterations: int = 0
    #: For each processor, the count of stages it recomputed in fix-up
    #: before hitting tropical parallelism (summed over iterations).
    fixup_stages: dict[int, int] = field(default_factory=dict)
    #: True when every processor converged in the first fix-up iteration
    #: (the paper's "filled data point" condition in Figs 7, 9, 10).
    converged_first_iteration: bool = True
    #: Per forward fix-up round: processors actually dispatched (the
    #: convergence-aware scheduler drops converged processors whose
    #: input boundary did not change — they do no work, send nothing).
    fixup_dispatched: list[int] = field(default_factory=list)
    #: Per forward fix-up round in delta mode: total §4.7 changed-delta
    #: count across the dispatched boundary messages.
    fixup_changed_deltas: list[int] = field(default_factory=list)
    #: Per backward fix-up round: processors actually dispatched.
    bwd_fixup_dispatched: list[int] = field(default_factory=list)
    #: Problem-size information for throughput computation.
    num_stages: int = 0
    stage_width: int = 0
    #: Fault-tolerance accounting (pool runtime only): dead workers
    #: replaced mid-solve, in-flight dispatches re-sent after a crash,
    #: and journalled supersteps replayed to rebuild resident state.
    worker_respawns: int = 0
    dispatch_retries: int = 0
    replayed_supersteps: int = 0

    # ------------------------------------------------------------------
    def record(self, record: SuperstepRecord) -> None:
        if len(record.work) != self.num_procs:
            raise ValueError(
                f"superstep has {len(record.work)} work entries for "
                f"{self.num_procs} processors"
            )
        self.supersteps.append(record)

    # -- derived quantities --------------------------------------------
    @property
    def critical_path_work(self) -> float:
        """Σ over supersteps of the max per-processor work (BSP makespan)."""
        return float(sum(s.critical_work for s in self.supersteps))

    @property
    def total_work(self) -> float:
        """Σ of all work over all processors — the recomputation overhead shows here."""
        return float(sum(s.total_work for s in self.supersteps))

    @property
    def num_barriers(self) -> int:
        """One barrier terminates each superstep."""
        return len(self.supersteps)

    @property
    def wall_time(self) -> float:
        """Σ of measured real superstep durations (0.0 when unmeasured)."""
        return float(sum(s.wall_seconds for s in self.supersteps))

    def mean_superstep_wall(self) -> float:
        """Average measured wall-clock per superstep — the runtime's
        per-superstep overhead floor once work is small."""
        if not self.supersteps:
            return 0.0
        return self.wall_time / len(self.supersteps)

    @property
    def comm_events(self) -> list[CommEvent]:
        return [e for s in self.supersteps for e in s.comm]

    @property
    def bytes_communicated(self) -> int:
        return sum(e.num_bytes for e in self.comm_events)

    def work_by_processor(self) -> list[float]:
        """Total per-processor work across all supersteps."""
        totals = [0.0] * self.num_procs
        for s in self.supersteps:
            for p, w in enumerate(s.work):
                totals[p] += w
        return totals

    def merged_with(self, others: Iterable["RunMetrics"]) -> "RunMetrics":
        """Concatenate this run's supersteps with subsequent phases' (e.g. backward)."""
        merged = RunMetrics(
            num_procs=self.num_procs,
            supersteps=list(self.supersteps),
            forward_fixup_iterations=self.forward_fixup_iterations,
            backward_fixup_iterations=self.backward_fixup_iterations,
            fixup_stages=dict(self.fixup_stages),
            converged_first_iteration=self.converged_first_iteration,
            fixup_dispatched=list(self.fixup_dispatched),
            fixup_changed_deltas=list(self.fixup_changed_deltas),
            bwd_fixup_dispatched=list(self.bwd_fixup_dispatched),
            num_stages=self.num_stages,
            stage_width=self.stage_width,
            worker_respawns=self.worker_respawns,
            dispatch_retries=self.dispatch_retries,
            replayed_supersteps=self.replayed_supersteps,
        )
        for other in others:
            if other.num_procs != merged.num_procs:
                raise ValueError("cannot merge metrics with different processor counts")
            merged.supersteps.extend(other.supersteps)
            merged.forward_fixup_iterations += other.forward_fixup_iterations
            merged.backward_fixup_iterations += other.backward_fixup_iterations
            for p, stages in other.fixup_stages.items():
                merged.fixup_stages[p] = merged.fixup_stages.get(p, 0) + stages
            merged.converged_first_iteration &= other.converged_first_iteration
            merged.fixup_dispatched.extend(other.fixup_dispatched)
            merged.fixup_changed_deltas.extend(other.fixup_changed_deltas)
            merged.bwd_fixup_dispatched.extend(other.bwd_fixup_dispatched)
            merged.worker_respawns += other.worker_respawns
            merged.dispatch_retries += other.dispatch_retries
            merged.replayed_supersteps += other.replayed_supersteps
        return merged
