"""Executors: run one task per virtual processor within a superstep.

The parallel LTDP algorithm expresses each superstep as a list of
closures, one per participating processor, with all cross-processor
inputs snapshotted *before* the superstep (BSP semantics — this is what
the barriers in paper Figs 4/5 guarantee).  Executors therefore never
need locks; they only differ in where the closures run:

- :class:`SerialExecutor` — runs them in-line, in processor order.
  Deterministic; the default for the simulated cluster.
- :class:`ThreadExecutor` — a thread pool.  Real concurrency for
  NumPy-heavy kernels (NumPy releases the GIL inside ufuncs), real
  barrier behaviour; bounded by the GIL for Python-level work.
- :class:`ProcessExecutor` — forked worker processes, one per task
  (capped at ``max_workers`` concurrent forks).  True parallelism on
  multi-core hosts.  Uses ``fork`` so closures and NumPy arrays are
  inherited, with results returned over pipes.
- :class:`~repro.machine.pool.PoolProcessExecutor` (in
  :mod:`repro.machine.pool`) — *persistent* worker processes spawned
  once and reused across supersteps; the LTDP engine additionally keeps
  per-processor stage state resident in them.

All executors produce bit-identical results (the test-suite checks
this); on a single-core host only the simulated clock shows speedup.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, fields
from typing import Any, Callable, Sequence

from repro.exceptions import ExecutorError

__all__ = [
    "Executor",
    "ExecutorCapabilities",
    "executor_capability",
    "CAPABILITY_NAMES",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "EXECUTOR_KINDS",
]

#: Executor kinds :func:`get_executor` understands (CLI ``--executor``).
EXECUTOR_KINDS = ("serial", "thread", "process", "pool")

Task = Callable[[], Any]


@dataclass(frozen=True)
class ExecutorCapabilities:
    """Typed capability declaration for an executor.

    Engine layers select fast paths by *asking* an executor what it
    supports.  The previous convention —
    ``getattr(executor, "supports_resident_state", False)`` — meant a
    typoed capability name silently read as "unsupported" and quietly
    disabled the fast path.  Capabilities are now a closed set of typed
    fields; probing an undeclared name raises
    (:func:`executor_capability`), so a typo is a loud error instead of
    a silent slowdown.

    Fields
    ------
    resident_state:
        Workers persist across supersteps and can keep per-processor
        stage state resident (the pool runtime's contract).
    block_kernels:
        Superstep specs may execute preplanned stage-*block* kernels
        (the :mod:`repro.kernels` tier) instead of the per-stage
        interpreted sweep.  True for every shipped executor — the block
        kernels are ordinary spec-body code — but declared so the tier
        is selected through the same mechanism as ``resident_state``
        and can be switched off per-executor.
    """

    resident_state: bool = False
    block_kernels: bool = True


#: The closed set of declarable capability names.
CAPABILITY_NAMES: tuple[str, ...] = tuple(
    f.name for f in fields(ExecutorCapabilities)
)


def executor_capability(executor: object, name: str) -> bool:
    """Loud capability probe: typos and undeclared executors raise.

    ``name`` must be one of :data:`CAPABILITY_NAMES` and ``executor``
    must declare an :class:`ExecutorCapabilities` (every
    :class:`Executor` subclass inherits a default declaration).  Both
    failure modes raise :class:`ExecutorError` — never a silent False.
    """
    if name not in CAPABILITY_NAMES:
        raise ExecutorError(
            f"unknown executor capability {name!r}; declared capabilities "
            f"are: {', '.join(CAPABILITY_NAMES)}"
        )
    caps = getattr(executor, "capabilities", None)
    if not isinstance(caps, ExecutorCapabilities):
        raise ExecutorError(
            f"{type(executor).__name__} does not declare ExecutorCapabilities; "
            "executors must provide a `capabilities` attribute (Executor "
            "subclasses inherit a default declaration)"
        )
    return bool(getattr(caps, name))


class Executor(ABC):
    """Runs one closure per virtual processor and returns their results in order.

    Lifecycle contract: after :meth:`close` returns, the executor is
    permanently closed — :meth:`run_superstep` raises
    :class:`ExecutorError` deterministically (no hang, no respawned
    worker).  The serve layer's drain path relies on this: a request
    racing shutdown gets a clean error instead of dispatching into a
    half-torn-down transport.
    """

    #: Typed capability declaration; subclasses override to advertise
    #: fast paths (see :class:`ExecutorCapabilities`).
    capabilities: ExecutorCapabilities = ExecutorCapabilities()

    @abstractmethod
    def run_superstep(self, tasks: Sequence[Task]) -> list[Any]:
        """Execute all ``tasks`` and return ``[task() for task in tasks]``.

        Raises :class:`ExecutorError` if the executor has been closed.
        """

    def capability(self, name: str) -> bool:
        """Probe one declared capability; unknown names raise loudly."""
        return executor_capability(self, name)

    @property
    def supports_resident_state(self) -> bool:
        """Legacy duck-typed probe, now derived from :attr:`capabilities`."""
        return self.capability("resident_state")

    # -- closed-state guard ----------------------------------------------
    # Lazy attribute (like the teardown hooks below): ABC subclasses
    # don't all chain __init__.

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run; dispatching then raises."""
        return bool(getattr(self, "_closed", False))

    def _check_open(self) -> None:
        """Raise :class:`ExecutorError` when the executor is closed."""
        if getattr(self, "_closed", False):
            raise ExecutorError(
                f"{type(self).__name__} is closed: run_superstep after "
                "close() is an error (create a new executor to dispatch "
                "again)"
            )

    # -- teardown hooks --------------------------------------------------
    # Higher layers that park threads on this executor's transport (the
    # runner crew pulling from a work queue) register a hook so close()
    # drains them *before* the transport disappears underneath them.
    # Lazy storage: ABC subclasses don't all chain __init__.

    def add_teardown_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook`` to run first when this executor closes."""
        hooks = getattr(self, "_teardown_hooks", None)
        if hooks is None:
            hooks = []
            self._teardown_hooks = hooks
        hooks.append(hook)

    def remove_teardown_hook(self, hook: Callable[[], None]) -> None:
        """Deregister ``hook`` (no-op when absent — finish() after close())."""
        hooks = getattr(self, "_teardown_hooks", None)
        if hooks and hook in hooks:
            hooks.remove(hook)

    def _drain_teardown_hooks(self) -> None:
        """Pop and run every registered hook; called at the top of close()."""
        hooks = getattr(self, "_teardown_hooks", None)
        while hooks:
            hook = hooks.pop()
            try:
                hook()
            except Exception:  # repro: noqa[REP005]: teardown must reach the transport shutdown even if a hook fails
                pass

    def close(self) -> None:
        """Release any worker resources and mark the executor closed.

        Idempotent; subsequent :meth:`run_superstep` calls raise
        :class:`ExecutorError`.
        """
        self._drain_teardown_hooks()
        self._closed = True

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialExecutor(Executor):
    """Deterministic in-line execution (the simulated cluster's engine)."""

    def run_superstep(self, tasks: Sequence[Task]) -> list[Any]:
        self._check_open()
        return [task() for task in tasks]


class ThreadExecutor(Executor):
    """Thread-pool execution; real concurrency for GIL-releasing kernels.

    Error contract (matching :class:`ProcessExecutor`): a raising task
    cancels the superstep's not-yet-started siblings, drains the ones
    already running, and surfaces as :class:`ExecutorError` naming both
    the 0-based task index and the 1-based processor slot it maps to,
    with the original exception chained.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        self._pool = ThreadPoolExecutor(max_workers=max_workers)

    def run_superstep(self, tasks: Sequence[Task]) -> list[Any]:
        self._check_open()
        futures = [self._pool.submit(task) for task in tasks]
        results: list[Any] = []
        for idx, future in enumerate(futures):
            try:
                results.append(future.result())
            except Exception as exc:  # repro: noqa[REP005]: any task error must become ExecutorError below, preserving barrier semantics
                # Cancel whatever has not started, then drain the rest so
                # no sibling task is still mutating state when we raise
                # (the barrier must stay a barrier even on failure).
                for pending in futures[idx + 1 :]:
                    pending.cancel()
                futures_wait(futures)
                raise ExecutorError(
                    f"task {idx} (processor {idx + 1}) failed: {exc!r}"
                ) from exc
        return results

    def close(self) -> None:
        # Drain runner crews first: a crew thread blocked on the work
        # queue must observe abandonment before the pool stops accepting
        # work, or shutdown(wait=True) could wait on tasks that never
        # finish.
        self._drain_teardown_hooks()
        self._pool.shutdown(wait=True)
        self._closed = True


def _child_main(conn, task: Task) -> None:  # pragma: no cover - runs in fork
    try:
        result = task()
        conn.send_bytes(pickle.dumps((True, result), protocol=pickle.HIGHEST_PROTOCOL))
    except BaseException as exc:  # repro: noqa[REP005]: forked child must report every failure (incl. KeyboardInterrupt) over the pipe
        try:
            conn.send_bytes(pickle.dumps((False, repr(exc))))
        except Exception:  # repro: noqa[REP005]: parent may already have closed the pipe; child exits either way
            pass
    finally:
        conn.close()


class ProcessExecutor(Executor):
    """Fork-per-task execution: true multi-core parallelism.

    Closures are inherited through ``fork`` (no pickling of the task),
    results come back pickled over a pipe.  ``max_workers`` caps how
    many forked children are alive at once (default: one per task);
    supersteps with more tasks run them in ``max_workers``-sized waves.
    Not available on platforms without ``fork`` (Windows); raises
    :class:`ExecutorError` there.
    """

    def __init__(self, max_workers: int | None = None) -> None:
        if not hasattr(os, "fork"):
            raise ExecutorError("ProcessExecutor requires a fork-capable platform")
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self._ctx = mp.get_context("fork")

    def run_superstep(self, tasks: Sequence[Task]) -> list[Any]:
        self._check_open()
        limit = self.max_workers or len(tasks) or 1
        results: list[Any] = []
        errors: list[str] = []
        for start in range(0, len(tasks), limit):
            wave = tasks[start : start + limit]
            procs = []
            conns = []
            for task in wave:
                parent_conn, child_conn = self._ctx.Pipe(duplex=False)
                proc = self._ctx.Process(target=_child_main, args=(child_conn, task))
                proc.start()
                child_conn.close()
                procs.append(proc)
                conns.append(parent_conn)
            for offset, (proc, conn) in enumerate(zip(procs, conns)):
                try:
                    ok, payload = pickle.loads(conn.recv_bytes())
                except EOFError:
                    ok, payload = (
                        False,
                        f"worker pid={proc.pid} died without a result",
                    )
                finally:
                    conn.close()
                proc.join()
                if ok:
                    results.append(payload)
                else:
                    errors.append(
                        f"task {start + offset} (processor "
                        f"{start + offset + 1}) failed: {payload}"
                    )
        if errors:
            raise ExecutorError("; ".join(errors))
        return results


def get_executor(kind: str = "serial", **kwargs: Any) -> Executor:
    """Factory: ``"serial"`` | ``"thread"`` | ``"process"`` | ``"pool"``.

    ``thread``, ``process`` and ``pool`` accept ``max_workers``.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(**kwargs)
    if kind == "process":
        return ProcessExecutor(**kwargs)
    if kind == "pool":
        from repro.machine.pool import PoolProcessExecutor

        return PoolProcessExecutor(**kwargs)
    raise ValueError(f"unknown executor kind {kind!r}")
