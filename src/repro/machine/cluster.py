"""`SimCluster`: the machine description the benchmarks sweep over.

A :class:`SimCluster` bundles a processor count, an executor and a
:class:`~repro.machine.cost_model.CostModel`.  Benchmarks instantiate
one per point on the x-axis ("Number of Cores" in paper Figs 7-11),
run the real parallel algorithm through it, and read off simulated
time / speedup / efficiency.

Presets mirror the paper's two testbeds:

- :meth:`SimCluster.stampede` — distributed-memory: higher message
  latency, cheap plentiful cores (paper §6.2, Dell C8220 + FDR IB);
- :meth:`SimCluster.shared_memory` — the 40-core Xeon: much cheaper
  barriers/messages (cache-line traffic), used for the Fig 11
  wavefront comparison where barrier cost is decisive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.cost_model import CostModel
from repro.machine.executor import Executor, SerialExecutor, get_executor
from repro.machine.metrics import RunMetrics

__all__ = ["SimCluster"]


@dataclass
class SimCluster:
    """A virtual parallel machine: P processors + cost parameters + executor."""

    num_procs: int
    cost_model: CostModel = field(default_factory=CostModel)
    executor: Executor = field(default_factory=SerialExecutor)

    def __post_init__(self) -> None:
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")

    # ------------------------------------------------------------------
    @classmethod
    def stampede(cls, num_procs: int, *, cell_cost: float = 2e-9) -> "SimCluster":
        """Distributed-memory preset (MPI over FDR InfiniBand)."""
        return cls(
            num_procs=num_procs,
            cost_model=CostModel(
                cell_cost=cell_cost,
                barrier_latency=10e-6,
                comm_latency=2e-6,
                comm_byte_cost=1.0 / 6e9,
            ),
        )

    @classmethod
    def shared_memory(cls, num_procs: int, *, cell_cost: float = 2e-9) -> "SimCluster":
        """Shared-memory preset (40-core Xeon; cheap barriers)."""
        return cls(
            num_procs=num_procs,
            cost_model=CostModel(
                cell_cost=cell_cost,
                barrier_latency=1.5e-6,
                comm_latency=0.3e-6,
                comm_byte_cost=1.0 / 20e9,
            ),
        )

    # ------------------------------------------------------------------
    def time_of(self, metrics: RunMetrics) -> float:
        """Simulated wall-clock seconds for a recorded run on this machine."""
        return self.cost_model.run_time(metrics)

    def sequential_time(self, num_cells: float, *, traceback_steps: float = 0.0) -> float:
        return self.cost_model.sequential_time(
            num_cells, traceback_steps=traceback_steps
        )

    def with_procs(self, num_procs: int) -> "SimCluster":
        """Same machine parameters, different processor count."""
        return SimCluster(
            num_procs=num_procs, cost_model=self.cost_model, executor=self.executor
        )

    def with_executor(
        self,
        executor: Executor | str,
        *,
        max_workers: int | None = None,
    ) -> "SimCluster":
        """Same machine parameters, different superstep runtime.

        ``executor`` is an :class:`Executor` instance or a
        :func:`~repro.machine.executor.get_executor` kind
        (``"serial" | "thread" | "process" | "pool"``); ``max_workers``
        caps the real OS workers for the non-serial kinds.  The caller
        owns the executor's lifecycle — call :meth:`close` (or the
        executor's own ``close``) when done with a process-backed one.
        """
        if isinstance(executor, str):
            kwargs = {} if executor == "serial" else {"max_workers": max_workers}
            executor = get_executor(executor, **kwargs)
        return SimCluster(
            num_procs=self.num_procs, cost_model=self.cost_model, executor=executor
        )

    def close(self) -> None:
        """Release the executor's worker resources (idempotent)."""
        self.executor.close()
