"""Compiled-backend resolution for the kernel tier.

Three interchangeable implementations of the two block primitives
(``viterbi_block`` — branch-major ACS over a trellis stage-block;
``banded_block`` — banded alignment rows with the left-gap prefix
scan), in preference order:

1. **numba** — auto-detected; JIT builds of the same loops.  No
   ``fastmath``: every arithmetic op is the IEEE double op the dense
   NumPy kernels perform, so results are bit-identical.
2. **cc** — the embedded C source below compiled on first use with the
   system C compiler (``-O2``, *never* ``-ffast-math``) and loaded via
   ``ctypes``.  Build artifacts are cached on disk keyed by a source
   hash; concurrent builders race benignly through ``os.replace``.
3. **numpy** — no compiled primitives; kernels fall back to their
   blocked pure-NumPy paths (still several stages per Python dispatch).

``REPRO_KERNEL_BACKEND`` (``numba`` / ``cc`` / ``numpy``) pins the
choice for tests and CI; an unavailable pinned backend resolves to
``numpy``, never to an error — the tier degrades, it does not fail.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["Backend", "get_backend", "reset_backend_cache"]

#: The block primitives, shared verbatim by the cc build and (as the
#: reference semantics) the numba build.  Plain IEEE double arithmetic;
#: tie-breaking matches the dense kernels exactly (Viterbi: branch 0 on
#: equal candidates = NumPy argmax; banded: diagonal wins ties, scan
#: keeps the earliest running max).
_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Viterbi stage-block: branch-major ACS.
   v0: (S,) input; M: (k, 2S) branch metrics; perm: (2S,) predecessor
   permutation; pred0: (S,) branch-0 predecessor states (branch 1 is
   pred0+1, asserted at plan time).  out_s: (k, S); out_p: (k, S). */
void viterbi_block(const double *v0, const double *M, const int64_t *perm,
                   const int64_t *pred0, int64_t k, int64_t S,
                   double *out_s, int64_t *out_p)
{
    const double *vin = v0;
    for (int64_t t = 0; t < k; t++) {
        const double *m = M + t * 2 * S;
        double *os = out_s + t * S;
        int64_t *op = out_p + t * S;
        for (int64_t s = 0; s < S; s++) {
            double c0 = vin[perm[s]] + m[s];
            double c1 = vin[perm[S + s]] + m[S + s];
            if (c1 > c0) { os[s] = c1; op[s] = pred0[s] + 1; }
            else         { os[s] = c0; op[s] = pred0[s]; }
        }
        vin = os;
    }
}

/* Banded alignment stage-block (LCS / NW, linear gaps).
   Geometry per row r (int64, stride 8):
     [0] W    output band width
     [1] u0   up-move slice start in the output band
     [2] u1   up-move slice stop (exclusive)
     [3] us0  up-move source start in the input band
     [4] d0   diag-move slice start in the output band
     [5] d1   diag-move slice stop (exclusive)
     [6] vs0  diag-move source start in the input band
     [7]      pad (alignment)
   MS: (k, Wmax) match scores, row r valid on [d0, d1).
   Outputs are (k, Wmax) row-major padded; optional capture planes
   entry/epred/cm/estar (NULL to skip) feed BandedStageState. */
void banded_block(const double *v0, int64_t k, int64_t Wmax,
                  const int64_t *geom, const double *MS,
                  double gu, double g, double neg_inf,
                  double *out_s, int64_t *out_p,
                  double *entry_out, int64_t *epred_out,
                  double *cm_out, int64_t *estar_out,
                  double *scratch_entry, int64_t *scratch_epred)
{
    const double *vin = v0;
    for (int64_t r = 0; r < k; r++) {
        const int64_t *gm = geom + r * 8;
        int64_t W = gm[0], u0 = gm[1], u1 = gm[2], us0 = gm[3];
        int64_t d0 = gm[4], d1 = gm[5], vs0 = gm[6];
        const double *ms = MS + r * Wmax;
        double *entry = entry_out ? entry_out + r * Wmax : scratch_entry;
        int64_t *epred = epred_out ? epred_out + r * Wmax : scratch_epred;
        for (int64_t j = 0; j < W; j++) { entry[j] = neg_inf; epred[j] = 0; }
        for (int64_t j = u0; j < u1; j++) {
            entry[j] = vin[us0 + (j - u0)] - gu;
            epred[j] = us0 + (j - u0);
        }
        for (int64_t j = d0; j < d1; j++) {
            double dv = vin[vs0 + (j - d0)] + ms[j];
            if (dv >= entry[j]) { entry[j] = dv; epred[j] = vs0 + (j - d0); }
        }
        double *os = out_s + r * Wmax;
        int64_t *op = out_p + r * Wmax;
        double cm = 0.0;
        int64_t es = 0;
        for (int64_t j = 0; j < W; j++) {
            double gj = g * (double)j;
            double t = entry[j] + gj;
            if (j == 0) { cm = t; es = 0; }
            else if (t > cm) { cm = t; es = j; }
            if (cm_out) cm_out[r * Wmax + j] = cm;
            if (estar_out) estar_out[r * Wmax + j] = es;
            os[j] = cm - gj;
            op[j] = epred[es];
        }
        vin = os;
    }
}
"""

_F64 = ctypes.POINTER(ctypes.c_double)
_I64 = ctypes.POINTER(ctypes.c_int64)


@dataclass(frozen=True)
class Backend:
    """Resolved block primitives; ``None`` entries mean pure-NumPy."""

    kind: str  # "numba" | "cc" | "numpy"
    viterbi_block: object = None
    banded_block: object = None


def _f64p(a: np.ndarray):
    return a.ctypes.data_as(_F64)


def _i64p(a: np.ndarray):
    return a.ctypes.data_as(_I64)


def _wrap_cc(lib: ctypes.CDLL) -> Backend:
    cvb = lib.viterbi_block
    cvb.restype = None
    cvb.argtypes = [_F64, _F64, _I64, _I64, ctypes.c_int64, ctypes.c_int64, _F64, _I64]
    cbb = lib.banded_block
    cbb.restype = None
    cbb.argtypes = [
        _F64, ctypes.c_int64, ctypes.c_int64, _I64, _F64,
        ctypes.c_double, ctypes.c_double, ctypes.c_double,
        _F64, _I64, _F64, _I64, _F64, _I64, _F64, _I64,
    ]

    def viterbi_block(v0, M, perm, pred0, out_s, out_p):
        k, S = out_s.shape
        cvb(_f64p(v0), _f64p(M), _i64p(perm), _i64p(pred0), k, S, _f64p(out_s), _i64p(out_p))

    def banded_block(v0, geom, MS, gu, g, neg_inf, out_s, out_p,
                     entry_out=None, epred_out=None, cm_out=None, estar_out=None):
        k, Wmax = out_s.shape
        if entry_out is None:
            scratch_e = np.empty(Wmax, dtype=np.float64)
            scratch_p = np.empty(Wmax, dtype=np.int64)
        else:
            scratch_e = scratch_p = None
        null_f, null_i = ctypes.cast(None, _F64), ctypes.cast(None, _I64)
        cbb(
            _f64p(v0), k, Wmax, _i64p(geom), _f64p(MS),
            gu, g, neg_inf, _f64p(out_s), _i64p(out_p),
            _f64p(entry_out) if entry_out is not None else null_f,
            _i64p(epred_out) if epred_out is not None else null_i,
            _f64p(cm_out) if cm_out is not None else null_f,
            _i64p(estar_out) if estar_out is not None else null_i,
            _f64p(scratch_e) if scratch_e is not None else null_f,
            _i64p(scratch_p) if scratch_p is not None else null_i,
        )

    return Backend(kind="cc", viterbi_block=viterbi_block, banded_block=banded_block)


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNEL_CACHE", "").strip()
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-kernels"


def _try_cc() -> Backend | None:
    cc = shutil.which(os.environ.get("CC", "").strip() or "cc") or shutil.which("gcc")
    if cc is None:
        return None
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"repro_kernels_{digest}.so"
    try:
        if not so_path.exists():
            cache.mkdir(parents=True, exist_ok=True)
            src = cache / f"repro_kernels_{digest}.c"
            src.write_text(_C_SOURCE)
            # Unique build target per process; the final rename is atomic,
            # so concurrent pool workers race benignly.
            tmp = cache / f".build_{digest}_{os.getpid()}.so"
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", "-o", str(tmp), str(src)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp, so_path)
        return _wrap_cc(ctypes.CDLL(str(so_path)))
    except (OSError, subprocess.SubprocessError):
        return None


def _try_numba() -> Backend | None:
    try:
        import numba
    except ImportError:
        return None
    try:
        @numba.njit(cache=False, fastmath=False)
        def viterbi_block(v0, M, perm, pred0, out_s, out_p):  # pragma: no cover - needs numba
            k, S = out_s.shape
            vin = v0
            for t in range(k):
                for s in range(S):
                    c0 = vin[perm[s]] + M[t, s]
                    c1 = vin[perm[S + s]] + M[t, S + s]
                    if c1 > c0:
                        out_s[t, s] = c1
                        out_p[t, s] = pred0[s] + 1
                    else:
                        out_s[t, s] = c0
                        out_p[t, s] = pred0[s]
                vin = out_s[t]

        @numba.njit(cache=False, fastmath=False)
        def _banded_core(v0, geom, MS, gu, g, neg_inf, out_s, out_p,
                         entry_pl, epred_pl, cm_pl, estar_pl, capture):  # pragma: no cover - needs numba
            k, Wmax = out_s.shape
            vin = v0
            for r in range(k):
                W, u0, u1, us0, d0, d1, vs0 = (
                    geom[r, 0], geom[r, 1], geom[r, 2], geom[r, 3],
                    geom[r, 4], geom[r, 5], geom[r, 6],
                )
                entry = entry_pl[r] if capture else entry_pl[0]
                epred = epred_pl[r] if capture else epred_pl[0]
                for j in range(W):
                    entry[j] = neg_inf
                    epred[j] = 0
                for j in range(u0, u1):
                    entry[j] = vin[us0 + (j - u0)] - gu
                    epred[j] = us0 + (j - u0)
                for j in range(d0, d1):
                    dv = vin[vs0 + (j - d0)] + MS[r, j]
                    if dv >= entry[j]:
                        entry[j] = dv
                        epred[j] = vs0 + (j - d0)
                cm = 0.0
                es = 0
                for j in range(W):
                    gj = g * float(j)
                    t = entry[j] + gj
                    if j == 0 or t > cm:
                        cm = t
                        es = j
                    if capture:
                        cm_pl[r, j] = cm
                        estar_pl[r, j] = es
                    out_s[r, j] = cm - gj
                    out_p[r, j] = epred[es]
                vin = out_s[r]

        def banded_block(v0, geom, MS, gu, g, neg_inf, out_s, out_p,
                         entry_out=None, epred_out=None, cm_out=None, estar_out=None):  # pragma: no cover - needs numba
            k, Wmax = out_s.shape
            capture = entry_out is not None
            if not capture:
                entry_out = np.empty((1, Wmax), dtype=np.float64)
                epred_out = np.empty((1, Wmax), dtype=np.int64)
                cm_out = np.empty((1, 1), dtype=np.float64)
                estar_out = np.empty((1, 1), dtype=np.int64)
            _banded_core(v0, geom, MS, gu, g, neg_inf, out_s, out_p,
                         entry_out, epred_out, cm_out, estar_out, capture)

        # Force compilation now so a broken numba install degrades here,
        # not inside a worker mid-solve.
        _v = np.zeros(1)
        viterbi_block(_v, np.zeros((1, 2)), np.zeros(2, np.int64),
                      np.zeros(1, np.int64), np.zeros((1, 1)), np.zeros((1, 1), np.int64))
        return Backend(kind="numba", viterbi_block=viterbi_block, banded_block=banded_block)
    except Exception:
        return None


_NUMPY = Backend(kind="numpy")
_RESOLVED: list = []  # one-slot memo; avoids `global` for REP003


def get_backend() -> Backend:
    """The process-wide resolved backend (memoized after first call)."""
    if _RESOLVED:
        return _RESOLVED[0]
    forced = os.environ.get("REPRO_KERNEL_BACKEND", "").strip().lower()
    if forced == "numpy":
        backend = _NUMPY
    elif forced == "numba":
        backend = _try_numba() or _NUMPY
    elif forced == "cc":
        backend = _try_cc() or _NUMPY
    elif forced:
        # An unrecognized pin degrades to pure NumPy rather than
        # silently auto-detecting something the caller didn't ask for.
        backend = _NUMPY
    else:
        backend = _try_numba() or _try_cc() or _NUMPY
    _RESOLVED.append(backend)
    return backend


def reset_backend_cache() -> None:
    """Forget the resolved backend (tests re-resolve under a new env)."""
    _RESOLVED.clear()
