"""Stage-block kernel for the Viterbi trellis problems (hard/soft/punctured).

Plan layout: the per-stage ``(S, 2)`` branch metrics become one
contiguous ``(n, 2S)`` matrix in *branch-major* order (column ``b*S+s``
is branch ``b`` into state ``s``), and the predecessor table becomes a
flat gather permutation.  One block dispatch then runs the whole
add-compare-select recurrence ``k`` stages deep.

The radix-2 trellis identity ``pred[s, 1] == pred[s, 0] + 1`` (checked
at plan time, a consequence of the shift-register state update) lets
the kernel emit predecessors as ``pred0[s] + (c1 > c0)`` — the exact
tie-breaking of ``np.argmax`` (branch 0 on equal metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.backend import get_backend
from repro.kernels.base import BlockSweep, StageBlockKernel

__all__ = ["ViterbiBlockKernel"]

#: Conservative magnitude bound under which any-order float64 integer
#: summation is exact (far below 2**53 even after n_sym additions).
_EXACT_SUM_BOUND = float(2**40)


@dataclass
class ViterbiPlan:
    S: int
    n_sym: int
    num_stages: int
    terminated: bool
    perm: np.ndarray  # (2S,) int64 flat predecessor gather
    pred0: np.ndarray  # (S,) int64 branch-0 predecessors
    M: np.ndarray  # (n_sym, 2S) float64 branch metrics, branch-major
    costs: np.ndarray  # (num_stages,) float64 == problem.stage_cost(i)
    integral: bool  # metrics exactly integral and small: pricing is order-free


class ViterbiBlockKernel(StageBlockKernel):
    name = "viterbi-block"
    bit_identity_gate = (
        "plan built only when the trellis satisfies pred[:,1] == pred[:,0]+1 "
        "and the preplanned branch-metric matrix reproduces _branch_metrics "
        "row-for-row; per call the input must be a float64 vector of width S "
        "and the registry cross-checks the first block stage against "
        "apply_stage_with_pred bit-for-bit, falling back to the dense path "
        "otherwise; selector stages always run dense"
    )

    def fingerprint(self, problem) -> tuple:
        parts = [
            type(problem).__name__,
            problem.code.constraint_length,
            tuple(problem.code.generators),
            bool(problem.terminated),
            problem._symbols.tobytes(),
        ]
        llrs = getattr(problem, "_llrs", None)
        if llrs is not None:
            parts.append(llrs.tobytes())
        mask = getattr(problem, "_mask", None)
        if mask is not None:
            parts.append(mask.tobytes())
        return tuple(parts)

    def plan(self, problem):
        pred = problem._pred
        S = int(problem.code.num_states)
        pred0 = np.ascontiguousarray(pred[:, 0], dtype=np.int64)
        if not np.array_equal(pred[:, 1], pred0 + 1):
            return None
        n_sym = int(problem._num_symbol_stages)
        num_stages = int(problem.num_stages)
        if n_sym < 1:
            return None
        M = np.empty((n_sym, 2 * S), dtype=np.float64)
        llrs = getattr(problem, "_llrs", None)
        if llrs is not None:
            # Soft metrics: reuse the dense per-stage matmul verbatim so
            # float summation order inside each metric is untouched.
            for i in range(1, n_sym + 1):
                bm = problem._branch_metrics(i)
                M[i - 1, :S] = bm[:, 0]
                M[i - 1, S:] = bm[:, 1]
        else:
            out = problem._out  # (S, 2, rate) uint8
            sym = problem._symbols  # (n, rate)
            agree = out[None, :, :, :] == sym[:, None, None, :]
            mask = getattr(problem, "_mask", None)
            if mask is not None:
                agree = agree & mask[:, None, None, :]
            bm = agree.sum(axis=3, dtype=np.float64)  # (n, S, 2)
            M[:, :S] = bm[:, :, 0]
            M[:, S:] = bm[:, :, 1]
        costs = np.full(num_stages, 2.0 * S, dtype=np.float64)
        if num_stages > n_sym:
            costs[-1] = float(S)
        # Spot-check the modeled work against the problem's own accounting.
        if costs[0] != problem.stage_cost(1) or costs[-1] != problem.stage_cost(num_stages):
            return None
        integral = bool(
            np.all(M == np.floor(M)) and np.all(np.abs(M) < _EXACT_SUM_BOUND)
        )
        perm = np.concatenate([pred0, pred0 + 1]).astype(np.int64)
        return ViterbiPlan(
            S=S,
            n_sym=n_sym,
            num_stages=num_stages,
            terminated=bool(problem.terminated),
            perm=perm,
            pred0=pred0,
            M=np.ascontiguousarray(M),
            costs=costs,
            integral=integral,
        )

    def run(self, problem, plan, lo, hi, v, *, capture_state=False):
        if capture_state:
            return None  # trellis problems have no §4.7 sparse state
        if lo >= plan.n_sym:
            return None  # selector-only range: dense handles it
        v = np.asarray(v)
        if v.shape != (plan.S,) or v.dtype != np.float64:
            return None
        k = min(hi, plan.n_sym) - lo
        out_s = np.empty((k, plan.S), dtype=np.float64)
        out_p = np.empty((k, plan.S), dtype=np.int64)
        backend = get_backend()
        M = plan.M[lo : lo + k]
        if backend.viterbi_block is not None:
            backend.viterbi_block(
                np.ascontiguousarray(v), M, plan.perm, plan.pred0, out_s, out_p
            )
        else:
            self._run_numpy(plan, M, v, out_s, out_p)
        neg = np.count_nonzero(np.isneginf(out_s), axis=1)
        zero_rows = np.flatnonzero(neg >= plan.S)
        zero_index = int(zero_rows[0]) if zero_rows.size else None
        values = list(out_s)
        preds = list(out_p)
        costs = plan.costs[lo : lo + k]
        if hi > plan.n_sym:
            # Width-1 selector stage of unterminated packets: dense.
            tv, tp = problem.apply_stage_with_pred(plan.num_stages, values[-1])
            values.append(tv)
            preds.append(tp)
            costs = np.concatenate([costs, plan.costs[-1:]])
            if zero_index is None and np.all(np.isneginf(tv)):
                zero_index = k
        return BlockSweep(
            values=values, preds=preds, states=None, costs=costs, zero_index=zero_index
        )

    @staticmethod
    def _run_numpy(plan, M, v, out_s, out_p):
        """Blocked pure-NumPy path: 3 array ops per stage + one
        vectorized predecessor post-pass over the whole block."""
        k, S = out_s.shape
        buf = np.empty(2 * S, dtype=np.float64)
        c0, c1 = buf[:S], buf[S:]
        vin = v
        for t in range(k):
            np.take(vin, plan.perm, out=buf)
            np.add(buf, M[t], out=buf)
            vin = np.maximum(c0, c1, out=out_s[t])
        vin_rows = np.empty((k, S), dtype=np.float64)
        vin_rows[0] = v
        vin_rows[1:] = out_s[:-1]
        cand = vin_rows[:, plan.perm] + M
        choice = cand[:, S:] > cand[:, :S]
        np.add(plan.pred0[None, :], choice, out=out_p)

    def price(self, problem, plan, path):
        if not plan.integral:
            return None
        if path.shape != (plan.num_stages + 1,):
            return None
        j = np.asarray(path[1 : plan.n_sym + 1], dtype=np.int64)
        k = np.asarray(path[: plan.n_sym], dtype=np.int64)
        if j.size and (j.min() < 0 or j.max() >= plan.S):
            return None
        b = k - plan.pred0[j]
        if np.any((b != 0) & (b != 1)):
            return None  # path not realizable branch-by-branch: dense prices it
        s0 = problem.initial_vector()
        t0 = float(s0[int(path[0])])
        if not np.isfinite(t0) or t0 != np.floor(t0):
            return None
        w = plan.M[np.arange(plan.n_sym), b * plan.S + j]
        # Unterminated selector edges weigh exactly 0.0 (see edge_weight),
        # so the trailing stage contributes nothing to the sum.
        return float(t0 + np.sum(w))
