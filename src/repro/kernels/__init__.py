"""Raw-speed kernel tier: block dispatch with a bit-identity gate.

Preplanned contiguous layouts per problem family, vectorized
add-compare-select over whole stage-blocks, an optional compiled
backend (numba or a system C compiler, auto-detected, pure-NumPy
fallback), and an exactness gate on every dispatch.  See
``docs/kernels.md``.
"""

from __future__ import annotations

from repro.kernels.backend import get_backend, reset_backend_cache
from repro.kernels.banded import BandedBlockKernel
from repro.kernels.base import BlockSweep, StageBlockKernel
from repro.kernels.bitparallel_lcs import BitParallelLCSKernel
from repro.kernels.registry import (
    block_sweep,
    kernel_tier_enabled,
    price_path_fast,
    register_kernel,
    registered_kernels,
    reset_plan_cache,
    warm_kernels,
)
from repro.kernels.viterbi import ViterbiBlockKernel

__all__ = [
    "BandedBlockKernel",
    "BitParallelLCSKernel",
    "BlockSweep",
    "StageBlockKernel",
    "ViterbiBlockKernel",
    "block_sweep",
    "get_backend",
    "kernel_tier_enabled",
    "price_path_fast",
    "register_kernel",
    "registered_kernels",
    "reset_backend_cache",
    "reset_plan_cache",
    "warm_kernels",
]


def _register_defaults() -> None:
    from repro.problems.alignment.lcs import LCSProblem
    from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
    from repro.problems.convolutional import (
        PuncturedViterbiDecoderProblem,
        SoftViterbiDecoderProblem,
        ViterbiDecoderProblem,
    )

    # LCS: the promoted Hyyrö bit-parallel sweep first (its row gate is
    # strict, so it mostly serves the initial pass), banded block second.
    register_kernel(LCSProblem, BitParallelLCSKernel())
    register_kernel(LCSProblem, BandedBlockKernel())
    register_kernel(NeedlemanWunschProblem, BandedBlockKernel())
    for viterbi_type in (
        ViterbiDecoderProblem,
        SoftViterbiDecoderProblem,
        PuncturedViterbiDecoderProblem,
    ):
        register_kernel(viterbi_type, ViterbiBlockKernel())


_register_defaults()
