"""Hyyrö's bit-parallel LCS sweep promoted to an executor fast path.

Previously test-only (:mod:`repro.problems.alignment.bitparallel`), the
bignum bit-vector recurrence now runs whole stage-blocks of the
full-band LCS forward pass: each stage is one word-level update
``U = V & M[a_i]``; ``V ← ((V + U) | (V − U)) & mask`` instead of an
``O(m)`` tropical scan.

The gate is strict — and self-proving.  The bit recurrence only
represents rows whose consecutive differences are exactly ``{0, 1}``
(true LCS rows; the random fix-up seed vectors of far processors fail
this and fall through to the banded kernel / dense path).  After the
bit sweep, the decoded rows are pushed through a row-vectorized replica
of the dense entry+scan ops, which (a) yields predecessors and §4.7
capture planes bit-identical to the dense kernel and (b) re-derives
every row's values; the sweep is accepted only if the scan values match
the decoded values byte-for-byte — an inductive per-call proof of the
whole block, stage by stage, starting from the caller's input vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.base import BlockSweep, StageBlockKernel
from repro.problems.alignment.banded import BandedStageState
from repro.problems.alignment.bitparallel import build_match_masks

__all__ = ["BitParallelLCSKernel"]

_EXACT_BASE_BOUND = float(2**40)


@dataclass
class BitParallelPlan:
    n: int
    m: int
    nbytes: int
    mask_all: int
    row_masks: list  # per a-row bignum match mask over b's bit positions
    MS: np.ndarray  # (n, m) float64 match scores (b == a[i]) rows
    costs: np.ndarray  # (num_stages,) float64 == problem.stage_cost(i)
    selector_source: int


class BitParallelLCSKernel(StageBlockKernel):
    name = "bitparallel-lcs"
    bit_identity_gate = (
        "plan built only for the concrete full-band LCSProblem with an "
        "integer symbol alphabet; per call the input row must have "
        "consecutive differences exactly in {0, 1} with an integral base "
        "and no negative zeros, and the block is accepted only when a "
        "dense-op scan replay of the decoded rows reproduces them "
        "byte-for-byte (inductive exactness proof from the input vector); "
        "the registry additionally cross-checks the first stage against "
        "the dense kernel and the selector stage always runs dense"
    )

    def fingerprint(self, problem) -> tuple:
        return (
            type(problem).__name__,
            int(problem.width),
            problem.a.tobytes(),
            problem.b.tobytes(),
            str(problem.a.dtype),
            str(problem.b.dtype),
        )

    def plan(self, problem):
        from repro.problems.alignment.lcs import LCSProblem

        if type(problem) is not LCSProblem:
            return None
        n, m = problem._n, problem._m
        if n < 1 or m < 1:
            return None
        if problem.width < max(n, m):
            return None  # band clips the table: rows are not full-width
        for seq in (problem.a, problem.b):
            if not (seq.dtype == np.bool_ or np.issubdtype(seq.dtype, np.integer)):
                return None
        masks = build_match_masks(problem.b)
        a_syms = np.asarray(problem.a, dtype=np.int64).tolist()
        row_masks = [masks.get(sym, 0) for sym in a_syms]
        MS = (problem.b[None, :] == problem.a[:, None]).astype(np.float64)
        costs = np.full(n + 1, float(m + 1), dtype=np.float64)
        costs[n] = problem.stage_cost(problem.num_stages)
        if costs[0] != problem.stage_cost(1) or costs[n - 1] != problem.stage_cost(n):
            return None
        return BitParallelPlan(
            n=n,
            m=m,
            nbytes=(m + 7) // 8,
            mask_all=(1 << m) - 1,
            row_masks=row_masks,
            MS=MS,
            costs=costs,
            selector_source=int(problem._selector_source()),
        )

    def run(self, problem, plan, lo, hi, v, *, capture_state=False):
        m = plan.m
        if lo >= plan.n:
            return None
        v = np.asarray(v)
        if v.shape != (m + 1,) or v.dtype != np.float64:
            return None
        base = float(v[0])
        if not np.isfinite(base) or base != np.floor(base) or abs(base) > _EXACT_BASE_BOUND:
            return None
        diffs = v[1:] - v[:-1]
        if np.any((diffs != 0.0) & (diffs != 1.0)):
            return None
        if np.any((v == 0.0) & np.signbit(v)):
            return None  # -0.0 would make byte-level comparison ambiguous
        k = min(hi, plan.n) - lo

        # Bignum sweep: encode the input row (bit j set <=> no increment
        # at column j+1), then one word update per stage.
        bits_in = np.packbits((diffs == 0.0).astype(np.uint8), bitorder="little")
        vcur = int.from_bytes(bits_in.tobytes(), "little")
        raw = bytearray()
        for r in range(k):
            mt = plan.row_masks[lo + r]
            u = vcur & mt
            vcur = ((vcur + u) | (vcur - u)) & plan.mask_all
            raw += vcur.to_bytes(plan.nbytes, "little")

        # Decode all rows at once: value[j] = base + j - popcount(prefix).
        bits = np.unpackbits(
            np.frombuffer(bytes(raw), dtype=np.uint8).reshape(k, plan.nbytes),
            axis=1,
            bitorder="little",
        )[:, :m]
        decoded = np.empty((k, m + 1), dtype=np.float64)
        decoded[:, 0] = base
        decoded[:, 1:] = base + (
            np.arange(1, m + 1, dtype=np.float64) - np.cumsum(bits, axis=1)
        )

        # Dense-op replay (row-vectorized _entry_values + _scan with the
        # LCS gaps gu = g = 0.0 applied literally): predecessors, capture
        # planes, and the exactness cross-check all come from here.
        vin_rows = np.empty((k, m + 1), dtype=np.float64)
        vin_rows[0] = v
        vin_rows[1:] = decoded[:-1]
        entry = vin_rows - 0.0
        epred = np.broadcast_to(np.arange(m + 1, dtype=np.int64), (k, m + 1)).copy()
        diag = vin_rows[:, :m] + plan.MS[lo : lo + k]
        better = diag >= entry[:, 1:]
        entry[:, 1:] = np.where(better, diag, entry[:, 1:])
        epred[:, 1:] = np.where(better, np.arange(m, dtype=np.int64), epred[:, 1:])
        idx = np.arange(m + 1, dtype=np.float64)
        t = entry + 0.0 * idx
        cm = np.maximum.accumulate(t, axis=1)
        newmax = np.empty((k, m + 1), dtype=bool)
        newmax[:, 0] = True
        newmax[:, 1:] = t[:, 1:] > cm[:, :-1]
        estar = np.maximum.accumulate(
            np.where(newmax, np.arange(m + 1, dtype=np.int64), -1), axis=1
        )
        vals = cm - 0.0 * idx
        if vals.tobytes() != decoded.tobytes():
            return None  # bit sweep and dense replay disagree: fall back
        preds = np.take_along_axis(epred, estar, axis=1)

        values = list(vals)
        pred_list = list(preds)
        states = None
        if capture_state:
            states = [
                BandedStageState(
                    in_vec=vin_rows[r],
                    entry=entry[r],
                    epred=epred[r],
                    cm=cm[r],
                    estar=estar[r],
                    out=values[r],
                    pred=pred_list[r],
                )
                for r in range(k)
            ]
        costs = plan.costs[lo : lo + k]
        zero_index = None  # every row is finite by the diff gate
        if hi > plan.n:
            if capture_state:
                tv, tp, ts = problem.apply_stage_with_state(plan.n + 1, values[-1])
                states.append(ts)
            else:
                tv, tp = problem.apply_stage_with_pred(plan.n + 1, values[-1])
            values.append(tv)
            pred_list.append(tp)
            costs = np.concatenate([costs, plan.costs[-1:]])
            if np.all(np.isneginf(tv)):
                zero_index = k
        return BlockSweep(
            values=values, preds=pred_list, states=states, costs=costs, zero_index=zero_index
        )

    def price(self, problem, plan, path):
        # The banded kernel (registered alongside this one) owns pricing.
        return None
