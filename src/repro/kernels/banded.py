"""Stage-block kernel for banded alignment problems (LCS / NW).

Plan layout: the per-row band geometry (the up/diagonal source slices
``_entry_values`` recomputes every stage) becomes one ``(n, 8)`` int64
table, and the per-row match scores become one padded ``(n, Wmax)``
float64 matrix — built vectorized from the concrete problem's own
scoring formula and therefore entry-for-entry identical to
``match_score``.  One dispatch then sweeps a whole stage-block of the
entry + left-gap-scan recurrence, with optional capture planes feeding
:class:`~repro.problems.alignment.banded.BandedStageState` for §4.7
delta fix-up.

Registered only for the *concrete* classes ``LCSProblem`` and
``NeedlemanWunschProblem``: any subclass (which could override
``match_score`` / ``row0_value``) gets no kernel and stays on the
dense path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kernels.backend import get_backend
from repro.kernels.base import BlockSweep, StageBlockKernel
from repro.problems.alignment.banded import BandedStageState, band_bounds
from repro.semiring.tropical import NEG_INF

__all__ = ["BandedBlockKernel"]

_EXACT_SUM_BOUND = float(2**40)


@dataclass
class BandedPlan:
    n: int
    m: int
    Wmax: int
    gu: float  # gap_up
    g: float  # gap_left
    geom: np.ndarray  # (n, 8) int64: W, u0, u1, us0, d0, d1, vs0, pad
    MS: np.ndarray  # (n, Wmax) float64 match scores, row i-1 valid on [d0, d1)
    los: np.ndarray  # (n + 1,) int64 band lower bound per row
    widths: np.ndarray  # (n + 1,) int64 band width per row
    costs: np.ndarray  # (num_stages,) float64 == problem.stage_cost(i)
    selector_source: int
    integral: bool  # scores and gaps integral: pricing sums are order-free


class BandedBlockKernel(StageBlockKernel):
    name = "banded-block"
    bit_identity_gate = (
        "plan built only for the concrete LCS/NW classes (subclasses fall "
        "back dense) with the match-score plane spot-checked against "
        "match_score on the first and last rows; per call the input width "
        "must equal the stage-lo band width and the registry cross-checks "
        "the first block stage (values, preds, and capture state) against "
        "the dense kernel bit-for-bit; the width-1 selector stage always "
        "runs dense"
    )

    def fingerprint(self, problem) -> tuple:
        parts = [
            type(problem).__name__,
            int(problem.width),
            problem.a.tobytes(),
            problem.b.tobytes(),
            str(problem.a.dtype),
            str(problem.b.dtype),
        ]
        scoring = getattr(problem, "scoring", None)
        if scoring is not None:
            parts.extend([scoring.match, scoring.mismatch, scoring.gap_open, scoring.gap_extend])
            sub = scoring.substitution
            parts.append(None if sub is None else np.asarray(sub).tobytes())
        return tuple(parts)

    def _score_plane(self, problem, bsym: np.ndarray) -> np.ndarray | None:
        """(n, Wmax) scores via the concrete class's own formula."""
        from repro.problems.alignment.lcs import LCSProblem
        from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem

        a_col = problem.a[:, None]
        if type(problem) is LCSProblem:
            return (bsym == a_col).astype(np.float64)
        if type(problem) is NeedlemanWunschProblem:
            sc = problem.scoring
            if sc.substitution is not None:
                sub = np.asarray(sc.substitution, dtype=np.float64)
                return sub[a_col, bsym]
            return np.where(bsym == a_col, sc.match, sc.mismatch)
        return None

    def plan(self, problem):
        n, m, width = problem._n, problem._m, problem.width
        if n < 1 or m < 1:
            return None
        rows = np.arange(n + 1)
        los = np.maximum(0, rows - width).astype(np.int64)
        his = np.minimum(m, rows + width).astype(np.int64)
        widths = his - los + 1
        lo, hi, lo_p, hi_p = los[1:], his[1:], los[:-1], his[:-1]
        s = np.maximum(lo, lo_p)
        e = np.minimum(hi, hi_p)
        ds = np.maximum(np.maximum(lo, lo_p + 1), 1)
        de = np.minimum(hi, hi_p + 1)
        geom = np.zeros((n, 8), dtype=np.int64)
        geom[:, 0] = widths[1:]
        geom[:, 1] = s - lo
        geom[:, 2] = e - lo + 1
        geom[:, 3] = s - lo_p
        geom[:, 4] = ds - lo
        geom[:, 5] = de - lo + 1
        geom[:, 6] = ds - 1 - lo_p
        Wmax = int(widths.max())
        jj = np.arange(Wmax)
        col_mat = lo[:, None] + jj[None, :]
        valid = (jj[None, :] >= geom[:, 4:5]) & (jj[None, :] < geom[:, 5:6])
        bsym = problem.b[np.clip(col_mat - 1, 0, m - 1)]
        scores = self._score_plane(problem, bsym)
        if scores is None:
            return None
        MS = np.ascontiguousarray(np.where(valid, scores, 0.0), dtype=np.float64)
        # Spot-check the plane against the dense scoring on the first and
        # last rows (the registry re-verifies the first dispatched stage
        # per call; this catches plan-layout bugs early and cheaply).
        for i in (1, n):
            d0, d1 = int(geom[i - 1, 4]), int(geom[i - 1, 5])
            if d0 < d1:
                cols = np.arange(los[i] + d0, los[i] + d1)
                if MS[i - 1, d0:d1].tobytes() != np.asarray(
                    problem.match_score(i, cols), dtype=np.float64
                ).tobytes():
                    return None
        costs = np.empty(n + 1, dtype=np.float64)
        costs[:n] = widths[1:]
        costs[n] = problem.stage_cost(problem.num_stages)
        if costs[0] != problem.stage_cost(1) or costs[n - 1] != problem.stage_cost(n):
            return None
        gu, g = float(problem.gap_up), float(problem.gap_left)
        integral = bool(
            gu.is_integer()
            and g.is_integer()
            and abs(gu) < _EXACT_SUM_BOUND
            and abs(g) < _EXACT_SUM_BOUND
            and np.all(MS == np.floor(MS))
            and np.all(np.abs(MS) < _EXACT_SUM_BOUND)
        )
        return BandedPlan(
            n=n,
            m=m,
            Wmax=Wmax,
            gu=gu,
            g=g,
            geom=geom,
            MS=MS,
            los=los,
            widths=widths,
            costs=costs,
            selector_source=int(problem._selector_source()),
            integral=integral,
        )

    def run(self, problem, plan, lo, hi, v, *, capture_state=False):
        if lo >= plan.n:
            return None  # selector-only range
        v = np.asarray(v)
        if v.shape != (int(plan.widths[lo]),) or v.dtype != np.float64:
            return None
        k = min(hi, plan.n) - lo
        Wmax = plan.Wmax
        out_s = np.zeros((k, Wmax), dtype=np.float64)
        out_p = np.zeros((k, Wmax), dtype=np.int64)
        entry_pl = epred_pl = cm_pl = estar_pl = None
        if capture_state:
            entry_pl = np.zeros((k, Wmax), dtype=np.float64)
            epred_pl = np.zeros((k, Wmax), dtype=np.int64)
            cm_pl = np.zeros((k, Wmax), dtype=np.float64)
            estar_pl = np.zeros((k, Wmax), dtype=np.int64)
        geom = plan.geom[lo : lo + k]
        MS = plan.MS[lo : lo + k]
        backend = get_backend()
        if backend.banded_block is not None:
            backend.banded_block(
                np.ascontiguousarray(v), geom, MS, plan.gu, plan.g, NEG_INF,
                out_s, out_p, entry_pl, epred_pl, cm_pl, estar_pl,
            )
        else:
            self._run_numpy(
                plan, geom, MS, v, out_s, out_p, entry_pl, epred_pl, cm_pl, estar_pl
            )
        widths_out = plan.widths[lo + 1 : lo + 1 + k]
        neg = np.count_nonzero(np.isneginf(out_s), axis=1)
        zero_rows = np.flatnonzero(neg >= widths_out)
        zero_index = int(zero_rows[0]) if zero_rows.size else None
        values = [out_s[r, : widths_out[r]] for r in range(k)]
        preds = [out_p[r, : widths_out[r]] for r in range(k)]
        states = None
        if capture_state:
            states = []
            vin = v
            for r in range(k):
                W = int(widths_out[r])
                states.append(
                    BandedStageState(
                        in_vec=vin,
                        entry=entry_pl[r, :W],
                        epred=epred_pl[r, :W],
                        cm=cm_pl[r, :W],
                        estar=estar_pl[r, :W],
                        out=values[r],
                        pred=preds[r],
                    )
                )
                vin = values[r]
        costs = plan.costs[lo : lo + k]
        if hi > plan.n:
            # Width-1 selector stage: dense (and its sentinel state).
            if capture_state:
                tv, tp, ts = problem.apply_stage_with_state(plan.n + 1, values[-1])
                states.append(ts)
            else:
                tv, tp = problem.apply_stage_with_pred(plan.n + 1, values[-1])
            values.append(tv)
            preds.append(tp)
            costs = np.concatenate([costs, plan.costs[-1:]])
            if zero_index is None and np.all(np.isneginf(tv)):
                zero_index = k
        return BlockSweep(
            values=values, preds=preds, states=states, costs=costs, zero_index=zero_index
        )

    @staticmethod
    def _run_numpy(plan, geom, MS, v, out_s, out_p, entry_pl, epred_pl, cm_pl, estar_pl):
        """Row loop over preplanned geometry — the dense ops without the
        per-stage band/score recomputation (blocked NumPy fallback)."""
        g, gu = plan.g, plan.gu
        vin = v
        k = out_s.shape[0]
        with np.errstate(invalid="ignore"):
            for r in range(k):
                W, u0, u1, us0, d0, d1, vs0 = (int(x) for x in geom[r, :7])
                entry = np.full(W, NEG_INF)
                epred = np.zeros(W, dtype=np.int64)
                if u0 < u1:
                    entry[u0:u1] = vin[us0 : us0 + (u1 - u0)] - gu
                    epred[u0:u1] = np.arange(us0, us0 + (u1 - u0))
                if d0 < d1:
                    diag = vin[vs0 : vs0 + (d1 - d0)] + MS[r, d0:d1]
                    better = diag >= entry[d0:d1]
                    entry[d0:d1] = np.where(better, diag, entry[d0:d1])
                    epred[d0:d1] = np.where(
                        better, np.arange(vs0, vs0 + (d1 - d0)), epred[d0:d1]
                    )
                idx = np.arange(W, dtype=np.float64)
                t = entry + g * idx
                cm = np.maximum.accumulate(t)
                newmax = np.empty(W, dtype=bool)
                newmax[0] = True
                newmax[1:] = t[1:] > cm[:-1]
                estar = np.maximum.accumulate(np.where(newmax, np.arange(W), -1))
                vals = cm - g * idx
                out_s[r, :W] = vals
                out_p[r, :W] = epred[estar]
                if entry_pl is not None:
                    entry_pl[r, :W] = entry
                    epred_pl[r, :W] = epred
                    cm_pl[r, :W] = cm
                    estar_pl[r, :W] = estar
                vin = out_s[r, :W]

    def price(self, problem, plan, path):
        if not plan.integral:
            return None
        if path.shape != (plan.n + 2,):
            return None
        p = np.asarray(path, dtype=np.int64)
        if int(p[plan.n + 1]) != 0 or int(p[plan.n]) != plan.selector_source:
            return None  # selector edge would be -inf: dense prices it
        k, j = p[: plan.n], p[1 : plan.n + 1]
        lo_p, lo = plan.los[: plan.n], plan.los[1 : plan.n + 1]
        wid_p, wid = plan.widths[: plan.n], plan.widths[1 : plan.n + 1]
        if np.any((k < 0) | (k >= wid_p) | (j < 0) | (j >= wid)):
            return None
        c_in = lo_p + k
        c_out = lo + j
        up_ok = (c_out >= c_in) & (c_in >= lo)
        up_w = np.where(up_ok, -plan.gu - plan.g * (c_out - c_in), NEG_INF)
        diag_ok = (c_out >= c_in + 1) & (c_in + 1 >= lo) & (c_in + 1 >= 1)
        ms_idx = np.clip(c_in + 1 - lo, 0, plan.Wmax - 1)
        ms = plan.MS[np.arange(plan.n), ms_idx]
        diag_w = np.where(diag_ok, ms - plan.g * (c_out - c_in - 1), NEG_INF)
        best = np.maximum(up_w, diag_w)
        if np.any(np.isneginf(best)):
            return None
        s0 = problem.initial_vector()
        t0 = float(s0[int(p[0])])
        if not np.isfinite(t0) or t0 != np.floor(t0):
            return None
        # Selector edge contributes exactly 0.0 (checked above); all other
        # terms are integers, so any-order summation is exact.
        return float(t0 + np.sum(best))
