"""Contracts of the raw-speed kernel tier.

A :class:`StageBlockKernel` turns *many* forward stages into one
dispatch: at plan time it lays the problem's stage transforms out as
contiguous arrays (branch-metric matrices, band geometry tables), and
at run time it sweeps a whole ``(lo .. hi]`` stage-block through a
vectorized add-compare-select loop — compiled when a backend is
available (:mod:`repro.kernels.backend`), pure NumPy otherwise.

The tier is an *optimization*, never a semantic: every kernel is gated
exactly like the PR 5 sparse fix-up kernel.  Plans are only built when
the problem's transforms are provably representable in the kernel's
layout; every dispatch re-checks its input against the dense kernel's
expectations and returns ``None`` (automatic dense fallback) on any
mismatch; and the registry cross-checks the first block stage against
the dense per-stage kernel bit-for-bit before accepting a sweep
(:func:`repro.kernels.registry.block_sweep`).  Each kernel class
documents its gate in ``bit_identity_gate`` — a declaration the
registry enforces at registration time and ``repro lint`` (REP006)
enforces statically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BlockSweep", "StageBlockKernel"]


@dataclass
class BlockSweep:
    """One kernel dispatch's output: stages ``lo+1 .. hi`` of a sweep.

    Entry ``r`` of each list describes stage ``lo + 1 + r``.  ``values``
    / ``preds`` rows may be views into one contiguous block allocation;
    the engine treats stage vectors as immutable, so sharing is safe.
    """

    #: Per-stage output vectors (stage width each, float64).
    values: list
    #: Per-stage predecessor vectors (int64).
    preds: list
    #: Per-stage §4.7 kernel states (``None`` unless capture was requested).
    states: list | None
    #: Per-stage modeled work, identical to ``problem.stage_cost(i)``.
    costs: np.ndarray
    #: Offset of the first all-0̄ stage in the block (``None`` if none) —
    #: hoisted out of the per-stage loop so the spec can raise the same
    #: ZeroVectorError the dense path would, without a per-stage scan.
    zero_index: int | None


class StageBlockKernel:
    """A fast-path executor for whole stage-blocks of one problem family.

    Subclasses are registered per *concrete* problem class (never for
    subclasses — an override of any stage method would silently break
    the layout assumptions) and must declare ``bit_identity_gate``: a
    human-readable statement of every condition under which the kernel
    is allowed to replace the dense per-stage path.  The registry
    rejects kernels without one, and the REP006 lint rule enforces the
    declaration statically.
    """

    #: Short stable identifier (plan-cache key component).
    name: str = ""

    #: Required declaration of the kernel's exactness gate (REP006).
    bit_identity_gate: str = ""

    def fingerprint(self, problem) -> tuple:
        """Hashable content key of everything the plan depends on.

        Problems are re-pickled into every pool worker, so plans are
        cached by *content*, not identity; two equal fingerprints must
        imply bit-identical plans.
        """
        raise NotImplementedError

    def plan(self, problem):
        """Build the preplanned layout, or ``None`` when ineligible.

        ``None`` is cached: the problem permanently takes the dense
        path for this kernel.
        """
        raise NotImplementedError

    def run(self, problem, plan, lo: int, hi: int, v: np.ndarray, *, capture_state: bool = False) -> BlockSweep | None:
        """Sweep stages ``lo+1 .. hi`` from input ``v``.

        Returns ``None`` whenever any per-call gate fails (input shape
        mismatch, range outside the planned stages, exactness
        cross-check failure) — the caller falls back to the dense
        per-stage loop, which also owns raising the proper errors for
        genuinely invalid inputs.
        """
        raise NotImplementedError

    def price(self, problem, plan, path: np.ndarray) -> float | None:
        """Vectorized exact-score pricing of a traced path, or ``None``.

        Only returns a value when the summation is provably exact in
        any association order (integral edge weights within the float64
        integer range); otherwise the driver's sequential scalar loop
        runs.
        """
        return None
