"""Kernel registration, plan caching, and the per-dispatch identity gate.

Kernels register per *concrete* problem class; a subclass match is not
a match (an overridden stage method would invalidate the preplanned
layout).  Plans are cached per process by the kernel's content
fingerprint — problems are re-pickled into every pool worker, so
identity-keyed caching would never hit.

Every accepted dispatch is re-proven: :func:`block_sweep` recomputes
the first block stage with the problem's own dense per-stage kernel
and compares values byte-for-byte (catching even ``-0.0`` sign flips),
predecessors exactly, and — when §4.7 capture is on — every captured
state plane.  Any disagreement silently discards the sweep and the
caller runs the dense loop, which also owns raising proper errors for
genuinely invalid inputs.
"""

from __future__ import annotations

import os
from collections import OrderedDict

import numpy as np

from repro.exceptions import KernelRegistrationError
from repro.kernels.base import BlockSweep, StageBlockKernel
from repro.machine.executor import executor_capability

__all__ = [
    "block_sweep",
    "kernel_tier_enabled",
    "price_path_fast",
    "register_kernel",
    "registered_kernels",
    "reset_plan_cache",
    "warm_kernels",
]

#: Exact problem type -> ordered tuple of kernels (first eligible wins).
_KERNELS: dict[type, tuple[StageBlockKernel, ...]] = {}

#: (kernel name, fingerprint) -> plan, or _INELIGIBLE when plan() said no.
_PLAN_CACHE: OrderedDict = OrderedDict()
_PLAN_CACHE_MAX = 32
_INELIGIBLE = object()

#: REPRO_KERNELS values that disable the tier (auto mode only).
_DISABLE_VALUES = frozenset({"0", "off", "false", "no"})


def register_kernel(problem_type: type, kernel: StageBlockKernel) -> None:
    if not isinstance(kernel.bit_identity_gate, str) or not kernel.bit_identity_gate.strip():
        raise KernelRegistrationError(
            f"kernel {type(kernel).__name__!r} declares no bit_identity_gate; "
            "every registered fast-path kernel must document the conditions "
            "under which it may replace the dense per-stage path (REP006)"
        )
    if not kernel.name:
        raise KernelRegistrationError(
            f"kernel {type(kernel).__name__!r} has no name (plan-cache key)"
        )
    _KERNELS[problem_type] = _KERNELS.get(problem_type, ()) + (kernel,)


def registered_kernels(problem_type: type) -> tuple[StageBlockKernel, ...]:
    """Kernels for the *exact* type (no subclass lookup, by design)."""
    return _KERNELS.get(problem_type, ())


def reset_plan_cache() -> None:
    _PLAN_CACHE.clear()


def _plan_for(kernel: StageBlockKernel, problem):
    key = (kernel.name, kernel.fingerprint(problem))
    if key in _PLAN_CACHE:
        _PLAN_CACHE.move_to_end(key)
        plan = _PLAN_CACHE[key]
    else:
        plan = kernel.plan(problem)
        if plan is None:
            plan = _INELIGIBLE
        _PLAN_CACHE[key] = plan
        if len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    return None if plan is _INELIGIBLE else plan


def warm_kernels(problem) -> int:
    """Pre-build plans for ``problem`` (pool worker bind); returns count."""
    built = 0
    for kernel in registered_kernels(type(problem)):
        if _plan_for(kernel, problem) is not None:
            built += 1
    return built


def _first_stage_matches(problem, lo, v, sweep, capture_state) -> bool:
    try:
        if capture_state:
            dv, dp, ds = problem.apply_stage_with_state(lo + 1, v)
        else:
            dv, dp = problem.apply_stage_with_pred(lo + 1, v)
            ds = None
    except Exception:
        return False  # dense path owns raising this properly, in context
    kv = np.asarray(sweep.values[0])
    kp = np.asarray(sweep.preds[0])
    if kv.shape != dv.shape or kv.tobytes() != dv.tobytes():
        return False
    if not np.array_equal(kp, dp):
        return False
    if capture_state:
        if sweep.states is None or len(sweep.states) == 0:
            return False
        if not _states_equal(sweep.states[0], ds):
            return False
    return True


def _states_equal(kernel_state, dense_state) -> bool:
    """Field-wise byte comparison; sentinel states compare by equality."""
    if not hasattr(dense_state, "__dataclass_fields__"):
        return kernel_state == dense_state
    if type(kernel_state) is not type(dense_state):
        return False
    for field in dense_state.__dataclass_fields__:
        da = getattr(dense_state, field)
        ka = getattr(kernel_state, field)
        if isinstance(da, np.ndarray):
            if np.shape(ka) != da.shape:
                return False
            if np.ascontiguousarray(ka).tobytes() != np.ascontiguousarray(da).tobytes():
                return False
        elif ka != da:
            return False
    return True


def block_sweep(problem, lo: int, hi: int, v, *, capture_state: bool = False) -> BlockSweep | None:
    """One fast-path dispatch over stages ``lo+1 .. hi``, or ``None``.

    Tries each registered kernel in order; a sweep is returned only
    after the first block stage has been re-derived densely and matched
    bit-for-bit.
    """
    for kernel in registered_kernels(type(problem)):
        plan = _plan_for(kernel, problem)
        if plan is None:
            continue
        try:
            sweep = kernel.run(problem, plan, lo, hi, v, capture_state=capture_state)
        except Exception:
            sweep = None
        if sweep is None or not sweep.values:
            continue
        if _first_stage_matches(problem, lo, v, sweep, capture_state):
            return sweep
    return None


def price_path_fast(problem, path) -> float | None:
    """Vectorized exact path pricing via any planned kernel, or ``None``."""
    path = np.asarray(path)
    for kernel in registered_kernels(type(problem)):
        plan = _plan_for(kernel, problem)
        if plan is None:
            continue
        try:
            price = kernel.price(problem, plan, path)
        except Exception:
            price = None
        if price is not None:
            return price
    return None


def kernel_tier_enabled(opts, problem) -> bool:
    """Gate mirroring the PR 5 sparse fix-up kernel's selection shape.

    ``opts.use_kernels`` is a tri-state: ``False`` forces the dense
    path, ``True`` forces the tier on (overriding the ``REPRO_KERNELS``
    environment switch), ``None`` (auto) enables it whenever the
    executor declares the ``block_kernels`` capability and a kernel is
    registered for the problem's exact type.
    """
    use = getattr(opts, "use_kernels", None)
    if use is False:
        return False
    if use is not True:
        if os.environ.get("REPRO_KERNELS", "").strip().lower() in _DISABLE_VALUES:
            return False
    if not executor_capability(opts.executor, "block_kernels"):
        return False
    return bool(registered_kernels(type(problem)))
