"""One resident request-class: a persistent solve kept live in the pool.

A :class:`ResidentSession` owns a
:class:`~repro.ltdp.engine.poolrt.PoolRuntime` (one worker-side session
namespace per request class) and the driver-side forward state of the
last solve it ran — the ``finals`` map plus the convergence-aware
scheduling dicts.  Serving a request then has two paths:

- **miss** — :func:`~repro.ltdp.engine.forward.forward_phase` from
  scratch on the resident runtime (the worker-state shipping and
  process spin-up are still amortized across requests);
- **hit** — the request's problem proves a bounded diff against the
  resident problem (:meth:`LTDPProblem.dirty_stages_against`), so the
  worker-side problem is rebound in place and
  :func:`~repro.ltdp.engine.forward.repair_forward_phase` repairs only
  the dirty stages (dense) plus whatever the §4.7 sparse fix-up loop
  propagates.

Either way the objective/backward/pricing pipeline
(:func:`~repro.ltdp.engine.driver.run_solve_phases`) runs on the same
runtime, and the answer is bit-identical to a fresh sequential solve:
the repaired forward state satisfies exactly the invariants a converged
forward phase guarantees (vectors parallel to the truth, predecessor
rows exact), which is all the later phases consume.

The instruction program doubles as the crash-replay journal, so it
grows with every request; past ``journal_cap`` the session *rebases* —
tears the runtime down and rebuilds it fresh — bounding both replay
cost and worker-side reply-cache memory.
"""

from __future__ import annotations

import itertools

from repro.exceptions import ReproError
from repro.ltdp.engine.driver import ParallelOptions, run_solve_phases
from repro.ltdp.engine.forward import forward_phase, repair_forward_phase
from repro.ltdp.engine.poolrt import PoolRuntime
from repro.ltdp.partition import partition_stages
from repro.ltdp.problem import LTDPProblem, LTDPSolution
from repro.machine.metrics import RunMetrics
from repro.machine.trace import Tracer

from repro.serve.requests import CACHE_HIT, CACHE_MISS

__all__ = ["ResidentSession"]


class ResidentSession:
    """Resident parallel solve of one request class on a shared pool."""

    _ids = itertools.count(1)

    def __init__(
        self,
        pool,
        problem: LTDPProblem,
        *,
        num_procs: int = 4,
        use_delta: bool = True,
        seed: int | None = 0,
        tracer: Tracer | None = None,
        journal_cap: int = 4096,
    ) -> None:
        self.pool = pool
        self.tracer = tracer
        self.journal_cap = journal_cap
        self.ranges = partition_stages(problem.num_stages, num_procs)
        self.options = ParallelOptions(
            num_procs=len(self.ranges),
            executor=pool,
            seed=seed,
            use_delta=use_delta,
            tracer=tracer,
        )
        self._key_base = f"serve-{next(self._ids)}"
        self._epoch = 0
        self.resident: LTDPProblem = problem
        self.solved = False
        self.finals: dict = {}
        self.last_input: dict = {}
        self.last_converged: dict = {}
        self.runtime = self._new_runtime(problem)

    def _new_runtime(self, problem: LTDPProblem) -> PoolRuntime:
        self._epoch += 1
        return PoolRuntime(
            self.pool,
            problem,
            self.ranges,
            tracer=self.tracer,
            session_key=f"{self._key_base}.{self._epoch}",
        )

    def _fresh_metrics(self, problem: LTDPProblem) -> RunMetrics:
        n = problem.num_stages
        return RunMetrics(
            num_procs=len(self.ranges),
            num_stages=n,
            stage_width=problem.max_stage_width(),
        )

    # ------------------------------------------------------------------
    def serve(
        self, problem: LTDPProblem
    ) -> tuple[LTDPSolution, str, RunMetrics]:
        """Answer one request; returns ``(solution, cache_tag, metrics)``.

        The cache decision: a hit requires a resident solve, a replay
        journal still under ``journal_cap`` and a provable bounded diff
        against the resident problem.  Everything else is a miss (fresh
        solve, possibly after a rebase).
        """
        dirty = None
        if self.solved and self.runtime.journal_len <= self.journal_cap:
            dirty = problem.dirty_stages_against(self.resident)
        try:
            if dirty is None:
                return self._solve_fresh(problem)
            return self._solve_repair(problem, dirty)
        except ReproError:
            # A failed solve leaves worker-side state mid-mutation; the
            # next request on this session must not try to repair it.
            self.solved = False
            raise

    def _solve_fresh(self, problem: LTDPProblem):
        if self.runtime.journal_len > self.journal_cap:
            # Rebase: the journal (and the workers' reply caches) grew
            # past the point where replaying it beats rebuilding.
            self.runtime.finish()
            self.runtime = self._new_runtime(problem)
        elif problem is not self.resident:
            self.runtime.rebind_problem(problem)
        # The scheduling dicts describe the *previous* solve's worker
        # state; a fresh initial pass invalidates them wholesale.
        self.finals.clear()
        self.last_input.clear()
        self.last_converged.clear()
        metrics = self._fresh_metrics(problem)

        def fwd():
            finals = forward_phase(
                problem,
                self.ranges,
                self.options,
                self.runtime,
                metrics,
                last_input=self.last_input,
                last_converged=self.last_converged,
            )
            self.finals.update(finals)
            return self.finals

        solution = run_solve_phases(
            problem, self.options, self.ranges, self.runtime, metrics,
            forward_fn=fwd,
        )
        self.resident = problem
        self.solved = True
        return solution, CACHE_MISS, metrics

    def _solve_repair(self, problem: LTDPProblem, dirty: set[int]):
        if dirty:
            self.runtime.rebind_problem(problem)
        metrics = self._fresh_metrics(problem)

        def fwd():
            return repair_forward_phase(
                problem,
                self.ranges,
                self.options,
                self.runtime,
                metrics,
                finals=self.finals,
                last_input=self.last_input,
                last_converged=self.last_converged,
                dirty_stages=dirty,
            )

        solution = run_solve_phases(
            problem, self.options, self.ranges, self.runtime, metrics,
            forward_fn=fwd,
        )
        self.resident = problem
        return solution, CACHE_HIT, metrics

    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Drop the worker-side session (eviction / service shutdown)."""
        self.solved = False
        self.runtime.finish()
