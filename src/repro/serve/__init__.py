"""Request-serving front-end over the resident worker pool.

``repro serve`` / :class:`LTDPService`: accept streams of decode/align
requests, batch same-shape problems onto one persistent
:class:`~repro.machine.pool.PoolProcessExecutor`, answer near-duplicate
requests by §4.7 sparse delta repair of a resident canonical solve, and
keep every answer bit-identical to a fresh sequential solve.
"""

from repro.serve.requests import (
    CACHE_HIT,
    CACHE_MISS,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    PendingRequest,
    ServeResponse,
    class_label,
    request_class,
)
from repro.serve.selftest import SelftestReport, build_request_stream, run_selftest
from repro.serve.service import ClassStats, LTDPService
from repro.serve.session import ResidentSession

__all__ = [
    "CACHE_HIT",
    "CACHE_MISS",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "ClassStats",
    "LTDPService",
    "PendingRequest",
    "ResidentSession",
    "SelftestReport",
    "ServeResponse",
    "build_request_stream",
    "class_label",
    "request_class",
    "run_selftest",
]
