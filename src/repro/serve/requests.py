"""Request/response vocabulary of the LTDP serving layer.

A request is just an :class:`~repro.ltdp.problem.LTDPProblem` instance;
the service answers it with a :class:`ServeResponse` carrying the
solution (bit-identical to a fresh sequential solve), the cache outcome
(fresh solve vs §4.7 delta repair of the resident canonical) and
latency/accounting scalars.  :func:`request_class` computes the
family+shape key the service batches and caches by.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.ltdp.problem import LTDPProblem, LTDPSolution

__all__ = [
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_ERROR",
    "CACHE_HIT",
    "CACHE_MISS",
    "request_class",
    "class_label",
    "ServeResponse",
    "PendingRequest",
]

#: Response statuses.
STATUS_OK = "ok"
STATUS_REJECTED = "rejected"  # admission control (queue full / closed)
STATUS_ERROR = "error"  # the solve itself failed (e.g. executor closed)

#: Cache outcomes of a served (``ok``) request.
CACHE_HIT = "hit"  # answered by delta repair of the resident solve
CACHE_MISS = "miss"  # fresh solve (new family, shape, or undiffable)


def request_class(problem: LTDPProblem) -> tuple:
    """Family + shape key: requests with equal keys share one resident
    session (same partition, same worker-side state layout) and are
    served together in one batch sweep.

    Same key does **not** imply same answer — it implies the problems
    are *commensurable*: identical stage count and boundary widths, so
    a repair sweep of one against a resident solve of another is
    well-formed whenever :meth:`LTDPProblem.dirty_stages_against`
    additionally proves a bounded diff.
    """
    n = problem.num_stages
    return (
        type(problem).__name__,
        n,
        problem.stage_width(0),
        problem.stage_width(n),
        getattr(problem, "width", None),
    )


def class_label(key: tuple) -> str:
    """Human-readable form of a :func:`request_class` key (stats/report)."""
    name, n, w0, wn, band = key
    parts = [f"n={n}", f"w0={w0}", f"wn={wn}"]
    if band is not None:
        parts.append(f"band={band}")
    return f"{name}[{','.join(parts)}]"


@dataclass(frozen=True)
class ServeResponse:
    """Terminal outcome of one submitted request.

    ``solution`` is present iff ``status == STATUS_OK``; the service
    contract is that it is bit-identical (path, score, objective cell)
    to ``solve_sequential(problem)`` regardless of ``cache``.
    ``delta_cells`` is the §4.7 changed-delta count of the serving
    sweep (0 for misses and for hits whose perturbation died locally);
    ``fixup_iterations`` the forward fix-up rounds the solve needed.
    """

    request_id: int
    status: str
    cache: str | None = None
    solution: LTDPSolution | None = None
    latency_seconds: float = 0.0
    delta_cells: int = 0
    fixup_iterations: int = 0
    reason: str = ""


class PendingRequest:
    """Ticket returned by ``LTDPService.submit`` (a minimal future).

    Admission-control rejections resolve the ticket synchronously, so
    ``result()`` never blocks on a rejected request — backpressure is
    immediately observable to the submitting client.
    """

    __slots__ = ("request_id", "problem", "key", "_event", "_response")

    def __init__(self, request_id: int, problem: LTDPProblem, key: tuple) -> None:
        self.request_id = request_id
        self.problem = problem
        self.key = key
        self._event = threading.Event()
        self._response: ServeResponse | None = None

    def _resolve(self, response: ServeResponse) -> None:
        self._response = response
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServeResponse:
        """Block until the service resolves this request."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} not served within {timeout}s"
            )
        response = self._response
        if response is None:  # pragma: no cover - _resolve writes before set()
            raise RuntimeError(f"request {self.request_id} resolved without a response")
        return response
