"""`repro serve --selftest`: the serving layer's end-to-end demo.

Generates a seeded stream of mixed requests — fresh problems and
near-duplicates (1-3 symbol mutations of the current canonical) across
two banded-alignment families — serves them all through one
:class:`~repro.serve.service.LTDPService` on one resident worker pool,
then verifies **every** successful response bit-identical against a
fresh ``solve_sequential`` of the same problem and checks that the
pool's workers are gone after the drain.

The report is the PR's acceptance demo: ≥ 100 requests served, cache
hits answered by the §4.7 delta-repair path (``delta_cells > 0``),
zero mismatches, zero leaked workers.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.sequences import homologous_pair
from repro.ltdp.sequential import solve_sequential
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem

from repro.serve.requests import CACHE_HIT, STATUS_OK
from repro.serve.service import LTDPService

__all__ = ["SelftestReport", "build_request_stream", "run_selftest"]


@dataclass
class SelftestReport:
    """Outcome of one selftest run (CLI exit code = ``not passed``)."""

    requests: int = 0
    served_ok: int = 0
    verified: int = 0
    mismatches: int = 0
    rejected: int = 0
    errors: int = 0
    hits: int = 0
    misses: int = 0
    delta_cells: int = 0
    leaked_workers: int = 0
    wall_seconds: float = 0.0
    min_served: int = 100
    stats: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return (
            self.served_ok >= self.min_served
            and self.verified == self.served_ok
            and self.mismatches == 0
            and self.errors == 0
            and self.hits > 0
            and self.delta_cells > 0
            and self.leaked_workers == 0
        )

    def lines(self) -> list[str]:
        hit_rate = self.hits / self.served_ok if self.served_ok else 0.0
        return [
            f"requests submitted : {self.requests}",
            f"served ok          : {self.served_ok} "
            f"(rejected {self.rejected}, errors {self.errors})",
            f"verified identical : {self.verified} "
            f"(mismatches {self.mismatches})",
            f"cache              : {self.hits} hits / {self.misses} misses "
            f"(hit rate {hit_rate:.0%})",
            f"delta cells        : {self.delta_cells} "
            "(changed-delta work of the repair sweeps)",
            f"leaked workers     : {self.leaked_workers}",
            f"wall               : {self.wall_seconds:.2f} s",
            f"passed             : {self.passed}",
        ]


def _mutate(a: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """1-3 symbol substitutions (always changing the symbol)."""
    out = np.array(a, copy=True)
    for pos in rng.choice(out.size, size=int(rng.integers(1, 4)), replace=False):
        out[pos] = (out[pos] + rng.integers(1, 4)) % 4
    return out


def build_request_stream(
    num_requests: int, seed: int | None = 0, *, size: int = 48, width: int = 10
) -> list:
    """Seeded mixed request stream over the LCS and NW families.

    Every family starts from a canonical instance; each subsequent
    request either *mutates* the family's current problem's ``a``
    (near-duplicate — same ``b``, provably bounded diff) or replaces
    the pair wholesale (fresh — forces a cache miss).
    """
    rng = np.random.default_rng(seed)
    families = {}
    for name, cls in (("lcs", LCSProblem), ("nw", NeedlemanWunschProblem)):
        a, b = homologous_pair(size, rng, divergence=0.1)
        families[name] = {"cls": cls, "a": a, "b": b}
    requests = []
    names = list(families)
    for _ in range(num_requests):
        fam = families[names[int(rng.integers(len(names)))]]
        roll = rng.random()
        if requests and roll < 0.7:
            fam["a"] = _mutate(fam["a"], rng)
        elif roll < 0.9 or not requests:
            fam["a"], fam["b"] = homologous_pair(size, rng, divergence=0.1)
        # else: resubmit the family's current problem verbatim (an exact
        # duplicate — the cheapest possible hit, zero dirty stages).
        requests.append(fam["cls"](fam["a"], fam["b"], width=width))
    return requests


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign pid reuse
        return True
    return True


def run_selftest(
    *,
    num_requests: int = 120,
    num_procs: int = 3,
    max_workers: int | None = 3,
    max_queue: int | None = None,
    seed: int | None = 0,
    min_served: int = 100,
    log=None,
) -> SelftestReport:
    """Serve a mixed stream end to end and verify every answer."""
    say = log if log is not None else (lambda *_: None)
    t0 = time.perf_counter()
    problems = build_request_stream(num_requests, seed)
    say(
        f"serve selftest: {len(problems)} requests, "
        f"{num_procs} procs, pool max_workers={max_workers}"
    )
    service = LTDPService(
        max_workers=max_workers,
        num_procs=num_procs,
        max_queue=max_queue if max_queue is not None else num_requests,
        seed=seed,
    )
    report = SelftestReport(requests=len(problems), min_served=min_served)
    pids: list[int] = []
    try:
        service.start()
        tickets = [service.submit(p) for p in problems]
        responses = [t.result(timeout=600.0) for t in tickets]
        pids = list(service.executor.worker_pids())
    finally:
        report.stats = service.close()
    for problem, response in zip(problems, responses):
        if response.status != STATUS_OK:
            if response.status == "rejected":
                report.rejected += 1
            else:
                report.errors += 1
            continue
        report.served_ok += 1
        if response.cache == CACHE_HIT:
            report.hits += 1
        else:
            report.misses += 1
        report.delta_cells += response.delta_cells
        expected = solve_sequential(problem)
        got = response.solution
        if (
            got is not None
            and np.array_equal(expected.path, got.path)
            and expected.score == got.score
        ):
            report.verified += 1
        else:
            report.mismatches += 1
    report.leaked_workers = sum(1 for pid in pids if _pid_alive(pid))
    report.wall_seconds = time.perf_counter() - t0
    for line in report.lines():
        say(line)
    return report
