"""`repro serve`: batched request serving on one resident worker pool.

:class:`LTDPService` accepts a stream of decode/align requests (each an
:class:`~repro.ltdp.problem.LTDPProblem`), applies admission control at
the door (bounded queue; reject-with-reason, never block or drop
silently), and serves them from a single batcher thread that drains the
queue, groups same-class requests (:func:`~repro.serve.requests.
request_class`) and sweeps each group over that class's
:class:`~repro.serve.session.ResidentSession` — one persistent
:class:`~repro.machine.pool.PoolProcessExecutor` under all of them.

Near-duplicate requests are answered by §4.7 sparse delta repair of the
class's resident canonical solve; everything is counted per request
class (hits, misses, rejections, changed delta cells, latency) and
every answer is bit-identical to a fresh sequential solve.

Shutdown is a graceful drain: ``close()`` stops admissions, lets the
batcher finish the queue, tears down the resident sessions and (when
the service owns it) closes the pool.  The drain path leans on the
executor close contract — ``run_superstep``/dispatch on a closed
executor raises :class:`~repro.exceptions.ExecutorError`
deterministically — so a request racing shutdown resolves as an
``error`` response instead of hanging on a dead transport.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.exceptions import ExecutorError, ReproError
from repro.ltdp.problem import LTDPProblem
from repro.machine.executor import executor_capability
from repro.machine.trace import Tracer

from repro.serve.requests import (
    CACHE_HIT,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    PendingRequest,
    ServeResponse,
    class_label,
    request_class,
)
from repro.serve.session import ResidentSession

__all__ = ["ClassStats", "LTDPService"]

_NULL_CTX = nullcontext()


@dataclass
class ClassStats:
    """Per-request-class counters (one row of ``LTDPService.stats()``)."""

    requests: int = 0
    ok: int = 0
    hits: int = 0
    misses: int = 0
    rejected: int = 0
    errors: int = 0
    delta_cells: int = 0
    latency_total: float = 0.0
    latency_max: float = 0.0

    def observe(self, response: ServeResponse) -> None:
        self.requests += 1
        if response.status == STATUS_REJECTED:
            self.rejected += 1
            return
        if response.status == STATUS_ERROR:
            self.errors += 1
            return
        self.ok += 1
        if response.cache == CACHE_HIT:
            self.hits += 1
        else:
            self.misses += 1
        self.delta_cells += response.delta_cells
        self.latency_total += response.latency_seconds
        self.latency_max = max(self.latency_max, response.latency_seconds)

    def merged(self, other: "ClassStats") -> "ClassStats":
        return ClassStats(
            requests=self.requests + other.requests,
            ok=self.ok + other.ok,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            rejected=self.rejected + other.rejected,
            errors=self.errors + other.errors,
            delta_cells=self.delta_cells + other.delta_cells,
            latency_total=self.latency_total + other.latency_total,
            latency_max=max(self.latency_max, other.latency_max),
        )

    def as_dict(self) -> dict:
        mean = self.latency_total / self.ok if self.ok else 0.0
        return {
            "requests": self.requests,
            "ok": self.ok,
            "hits": self.hits,
            "misses": self.misses,
            "rejected": self.rejected,
            "errors": self.errors,
            "delta_cells": self.delta_cells,
            "latency_mean_seconds": mean,
            "latency_max_seconds": self.latency_max,
        }


@dataclass
class _ServiceState:
    """Mutable service internals guarded by one condition variable."""

    queue: deque = field(default_factory=deque)
    closing: bool = False
    closed: bool = False


class LTDPService:
    """In-process request-serving front-end over one persistent pool.

    Parameters
    ----------
    executor:
        A :class:`~repro.machine.pool.PoolProcessExecutor` to serve on;
        ``None`` (default) creates one (``max_workers``) that the
        service owns and closes.
    num_procs:
        Virtual processors per solve (each session's partition).
    max_queue:
        Admission-control bound: a ``submit`` finding this many requests
        already queued is rejected immediately with a reason.
    max_sessions:
        Resident-session cap; least-recently-used classes are evicted
        (their worker-side state dropped) past it.
    use_delta:
        §4.7 delta mode for the solves (required for sparse cache
        repair; on by default).
    seed:
        Seed of the solves' random ``nz`` start vectors.
    tracer:
        Optional tracer; the service adds one ``serve.request`` span
        per served request and one ``serve.batch`` span per same-class
        group, on top of the engine's solve spans.
    journal_cap:
        Per-session replay-journal bound before the session rebases.
    """

    def __init__(
        self,
        *,
        executor=None,
        max_workers: int | None = None,
        num_procs: int = 4,
        max_queue: int = 64,
        max_sessions: int = 8,
        use_delta: bool = True,
        seed: int | None = 0,
        tracer: Tracer | None = None,
        journal_cap: int = 4096,
    ) -> None:
        if num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {num_procs}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        self._own_executor = executor is None
        if executor is None:
            from repro.machine.pool import PoolProcessExecutor

            executor = PoolProcessExecutor(max_workers=max_workers)
        if not executor_capability(executor, "resident_state"):
            raise ExecutorError(
                "LTDPService requires a resident-state executor (the "
                f"persistent worker pool); got {type(executor).__name__}"
            )
        self.executor = executor
        self.num_procs = num_procs
        self.max_queue = max_queue
        self.max_sessions = max_sessions
        self.use_delta = use_delta
        self.seed = seed
        self.tracer = tracer
        self.journal_cap = journal_cap

        self._cond = threading.Condition()
        self._state = _ServiceState()  # guarded-by: self._cond
        self._thread: threading.Thread | None = None  # guarded-by: self._cond
        # Batcher-thread-only state (no guard): ``_ids`` is an atomic
        # counter; ``_sessions`` is touched by the serve loop and, after
        # the thread has been joined, by ``close()``.
        self._ids = itertools.count(1)
        self._sessions: "OrderedDict[tuple, ResidentSession]" = OrderedDict()
        self._stats: dict[str, ClassStats] = {}  # guarded-by: self._cond

    # -- admission ------------------------------------------------------
    def submit(self, problem: LTDPProblem) -> PendingRequest:
        """Enqueue one request; never blocks.

        Backpressure is synchronous: when the queue is full (or the
        service is closing) the returned ticket is already resolved
        with a ``rejected`` response naming the reason.
        """
        key = request_class(problem)
        req = PendingRequest(next(self._ids), problem, key)
        with self._cond:
            if self._state.closing:
                self._resolve_rejected(req, "service is closed to new requests")
            elif len(self._state.queue) >= self.max_queue:
                self._resolve_rejected(
                    req,
                    f"queue full ({len(self._state.queue)}/{self.max_queue} "
                    "pending): backpressure — retry after in-flight "
                    "requests drain",
                )
            else:
                self._state.queue.append(req)
                self._cond.notify()
        return req

    def _resolve_rejected(self, req: PendingRequest, reason: str) -> None:
        # repro: locked[self._cond]
        response = ServeResponse(
            request_id=req.request_id, status=STATUS_REJECTED, reason=reason
        )
        self._stats.setdefault(class_label(req.key), ClassStats()).observe(
            response
        )
        req._resolve(response)

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "LTDPService":
        """Start the batcher thread (idempotent)."""
        with self._cond:
            if self._state.closing:
                raise ExecutorError("LTDPService is closed: cannot start")
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._serve_loop, name="ltdp-serve", daemon=True
                )
                self._thread.start()
        return self

    def close(self, *, drain: bool = True) -> dict:
        """Stop admissions, drain (default) or flush the queue, tear down.

        Returns the final :meth:`stats` snapshot.  Idempotent.  With
        ``drain=False`` queued-but-unserved requests resolve as
        ``rejected`` instead of being served.
        """
        with self._cond:
            if self._state.closed:
                return self.stats()
            self._state.closing = True
            flushed: list[PendingRequest] = []
            if not drain:
                flushed = list(self._state.queue)
                self._state.queue.clear()
            self._cond.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join()
        with self._cond:
            # Never started (or flushing): whatever is still queued
            # cannot be served any more.
            flushed.extend(self._state.queue)
            self._state.queue.clear()
            for req in flushed:
                self._resolve_rejected(
                    req, "service closed before the request was served"
                )
        for session in self._sessions.values():
            session.finish()
        self._sessions.clear()
        if self._own_executor:
            self.executor.close()
        with self._cond:
            self._state.closed = True
        return self.stats()

    def __enter__(self) -> "LTDPService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the batcher ----------------------------------------------------
    def _serve_loop(self) -> None:
        while True:
            with self._cond:
                while not self._state.queue and not self._state.closing:
                    self._cond.wait()
                if not self._state.queue:
                    return  # closing and drained
                batch = list(self._state.queue)
                self._state.queue.clear()
            # Group same-class requests so consecutive solves share one
            # resident session (first arrival fixes group order).
            groups: "OrderedDict[tuple, list[PendingRequest]]" = OrderedDict()
            for req in batch:
                groups.setdefault(req.key, []).append(req)
            tracer = self.tracer
            for key, reqs in groups.items():
                ctx = (
                    tracer.span(
                        "serve.batch",
                        request_class=class_label(key),
                        size=len(reqs),
                    )
                    if tracer
                    else _NULL_CTX
                )
                with ctx:
                    for req in reqs:
                        self._serve_one(req)

    def _session_for(self, req: PendingRequest) -> ResidentSession:
        session = self._sessions.get(req.key)
        if session is not None:
            self._sessions.move_to_end(req.key)
            return session
        while len(self._sessions) >= self.max_sessions:
            _, evicted = self._sessions.popitem(last=False)
            evicted.finish()
        session = ResidentSession(
            self.executor,
            req.problem,
            num_procs=self.num_procs,
            use_delta=self.use_delta,
            seed=self.seed,
            tracer=self.tracer,
            journal_cap=self.journal_cap,
        )
        self._sessions[req.key] = session
        return session

    def _serve_one(self, req: PendingRequest) -> None:
        tracer = self.tracer
        t0 = time.perf_counter()
        ctx = (
            tracer.span("serve.request", request_id=req.request_id)
            if tracer
            else _NULL_CTX
        )
        with ctx:
            try:
                session = self._session_for(req)
                solution, cache, metrics = session.serve(req.problem)
            except ExecutorError as exc:
                response = ServeResponse(
                    request_id=req.request_id,
                    status=STATUS_ERROR,
                    latency_seconds=time.perf_counter() - t0,
                    reason=f"executor failure: {exc}",
                )
            except ReproError as exc:
                response = ServeResponse(
                    request_id=req.request_id,
                    status=STATUS_ERROR,
                    latency_seconds=time.perf_counter() - t0,
                    reason=f"solve failure: {exc}",
                )
            else:
                response = ServeResponse(
                    request_id=req.request_id,
                    status=STATUS_OK,
                    cache=cache,
                    solution=solution,
                    latency_seconds=time.perf_counter() - t0,
                    delta_cells=int(sum(metrics.fixup_changed_deltas)),
                    fixup_iterations=metrics.forward_fixup_iterations,
                )
        with self._cond:
            self._stats.setdefault(class_label(req.key), ClassStats()).observe(
                response
            )
        req._resolve(response)

    # -- observability --------------------------------------------------
    def stats(self) -> dict[str, dict]:
        """Per-class counter snapshot plus a ``"total"`` roll-up row."""
        with self._cond:
            rows = {label: cs.as_dict() for label, cs in self._stats.items()}
            total = ClassStats()
            for cs in self._stats.values():
                total = total.merged(cs)
        rows["total"] = total.as_dict()
        return rows

    @property
    def pending(self) -> int:
        with self._cond:
            return len(self._state.queue)
