"""``repro lint`` — static analysis for the engine's unwritten contracts.

The type system cannot see that the tropical zero must be spelled
``NEG_INF``, that code running inside pool workers must be deterministic
for superstep replay, or that the cost model only understands the
canonical phase vocabulary.  This package checks those contracts
mechanically, pre-merge:

========  ===========================  =========================================
code      name                         enforces
========  ===========================  =========================================
REP001    raw-tropical-zero            ``NEG_INF`` is the only spelling of 0̄
                                       outside ``repro/semiring/`` (autofix)
REP002    identity-unsafe-reduction    ``max()`` / ``np.maximum.reduce`` in
                                       tropical kernels carry an explicit
                                       ``NEG_INF`` identity
REP003    worker-determinism           no RNG / wall clock / env mutation /
                                       global writes reachable from pool workers
REP004    phase-discipline             superstep phases, tracer span phases and
                                       record labels use the canonical sets
                                       from ``repro.machine.metrics``
REP005    executor-exception-contract  executor failures are ``ExecutorError``
                                       subclasses; broad excepts need reasons
REP006    kernel-gate-declaration      classes registered as kernels declare a
                                       ``bit_identity_gate`` contract string
REP007    guarded-by-discipline        declared-guarded fields are only touched
                                       with their lock held (``guarded-by`` /
                                       ``guarded_fields`` / ``locked[...]``)
REP008    lock-order                   the static lock-acquisition graph is
                                       acyclic; acquire/release always pair
REP009    blocking-under-lock          no pipe I/O, waits, joins, dispatch or
                                       pickling while holding a state-role lock
========  ===========================  =========================================

Run it as ``repro lint [paths]`` or ``python -m repro.lint``; suppress a
finding with ``# repro: noqa[REPxxx]: reason`` (the reason is required).
See ``docs/static_analysis.md`` for the full catalog and how to add a
rule.
"""

from repro.lint.core import Finding, Rule
from repro.lint.runner import (
    LintResult,
    apply_fixes,
    lint_paths,
    lint_sources,
    run_lint_command,
)
from repro.lint.rules import default_rules

__all__ = [
    "Finding",
    "Rule",
    "LintResult",
    "apply_fixes",
    "lint_paths",
    "lint_sources",
    "run_lint_command",
    "default_rules",
]
