"""Best-effort project call graph for reachability-based rules.

Python is too dynamic for a sound call graph, so this one is built for a
specific job — deciding which functions can run *inside a pool worker
process* — and over-approximates on purpose:

- ``Name`` calls resolve to same-module functions and ``from m import f``
  targets when ``m`` is a project module;
- ``mod.f(...)`` calls resolve through ``import`` aliases to project
  modules;
- ``obj.method(...)`` calls on objects of unknown type resolve to *every*
  project class method with that name (this is what carries reachability
  from ``spec.execute(...)`` in the worker hooks into each
  ``SuperstepSpec`` subclass and onward into every problem kernel).

Over-approximation errs toward flagging: code that *might* run in a
worker is held to the worker determinism contract.  Dynamic dispatch the
graph cannot see (callables shipped as data) must be covered by naming
the entry points as roots — which is exactly how the pool protocol's
``_pool_worker_main`` / ``_w_*`` hooks are declared in
:class:`repro.lint.rules.WorkerDeterminismRule`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.core import ProjectContext, dotted_name

__all__ = ["FunctionUnit", "ModuleInfo", "CallGraph", "build_call_graph"]


@dataclass
class FunctionUnit:
    """One analyzable unit: a module-level function or a class method.

    Nested ``def``s are *not* split out — they are scanned as part of
    their enclosing unit, which matches how they become reachable.
    """

    key: str  #: ``"<module>:<qualname>"`` — globally unique
    module: str  #: dotted module name, e.g. ``repro.machine.pool``
    qualname: str  #: ``"f"`` or ``"Cls.m"``
    name: str  #: bare name (``"f"`` / ``"m"``)
    is_method: bool
    node: ast.AST
    relpath: str
    path: str


@dataclass
class ModuleInfo:
    """Import tables of one module, for name resolution."""

    module: str
    #: ``import x.y as z`` → ``{"z": "x.y"}`` (and ``{"x": "x"}`` for bare).
    aliases: dict[str, str] = field(default_factory=dict)
    #: ``from m import a as b`` → ``{"b": ("m", "a")}``.
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: bare name → unit key, for module-level functions of this module.
    functions: dict[str, str] = field(default_factory=dict)


class CallGraph:
    """Units, import tables, and resolved call edges of one project."""

    def __init__(self) -> None:
        self.units: dict[str, FunctionUnit] = {}
        self.modules: dict[str, ModuleInfo] = {}
        self.edges: dict[str, set[str]] = {}
        #: Unit keys handed to ``threading.Thread(target=...)`` (or
        #: ``Process(target=...)``) anywhere in the project: entry points
        #: of concurrent execution, used as extra reachability roots.
        self.thread_roots: set[str] = set()
        #: method name → unit keys, for unknown-receiver resolution.
        self._methods_by_name: dict[str, set[str]] = {}

    # -- construction ---------------------------------------------------
    def add_unit(self, unit: FunctionUnit) -> None:
        self.units[unit.key] = unit
        self.edges.setdefault(unit.key, set())
        if unit.is_method:
            self._methods_by_name.setdefault(unit.name, set()).add(unit.key)
        else:
            self.modules[unit.module].functions[unit.name] = unit.key

    def resolve_calls(self) -> None:
        """Populate ``edges`` from every unit's call sites."""
        for unit in self.units.values():
            info = self.modules[unit.module]
            targets = self.edges[unit.key]
            for node in ast.walk(unit.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name):
                    self._resolve_name_call(info, func.id, targets)
                elif isinstance(func, ast.Attribute):
                    self._resolve_attr_call(info, func, targets)

    def _resolve_name_call(
        self, info: ModuleInfo, name: str, targets: set[str]
    ) -> None:
        if name in info.functions:
            targets.add(info.functions[name])
            return
        if name in info.from_imports:
            mod, orig = info.from_imports[name]
            other = self.modules.get(mod)
            if other and orig in other.functions:
                targets.add(other.functions[orig])

    def _resolve_attr_call(
        self, info: ModuleInfo, func: ast.Attribute, targets: set[str]
    ) -> None:
        chain = dotted_name(func)
        if chain is None:
            # Receiver is an expression (call result, subscript, ...):
            # fall back to method-name matching on the final attribute.
            targets.update(self._methods_by_name.get(func.attr, ()))
            return
        head, rest = chain[0], chain[1:]
        base = info.aliases.get(head)
        if base is None and head in info.from_imports:
            mod, orig = info.from_imports[head]
            base = f"{mod}.{orig}"
        if base is not None:
            # Module-qualified call: project module function, or external.
            for split in range(len(rest), 0, -1):
                mod = ".".join([base, *rest[: split - 1]])
                other = self.modules.get(mod)
                if other and rest[split - 1] in other.functions:
                    targets.add(other.functions[rest[split - 1]])
                    return
            return  # external module — no project edge
        # Unknown receiver (self.x, spec.execute, store.apply, ...).
        targets.update(self._methods_by_name.get(chain[-1], ()))

    # -- queries --------------------------------------------------------
    def reachable_from(self, roots: set[str]) -> set[str]:
        """Transitive closure of ``edges`` from ``roots`` (unit keys)."""
        seen: set[str] = set()
        stack = [k for k in roots if k in self.units]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            stack.extend(self.edges.get(key, ()))
        return seen

    def units_matching(
        self, *, module_suffix: str, name_predicate
    ) -> set[str]:
        """Keys of units whose module ends with ``module_suffix`` and whose
        bare name satisfies ``name_predicate``."""
        return {
            key
            for key, unit in self.units.items()
            if unit.module.endswith(module_suffix) and name_predicate(unit.name)
        }


def module_name_of(relpath: str) -> str:
    """``repro/ltdp/engine/poolrt.py`` → ``repro.ltdp.engine.poolrt``."""
    parts = relpath.split("/")
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    elif parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    return ".".join(parts)


def build_call_graph(project: ProjectContext) -> CallGraph:
    graph = CallGraph()
    # First pass: modules + import tables + units (so cross-module edges
    # can resolve regardless of file order).
    for ctx in project.files:
        module = module_name_of(ctx.relpath)
        info = ModuleInfo(module=module)
        graph.modules[module] = info
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        info.aliases[alias.asname] = alias.name
                    else:
                        # ``import x.y`` binds ``x`` to the package root.
                        root = alias.name.split(".")[0]
                        info.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    info.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
    for ctx in project.files:
        module = module_name_of(ctx.relpath)
        _collect_units(graph, ctx, module)
    graph.resolve_calls()
    for ctx in project.files:
        _collect_thread_roots(graph, ctx, module_name_of(ctx.relpath))
    return graph


def _collect_thread_roots(graph: CallGraph, ctx, module: str) -> None:
    """Register ``Thread(target=...)`` / ``Process(target=...)`` targets.

    Spawning a thread is dynamic dispatch the call-graph edges cannot
    see, so every spawn target becomes a *root*: ``target=self._loop``
    resolves by method name (over-approximating, like attribute calls),
    ``target=fn`` through the module's function/import tables.
    """
    info = graph.modules[module]
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        ctor = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if ctor not in ("Thread", "Process"):
            continue
        for kw in node.keywords:
            if kw.arg != "target":
                continue
            target = kw.value
            if isinstance(target, ast.Attribute):
                # self._loop / obj.method: resolve by method name.
                graph.thread_roots |= graph._methods_by_name.get(
                    target.attr, set()
                )
            elif isinstance(target, ast.Name):
                if target.id in info.functions:
                    graph.thread_roots.add(info.functions[target.id])
                elif target.id in info.from_imports:
                    mod, orig = info.from_imports[target.id]
                    other = graph.modules.get(mod)
                    if other and orig in other.functions:
                        graph.thread_roots.add(other.functions[orig])


def _collect_units(graph: CallGraph, ctx, module: str) -> None:
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            graph.add_unit(
                FunctionUnit(
                    key=f"{module}:{node.name}",
                    module=module,
                    qualname=node.name,
                    name=node.name,
                    is_method=False,
                    node=node,
                    relpath=ctx.relpath,
                    path=ctx.path,
                )
            )
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    graph.add_unit(
                        FunctionUnit(
                            key=f"{module}:{node.name}.{item.name}",
                            module=module,
                            qualname=f"{node.name}.{item.name}",
                            name=item.name,
                            is_method=True,
                            node=item,
                            relpath=ctx.relpath,
                            path=ctx.path,
                        )
                    )
