"""``python -m repro.lint`` — standalone entry point for the linter."""

from __future__ import annotations

import sys

from repro.lint.runner import run_lint_command

if __name__ == "__main__":
    sys.exit(run_lint_command(prog="python -m repro.lint"))
