"""The repo-specific rules behind ``repro lint`` (REP001–REP009).

Each rule enforces a convention the runtime can only check late (or not
at all): the tropical-zero constant, identity-safe reductions, worker
determinism, canonical phase/label vocabulary, the executor error
contract, kernel gate declarations, and — the concurrency tier —
guarded-by discipline, lock-order acyclicity and no-blocking-under-lock
for the runner/pool/serve layers.  Canonical vocabularies are imported
from the modules that own them (:mod:`repro.machine.metrics`,
:mod:`repro.exceptions`) so the linter can never drift from the runtime.
"""

from __future__ import annotations

import ast
import inspect
from typing import Iterable

from repro import exceptions as _exceptions
from repro.exceptions import ExecutorError
from repro.lint.callgraph import CallGraph, ModuleInfo, build_call_graph
from repro.lint.core import (
    FileContext,
    Finding,
    ProjectContext,
    Rule,
    TextEdit,
    dotted_name,
)
from repro.lint.locks import (
    ROLE_STATE,
    build_class_models,
    build_project_model,
    site_block_reason,
)
from repro.machine.metrics import (
    KNOWN_LABEL_PREFIXES,
    RECORD_PHASES,
    TRACE_PHASES,
    TRACE_SPAN_NAMES,
)

__all__ = [
    "TropicalZeroLiteralRule",
    "IdentityUnsafeReductionRule",
    "WorkerDeterminismRule",
    "PhaseDisciplineRule",
    "ExecutorContractRule",
    "KernelGateDeclarationRule",
    "GuardedByDisciplineRule",
    "LockOrderRule",
    "BlockingUnderLockRule",
    "default_rules",
]

_NEG_INF_IMPORT = "repro.semiring.tropical:NEG_INF"


def _is_neg_inf_string(value: object) -> bool:
    return isinstance(value, str) and value.strip().lower() in ("-inf", "-infinity")


def _is_inf_string(value: object) -> bool:
    return isinstance(value, str) and value.strip().lower() in ("inf", "infinity")


def _is_float_call(node: ast.AST, predicate) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
        and len(node.args) == 1
        and not node.keywords
        and isinstance(node.args[0], ast.Constant)
        and predicate(node.args[0].value)
    )


def _is_inf_attribute(node: ast.AST) -> bool:
    """``math.inf`` / ``np.inf`` / ``numpy.inf`` (any alias named like those)."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr in ("inf", "infty")
        and isinstance(node.value, ast.Name)
        and node.value.id in ("math", "np", "numpy")
    )


class TropicalZeroLiteralRule(Rule):
    """REP001: the tropical zero is spelled ``NEG_INF``, nowhere else.

    Raw ``float("-inf")`` / ``-math.inf`` / ``-np.inf`` literals outside
    :mod:`repro.semiring` fork the definition of 0̄; if the semiring
    package ever hardens the representation (e.g. validation, a typed
    wrapper), stray literals silently opt out.  Autofixable: the literal
    becomes ``NEG_INF`` and the import is added.
    """

    code = "REP001"
    name = "raw-tropical-zero"
    summary = (
        "raw -inf literal outside repro/semiring/; use "
        "repro.semiring.tropical.NEG_INF"
    )

    def applies_to(self, relpath: str) -> bool:
        return not relpath.startswith("repro/semiring/")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        flagged: set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            target: ast.AST | None = None
            if _is_float_call(node, _is_neg_inf_string):
                target = node
            elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
                if _is_inf_attribute(node.operand) or _is_float_call(
                    node.operand, _is_inf_string
                ):
                    target = node
                    flagged.add(node.operand)
            if target is None or target in flagged:
                continue
            fix = None
            if (
                getattr(target, "end_lineno", None) == target.lineno
                and getattr(target, "end_col_offset", None) is not None
            ):
                fix = TextEdit(
                    line=target.lineno,
                    col=target.col_offset,
                    end_line=target.end_lineno,
                    end_col=target.end_col_offset,
                    replacement="NEG_INF",
                    requires_import=_NEG_INF_IMPORT,
                )
            yield ctx.finding(
                self,
                target,
                "raw tropical-zero literal; use NEG_INF from "
                "repro.semiring.tropical so 0̄ has a single definition",
                fix=fix,
            )


class IdentityUnsafeReductionRule(Rule):
    """REP002: tropical reductions need an explicit identity.

    ``max(xs)`` raises on an empty sequence and ``np.maximum.reduce(xs)``
    raises without an ``initial``; in tropical kernels the correct empty
    reduction is the identity 0̄ = ``NEG_INF``.  Reductions over
    iterables whose emptiness the linter cannot rule out must pass
    ``default=NEG_INF`` / ``initial=NEG_INF`` (or carry a reasoned
    suppression).  Comprehensions directly over ``range(...)`` are
    exempt: stage-index ranges are non-empty by the LTDP problem
    contract (``num_stages >= 1``).
    """

    code = "REP002"
    name = "identity-unsafe-reduction"
    summary = (
        "max()/np.maximum.reduce over a possibly-empty sequence without "
        "an explicit NEG_INF identity"
    )

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith(("repro/ltdp/", "repro/semiring/"))

    @staticmethod
    def _is_range_comprehension(node: ast.AST) -> bool:
        if not isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return False
        return all(
            isinstance(gen.iter, ast.Call)
            and isinstance(gen.iter.func, ast.Name)
            and gen.iter.func.id == "range"
            for gen in node.generators
        )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "max"
                and len(node.args) == 1
                and "default" not in kwargs
                and not self._is_range_comprehension(node.args[0])
            ):
                yield ctx.finding(
                    self,
                    node,
                    "max() over a possibly-empty sequence has no tropical "
                    "identity; pass default=NEG_INF (empty tropical "
                    "reductions must yield 0̄, not raise)",
                )
                continue
            chain = dotted_name(node.func)
            if (
                chain is not None
                and len(chain) == 3
                and chain[0] in ("np", "numpy")
                and chain[1:] == ["maximum", "reduce"]
                and "initial" not in kwargs
            ):
                yield ctx.finding(
                    self,
                    node,
                    "np.maximum.reduce without initial= raises on empty "
                    "input; pass initial=NEG_INF so the reduction has the "
                    "tropical identity",
                )


#: ``(module dotted-name suffix, bare-name predicate)`` pairs naming the
#: entry points that run inside pool worker processes.
_DEFAULT_WORKER_ROOTS = (
    ("machine.pool", lambda name: name == "_pool_worker_main"),
    ("engine.poolrt", lambda name: name.startswith("_w_")),
)

#: ``time`` attributes that are fine in worker code (trace stamps).
_ALLOWED_CLOCKS = frozenset(
    {
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
    }
)
_SEEDED_RNG_ENTRYPOINTS = frozenset({"default_rng", "Generator", "SeedSequence"})
_ENV_MUTATORS = frozenset(
    {"update", "setdefault", "pop", "popitem", "clear", "__setitem__"}
)


class WorkerDeterminismRule(Rule):
    """REP003: pool-worker-reachable code must be deterministic.

    Superstep replay (crash recovery, PR 2) rebuilds a dead worker's
    resident state by re-executing its journalled supersteps and relies
    on every replayed call being bit-identical.  This rule computes
    reachability from the worker loop (``machine/pool.py``), the
    worker-side runtime hooks (``ltdp/engine/poolrt.py`` ``_w_*``) and
    every ``threading.Thread(target=...)`` spawn target (runner loops,
    the serve batcher — tracked by the call graph) over the project
    call graph and flags nondeterminism sources in reachable code: the stdlib ``random`` module, wall-clock reads (``time.time``,
    ``datetime.now``), unseeded NumPy RNGs / the legacy global NumPy
    RNG, environment mutation, and module-global writes.
    ``time.perf_counter`` (trace stamps) is allowlisted.
    """

    code = "REP003"
    name = "worker-determinism"
    summary = (
        "nondeterminism (random/wall-clock/env/global writes) in code "
        "reachable from pool workers"
    )
    project_wide = True

    def __init__(self, roots=_DEFAULT_WORKER_ROOTS) -> None:
        self.roots = tuple(roots)

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        graph = build_call_graph(project)
        root_keys: set[str] = set()
        for suffix, predicate in self.roots:
            root_keys |= graph.units_matching(
                module_suffix=suffix, name_predicate=predicate
            )
        # Thread spawn targets (runner loops, the serve batcher) are
        # entry points of concurrent execution just like worker mains:
        # replay determinism must hold along everything they reach.
        root_keys |= graph.thread_roots
        for key in sorted(graph.reachable_from(root_keys)):
            unit = graph.units[key]
            info = graph.modules[unit.module]
            ctx = project.by_relpath(unit.relpath)
            if ctx is None:  # pragma: no cover - units come from project files
                continue
            yield from self._check_unit(ctx, unit, info)

    # -- per-unit checks ------------------------------------------------
    def _check_unit(self, ctx, unit, info: ModuleInfo) -> Iterable[Finding]:
        global_names: set[str] = set()
        for node in ast.walk(unit.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        for node in ast.walk(unit.node):
            if isinstance(node, ast.Call):
                reason = self._call_reason(node, info)
                if reason:
                    yield self._finding(ctx, node, unit, reason)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                yield from self._check_store(ctx, node, unit, info, global_names)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if self._is_environ_subscript(target, info):
                        yield self._finding(
                            ctx, node, unit, "deletes an os.environ entry"
                        )

    def _finding(self, ctx, node, unit, reason: str) -> Finding:
        return ctx.finding(
            self,
            node,
            f"{reason} in `{unit.qualname}`, which is reachable from the "
            "pool worker entry points; worker-resident code must be "
            "deterministic for superstep replay to stay bit-identical",
        )

    def _canonical(self, chain: list[str], info: ModuleInfo) -> str | None:
        head = chain[0]
        if head in info.aliases:
            return ".".join([info.aliases[head], *chain[1:]])
        if head in info.from_imports:
            mod, orig = info.from_imports[head]
            return ".".join([f"{mod}.{orig}", *chain[1:]])
        return None

    def _call_reason(self, node: ast.Call, info: ModuleInfo) -> str | None:
        if isinstance(node.func, ast.Name):
            chain = [node.func.id]
        else:
            chain = dotted_name(node.func)
        if chain is None:
            return None
        canonical = self._canonical(chain, info)
        if canonical is None:
            return None
        parts = canonical.split(".")
        if parts[0] == "random":
            return f"calls `{canonical}` (process-global stdlib RNG)"
        if canonical in ("time.time", "time.time_ns"):
            return f"reads the wall clock via `{canonical}`"
        if parts[0] == "time" and len(parts) == 2 and canonical not in _ALLOWED_CLOCKS:
            if parts[1] in ("ctime", "localtime", "gmtime", "strftime"):
                return f"reads the wall clock via `{canonical}`"
        if parts[0] == "datetime" and parts[-1] in ("now", "utcnow", "today"):
            return f"reads the wall clock via `{canonical}`"
        if canonical in ("os.putenv", "os.unsetenv"):
            return f"mutates the process environment via `{canonical}`"
        if (
            len(parts) >= 3
            and parts[:2] == ["os", "environ"]
            and parts[2] in _ENV_MUTATORS
        ):
            return f"mutates os.environ via `.{parts[2]}()`"
        if parts[:2] == ["numpy", "random"] and len(parts) >= 3:
            entry = parts[2]
            if entry in _SEEDED_RNG_ENTRYPOINTS:
                if not node.args and not node.keywords:
                    return (
                        f"creates an unseeded RNG via `{canonical}()`; pass "
                        "the spec's SeedSequence"
                    )
                return None
            return f"uses the legacy global NumPy RNG via `{canonical}`"
        return None

    def _is_environ_subscript(self, node: ast.AST, info: ModuleInfo) -> bool:
        if not isinstance(node, ast.Subscript):
            return False
        chain = dotted_name(node.value)
        if chain is None:
            return False
        return self._canonical(chain, info) == "os.environ"

    def _check_store(
        self, ctx, node, unit, info: ModuleInfo, global_names: set[str]
    ) -> Iterable[Finding]:
        targets = (
            node.targets
            if isinstance(node, ast.Assign)
            else [node.target]
        )
        for target in targets:
            if self._is_environ_subscript(target, info):
                yield self._finding(ctx, node, unit, "assigns into os.environ")
            elif isinstance(target, ast.Name) and target.id in global_names:
                yield self._finding(
                    ctx,
                    node,
                    unit,
                    f"writes module global `{target.id}`",
                )


class PhaseDisciplineRule(Rule):
    """REP004: phase/label vocabulary comes from ``machine/metrics.py``.

    The cost model prices a superstep by its phase; PR 3 fixed a bug
    where an unknown label was silently priced as forward work.  The
    runtime now raises on unknown phases — this rule catches the same
    class of bug *statically*: literal ``SuperstepRecord.phase`` values
    must be members of ``RECORD_PHASES``, a record built without an
    explicit phase must carry a label with a known prefix, tracer
    phase spans must use ``TRACE_PHASES`` members, and literal tracer
    span *names* must come from ``TRACE_SPAN_NAMES`` (the runner layer
    added ``runner.pull`` / ``program.instr``; an unregistered span name
    is invisible to trace summaries and the bench coverage check —
    the same silent-vocabulary-drift bug, one layer up).
    """

    code = "REP004"
    name = "phase-discipline"
    summary = (
        "superstep phase / tracer span phase / record label not in the "
        "canonical set from repro.machine.metrics"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_assign(ctx, node)

    @staticmethod
    def _literal_str(node: ast.AST | None) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        return None

    @staticmethod
    def _static_prefix(node: ast.AST | None) -> str | None:
        """Literal value, or an f-string's leading literal text."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.JoinedStr) and node.values:
            first = node.values[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                return first.value
        return None

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterable[Finding]:
        func = node.func
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        if func_name == "SuperstepRecord":
            phase_node = keywords.get("phase")
            phase = self._literal_str(phase_node)
            if phase:
                if phase not in RECORD_PHASES:
                    yield ctx.finding(
                        self,
                        phase_node,
                        f"SuperstepRecord phase {phase!r} is not in the "
                        f"canonical set {sorted(RECORD_PHASES)}; the cost "
                        "model cannot price it",
                    )
                return
            if phase_node is not None and phase is None:
                return  # dynamic phase expression: cannot check statically
            label_node = keywords.get("label")
            if label_node is None and node.args:
                label_node = node.args[0]
            label = self._static_prefix(label_node)
            if label is not None and not label.startswith(
                tuple(KNOWN_LABEL_PREFIXES)
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"SuperstepRecord label {label!r} has no explicit phase= "
                    "and matches no known label prefix; before PR 3 such "
                    "records were silently priced as forward work — set "
                    "phase='forward' or 'backward'",
                )
        elif func_name in ("span", "add_span"):
            if node.args:
                span_name = self._literal_str(node.args[0])
                if span_name is not None and span_name not in TRACE_SPAN_NAMES:
                    yield ctx.finding(
                        self,
                        node.args[0],
                        f"tracer span name {span_name!r} is not in the "
                        f"canonical set {sorted(TRACE_SPAN_NAMES)} "
                        "(repro.machine.metrics.TRACE_SPAN_NAMES); register "
                        "it there so summaries and coverage checks see it",
                    )
            if "phase" in keywords:
                phase = self._literal_str(keywords["phase"])
                if phase is not None and phase not in TRACE_PHASES:
                    yield ctx.finding(
                        self,
                        keywords["phase"],
                        f"tracer span phase {phase!r} is not in the canonical "
                        f"set {sorted(TRACE_PHASES)}",
                    )

    def _check_assign(self, ctx: FileContext, node: ast.Assign) -> Iterable[Finding]:
        value = self._literal_str(node.value)
        if value is None or value == "":
            return
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "phase"
                and value not in RECORD_PHASES
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"assigning phase {value!r}; the canonical phase set is "
                    f"{sorted(RECORD_PHASES)}",
                )


def _executor_error_names() -> frozenset[str]:
    """ExecutorError and its subclasses, read from repro.exceptions."""
    return frozenset(
        name
        for name, obj in vars(_exceptions).items()
        if inspect.isclass(obj) and issubclass(obj, ExecutorError)
    )


#: Raises that signal caller bugs / bad configuration rather than
#: executor failures; repro.exceptions documents that these propagate.
_VALIDATION_ERRORS = frozenset({"ValueError", "TypeError", "NotImplementedError"})

_RAISE_SCOPE = ("repro/machine/executor.py", "repro/machine/pool.py")
_EXCEPT_SCOPE = _RAISE_SCOPE + (
    "repro/ltdp/engine/poolrt.py",
    "repro/ltdp/engine/runner.py",
    "repro/machine/workqueue.py",
)


class ExecutorContractRule(Rule):
    """REP005: executor failures surface as ``ExecutorError`` subclasses.

    The driver, the CLI and the fault-tolerance machinery all dispatch on
    :class:`~repro.exceptions.ExecutorError`; a raw ``RuntimeError``
    escaping an executor bypasses crash recovery and the user-facing
    error contract.  ``ValueError`` / ``TypeError`` are exempt (argument
    validation — the repo's exception hierarchy deliberately lets caller
    bugs propagate).  Broad ``except Exception`` / ``except
    BaseException`` handlers in executor code are only legal with a
    reasoned ``# repro: noqa[REP005]`` suppression.
    """

    code = "REP005"
    name = "executor-exception-contract"
    summary = (
        "executor raise sites must use ExecutorError subclasses; broad "
        "excepts need a reasoned suppression"
    )

    def __init__(self) -> None:
        self._allowed_raises = _executor_error_names() | _VALIDATION_ERRORS

    def applies_to(self, relpath: str) -> bool:
        return relpath in _EXCEPT_SCOPE

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        check_raises = ctx.relpath in _RAISE_SCOPE
        for node in ast.walk(ctx.tree):
            if check_raises and isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)

    def _check_raise(self, ctx: FileContext, node: ast.Raise) -> Iterable[Finding]:
        exc = node.exc
        if exc is None:
            return  # bare re-raise keeps the original type
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = None
        if isinstance(exc, ast.Name):
            name = exc.id
        elif isinstance(exc, ast.Attribute):
            name = exc.attr
        if name is None or name in self._allowed_raises:
            return
        yield ctx.finding(
            self,
            node,
            f"executor code raises {name}; failures crossing the executor "
            "boundary must be ExecutorError subclasses (ValueError/"
            "TypeError argument validation is exempt)",
        )

    def _check_handler(
        self, ctx: FileContext, node: ast.ExceptHandler
    ) -> Iterable[Finding]:
        broad = None
        if node.type is None:
            broad = "bare except"
        else:
            types = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for t in types:
                if isinstance(t, ast.Name) and t.id in ("Exception", "BaseException"):
                    broad = f"except {t.id}"
                    break
        if broad:
            yield ctx.finding(
                self,
                node,
                f"broad `{broad}` in executor code can swallow protocol "
                "desyncs; narrow the exception types or add "
                "`# repro: noqa[REP005]: <why the breadth is required>`",
            )


class KernelGateDeclarationRule(Rule):
    """REP006: registered fast-path kernels declare their bit-identity gate.

    Every kernel handed to :func:`repro.kernels.register_kernel` may
    silently replace the dense per-stage path, so each one must carry a
    non-empty ``bit_identity_gate`` string documenting exactly when that
    replacement is legal (the registry re-checks at runtime; this rule
    catches it at lint time, before a worker ever loads the kernel).
    The whole project is scanned in one pass: kernel class definitions
    are collected wherever they live, registration call sites wherever
    they appear, and a registration of a gateless class is flagged at
    the call site.
    """

    code = "REP006"
    name = "kernel-gate-declaration"
    summary = (
        "register_kernel() callees must declare a non-empty "
        "bit_identity_gate class attribute"
    )
    project_wide = True

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        kernel_classes: dict[str, bool] = {}
        registrations: list[tuple[FileContext, ast.Call, str]] = []
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and self._is_kernel_class(node):
                    kernel_classes[node.name] = self._declares_gate(node)
                elif isinstance(node, ast.Call):
                    registered = self._registered_class(node)
                    if registered is not None:
                        registrations.append((ctx, node, registered))
        for ctx, node, class_name in registrations:
            # A class we cannot see (built dynamically, imported from
            # outside the lint run) is left to the runtime check in
            # ``register_kernel``, which raises KernelRegistrationError.
            if kernel_classes.get(class_name, True):
                continue
            yield ctx.finding(
                self,
                node,
                f"register_kernel() registers {class_name}, which declares "
                "no non-empty `bit_identity_gate`; every fast-path kernel "
                "must document the conditions under which it may replace "
                "the dense per-stage path",
            )

    @staticmethod
    def _is_kernel_class(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = None
            if isinstance(base, ast.Name):
                name = base.id
            elif isinstance(base, ast.Attribute):
                name = base.attr
            if name == "StageBlockKernel":
                return True
        return False

    @staticmethod
    def _declares_gate(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "bit_identity_gate":
                    return (
                        isinstance(value, ast.Constant)
                        and isinstance(value.value, str)
                        and bool(value.value.strip())
                    )
        return False

    @staticmethod
    def _registered_class(node: ast.Call) -> str | None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name != "register_kernel" or len(node.args) < 2:
            return None
        kernel_arg = node.args[1]
        if isinstance(kernel_arg, ast.Call):
            ctor = kernel_arg.func
            if isinstance(ctor, ast.Name):
                return ctor.id
            if isinstance(ctor, ast.Attribute):
                return ctor.attr
        return None


class GuardedByDisciplineRule(Rule):
    """REP007: declared-guarded fields are only touched with their lock held.

    :mod:`repro.lint.locks` discovers each class's lock attributes and
    its guarded-field declarations (``# guarded-by: self._lock`` on the
    field's assignment, or a class-level ``guarded_fields`` dict).  Any
    read or write of a declared field outside a ``with <lock>`` block —
    in a method not marked caller-locked via ``# repro: locked[<lock>]``
    — is a finding.  ``__init__`` is exempt: construction happens-before
    publication of ``self`` to other threads.  Malformed annotations
    (a guard naming an unknown lock, a non-literal ``guarded_fields``)
    are reported here too, so a typo cannot silently disable the check.
    """

    code = "REP007"
    name = "guarded-by-discipline"
    summary = (
        "declared-guarded field accessed without its lock held "
        "(guarded-by / guarded_fields / locked[...] annotations)"
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for model in build_class_models(ctx):
            for node, message in model.problems:
                yield ctx.finding(self, node, message)
            if not model.guarded:
                continue
            for method in model.methods.values():
                if method.name == "__init__":
                    continue
                for access in method.accesses:
                    lock = model.guarded.get(access.attr)
                    if lock is None or lock not in model.locks:
                        continue  # unknown guard already reported above
                    if lock in access.held:
                        continue
                    verb = "write to" if access.is_write else "read of"
                    yield ctx.finding(
                        self,
                        access.node,
                        f"{verb} `self.{access.attr}` in `{method.qualname}` "
                        f"without holding `self.{lock}` (declared guarded-by); "
                        f"wrap the access in `with self.{lock}:` or mark the "
                        f"method `# repro: locked[self.{lock}]` if every "
                        "caller already holds it",
                    )


def _find_cycles(edges: dict[str, dict[str, tuple]]) -> list[list[str]]:
    """Simple cycles (length ≥ 2) in the lock graph, deduplicated by node set."""
    cycles: list[list[str]] = []
    seen: set[frozenset[str]] = set()
    for start in sorted(edges):
        stack: list[tuple[str, tuple[str, ...]]] = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for nxt in sorted(edges.get(node, ())):
                if nxt == start and len(path) >= 2:
                    key = frozenset(path)
                    if key not in seen:
                        seen.add(key)
                        cycles.append([*path, start])
                elif nxt not in path and len(path) < 8:
                    stack.append((nxt, (*path, nxt)))
    return cycles


class LockOrderRule(Rule):
    """REP008: the static lock-acquisition graph must be acyclic.

    Every acquisition of lock *B* while lock *A* is held — directly
    nested ``with`` blocks / ``.acquire()`` calls, or through a resolved
    call whose callee transitively acquires *B* — adds the edge A → B.
    A cycle means two threads can acquire the same pair of locks in
    opposite orders: a deadlock that no test run is guaranteed to hit.
    Also flagged: re-acquisition of a *non-reentrant* ``Lock`` already
    held (self-deadlock), and a ``.acquire()`` with no ``release()`` in
    the same method (use ``with``, or release in a ``finally``).  Lock
    collections (``_worker_locks``) collapse to one ``[i]`` node — the
    pool keeps same-list acquisitions safe by sorted acquisition order.
    """

    code = "REP008"
    name = "lock-order"
    summary = (
        "cycle in the static lock-acquisition graph, non-reentrant "
        "re-acquisition, or acquire() without a paired release()"
    )
    project_wide = True

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        model = build_project_model(project)
        #: src node → dst node → first witness (path, line, col, context).
        edges: dict[str, dict[str, tuple]] = {}
        findings: list[Finding] = []

        def add_edge(src, dst, node, unit, via: str) -> None:
            witness = (
                unit.path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                f"{unit.method.qualname}{via}",
            )
            edges.setdefault(src, {}).setdefault(dst, witness)

        def reacquire(src_info, node, unit, via: str) -> None:
            findings.append(
                Finding(
                    code=self.code,
                    message=(
                        f"`{unit.method.qualname}`{via} re-acquires "
                        f"non-reentrant `{src_info.node_name}` while already "
                        "holding it: guaranteed self-deadlock (use an RLock "
                        "or restructure so the lock is taken once)"
                    ),
                    path=unit.path,
                    line=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                )
            )

        for uid in sorted(model.units):
            unit = model.units[uid]
            cls = unit.cls
            if cls is None:
                continue
            for acq in unit.method.acquisitions:
                dst = cls.locks.get(acq.attr)
                if dst is None:
                    continue
                for held_attr in sorted(acq.held_before):
                    src = cls.locks.get(held_attr)
                    if src is None:
                        continue
                    if src.node_name == dst.node_name:
                        if not dst.reentrant:
                            reacquire(src, acq.node, unit, "")
                        continue
                    add_edge(src.node_name, dst.node_name, acq.node, unit, "")
                if not acq.via_with and acq.attr not in unit.method.releases:
                    findings.append(
                        Finding(
                            code=self.code,
                            message=(
                                f"`{unit.method.qualname}` calls "
                                f"`{acq.attr}.acquire()` with no matching "
                                "`release()` in the same method; use `with "
                                f"self.{acq.attr}:` or release in a "
                                "`finally` block so an exception cannot "
                                "leak the lock"
                            ),
                            path=unit.path,
                            line=getattr(acq.node, "lineno", 1),
                            col=getattr(acq.node, "col_offset", 0),
                        )
                    )
            for site in unit.method.call_sites:
                if not site.held:
                    continue
                callee = model.callee_of(site)
                if callee is None or callee not in model.units:
                    continue
                via = f" (via `{model.units[callee].qualname}`)"
                for dst_name in sorted(model.transitive_acquires.get(callee, ())):
                    for held_attr in sorted(site.held):
                        src = cls.locks.get(held_attr)
                        if src is None:
                            continue
                        if src.node_name == dst_name:
                            if not src.reentrant:
                                reacquire(src, site.node, unit, via)
                            continue
                        add_edge(src.node_name, dst_name, site.node, unit, via)
        for cycle in _find_cycles(edges):
            hops = []
            for a, b in zip(cycle, cycle[1:]):
                path, line, _col, where = edges[a][b]
                hops.append(f"{b} (acquired in `{where}`, {path}:{line})")
            first = edges[cycle[0]][cycle[1]]
            findings.append(
                Finding(
                    code=self.code,
                    message=(
                        "lock-order cycle: holding "
                        f"{cycle[0]} → " + " → ".join(hops) + "; two threads "
                        "taking these locks in opposite orders deadlock — "
                        "pick one global acquisition order"
                    ),
                    path=first[0],
                    line=first[1],
                    col=first[2],
                )
            )
        seen: set[tuple] = set()
        for f in sorted(findings, key=Finding.sort_key):
            key = (f.path, f.line, f.message)
            if key not in seen:
                seen.add(key)
                yield f


class BlockingUnderLockRule(Rule):
    """REP009: never block while holding a *state* lock.

    Pipe sends/receives, ``Condition``/``Event`` waits, thread/process
    joins, sleeps, executor dispatch round-trips and payload pickling
    all stall every thread contending for the held lock — the PR 6/7
    teardown-deadlock class.  Flagged directly at the call site and
    transitively through resolved calls (with the trail in the message).
    Exemptions: waiting on the *same* condition the block holds (the
    wait releases it — that is the point of a condition variable), and
    locks created with ``# lock-role: transport`` (the pool's per-worker
    pipe locks exist to serialize exactly this I/O).
    """

    code = "REP009"
    name = "blocking-under-lock"
    summary = (
        "blocking call (pipe I/O, wait, join, sleep, dispatch, pickling) "
        "while holding a state-role lock"
    )
    project_wide = True

    @staticmethod
    def _own_wait_exempt(site, state_held: set[str]) -> bool:
        return (
            site.attr_name in ("wait", "wait_for")
            and bool(site.recv_locks)
            and site.recv_locks <= site.held
            and state_held <= site.recv_locks
        )

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        model = build_project_model(project)
        for uid in sorted(model.units):
            unit = model.units[uid]
            cls = unit.cls
            if cls is None:
                continue
            for site in unit.method.call_sites:
                state_held = {
                    attr
                    for attr in site.held
                    if attr in cls.locks and cls.locks[attr].role == ROLE_STATE
                }
                if not state_held:
                    continue
                held_names = ", ".join(
                    f"`{cls.locks[a].node_name}`" for a in sorted(state_held)
                )
                reason = site_block_reason(site)
                if reason is not None:
                    if self._own_wait_exempt(site, state_held):
                        continue
                    yield Finding(
                        code=self.code,
                        message=(
                            f"{reason} while holding {held_names} in "
                            f"`{unit.method.qualname}`; blocking under a "
                            "state lock stalls every contending thread — "
                            "move the call outside the `with` block (or mark "
                            "the lock `# lock-role: transport` if "
                            "serializing this I/O is its purpose)"
                        ),
                        path=unit.path,
                        line=site.node.lineno,
                        col=site.node.col_offset,
                    )
                    continue
                callee = model.callee_of(site)
                if callee is None or callee not in model.blocks:
                    continue
                breason, trail = model.blocks[callee]
                via = " → ".join(
                    (model.units[callee].qualname, *trail)
                )
                yield Finding(
                    code=self.code,
                    message=(
                        f"call to `{model.units[callee].qualname}` can block "
                        f"({breason}, via {via}) while holding {held_names} "
                        f"in `{unit.method.qualname}`; blocking under a "
                        "state lock stalls every contending thread"
                    ),
                    path=unit.path,
                    line=site.node.lineno,
                    col=site.node.col_offset,
                )


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, in code order."""
    return [
        TropicalZeroLiteralRule(),
        IdentityUnsafeReductionRule(),
        WorkerDeterminismRule(),
        PhaseDisciplineRule(),
        ExecutorContractRule(),
        KernelGateDeclarationRule(),
        GuardedByDisciplineRule(),
        LockOrderRule(),
        BlockingUnderLockRule(),
    ]
