"""Static lock model behind the concurrency rules (REP007–REP009).

The runner/pool/serve layers (PRs 6–8) synchronize with a handful of
``threading.Lock`` / ``RLock`` / ``Condition`` attributes.  This module
builds a *static* model of that synchronization, per class:

- **lock discovery** — ``self._x = threading.Lock()`` (and ``RLock`` /
  ``Condition``; plain, annotated, or list-of-locks via a ``list[...]``
  annotation or ``.append(threading.RLock())``) registers ``_x`` as a
  lock attribute of the class.  A ``# lock-role: transport`` comment on
  the creating line marks a lock whose *purpose* is to serialize
  blocking I/O (the pool's per-worker pipe locks); blocking calls under
  such a lock are by design and exempt from REP009.
- **guarded-field declarations** — ``# guarded-by: self._lock`` on a
  field's assignment line, or a class-level ``guarded_fields =
  {"_field": "_lock"}`` dict, declares which lock must be held around
  every access of that field (REP007).
- **caller-locked methods** — ``# repro: locked[self._lock]`` on a
  ``def`` line documents that the method is only called with the lock
  already held; its body is analyzed with that lock in the held set.
- **held-lock tracking** — each method body is walked statement by
  statement with the set of held locks: ``with self._lock:`` blocks,
  explicit ``.acquire()`` / ``.release()`` pairs (including the local
  alias pattern ``locks = [self._worker_locks[w] ...]; for lock in
  locks: lock.acquire()``), lambdas and nested ``def``\\ s inheriting
  the enclosing held set.  A lock acquired inside a branch or loop is
  conservatively treated as held for the rest of the enclosing block
  (matching the acquire-in-loop idiom); ``release`` removes it.
- **typed call resolution** — ``self.m()``, ``self.attr.m()`` (attr
  type inferred from ``self.attr = ClassName(...)`` or an annotated
  ``__init__`` parameter), ``param.m()`` (annotated parameters), and
  same-module / ``from``-imported module functions resolve to project
  units.  Unlike :mod:`repro.lint.callgraph` — which *over*-approximates
  for the determinism rule — this resolution deliberately
  **under**-approximates: a lock-order or blocking edge is only drawn
  when the callee is known, so REP008/REP009 never hallucinate edges
  from name collisions.

On top of the per-class models, :class:`ProjectLockModel` computes
per-unit fixpoint summaries — the set of locks a call may transitively
acquire (REP008's acquisition graph) and whether a call may transitively
block (REP009) — with witness trails for the messages.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from repro.lint.callgraph import module_name_of
from repro.lint.core import FileContext, ProjectContext, _iter_comments, dotted_name

__all__ = [
    "ROLE_STATE",
    "ROLE_TRANSPORT",
    "LockInfo",
    "Acquisition",
    "CallSite",
    "FieldAccess",
    "MethodModel",
    "ClassLockModel",
    "UnitModel",
    "ProjectLockModel",
    "build_class_models",
    "build_project_model",
    "site_block_reason",
]

ROLE_STATE = "state"
ROLE_TRANSPORT = "transport"
_ROLES = (ROLE_STATE, ROLE_TRANSPORT)

#: threading constructors we model, and whether they are reentrant.
#: (``Condition`` wraps an RLock by default.)
_LOCK_CTORS = {"Lock": False, "RLock": True, "Condition": True}

#: Annotation roots that mark a lock *collection* attribute.
_LIST_ANN_ROOTS = frozenset({"list", "List", "tuple", "Tuple", "Sequence", "deque"})

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*(?P<lock>(?:self\.)?[A-Za-z_]\w*)")
_LOCK_ROLE_RE = re.compile(r"#\s*lock-role:\s*(?P<role>[\w-]+)")
_LOCKED_RE = re.compile(r"#\s*repro:\s*locked\[(?P<locks>[^\]]+)\]")

#: Method names whose call blocks the calling thread (pipe I/O, waits,
#: joins, dispatch round-trips).  Matched on the final attribute so a
#: computed receiver (``self._conns[w].send``) still matches.
_BLOCKING_PIPE = frozenset({"send", "recv", "send_bytes", "recv_bytes", "poll"})
_BLOCKING_DISPATCH = frozenset(
    {"dispatch", "_dispatch", "_dispatch_locked", "run_superstep", "call_slots", "broadcast"}
)
_BLOCKING_WAIT = frozenset({"wait", "wait_for"})


def _strip_self(name: str) -> str:
    return name[5:] if name.startswith("self.") else name


@dataclass(frozen=True)
class LockInfo:
    """One discovered lock attribute of one class."""

    attr: str
    owner: str  #: class name
    kind: str  #: ``Lock`` / ``RLock`` / ``Condition``
    reentrant: bool
    is_list: bool  #: a collection of locks (``_worker_locks``)
    role: str  #: ``state`` (default) or ``transport``
    line: int

    @property
    def node_name(self) -> str:
        """Graph-node spelling: ``Cls._lock`` / ``Cls._worker_locks[i]``."""
        suffix = "[i]" if self.is_list else ""
        return f"{self.owner}.{self.attr}{suffix}"


@dataclass(frozen=True)
class Acquisition:
    """One static lock acquisition (a ``with`` item or ``.acquire()``)."""

    attr: str
    node: ast.AST
    held_before: frozenset[str]
    via_with: bool


@dataclass(frozen=True)
class CallSite:
    """One call expression, with the locks held when it executes."""

    node: ast.Call
    held: frozenset[str]
    attr_name: str | None  #: final attribute / bare name being called
    chain: tuple[str, ...] | None  #: full dotted chain when statically known
    recv_is_const_str: bool  #: receiver is a string literal (``",".join``)
    recv_locks: frozenset[str]  #: receiver resolves to these own-class locks


@dataclass(frozen=True)
class FieldAccess:
    """One ``self.<attr>`` read or write."""

    attr: str
    node: ast.AST
    held: frozenset[str]
    is_write: bool


@dataclass
class MethodModel:
    """Walk results for one method (or module-level function)."""

    name: str
    qualname: str
    node: ast.AST
    caller_locked: frozenset[str]
    param_types: dict[str, str]
    accesses: list[FieldAccess] = field(default_factory=list)
    acquisitions: list[Acquisition] = field(default_factory=list)
    releases: set[str] = field(default_factory=set)
    call_sites: list[CallSite] = field(default_factory=list)


@dataclass
class ClassLockModel:
    """Locks, guarded-field declarations and method walks of one class."""

    name: str
    module: str
    path: str
    relpath: str
    node: ast.ClassDef
    locks: dict[str, LockInfo] = field(default_factory=dict)
    guarded: dict[str, str] = field(default_factory=dict)  #: field -> lock attr
    guarded_nodes: dict[str, ast.AST] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, MethodModel] = field(default_factory=dict)
    #: Malformed annotations: ``(node, message)`` — surfaced by REP007.
    problems: list[tuple[ast.AST, str]] = field(default_factory=list)


# -- method-body walker -------------------------------------------------


class _MethodWalker:
    """Single pass over one method body tracking the held-lock set.

    ``with`` bodies get a copied set (the lock is released on exit);
    branch/loop/try bodies share the enclosing set, so an ``.acquire()``
    inside them is treated as held for the rest of the enclosing block —
    the conservative reading of the acquire-in-loop idiom.  Lambdas and
    nested ``def``\\ s inherit the held set at their definition point.
    """

    def __init__(self, locks: dict[str, LockInfo], caller_locked: frozenset[str]) -> None:
        self._locks = locks
        self._caller_locked = caller_locked
        self._bindings: dict[str, frozenset[str]] = {}
        self.accesses: list[FieldAccess] = []
        self.acquisitions: list[Acquisition] = []
        self.releases: set[str] = set()
        self.call_sites: list[CallSite] = []

    def walk(self, fn: ast.AST) -> None:
        held: set[str] = set(self._caller_locked)
        self._body(getattr(fn, "body", []), held)

    # -- statements ----------------------------------------------------
    def _body(self, stmts, held: set[str]) -> None:
        for stmt in stmts:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: set[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._body(stmt.body, set(held))
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            entered: list[str] = []
            for item in stmt.items:
                self._scan(item.context_expr, held)
                for attr in sorted(self._lock_expr(item.context_expr)):
                    self.acquisitions.append(
                        Acquisition(
                            attr=attr,
                            node=item.context_expr,
                            held_before=frozenset(held | set(entered)),
                            via_with=True,
                        )
                    )
                    entered.append(attr)
                if item.optional_vars is not None:
                    self._scan(item.optional_vars, held)
            inner = set(held)
            inner.update(entered)
            self._body(stmt.body, inner)
            return
        if isinstance(stmt, ast.If):
            self._scan(stmt.test, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_for(stmt)
            self._scan(stmt.iter, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            self._scan(stmt.test, held)
            self._body(stmt.body, held)
            self._body(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._body(stmt.body, held)
            for handler in stmt.handlers:
                self._body(handler.body, held)
            self._body(stmt.orelse, held)
            self._body(stmt.finalbody, held)
            return
        if isinstance(stmt, ast.Assign):
            self._maybe_bind(stmt)
        self._scan(stmt, held)

    # -- expressions ---------------------------------------------------
    def _scan(self, node: ast.AST, held: set[str]) -> None:
        if isinstance(node, ast.Call):
            for child in ast.iter_child_nodes(node):
                self._scan(child, held)
            self._handle_call(node, held)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                self.accesses.append(
                    FieldAccess(
                        attr=node.attr,
                        node=node,
                        held=frozenset(held),
                        is_write=isinstance(node.ctx, (ast.Store, ast.Del)),
                    )
                )
            else:
                self._scan(node.value, held)
            return
        for child in ast.iter_child_nodes(node):
            self._scan(child, held)

    def _handle_call(self, call: ast.Call, held: set[str]) -> None:
        func = call.func
        attr_name: str | None = None
        recv: ast.AST | None = None
        if isinstance(func, ast.Attribute):
            attr_name = func.attr
            recv = func.value
        elif isinstance(func, ast.Name):
            attr_name = func.id
        if attr_name in ("acquire", "release") and recv is not None:
            locks = self._lock_expr(recv)
            if locks:
                for attr in sorted(locks):
                    if attr_name == "acquire":
                        self.acquisitions.append(
                            Acquisition(
                                attr=attr,
                                node=call,
                                held_before=frozenset(held),
                                via_with=False,
                            )
                        )
                        held.add(attr)
                    else:
                        self.releases.add(attr)
                        held.discard(attr)
                return
        chain = dotted_name(func)
        self.call_sites.append(
            CallSite(
                node=call,
                held=frozenset(held),
                attr_name=attr_name,
                chain=tuple(chain) if chain else None,
                recv_is_const_str=(
                    isinstance(recv, ast.Constant) and isinstance(recv.value, str)
                ),
                recv_locks=(
                    frozenset(self._lock_expr(recv)) if recv is not None else frozenset()
                ),
            )
        )

    # -- lock expressions and local aliases ----------------------------
    def _lock_expr(self, node: ast.AST) -> set[str]:
        """Own-class lock attributes the expression denotes."""
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                info = self._locks.get(node.attr)
                if info is not None and not info.is_list:
                    return {node.attr}
            return set()
        if isinstance(node, ast.Subscript):
            inner = node.value
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                info = self._locks.get(inner.attr)
                if info is not None and info.is_list:
                    return {inner.attr}
            return set()
        if isinstance(node, ast.Name):
            return set(self._bindings.get(node.id, frozenset()))
        return set()

    def _locks_in_value(self, value: ast.AST) -> set[str]:
        out: set[str] = set()
        for node in ast.walk(value):
            out |= self._lock_expr(node)
        return out

    def _maybe_bind(self, stmt: ast.Assign) -> None:
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            locks = self._locks_in_value(stmt.value)
            if locks:
                self._bindings[stmt.targets[0].id] = frozenset(locks)

    def _bind_for(self, stmt) -> None:
        if isinstance(stmt.target, ast.Name):
            locks = self._locks_in_value(stmt.iter)
            if locks:
                self._bindings[stmt.target.id] = frozenset(locks)


# -- class model construction ------------------------------------------


def _lock_ctor_kind(value: ast.AST) -> str | None:
    """``threading.Lock()`` / bare ``Lock()`` → ``"Lock"`` (etc.)."""
    if not isinstance(value, ast.Call):
        return None
    chain = dotted_name(value.func)
    if not chain or chain[-1] not in _LOCK_CTORS:
        return None
    if len(chain) == 1 or chain[0] in ("threading", "_thread"):
        return chain[-1]
    return None


def _annotation_lock_kind(ann: ast.AST | None) -> tuple[str | None, bool]:
    """Lock kind named inside an annotation, and whether it is a collection."""
    if ann is None:
        return None, False
    kind = None
    for node in ast.walk(ann):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name in _LOCK_CTORS and kind is None:
            kind = name
    if kind is None:
        return None, False
    is_list = False
    root = ann
    if isinstance(root, ast.Subscript):
        base = dotted_name(root.value)
        if base and base[-1] in _LIST_ANN_ROOTS:
            is_list = True
    return kind, is_list


def _self_attr_target(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _param_types(fn) -> dict[str, str]:
    out: dict[str, str] = {}
    args = fn.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        ann = arg.annotation
        name = None
        if isinstance(ann, ast.Name):
            name = ann.id
        elif isinstance(ann, ast.Attribute):
            name = ann.attr
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value.strip()
        if name and name.isidentifier():
            out[arg.arg] = name
    return out


def _caller_locked(fn, comments: dict[int, str], locks, problems, cls_name) -> frozenset[str]:
    """Parse ``# repro: locked[self._lock]`` on the def/signature lines."""
    first_body = fn.body[0].lineno if fn.body else fn.lineno
    found: set[str] = set()
    for line in range(fn.lineno, first_body + 1):
        text = comments.get(line)
        if not text:
            continue
        m = _LOCKED_RE.search(text)
        if not m:
            continue
        for raw in m.group("locks").split(","):
            attr = _strip_self(raw.strip())
            if attr in locks:
                found.add(attr)
            else:
                problems.append(
                    (
                        fn,
                        f"`# repro: locked[{raw.strip()}]` on `{cls_name}.{fn.name}` "
                        f"names no discovered lock attribute of {cls_name} "
                        f"(known locks: {sorted(locks) or 'none'})",
                    )
                )
    return frozenset(found)


def _discover_locks(cls: ast.ClassDef, comments: dict[int, str], problems) -> dict[str, LockInfo]:
    locks: dict[str, LockInfo] = {}

    def register(attr: str, kind: str, is_list: bool, line: int) -> None:
        role = ROLE_STATE
        text = comments.get(line, "")
        m = _LOCK_ROLE_RE.search(text)
        if m:
            role = m.group("role")
            if role not in _ROLES:
                problems.append(
                    (
                        cls,
                        f"`# lock-role: {role}` on line {line} is not one of "
                        f"{_ROLES}",
                    )
                )
                role = ROLE_STATE
        existing = locks.get(attr)
        if existing is not None:
            is_list = is_list or existing.is_list
            if existing.role != ROLE_STATE:
                role = existing.role
        locks[attr] = LockInfo(
            attr=attr,
            owner=cls.name,
            kind=kind,
            reentrant=_LOCK_CTORS[kind],
            is_list=is_list,
            role=role,
            line=line,
        )

    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr = _self_attr_target(node.targets[0])
            if attr:
                kind = _lock_ctor_kind(node.value)
                if kind:
                    register(attr, kind, False, node.lineno)
                    continue
                if isinstance(node.value, (ast.List, ast.ListComp)):
                    for sub in ast.walk(node.value):
                        kind = _lock_ctor_kind(sub)
                        if kind:
                            register(attr, kind, True, node.lineno)
                            break
        elif isinstance(node, ast.AnnAssign):
            attr = _self_attr_target(node.target)
            if attr:
                kind = _lock_ctor_kind(node.value) if node.value is not None else None
                if kind:
                    register(attr, kind, False, node.lineno)
                    continue
                kind, is_list = _annotation_lock_kind(node.annotation)
                if kind:
                    register(attr, kind, is_list, node.lineno)
        elif isinstance(node, ast.Call):
            # self._worker_locks.append(threading.RLock())
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "append"
                and node.args
            ):
                attr = _self_attr_target(func.value)
                kind = _lock_ctor_kind(node.args[0])
                if attr and kind:
                    register(attr, kind, True, node.lineno)
    return locks


def _collect_guards(model: ClassLockModel, comments: dict[int, str]) -> None:
    cls = model.node
    # Class-level ``guarded_fields = {"_field": "_lock"}``.
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "guarded_fields"
        ):
            if not isinstance(stmt.value, ast.Dict):
                model.problems.append(
                    (stmt, "`guarded_fields` must be a literal dict of "
                           '{"_field": "_lock"} string pairs')
                )
                continue
            for k, v in zip(stmt.value.keys, stmt.value.values):
                if (
                    isinstance(k, ast.Constant)
                    and isinstance(k.value, str)
                    and isinstance(v, ast.Constant)
                    and isinstance(v.value, str)
                ):
                    model.guarded[k.value] = _strip_self(v.value)
                    model.guarded_nodes[k.value] = stmt
                else:
                    model.problems.append(
                        (stmt, "`guarded_fields` entries must be string "
                               "literals mapping field name to lock name")
                    )
    # Inline ``# guarded-by: self._lock`` on field assignment lines.
    for node in ast.walk(cls):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = _self_attr_target(node.targets[0])
        elif isinstance(node, ast.AnnAssign):
            target = _self_attr_target(node.target)
        if not target:
            continue
        text = comments.get(node.lineno)
        if not text:
            continue
        m = _GUARDED_BY_RE.search(text)
        if m:
            model.guarded[target] = _strip_self(m.group("lock"))
            model.guarded_nodes[target] = node


def _build_class_model(
    ctx: FileContext, cls: ast.ClassDef, comments: dict[int, str], module: str
) -> ClassLockModel:
    model = ClassLockModel(
        name=cls.name,
        module=module,
        path=ctx.path,
        relpath=ctx.relpath,
        node=cls,
    )
    model.locks = _discover_locks(cls, comments, model.problems)
    _collect_guards(model, comments)
    for field_name, lock_attr in model.guarded.items():
        if lock_attr not in model.locks:
            model.problems.append(
                (
                    model.guarded_nodes.get(field_name, cls),
                    f"`{field_name}` is declared guarded by `{lock_attr}`, "
                    f"which is not a discovered lock attribute of {cls.name} "
                    f"(known locks: {sorted(model.locks) or 'none'})",
                )
            )
    for item in cls.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        caller_locked = _caller_locked(
            item, comments, model.locks, model.problems, cls.name
        )
        walker = _MethodWalker(model.locks, caller_locked)
        walker.walk(item)
        # Infer attribute types from ctor assignments / annotated params.
        ptypes = _param_types(item)
        for stmt in ast.walk(item):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                attr = _self_attr_target(stmt.targets[0])
                if not attr:
                    continue
                value = stmt.value
                if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                    model.attr_types.setdefault(attr, value.func.id)
                elif isinstance(value, ast.Name) and value.id in ptypes:
                    model.attr_types.setdefault(attr, ptypes[value.id])
        method = MethodModel(
            name=item.name,
            qualname=f"{cls.name}.{item.name}",
            node=item,
            caller_locked=caller_locked,
            param_types=ptypes,
            accesses=walker.accesses,
            acquisitions=walker.acquisitions,
            releases=walker.releases,
            call_sites=walker.call_sites,
        )
        model.methods[item.name] = method
    return model


def build_class_models(ctx: FileContext) -> list[ClassLockModel]:
    """Per-class lock models for one file (top-level classes only)."""
    comments = {line: text for line, _col, text in _iter_comments(ctx.source)}
    module = module_name_of(ctx.relpath)
    return [
        _build_class_model(ctx, node, comments, module)
        for node in ctx.tree.body
        if isinstance(node, ast.ClassDef)
    ]


# -- blocking predicate -------------------------------------------------


def site_block_reason(site: CallSite) -> str | None:
    """Why this call blocks the calling thread, or ``None``.

    Context-free: the own-condition ``wait`` exemption (waiting releases
    the lock being waited on) is applied by the *caller*, because it
    depends on which locks are held and, transitively, on whose.
    """
    attr = site.attr_name
    if attr is None:
        return None
    chain = site.chain
    if attr in _BLOCKING_WAIT:
        return f"`{attr}()` (condition/event wait)"
    if attr == "join":
        if site.recv_is_const_str:
            return None  # ", ".join(...) — string joining, not thread joining
        if chain and len(chain) >= 3 and chain[0] == "os" and chain[1] == "path":
            return None
        return "`join()` (thread/process join)"
    if attr == "sleep":
        return "`sleep()`"
    if attr in _BLOCKING_PIPE:
        return f"`{attr}()` (pipe I/O)"
    if attr in _BLOCKING_DISPATCH:
        return f"`{attr}()` (executor dispatch round-trip)"
    if attr in ("dumps", "loads") and chain and chain[0] == "pickle":
        return f"`pickle.{attr}()` (payload pickling)"
    return None


# -- project model ------------------------------------------------------


@dataclass
class UnitModel:
    """One analyzable unit: a class method or a module-level function."""

    uid: tuple
    qualname: str
    module: str
    cls: ClassLockModel | None
    method: MethodModel
    path: str


@dataclass
class _Imports:
    aliases: dict[str, str] = field(default_factory=dict)
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)


def _method_uid(cls: ClassLockModel, method: str) -> tuple:
    return ("c", cls.module, cls.name, method)


class ProjectLockModel:
    """All class models plus cross-unit fixpoint summaries."""

    def __init__(self) -> None:
        self.classes: list[ClassLockModel] = []
        self.classes_by_name: dict[str, ClassLockModel] = {}
        self.units: dict[tuple, UnitModel] = {}
        self._functions: dict[tuple[str, str], tuple] = {}
        self._imports: dict[str, _Imports] = {}
        #: uid → set of lock node-names the unit may transitively acquire.
        self.transitive_acquires: dict[tuple, set[str]] = {}
        #: uid → ``(reason, via-trail)`` when the unit may block.
        self.blocks: dict[tuple, tuple[str, tuple[str, ...]]] = {}
        self._site_callees: dict[int, tuple] = {}

    # -- resolution ----------------------------------------------------
    def resolve(self, site: CallSite, unit: UnitModel) -> tuple | None:
        """Callee uid for a call site, or ``None`` (under-approximating)."""
        chain = site.chain
        if not chain:
            return None
        if chain[0] == "self" and unit.cls is not None:
            if len(chain) == 2:
                if chain[1] in unit.cls.methods:
                    return _method_uid(unit.cls, chain[1])
                return None
            if len(chain) == 3:
                tname = unit.cls.attr_types.get(chain[1])
                target = self.classes_by_name.get(tname) if tname else None
                if target is not None and chain[2] in target.methods:
                    return _method_uid(target, chain[2])
            return None
        if len(chain) == 2:
            tname = unit.method.param_types.get(chain[0])
            target = self.classes_by_name.get(tname) if tname else None
            if target is not None and chain[1] in target.methods:
                return _method_uid(target, chain[1])
            imports = self._imports.get(unit.module)
            if imports is not None:
                base = imports.aliases.get(chain[0])
                if base is not None and (base, chain[1]) in self._functions:
                    return ("f", base, chain[1])
            return None
        if len(chain) == 1:
            name = chain[0]
            if (unit.module, name) in self._functions:
                return ("f", unit.module, name)
            imports = self._imports.get(unit.module)
            if imports is not None and name in imports.from_imports:
                mod, orig = imports.from_imports[name]
                if (mod, orig) in self._functions:
                    return ("f", mod, orig)
                target = self.classes_by_name.get(orig)
                if (
                    target is not None
                    and target.module == mod
                    and "__init__" in target.methods
                ):
                    return _method_uid(target, "__init__")
                return None
            target = self.classes_by_name.get(name)
            if (
                target is not None
                and target.module == unit.module
                and "__init__" in target.methods
            ):
                return _method_uid(target, "__init__")
        return None

    def callee_of(self, site: CallSite) -> tuple | None:
        """Memoized resolution (populated during the fixpoint)."""
        return self._site_callees.get(id(site))

    def lock_info(self, unit: UnitModel, attr: str) -> LockInfo | None:
        if unit.cls is None:
            return None
        return unit.cls.locks.get(attr)

    # -- fixpoint summaries --------------------------------------------
    def _summarize(self) -> None:
        for uid, unit in self.units.items():
            acquired: set[str] = set()
            if unit.cls is not None:
                for acq in unit.method.acquisitions:
                    info = unit.cls.locks.get(acq.attr)
                    if info is not None:
                        acquired.add(info.node_name)
            self.transitive_acquires[uid] = acquired
            for site in unit.method.call_sites:
                self._site_callees[id(site)] = self.resolve(site, unit)
            reason = next(
                (
                    site_block_reason(site)
                    for site in unit.method.call_sites
                    if site_block_reason(site)
                ),
                None,
            )
            if reason is not None:
                self.blocks[uid] = (reason, ())
        changed = True
        iterations = 0
        while changed and iterations < 50:
            changed = False
            iterations += 1
            for uid, unit in self.units.items():
                acquired = self.transitive_acquires[uid]
                for site in unit.method.call_sites:
                    callee = self._site_callees.get(id(site))
                    if callee is None or callee not in self.units:
                        continue
                    extra = self.transitive_acquires[callee] - acquired
                    if extra:
                        acquired |= extra
                        changed = True
                    if uid not in self.blocks and callee in self.blocks:
                        reason, trail = self.blocks[callee]
                        self.blocks[uid] = (
                            reason,
                            (self.units[callee].qualname, *trail[:3]),
                        )
                        changed = True


def build_project_model(project: ProjectContext) -> ProjectLockModel:
    model = ProjectLockModel()
    ambiguous: set[str] = set()
    for ctx in project.files:
        module = module_name_of(ctx.relpath)
        imports = _Imports()
        model._imports[module] = imports
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports.aliases[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        imports.aliases[root] = root
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    imports.from_imports[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )
        comments = {line: text for line, _col, text in _iter_comments(ctx.source)}
        for node in ctx.tree.body:
            if isinstance(node, ast.ClassDef):
                cls_model = _build_class_model(ctx, node, comments, module)
                model.classes.append(cls_model)
                if cls_model.name in model.classes_by_name:
                    ambiguous.add(cls_model.name)
                model.classes_by_name[cls_model.name] = cls_model
                for method in cls_model.methods.values():
                    uid = _method_uid(cls_model, method.name)
                    model.units[uid] = UnitModel(
                        uid=uid,
                        qualname=method.qualname,
                        module=module,
                        cls=cls_model,
                        method=method,
                        path=ctx.path,
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walker = _MethodWalker({}, frozenset())
                walker.walk(node)
                method = MethodModel(
                    name=node.name,
                    qualname=f"{module}:{node.name}",
                    node=node,
                    caller_locked=frozenset(),
                    param_types=_param_types(node),
                    accesses=walker.accesses,
                    acquisitions=walker.acquisitions,
                    releases=walker.releases,
                    call_sites=walker.call_sites,
                )
                uid = ("f", module, node.name)
                model.units[uid] = UnitModel(
                    uid=uid,
                    qualname=method.qualname,
                    module=module,
                    cls=None,
                    method=method,
                    path=ctx.path,
                )
                model._functions[(module, node.name)] = uid
    # Name collisions would make cross-class resolution guesswork:
    # drop ambiguous names from typed resolution entirely.
    for name in ambiguous:
        model.classes_by_name.pop(name, None)
    model._summarize()
    return model
