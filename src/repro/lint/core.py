"""Core datatypes of the ``repro lint`` static-analysis framework.

The framework is deliberately small: a :class:`Rule` is an object with a
``REPxxx`` code that inspects either one file's AST (:meth:`Rule.check_file`)
or the whole project at once (:meth:`Rule.check_project` — used by the
call-graph determinism pass), and yields :class:`Finding` records.  The
:mod:`repro.lint.runner` collects files, runs the registered rules, filters
findings through in-source suppressions, and renders text or JSON.

Suppressions
------------
A finding is silenced by an in-line comment on the flagged line::

    metrics = np.full(S, -np.inf)  # repro: noqa[REP001]: legacy table kept raw

The reason after the closing bracket is **mandatory** — a suppression
without one (or with an empty code list) is itself reported as ``REP000``
so waivers stay auditable.  Multiple codes separate with commas:
``# repro: noqa[REP001,REP004]: reason``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "TextEdit",
    "FileContext",
    "ProjectContext",
    "Rule",
    "Suppression",
    "collect_suppressions",
    "is_suppressed",
    "CODE_BAD_SUPPRESSION",
]

#: Meta-code for malformed suppression comments (not a registrable rule).
CODE_BAD_SUPPRESSION = "REP000"

#: ``repro: noqa[REP001,REP003]: reason`` comments (reason required; the
#: leading hash is omitted here so this line is not itself a waiver).
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*noqa\s*\[(?P<codes>[^\]]*)\](?P<rest>.*)$"
)
_CODE_RE = re.compile(r"^REP\d{3}$")


@dataclass(frozen=True)
class TextEdit:
    """One source replacement an autofix wants to make.

    Positions are 0-based columns on 1-based lines, matching the AST's
    ``lineno`` / ``col_offset`` conventions.  ``requires_import`` names a
    symbol the edited file must import (``module:name``) for the
    replacement text to resolve; the runner inserts the import once per
    file when needed.
    """

    line: int
    col: int
    end_line: int
    end_col: int
    replacement: str
    requires_import: str | None = None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int
    fix: TextEdit | None = None

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        tail = "  [fixable]" if self.fix is not None else ""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}{tail}"

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "fixable": self.fix is not None,
        }


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    line: int
    codes: frozenset[str]
    reason: str
    col: int = 0  #: column of the comment, for stale-waiver findings


@dataclass
class FileContext:
    """Everything a per-file rule may look at for one source file."""

    path: str  #: display path (as given on the command line)
    relpath: str  #: package-relative posix path, e.g. ``repro/ltdp/delta.py``
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        *,
        fix: TextEdit | None = None,
    ) -> Finding:
        return Finding(
            code=rule.code,
            message=message,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            fix=fix,
        )


@dataclass
class ProjectContext:
    """All files of one lint invocation, for whole-project rules."""

    files: list[FileContext]

    def by_relpath(self, relpath: str) -> FileContext | None:
        for ctx in self.files:
            if ctx.relpath == relpath:
                return ctx
        return None


class Rule:
    """Base class: subclasses set ``code``/``name``/``summary`` and override
    exactly one of :meth:`check_file` (per-file AST pass) or
    :meth:`check_project` (one pass over every file, e.g. for reachability).
    """

    code: str = "REP999"
    name: str = "unnamed"
    summary: str = ""
    #: Whether :meth:`check_project` should be called instead of per-file.
    project_wide: bool = False

    def applies_to(self, relpath: str) -> bool:
        """Per-file scope filter (package-relative posix path)."""
        return True

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: ProjectContext) -> Iterable[Finding]:
        return ()


def collect_suppressions(
    source: str, *, path: str = "<source>"
) -> tuple[dict[int, Suppression], list[Finding]]:
    """Parse every suppression comment in ``source``.

    Returns ``(by_line, problems)`` where ``problems`` are ``REP000``
    findings for malformed suppressions (no reason, no/invalid codes).
    Scanning is tokenize-based so only *real* comments count — docstrings
    and string literals that merely mention the suppression syntax (rule
    messages, documentation examples) are never parsed as waivers.
    """
    by_line: dict[int, Suppression] = {}
    problems: list[Finding] = []
    for lineno, col, text in _iter_comments(source):
        m = _SUPPRESSION_RE.search(text)
        if not m:
            continue
        raw_codes = [c.strip() for c in m.group("codes").split(",") if c.strip()]
        bad = [c for c in raw_codes if not _CODE_RE.match(c)]
        reason = m.group("rest").strip().lstrip(":-—– ").strip()
        if not raw_codes or bad:
            problems.append(
                Finding(
                    code=CODE_BAD_SUPPRESSION,
                    message=(
                        "suppression lists no valid REPxxx codes: "
                        f"{m.group('codes')!r}"
                    ),
                    path=path,
                    line=lineno,
                    col=col + m.start(),
                )
            )
            continue
        if not reason:
            problems.append(
                Finding(
                    code=CODE_BAD_SUPPRESSION,
                    message=(
                        f"suppression for {', '.join(raw_codes)} has no reason; "
                        "write `# repro: noqa[REPxxx]: why this is safe`"
                    ),
                    path=path,
                    line=lineno,
                    col=col + m.start(),
                )
            )
            continue
        by_line[lineno] = Suppression(
            line=lineno,
            codes=frozenset(raw_codes),
            reason=reason,
            col=col + m.start(),
        )
    return by_line, problems


def _iter_comments(source: str) -> Iterator[tuple[int, int, str]]:
    """``(line, col, text)`` for every real comment token in ``source``.

    Tokenization errors (which :func:`ast.parse` would have surfaced
    already) simply end the scan — suppressions in the unreadable tail
    are moot because the file cannot be linted anyway.
    """
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return


def is_suppressed(finding: Finding, suppressions: dict[int, Suppression]) -> bool:
    sup = suppressions.get(finding.line)
    return sup is not None and finding.code in sup.codes


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    """All Call nodes under ``tree`` (convenience for rules)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def dotted_name(node: ast.AST) -> list[str] | None:
    """``a.b.c`` attribute/name chain as ``["a","b","c"]``, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None
