"""File collection, rule execution, suppression filtering and reporting.

This is the driver behind ``repro lint`` (and ``python -m repro.lint``):

- :func:`lint_sources` — lint in-memory ``(path, source)`` pairs (what
  the test-suite uses for fixtures);
- :func:`lint_paths` — lint real files/directories;
- :func:`apply_fixes` — rewrite sources with every autofixable finding
  (currently REP001), inserting required imports;
- :func:`run_lint_command` — the CLI entry point shared by
  ``repro lint`` and ``python -m repro.lint``.

Exit status: 0 when clean, 1 when findings remain, 2 on usage errors
(unreadable path, syntax error in a linted file).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.core import (
    CODE_BAD_SUPPRESSION,
    FileContext,
    Finding,
    ProjectContext,
    Rule,
    collect_suppressions,
    is_suppressed,
)
from repro.lint.rules import default_rules

__all__ = [
    "LintResult",
    "lint_sources",
    "lint_paths",
    "apply_fixes",
    "run_lint_command",
    "execute_lint",
    "build_arg_parser",
    "validate_report",
    "JSON_SCHEMA_VERSION",
]

#: Bumped whenever the ``--format json`` payload changes shape.
#: v2: added ``rules`` (per-rule catalog with finding counts).
JSON_SCHEMA_VERSION = 2


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)
    #: Per-rule catalog of the run: ``{code, name, summary, findings}``,
    #: zero-filled so a clean run still lists every active rule.
    rules: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"error: {e}" for e in self.errors)
        counts = self.counts()
        summary = (
            ", ".join(f"{code}×{n}" for code, n in counts.items())
            if counts
            else "clean"
        )
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s) [{summary}; {self.suppressed} suppressed]"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "schema_version": JSON_SCHEMA_VERSION,
                "findings": [f.to_json() for f in self.findings],
                "counts": self.counts(),
                "rules": self.rules,
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "errors": list(self.errors),
            },
            indent=2,
        )


def package_relpath(path: str) -> str:
    """Map any spelling of a repo path to a ``repro/...`` posix path.

    Rule scopes are expressed against the package layout, so
    ``/abs/src/repro/ltdp/delta.py``, ``src/repro/ltdp/delta.py`` and
    ``repro/ltdp/delta.py`` must all scope identically.
    """
    norm = path.replace(os.sep, "/")
    parts = norm.split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro") :])
    return norm.lstrip("/")


def _make_context(path: str, source: str) -> FileContext:
    tree = ast.parse(source, filename=path)
    return FileContext(
        path=path, relpath=package_relpath(path), source=source, tree=tree
    )


def lint_sources(
    sources: Sequence[tuple[str, str]],
    *,
    rules: Sequence[Rule] | None = None,
    select: Iterable[str] | None = None,
    report_unused_waivers: bool = True,
) -> LintResult:
    """Lint in-memory ``(path, source)`` pairs.

    With ``report_unused_waivers`` (the default), a suppression whose
    code is active in this run but produced no raw finding on its line
    is itself reported as ``REP000`` — the waiver audit trail may not
    rot.  Codes outside the active rule set are left alone, so a
    ``--select`` run never declares other rules' waivers stale.
    """
    result = LintResult()
    contexts: list[FileContext] = []
    suppressions_by_path: dict[str, dict] = {}
    raw: list[Finding] = []
    for path, source in sources:
        try:
            ctx = _make_context(path, source)
        except SyntaxError as exc:
            result.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        contexts.append(ctx)
        sups, problems = collect_suppressions(source, path=path)
        suppressions_by_path[path] = sups
        raw.extend(problems)  # malformed suppressions are REP000 findings
    result.files_checked = len(contexts)

    active = list(rules) if rules is not None else default_rules()
    if select is not None:
        wanted = set(select)
        active = [r for r in active if r.code in wanted]

    project = ProjectContext(files=contexts)
    for rule in active:
        if rule.project_wide:
            raw.extend(rule.check_project(project))
        else:
            for ctx in contexts:
                if rule.applies_to(ctx.relpath):
                    raw.extend(rule.check_file(ctx))

    if report_unused_waivers:
        fired: dict[tuple[str, int], set[str]] = {}
        for f in raw:
            fired.setdefault((f.path, f.line), set()).add(f.code)
        active_codes = {r.code for r in active}
        for path, sups in suppressions_by_path.items():
            for sup in sups.values():
                stale = sorted(
                    code
                    for code in sup.codes
                    if code in active_codes
                    and code not in fired.get((path, sup.line), ())
                )
                if stale:
                    raw.append(
                        Finding(
                            code=CODE_BAD_SUPPRESSION,
                            message=(
                                f"stale waiver: {', '.join(stale)} did not "
                                "fire on this line; delete the suppression "
                                "(it no longer waives anything)"
                            ),
                            path=path,
                            line=sup.line,
                            col=sup.col,
                        )
                    )

    for finding in raw:
        sups = suppressions_by_path.get(finding.path, {})
        if is_suppressed(finding, sups):
            result.suppressed += 1
        else:
            result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    counts = result.counts()
    result.rules = [
        {
            "code": rule.code,
            "name": rule.name,
            "summary": rule.summary,
            "findings": counts.get(rule.code, 0),
        }
        for rule in active
    ]
    return result


def collect_python_files(paths: Sequence[str]) -> tuple[list[str], list[str]]:
    """Expand files/directories into a sorted ``.py`` file list."""
    files: list[str] = []
    errors: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                files.extend(
                    os.path.join(dirpath, f)
                    for f in filenames
                    if f.endswith(".py")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            errors.append(f"no such file or directory: {path}")
    return sorted(set(files)), errors


def lint_paths(
    paths: Sequence[str],
    *,
    rules: Sequence[Rule] | None = None,
    select: Iterable[str] | None = None,
    report_unused_waivers: bool = True,
) -> LintResult:
    """Lint real files and/or directories."""
    files, errors = collect_python_files(paths)
    sources = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            sources.append((path, fh.read()))
    result = lint_sources(
        sources,
        rules=rules,
        select=select,
        report_unused_waivers=report_unused_waivers,
    )
    result.errors = errors + result.errors
    return result


def validate_report(doc: object) -> list[str]:
    """Structural problems with a parsed ``--format json`` report.

    Empty list means the report is valid for ``JSON_SCHEMA_VERSION``.
    Used by ``--check-report`` (the CI lint job validates the archived
    report instead of only uploading it).
    """
    if not isinstance(doc, dict):
        return ["report is not a JSON object"]
    problems: list[str] = []
    if doc.get("schema_version") != JSON_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {doc.get('schema_version')!r}, "
            f"expected {JSON_SCHEMA_VERSION}"
        )
    shape = {
        "findings": list,
        "counts": dict,
        "rules": list,
        "files_checked": int,
        "suppressed": int,
        "errors": list,
    }
    for key, typ in shape.items():
        if not isinstance(doc.get(key), typ):
            problems.append(f"missing or mistyped key {key!r} (want {typ.__name__})")
    if problems:
        return problems
    recounted: dict[str, int] = {}
    for i, f in enumerate(doc["findings"]):
        if not isinstance(f, dict):
            problems.append(f"findings[{i}] is not an object")
            continue
        for key, typ in (
            ("code", str),
            ("message", str),
            ("path", str),
            ("line", int),
            ("col", int),
            ("fixable", bool),
        ):
            if not isinstance(f.get(key), typ):
                problems.append(
                    f"findings[{i}] missing or mistyped key {key!r} "
                    f"(want {typ.__name__})"
                )
        code = f.get("code")
        if isinstance(code, str):
            recounted[code] = recounted.get(code, 0) + 1
    if recounted != doc["counts"]:
        problems.append(
            f"counts {doc['counts']} disagree with the findings list "
            f"(recounted: {recounted})"
        )
    rule_counts: dict[str, int] = {}
    for i, r in enumerate(doc["rules"]):
        if not isinstance(r, dict):
            problems.append(f"rules[{i}] is not an object")
            continue
        for key, typ in (
            ("code", str),
            ("name", str),
            ("summary", str),
            ("findings", int),
        ):
            if not isinstance(r.get(key), typ):
                problems.append(
                    f"rules[{i}] missing or mistyped key {key!r} "
                    f"(want {typ.__name__})"
                )
        if isinstance(r.get("code"), str):
            rule_counts[r["code"]] = r.get("findings", 0)
    for code, n in rule_counts.items():
        if doc["counts"].get(code, 0) != n:
            problems.append(
                f"rules[] says {code} has {n} finding(s) but counts says "
                f"{doc['counts'].get(code, 0)}"
            )
    for code in doc["counts"]:
        if code != CODE_BAD_SUPPRESSION and code not in rule_counts:
            problems.append(f"counts has {code} but rules[] does not list it")
    return problems


# -- autofix -----------------------------------------------------------


def _has_import(tree: ast.Module, module: str, name: str) -> bool:
    for node in tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.module == module
            and any((a.asname or a.name) == name for a in node.names)
        ):
            return True
    return False


def _import_insert_line(tree: ast.Module) -> int:
    """1-based line *after* which to insert a new import."""
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = max(last, node.end_lineno or node.lineno)
        elif (
            last == 0
            and isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            last = node.end_lineno or node.lineno  # module docstring
    return last


def apply_fixes(path: str, source: str, findings: Sequence[Finding]) -> tuple[str, int]:
    """Apply every single-line fix among ``findings`` to ``source``.

    Returns ``(new_source, applied_count)``.  Required imports are
    inserted once, after the existing import block.
    """
    edits = [
        f.fix
        for f in findings
        if f.fix is not None and f.path == path and f.fix.line == f.fix.end_line
    ]
    if not edits:
        return source, 0
    lines = source.splitlines(keepends=True)
    needed_imports: set[str] = set()
    for edit in sorted(edits, key=lambda e: (e.line, e.col), reverse=True):
        idx = edit.line - 1
        if idx >= len(lines):  # pragma: no cover - stale finding
            continue
        line = lines[idx]
        lines[idx] = line[: edit.col] + edit.replacement + line[edit.end_col :]
        if edit.requires_import:
            needed_imports.add(edit.requires_import)
    tree = ast.parse(source, filename=path)
    insert_at = _import_insert_line(tree)
    stmts = []
    for spec in sorted(needed_imports):
        module, _, name = spec.partition(":")
        if not _has_import(tree, module, name):
            stmts.append(f"from {module} import {name}\n")
    if stmts:
        prefix = lines[:insert_at]
        suffix = lines[insert_at:]
        block = stmts if insert_at == 0 else ["\n"] + stmts
        lines = prefix + block + suffix
    return "".join(lines), len(edits)


# -- CLI ---------------------------------------------------------------


def build_arg_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static analysis for the repro engine: semiring, determinism, "
            "protocol and concurrency contracts (REP001-REP009)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite files, applying autofixable findings (REP001)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--report-unused-waivers",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "report suppressions whose active rule no longer fires on "
            "their line as REP000 (default: on)"
        ),
    )
    parser.add_argument(
        "--check-report",
        default=None,
        metavar="PATH",
        help=(
            "validate a previously written --format json report against "
            "the current schema and exit (0 valid, 2 invalid)"
        ),
    )
    return parser


def run_lint_command(argv: Sequence[str] | None = None, *, prog: str = "repro lint") -> int:
    args = build_arg_parser(prog).parse_args(argv)
    return execute_lint(args)


def execute_lint(args: argparse.Namespace) -> int:
    """Run the lint described by parsed arguments (shared with ``repro.cli``)."""
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0
    if getattr(args, "check_report", None):
        try:
            with open(args.check_report, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read report {args.check_report}: {exc}")
            return 2
        problems = validate_report(doc)
        for problem in problems:
            print(f"error: {args.check_report}: {problem}")
        if problems:
            return 2
        print(f"{args.check_report}: valid (schema_version {JSON_SCHEMA_VERSION})")
        return 0
    select = (
        [c.strip() for c in args.select.split(",") if c.strip()]
        if args.select
        else None
    )
    waivers = getattr(args, "report_unused_waivers", True)
    result = lint_paths(args.paths, select=select, report_unused_waivers=waivers)
    if args.fix:
        fixable: dict[str, list[Finding]] = {}
        for f in result.findings:
            if f.fix is not None:
                fixable.setdefault(f.path, []).append(f)
        fixed_total = 0
        for path, path_findings in fixable.items():
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            new_source, applied = apply_fixes(path, source, path_findings)
            if applied:
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(new_source)
                fixed_total += applied
        if fixed_total:
            print(f"fixed {fixed_total} finding(s); re-linting")
        result = lint_paths(args.paths, select=select, report_unused_waivers=waivers)
    print(result.render_json() if args.fmt == "json" else result.render_text())
    if result.errors:
        return 2
    return 0 if not result.findings else 1
