"""File collection, rule execution, suppression filtering and reporting.

This is the driver behind ``repro lint`` (and ``python -m repro.lint``):

- :func:`lint_sources` — lint in-memory ``(path, source)`` pairs (what
  the test-suite uses for fixtures);
- :func:`lint_paths` — lint real files/directories;
- :func:`apply_fixes` — rewrite sources with every autofixable finding
  (currently REP001), inserting required imports;
- :func:`run_lint_command` — the CLI entry point shared by
  ``repro lint`` and ``python -m repro.lint``.

Exit status: 0 when clean, 1 when findings remain, 2 on usage errors
(unreadable path, syntax error in a linted file).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.lint.core import (
    FileContext,
    Finding,
    ProjectContext,
    Rule,
    collect_suppressions,
    is_suppressed,
)
from repro.lint.rules import default_rules

__all__ = [
    "LintResult",
    "lint_sources",
    "lint_paths",
    "apply_fixes",
    "run_lint_command",
    "execute_lint",
    "build_arg_parser",
]

JSON_SCHEMA_VERSION = 1


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"error: {e}" for e in self.errors)
        counts = self.counts()
        summary = (
            ", ".join(f"{code}×{n}" for code, n in counts.items())
            if counts
            else "clean"
        )
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files_checked} "
            f"file(s) [{summary}; {self.suppressed} suppressed]"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "schema_version": JSON_SCHEMA_VERSION,
                "findings": [f.to_json() for f in self.findings],
                "counts": self.counts(),
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "errors": list(self.errors),
            },
            indent=2,
        )


def package_relpath(path: str) -> str:
    """Map any spelling of a repo path to a ``repro/...`` posix path.

    Rule scopes are expressed against the package layout, so
    ``/abs/src/repro/ltdp/delta.py``, ``src/repro/ltdp/delta.py`` and
    ``repro/ltdp/delta.py`` must all scope identically.
    """
    norm = path.replace(os.sep, "/")
    parts = norm.split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro") :])
    return norm.lstrip("/")


def _make_context(path: str, source: str) -> FileContext:
    tree = ast.parse(source, filename=path)
    return FileContext(
        path=path, relpath=package_relpath(path), source=source, tree=tree
    )


def lint_sources(
    sources: Sequence[tuple[str, str]],
    *,
    rules: Sequence[Rule] | None = None,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint in-memory ``(path, source)`` pairs."""
    result = LintResult()
    contexts: list[FileContext] = []
    suppressions_by_path: dict[str, dict] = {}
    raw: list[Finding] = []
    for path, source in sources:
        try:
            ctx = _make_context(path, source)
        except SyntaxError as exc:
            result.errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
            continue
        contexts.append(ctx)
        sups, problems = collect_suppressions(source, path=path)
        suppressions_by_path[path] = sups
        raw.extend(problems)  # malformed suppressions are REP000 findings
    result.files_checked = len(contexts)

    active = list(rules) if rules is not None else default_rules()
    if select is not None:
        wanted = set(select)
        active = [r for r in active if r.code in wanted]

    project = ProjectContext(files=contexts)
    for rule in active:
        if rule.project_wide:
            raw.extend(rule.check_project(project))
        else:
            for ctx in contexts:
                if rule.applies_to(ctx.relpath):
                    raw.extend(rule.check_file(ctx))

    for finding in raw:
        sups = suppressions_by_path.get(finding.path, {})
        if is_suppressed(finding, sups):
            result.suppressed += 1
        else:
            result.findings.append(finding)
    result.findings.sort(key=Finding.sort_key)
    return result


def collect_python_files(paths: Sequence[str]) -> tuple[list[str], list[str]]:
    """Expand files/directories into a sorted ``.py`` file list."""
    files: list[str] = []
    errors: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if d != "__pycache__"]
                files.extend(
                    os.path.join(dirpath, f)
                    for f in filenames
                    if f.endswith(".py")
                )
        elif os.path.isfile(path):
            files.append(path)
        else:
            errors.append(f"no such file or directory: {path}")
    return sorted(set(files)), errors


def lint_paths(
    paths: Sequence[str],
    *,
    rules: Sequence[Rule] | None = None,
    select: Iterable[str] | None = None,
) -> LintResult:
    """Lint real files and/or directories."""
    files, errors = collect_python_files(paths)
    sources = []
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            sources.append((path, fh.read()))
    result = lint_sources(sources, rules=rules, select=select)
    result.errors = errors + result.errors
    return result


# -- autofix -----------------------------------------------------------


def _has_import(tree: ast.Module, module: str, name: str) -> bool:
    for node in tree.body:
        if (
            isinstance(node, ast.ImportFrom)
            and node.module == module
            and any((a.asname or a.name) == name for a in node.names)
        ):
            return True
    return False


def _import_insert_line(tree: ast.Module) -> int:
    """1-based line *after* which to insert a new import."""
    last = 0
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last = max(last, node.end_lineno or node.lineno)
        elif (
            last == 0
            and isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            last = node.end_lineno or node.lineno  # module docstring
    return last


def apply_fixes(path: str, source: str, findings: Sequence[Finding]) -> tuple[str, int]:
    """Apply every single-line fix among ``findings`` to ``source``.

    Returns ``(new_source, applied_count)``.  Required imports are
    inserted once, after the existing import block.
    """
    edits = [
        f.fix
        for f in findings
        if f.fix is not None and f.path == path and f.fix.line == f.fix.end_line
    ]
    if not edits:
        return source, 0
    lines = source.splitlines(keepends=True)
    needed_imports: set[str] = set()
    for edit in sorted(edits, key=lambda e: (e.line, e.col), reverse=True):
        idx = edit.line - 1
        if idx >= len(lines):  # pragma: no cover - stale finding
            continue
        line = lines[idx]
        lines[idx] = line[: edit.col] + edit.replacement + line[edit.end_col :]
        if edit.requires_import:
            needed_imports.add(edit.requires_import)
    tree = ast.parse(source, filename=path)
    insert_at = _import_insert_line(tree)
    stmts = []
    for spec in sorted(needed_imports):
        module, _, name = spec.partition(":")
        if not _has_import(tree, module, name):
            stmts.append(f"from {module} import {name}\n")
    if stmts:
        prefix = lines[:insert_at]
        suffix = lines[insert_at:]
        block = stmts if insert_at == 0 else ["\n"] + stmts
        lines = prefix + block + suffix
    return "".join(lines), len(edits)


# -- CLI ---------------------------------------------------------------


def build_arg_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Static analysis for the repro engine: semiring, determinism "
            "and protocol contracts (REP001-REP005)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite files, applying autofixable findings (REP001)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    return parser


def run_lint_command(argv: Sequence[str] | None = None, *, prog: str = "repro lint") -> int:
    args = build_arg_parser(prog).parse_args(argv)
    return execute_lint(args)


def execute_lint(args: argparse.Namespace) -> int:
    """Run the lint described by parsed arguments (shared with ``repro.cli``)."""
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0
    select = (
        [c.strip() for c in args.select.split(",") if c.strip()]
        if args.select
        else None
    )
    result = lint_paths(args.paths, select=select)
    if args.fix:
        fixable: dict[str, list[Finding]] = {}
        for f in result.findings:
            if f.fix is not None:
                fixable.setdefault(f.path, []).append(f)
        fixed_total = 0
        for path, path_findings in fixable.items():
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            new_source, applied = apply_fixes(path, source, path_findings)
            if applied:
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(new_source)
                fixed_total += applied
        if fixed_total:
            print(f"fixed {fixed_total} finding(s); re-linting")
        result = lint_paths(args.paths, select=select)
    print(result.render_json() if args.fmt == "json" else result.render_text())
    if result.errors:
        return 2
    return 0 if not result.findings else 1
