"""Synthetic workload generators — DESIGN.md §3 data substitutions.

- :mod:`repro.datagen.sequences` — synthetic DNA with controlled
  divergence (the hg19 chromosome-pair stand-in);
- :mod:`repro.datagen.packets` — convolution-encoded packets with
  channel noise (the Spiral input-generator stand-in);
- :mod:`repro.datagen.hmms` — HMM workloads with controlled path
  dominance.
"""

from repro.datagen.sequences import (
    random_dna,
    mutate_sequence,
    homologous_pair,
    random_series,
)
from repro.datagen.packets import random_packet, transmit_bsc, make_received_packet
from repro.datagen.hmms import make_hmm_workload

__all__ = [
    "random_dna",
    "mutate_sequence",
    "homologous_pair",
    "random_series",
    "random_packet",
    "transmit_bsc",
    "make_received_packet",
    "make_hmm_workload",
]
