"""Synthetic biological sequences with controlled divergence.

The paper aligns hg19 chromosome pairs; the key driver of its Fig 9/10
variance is how *dominant* the optimal alignment path is — similar
pairs (like X/Y's large homologous blocks) have strongly dominant
paths and converge fast; divergent pairs (21/22) do not.  We reproduce
that axis directly: :func:`homologous_pair` derives the second
sequence from the first through point mutations and indels at a
controlled rate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["random_dna", "mutate_sequence", "homologous_pair", "random_series"]

_DNA_SYMBOLS = 4


def random_dna(length: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random DNA as int codes 0..3 (A/C/G/T)."""
    if length < 1:
        raise ValueError("length must be >= 1")
    return rng.integers(0, _DNA_SYMBOLS, size=length).astype(np.int64)


def mutate_sequence(
    seq: np.ndarray,
    rng: np.random.Generator,
    *,
    substitution_rate: float = 0.05,
    indel_rate: float = 0.01,
    max_indel: int = 3,
) -> np.ndarray:
    """Apply point mutations and short indels to a sequence copy."""
    for name, rate in (("substitution_rate", substitution_rate), ("indel_rate", indel_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    out: list[int] = []
    i = 0
    n = len(seq)
    while i < n:
        r = rng.random()
        if r < indel_rate / 2:  # deletion
            i += int(rng.integers(1, max_indel + 1))
            continue
        if r < indel_rate:  # insertion
            for _ in range(int(rng.integers(1, max_indel + 1))):
                out.append(int(rng.integers(0, _DNA_SYMBOLS)))
        base = int(seq[i])
        if rng.random() < substitution_rate:
            base = int((base + rng.integers(1, _DNA_SYMBOLS)) % _DNA_SYMBOLS)
        out.append(base)
        i += 1
    if not out:  # pathological all-deleted case
        out.append(int(rng.integers(0, _DNA_SYMBOLS)))
    return np.asarray(out, dtype=np.int64)


def homologous_pair(
    length: int,
    rng: np.random.Generator,
    *,
    divergence: float = 0.05,
    equal_length: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """A pair of sequences sharing ancestry, diverged by the given rate.

    ``divergence`` sets both the substitution rate and (scaled down)
    the indel rate.  With ``equal_length`` the derived sequence is
    trimmed/padded to the ancestor's length, mirroring the paper's
    fixed 1M-element chromosome prefixes (and keeping banded problems
    well-posed at small widths).
    """
    a = random_dna(length, rng)
    b = mutate_sequence(
        a, rng, substitution_rate=divergence, indel_rate=divergence / 5.0
    )
    if equal_length:
        if len(b) > length:
            b = b[:length]
        elif len(b) < length:
            pad = random_dna(length - len(b), rng)
            b = np.concatenate([b, pad])
    return a, b


def random_series(
    length: int,
    rng: np.random.Generator,
    *,
    smoothness: float = 0.9,
) -> np.ndarray:
    """A smooth random walk (AR(1)) time series for DTW workloads."""
    if not 0.0 <= smoothness < 1.0:
        raise ValueError("smoothness must be in [0, 1)")
    noise = rng.normal(size=length)
    out = np.empty(length)
    acc = 0.0
    for i, e in enumerate(noise):
        acc = smoothness * acc + (1.0 - smoothness) * e
        out[i] = acc
    return out
