"""Convolution-encoded packets over noisy channels.

Plays the role of Spiral's packet generator (paper §6.3.1 "Data"):
random payloads, convolutional encoding with register flush, and a
binary symmetric channel flipping each transmitted bit independently.
"""

from __future__ import annotations

import numpy as np

from repro.problems.convolutional import ConvolutionalCode, ViterbiDecoderProblem

__all__ = ["random_packet", "transmit_bsc", "make_received_packet"]


def random_packet(num_bits: int, rng: np.random.Generator) -> np.ndarray:
    """A uniform random payload of ``num_bits`` bits."""
    if num_bits < 1:
        raise ValueError("num_bits must be >= 1")
    return rng.integers(0, 2, size=num_bits).astype(np.uint8)


def transmit_bsc(
    bits: np.ndarray, rng: np.random.Generator, *, error_rate: float
) -> np.ndarray:
    """Pass bits through a binary symmetric channel (iid flips)."""
    if not 0.0 <= error_rate < 0.5:
        raise ValueError("BSC error rate must be in [0, 0.5) for ML decoding")
    bits = np.asarray(bits, dtype=np.uint8)
    flips = rng.random(bits.shape) < error_rate
    return (bits ^ flips.astype(np.uint8)).astype(np.uint8)


def make_received_packet(
    code: ConvolutionalCode,
    payload_bits: int,
    rng: np.random.Generator,
    *,
    error_rate: float = 0.02,
) -> tuple[np.ndarray, ViterbiDecoderProblem]:
    """Generate ``(payload, decoder_problem)`` for one noisy packet.

    The problem's stage count is ``payload_bits + K - 1`` (the flush
    bits), matching the paper's "network packet size determines the
    number of stages".
    """
    payload = random_packet(payload_bits, rng)
    encoded = code.encode(payload, terminate=True)
    received = transmit_bsc(encoded, rng, error_rate=error_rate)
    return payload, ViterbiDecoderProblem(code, received, terminated=True)
