"""HMM workload generation with controlled path dominance."""

from __future__ import annotations

import numpy as np

from repro.problems.hmm import DiscreteHMM, HMMViterbiProblem

__all__ = ["make_hmm_workload"]


def make_hmm_workload(
    num_states: int,
    num_observables: int,
    sequence_length: int,
    rng: np.random.Generator,
    *,
    peakedness: float = 4.0,
) -> tuple[DiscreteHMM, np.ndarray, HMMViterbiProblem]:
    """``(model, observations, viterbi_problem)`` for one random workload.

    ``peakedness`` > 1 concentrates transition/emission rows, producing
    the "overwhelmingly better" optimal paths (§4.8) under which rank
    convergence is fast; values near 0 give nearly-uniform models where
    convergence needs many more stages — the knob the convergence
    ablation sweeps.
    """
    model = DiscreteHMM.random(
        num_states, num_observables, rng, peakedness=peakedness
    )
    _, observations = model.sample(sequence_length, rng)
    return model, observations, model.viterbi_problem(observations)
