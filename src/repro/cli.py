"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``info``
    List the shipped problems, convolutional codes and machine presets.
``solve``
    Build a synthetic instance of a chosen problem family, solve it
    sequentially and in parallel, verify they agree, report metrics.
``convergence``
    Run the Table-1 protocol (steps to rank-1 convergence) on a chosen
    instance.
``sweep``
    Processor sweep: speedup/efficiency series under the calibrated
    cost model (the Fig 7-10 machinery, one instance at a time).
``trace``
    ASCII Gantt chart of one parallel run's BSP schedule.
``lint``
    Static analysis: enforce the semiring, determinism and protocol
    contracts (rules REP001-REP005, see ``docs/static_analysis.md``).
``serve``
    Request-serving selftest: stream ≥100 mixed decode/align requests
    through one resident worker pool, answering near-duplicates by
    §4.7 delta repair, verifying every answer against a sequential
    solve (see ``docs/serving.md``).
``bench``
    Longitudinal perf intelligence: ``record`` a suite run into the
    append-only JSONL history, ``compare`` two bench documents,
    ``trend``/``report`` the per-cell rolling median/MAD verdicts, and
    ``check`` document/history schemas (see ``docs/benchmarking.md``).

All instances are generated from seeded synthetic workloads, so every
invocation is reproducible via ``--seed``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from repro.analysis.speedup import scaling_sweep
from repro.analysis.tables import format_series, format_table
from repro.datagen.hmms import make_hmm_workload
from repro.datagen.packets import make_received_packet
from repro.datagen.sequences import homologous_pair, random_dna, random_series
from repro.ltdp.convergence import measure_convergence_steps
from repro.ltdp.parallel import ParallelOptions, solve_parallel
from repro.ltdp.sequential import solve_sequential
from repro.machine.cluster import SimCluster
from repro.machine.executor import EXECUTOR_KINDS, Executor, get_executor
from repro.machine.cost_model import CostModel, calibrate_cell_cost
from repro.machine.trace import Tracer, render_gantt
from repro.problems.alignment.lcs import LCSProblem
from repro.problems.alignment.needleman_wunsch import NeedlemanWunschProblem
from repro.problems.alignment.smith_waterman import SmithWatermanProblem
from repro.problems.convolutional import STANDARD_CODES
from repro.problems.dtw import DTWProblem
from repro.problems.seam import SeamCarvingProblem

__all__ = ["main", "build_problem"]

PROBLEM_CHOICES = ("lcs", "nw", "sw", "viterbi", "hmm", "dtw", "seam")


def build_problem(args: argparse.Namespace):
    """Instantiate the synthetic problem described by CLI arguments."""
    rng = np.random.default_rng(args.seed)
    kind = args.problem
    if kind in ("lcs", "nw"):
        a, b = homologous_pair(args.size, rng, divergence=args.divergence)
        cls = LCSProblem if kind == "lcs" else NeedlemanWunschProblem
        return cls(a, b, width=args.width)
    if kind == "sw":
        query = random_dna(max(4, args.width), rng)
        db = random_dna(args.size, rng)
        return SmithWatermanProblem(query, db)
    if kind == "viterbi":
        code = STANDARD_CODES[args.code]
        _, problem = make_received_packet(
            code, args.size, rng, error_rate=args.error_rate
        )
        return problem
    if kind == "hmm":
        _, _, problem = make_hmm_workload(
            max(2, args.width), 6, args.size, rng, peakedness=4.0
        )
        return problem
    if kind == "dtw":
        x = random_series(args.size, rng)
        y = random_series(args.size, rng)
        return DTWProblem(x, y, width=args.width)
    if kind == "seam":
        return SeamCarvingProblem(rng.random((args.size, max(4, args.width))))
    raise ValueError(f"unknown problem {kind!r}")


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _add_runtime_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--executor",
        choices=EXECUTOR_KINDS,
        default="serial",
        help="superstep runtime: serial (simulated), thread, "
        "process (fork per task) or pool (persistent workers)",
    )
    p.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="cap on real OS workers for thread/process/pool executors",
    )


def _build_executor(args: argparse.Namespace) -> Executor:
    """Executor described by ``--executor`` / ``--workers``."""
    if args.executor == "serial":
        return get_executor("serial")
    return get_executor(args.executor, max_workers=args.workers)


def _add_problem_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--problem", choices=PROBLEM_CHOICES, default="lcs")
    p.add_argument("--size", type=int, default=1000, help="stages / sequence length")
    p.add_argument("--width", type=int, default=32, help="band width / state count")
    p.add_argument("--divergence", type=float, default=0.1)
    p.add_argument("--code", choices=sorted(STANDARD_CODES), default="Voyager")
    p.add_argument("--error-rate", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)


def cmd_info(_args: argparse.Namespace) -> int:
    rows = [
        ["lcs", "banded longest common subsequence (row stages)"],
        ["nw", "banded Needleman-Wunsch global alignment (row stages)"],
        ["sw", "affine-gap Smith-Waterman local alignment (column stages)"],
        ["viterbi", "convolutional-code ML decoding (trellis stages)"],
        ["hmm", "hidden-Markov-model Viterbi inference"],
        ["dtw", "banded dynamic time warping"],
        ["seam", "minimum-energy seam carving"],
    ]
    print(format_table(["problem", "description"], rows, title="LTDP problems"))
    code_rows = [
        [c.name, c.constraint_length, f"1/{c.rate_denominator}", c.num_states]
        for c in STANDARD_CODES.values()
    ]
    print()
    print(
        format_table(
            ["code", "K", "rate", "states"], code_rows, title="Convolutional codes"
        )
    )
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    problem = build_problem(args)
    seq = solve_sequential(problem)
    tracer = Tracer() if args.trace else None
    # The with-block guarantees pool workers are reaped on every exit
    # path, including solver errors and ^C.
    with _build_executor(args) as executor:
        options = ParallelOptions(
            num_procs=args.procs,
            seed=args.seed,
            executor=executor,
            tracer=tracer,
            runners=args.runners,
        )
        par = solve_parallel(problem, options)
    ok = bool(np.array_equal(seq.path, par.path)) and abs(seq.score - par.score) < 1e-9
    m = par.metrics
    print(f"problem          : {args.problem} ({problem.num_stages} stages)")
    print(f"score            : {seq.score}")
    print(f"parallel == seq  : {ok}")
    print(f"executor         : {args.executor}")
    print(f"runners          : {args.runners}")
    print(f"processors       : {m.num_procs}")
    print(f"fix-up iterations: {m.forward_fixup_iterations}")
    print(f"critical work    : {m.critical_path_work:.0f} cells")
    print(f"total work       : {m.total_work:.0f} cells")
    print(f"sequential work  : {problem.total_cells():.0f} cells")
    print(f"measured wall    : {m.wall_time:.4f} s over {len(m.supersteps)} supersteps")
    print(
        f"recovery         : {m.worker_respawns} worker respawns, "
        f"{m.dispatch_retries} dispatch retries, "
        f"{m.replayed_supersteps} supersteps replayed"
    )
    if tracer is not None:
        tracer.dump_jsonl(args.trace)
        print(f"trace            : {args.trace}")
        print(tracer.format_summary())
    return 0 if ok else 1


def cmd_convergence(args: argparse.Namespace) -> int:
    problem = build_problem(args)
    study = measure_convergence_steps(
        problem, num_trials=args.trials, seed=args.seed, name=args.problem
    )
    print(
        format_table(
            ["problem", "width", "min", "median", "max", "converged"],
            [study.row()],
            title="Steps to converge to rank 1",
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    problem = build_problem(args)
    mid = max(1, problem.num_stages // 2)
    v = np.asarray(problem.initial_vector(), dtype=float).copy()
    v[~np.isfinite(v)] = 0.0
    if v.size != problem.stage_width(mid - 1):
        v = np.zeros(problem.stage_width(mid - 1))
    cell_cost = calibrate_cell_cost(
        lambda: problem.apply_stage(mid, v), problem.stage_cost(mid), min_seconds=0.02
    )
    procs = [int(x) for x in args.procs_list.split(",")]
    with _build_executor(args) as executor:
        cluster = SimCluster.stampede(1, cell_cost=cell_cost).with_executor(
            executor
        )
        curve = scaling_sweep(problem, cluster, procs, seed=args.seed)
    print(
        format_series(
            "P",
            procs,
            {
                "time[s]": [f"{p.time_seconds:.3e}" for p in curve.points],
                "speedup": [round(p.speedup, 2) for p in curve.points],
                "efficiency": [round(p.efficiency, 3) for p in curve.points],
                "fixup": [p.fixup_iterations for p in curve.points],
            },
            title=f"{args.problem}: scaling sweep (cell cost {cell_cost:.2e} s)",
        )
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.runner import execute_lint

    return execute_lint(args)


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.cli import execute_bench

    return execute_bench(args)


def cmd_serve(args: argparse.Namespace) -> int:
    if not args.selftest:
        print(
            "repro serve: pass --selftest to run the batched-serving demo "
            "(the in-process API is repro.serve.LTDPService)",
            file=sys.stderr,
        )
        return 2
    from repro.serve import run_selftest

    report = run_selftest(
        num_requests=args.requests,
        num_procs=args.procs,
        max_workers=args.workers,
        max_queue=args.queue,
        seed=args.seed,
        log=print,
    )
    return 0 if report.passed else 1


def cmd_trace(args: argparse.Namespace) -> int:
    problem = build_problem(args)
    with _build_executor(args) as executor:
        options = ParallelOptions(
            num_procs=args.procs,
            seed=args.seed,
            executor=executor,
            runners=args.runners,
        )
        par = solve_parallel(problem, options)
    print(render_gantt(par.metrics, CostModel(cell_cost=1e-7), columns=args.columns))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rank-convergence LTDP parallelization (PPoPP 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list problems, codes and presets")

    p_solve = sub.add_parser("solve", help="solve one synthetic instance")
    _add_problem_args(p_solve)
    _add_runtime_args(p_solve)
    p_solve.add_argument("--procs", type=int, default=8)
    p_solve.add_argument(
        "--runners",
        type=_positive_int,
        default=1,
        metavar="N",
        help="concurrent instruction runners pulling from the shared work "
        "queue (1 = classic superstep loop; results are bit-identical)",
    )
    p_solve.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a JSONL span trace of the parallel solve (per-superstep "
        "and, on the pool executor, per-worker dispatch/compute breakdown) "
        "and print its summary",
    )

    p_conv = sub.add_parser("convergence", help="Table-1 convergence protocol")
    _add_problem_args(p_conv)
    p_conv.add_argument("--trials", type=int, default=20)

    p_sweep = sub.add_parser("sweep", help="processor scaling sweep")
    _add_problem_args(p_sweep)
    _add_runtime_args(p_sweep)
    p_sweep.add_argument("--procs-list", default="1,2,4,8,16,32,64")

    p_trace = sub.add_parser("trace", help="ASCII Gantt of one parallel run")
    _add_problem_args(p_trace)
    _add_runtime_args(p_trace)
    p_trace.add_argument("--procs", type=int, default=8)
    p_trace.add_argument(
        "--runners",
        type=_positive_int,
        default=1,
        metavar="N",
        help="concurrent instruction runners (see `repro solve --runners`)",
    )
    p_trace.add_argument("--columns", type=int, default=100)

    p_serve = sub.add_parser(
        "serve",
        help="batched request serving on the resident pool (selftest)",
    )
    p_serve.add_argument(
        "--selftest",
        action="store_true",
        help="serve a seeded mixed request stream and verify every answer "
        "bit-identical to a sequential solve",
    )
    p_serve.add_argument(
        "--requests",
        type=_positive_int,
        default=120,
        metavar="N",
        help="requests in the generated stream (default 120)",
    )
    p_serve.add_argument("--procs", type=_positive_int, default=3)
    p_serve.add_argument(
        "--workers",
        type=_positive_int,
        default=3,
        metavar="N",
        help="persistent pool workers",
    )
    p_serve.add_argument(
        "--queue",
        type=_positive_int,
        default=None,
        metavar="N",
        help="admission-control queue bound (default: accept the whole stream)",
    )
    p_serve.add_argument("--seed", type=int, default=0)

    p_bench = sub.add_parser(
        "bench",
        help="longitudinal perf intelligence: record/compare/trend/report/check",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    def _add_trend_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--history",
            type=pathlib.Path,
            default=None,
            metavar="PATH",
            help="history JSONL file (default ./BENCH_history.jsonl)",
        )
        p.add_argument(
            "--suite", choices=("pool", "serve"), default=None,
            help="restrict to one suite (default: all present)",
        )
        p.add_argument(
            "--mode", choices=("smoke", "full"), default=None,
            help="restrict to one mode (default: all present)",
        )
        p.add_argument("--window", type=_positive_int, default=8,
                       help="baseline window: trailing samples behind the confirm tail")
        p.add_argument("--confirm", type=_positive_int, default=3,
                       help="consecutive recent samples that must all shift")
        p.add_argument("--min-samples", type=_positive_int, default=6,
                       help="below this many runs a cell is insufficient-history")
        p.add_argument("--z-threshold", type=float, default=3.5,
                       help="robust z-score each confirm sample must exceed")
        p.add_argument("--min-effect", type=float, default=1.25,
                       help="minimum recent/baseline median ratio for a verdict")

    p_brecord = bench_sub.add_parser(
        "record",
        help="run a suite and append one record to the JSONL history",
    )
    p_brecord.add_argument("--suite", choices=("pool", "serve"), default="pool")
    p_brecord.add_argument("--mode", choices=("smoke", "full"), default="smoke")
    p_brecord.add_argument(
        "--repeats", type=_positive_int, default=3,
        help="timed repetitions per cell (pool suite)",
    )
    p_brecord.add_argument(
        "--history", type=pathlib.Path, default=None, metavar="PATH",
        help="history JSONL file to append to (default ./BENCH_history.jsonl)",
    )
    p_brecord.add_argument(
        "--baseline", type=pathlib.Path, default=None, metavar="PATH",
        help="read-only comparison baseline (default ./BENCH_pool.json "
        "or ./BENCH_serve.json by suite)",
    )
    p_brecord.add_argument(
        "--out", type=pathlib.Path, default=None, metavar="PATH",
        help="also write the run document here (plain artifact, not a baseline)",
    )
    p_brecord.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline with this run's document (explicit re-baselining)",
    )
    p_brecord.add_argument(
        "--trace", metavar="PATH", default=None,
        help="dump the coverage check's JSONL trace here (pool suite)",
    )

    p_bcompare = bench_sub.add_parser(
        "compare",
        help="cell-by-cell ratio comparison of two bench documents",
    )
    p_bcompare.add_argument("old", help="baseline document (JSON)")
    p_bcompare.add_argument("new", help="candidate document (JSON)")
    p_bcompare.add_argument(
        "--ratio", type=float, default=1.6,
        help="regression threshold on new/old wall-clock (default 1.6)",
    )

    p_btrend = bench_sub.add_parser(
        "trend",
        help="per-cell rolling median/MAD verdicts over the history",
    )
    _add_trend_args(p_btrend)
    p_btrend.add_argument(
        "--format", dest="fmt", choices=("text", "markdown"), default="text"
    )
    p_btrend.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any cell has a sustained-regression verdict",
    )

    p_breport = bench_sub.add_parser(
        "report",
        help="markdown trend report + history summary (CI artifact)",
    )
    _add_trend_args(p_breport)
    p_breport.add_argument(
        "--out", type=pathlib.Path, default=None, metavar="PATH",
        help="write the markdown report here (default: stdout)",
    )

    p_bcheck = bench_sub.add_parser(
        "check",
        help="schema-validate bench documents (*.json) and history files (*.jsonl)",
    )
    p_bcheck.add_argument("paths", nargs="+", help="files to validate")

    p_lint = sub.add_parser(
        "lint",
        help="static analysis: semiring / determinism / protocol / concurrency contracts",
    )
    p_lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    p_lint.add_argument(
        "--format", dest="fmt", choices=("text", "json"), default="text"
    )
    p_lint.add_argument(
        "--select", default=None, metavar="CODES", help="rule codes to run"
    )
    p_lint.add_argument(
        "--fix",
        action="store_true",
        help="apply autofixable findings (REP001) in place",
    )
    p_lint.add_argument("--list-rules", action="store_true")
    p_lint.add_argument(
        "--report-unused-waivers",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="report stale suppressions as REP000 (default: on)",
    )
    p_lint.add_argument(
        "--check-report",
        default=None,
        metavar="PATH",
        help="validate a --format json report against the current schema",
    )

    args = parser.parse_args(argv)
    handlers = {
        "info": cmd_info,
        "solve": cmd_solve,
        "convergence": cmd_convergence,
        "sweep": cmd_sweep,
        "trace": cmd_trace,
        "serve": cmd_serve,
        "bench": cmd_bench,
        "lint": cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
