"""Terminal and markdown rendering of longitudinal trend reports.

Pure formatting over the cell reports produced by
:func:`repro.bench.trend.trend_report` — no measurement, no I/O beyond
returning strings.  The markdown variant is what the CI bench job
uploads next to its history artifact.
"""

from __future__ import annotations

from repro.bench.history import HistoryLoad
from repro.bench.trend import (
    VERDICT_IMPROVEMENT,
    VERDICT_INSUFFICIENT,
    VERDICT_REGRESSION,
)

__all__ = [
    "render_markdown_report",
    "render_trend_table",
    "sparkline",
    "verdict_counts",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(samples: list[float], width: int = 16) -> str:
    """Tiny unicode sparkline of the most recent ``width`` samples."""
    xs = [x for x in samples[-width:] if isinstance(x, (int, float))]
    if not xs:
        return ""
    lo, hi = min(xs), max(xs)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(xs)
    span = hi - lo
    return "".join(
        _SPARK_LEVELS[int((x - lo) / span * (len(_SPARK_LEVELS) - 1))] for x in xs
    )


def verdict_counts(cells: list[dict]) -> dict:
    counts = {"cells": len(cells), "regressions": 0, "improvements": 0, "insufficient": 0}
    for cell in cells:
        if cell["verdict"] == VERDICT_REGRESSION:
            counts["regressions"] += 1
        elif cell["verdict"] == VERDICT_IMPROVEMENT:
            counts["improvements"] += 1
        elif cell["verdict"] == VERDICT_INSUFFICIENT:
            counts["insufficient"] += 1
    return counts


def _fmt_ms(value) -> str:
    return f"{value * 1e3:.2f}" if isinstance(value, (int, float)) else "-"


def _fmt_ratio(value) -> str:
    return f"x{value:.2f}" if isinstance(value, (int, float)) else "-"


def _cell_columns(cell: dict) -> list[str]:
    return [
        f"{cell['suite']}/{cell['mode']}",
        cell["cell"],
        str(cell["n"]),
        _fmt_ms(cell["baseline_median"]),
        _fmt_ms(cell["mad"]),
        _fmt_ms(cell["samples"][-1] if cell["samples"] else None),
        _fmt_ratio(cell["recent_ratio"]),
        sparkline(cell["samples"]),
        cell["verdict"].upper() if cell["verdict"] == VERDICT_REGRESSION else cell["verdict"],
    ]


_HEADERS = ["suite", "cell", "n", "median ms", "MAD ms", "last ms", "recent", "history", "verdict"]


def render_trend_table(cells: list[dict], fmt: str = "text") -> str:
    """Per-cell trend table, ``text`` (aligned) or ``markdown``."""
    rows = [_cell_columns(cell) for cell in cells]
    if fmt == "markdown":
        lines = [
            "| " + " | ".join(_HEADERS) + " |",
            "|" + "|".join("---" for _ in _HEADERS) + "|",
        ]
        lines.extend("| " + " | ".join(row) + " |" for row in rows)
        return "\n".join(lines)
    if fmt != "text":
        raise ValueError(f"unknown trend format {fmt!r}")
    widths = [
        max(len(header), *(len(row[i]) for row in rows)) if rows else len(header)
        for i, header in enumerate(_HEADERS)
    ]
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(_HEADERS)).rstrip()]
    lines.extend(
        "  ".join(col.ljust(widths[i]) for i, col in enumerate(row)).rstrip()
        for row in rows
    )
    return "\n".join(lines)


def _history_summary_lines(load: HistoryLoad) -> list[str]:
    commits = {r["commit"] for r in load.records if r["commit"]}
    dirty = sum(1 for r in load.records if r.get("dirty"))
    combos = sorted({f"{r['suite']}/{r['mode']}" for r in load.records})
    lines = [
        f"history: {load.path} — {len(load.records)} record(s), "
        f"{len(commits)} distinct commit(s), {dirty} dirty-tree run(s)",
        f"suites: {', '.join(combos) if combos else '(empty)'}",
    ]
    if load.corrupt_tail:
        lines.append("note: a torn trailing line was dropped (crash mid-append)")
    return lines


def render_text_report(load: HistoryLoad, cells: list[dict]) -> str:
    counts = verdict_counts(cells)
    lines = _history_summary_lines(load)
    lines.append("")
    lines.append(render_trend_table(cells, fmt="text"))
    lines.append("")
    lines.append(
        f"{counts['regressions']} sustained regression(s), "
        f"{counts['improvements']} improvement(s), "
        f"{counts['insufficient']} cell(s) with insufficient history "
        "(1.6x single-file ratio remains their gate)"
    )
    return "\n".join(lines)


def render_markdown_report(load: HistoryLoad, cells: list[dict]) -> str:
    """Markdown trend report (the CI artifact next to the history file)."""
    counts = verdict_counts(cells)
    latest = load.records[-1] if load.records else None
    lines = ["# Bench trend report", ""]
    for line in _history_summary_lines(load):
        lines.append(f"- {line}")
    if latest is not None:
        commit = latest["commit"] or "(no git)"
        lines.append(
            f"- latest record: `{commit}`"
            + (" (dirty)" if latest.get("dirty") else "")
            + f" at {latest['recorded']} [{latest['suite']}/{latest['mode']}]"
        )
    lines.extend(
        [
            "",
            f"**{counts['regressions']} sustained regression(s)**, "
            f"{counts['improvements']} improvement(s), "
            f"{counts['insufficient']} cell(s) below the history threshold "
            "(gated by the legacy 1.6x ratio instead).",
            "",
            render_trend_table(cells, fmt="markdown"),
            "",
        ]
    )
    return "\n".join(lines)
