"""Serving-layer smoke benchmark: throughput + cache economics of `repro serve`.

The serve-suite matrix runner behind ``benchmarks/bench_serve.py`` (a
thin path-bootstrap shim) and ``repro bench record --suite serve``.  It
pushes seeded mixed request streams (fresh + near-duplicate, LCS and NW
families) through one :class:`~repro.serve.service.LTDPService` on one
resident worker pool, and emits a schema-versioned ``BENCH_serve.json``::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
    PYTHONPATH=src python benchmarks/bench_serve.py                # full grid
    PYTHONPATH=src python benchmarks/bench_serve.py --check BENCH_serve.json

Each grid row records request throughput (submission to last response,
verification excluded), cache hit rate, §4.7 changed-delta volume and
per-request latency.  The ``checks`` section gates on the serving
contract rather than on speed:

- ``bit_identity`` — every ``ok`` answer equals a fresh sequential
  solve (path and score), hit or miss;
- ``cache_delta_path`` — near-duplicates are answered by delta repair
  (hits observed, ``delta_cells > 0``);
- ``admission_control`` — an over-capacity burst is rejected
  synchronously with a backpressure reason, never dropped silently;
- ``clean_teardown`` — the drain leaves a closed executor, an empty
  queue and zero live worker processes.

Like the pool suite, a run with failed checks writes its document to a
``*.failed.json`` sidecar instead of replacing ``--out`` (override with
``--update-baseline``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

from repro.bench.matrix import (
    BenchDocumentError,
    load_json_document,
    make_document,
    need,
)
from repro.ltdp.sequential import solve_sequential
from repro.serve import (
    STATUS_OK,
    STATUS_REJECTED,
    LTDPService,
    build_request_stream,
)

__all__ = [
    "DEFAULT_OUT",
    "SERVE_SCHEMA_VERSION",
    "main",
    "run_bench",
    "run_suite",
    "validate_serve_doc",
]

#: Bump on any incompatible change to the emitted JSON document.
SERVE_SCHEMA_VERSION = 1

_REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]

DEFAULT_OUT = _REPO_ROOT / "BENCH_serve.json"

SEED = 2014  # PPoPP year; fixed so request streams are bit-reproducible.


def _grid(smoke: bool):
    """(row_name, num_requests, problem_size, num_procs, max_workers)."""
    if smoke:
        return [("mixed-small", 60, 32, 2, 2)]
    return [
        ("mixed-small", 120, 32, 2, 2),
        ("mixed-medium", 120, 64, 3, 3),
    ]


def _run_row(name, num_requests, size, num_procs, max_workers) -> dict:
    problems = build_request_stream(num_requests, SEED, size=size)
    service = LTDPService(
        max_workers=max_workers,
        num_procs=num_procs,
        max_queue=num_requests,
        seed=SEED,
    )
    with service:
        t0 = time.perf_counter()
        tickets = [service.submit(p) for p in problems]
        responses = [t.result(timeout=600.0) for t in tickets]
        serve_seconds = time.perf_counter() - t0
        pids = list(service.executor.worker_pids())
    stats = service.stats()

    verified = mismatches = 0
    for problem, response in zip(problems, responses):
        if response.status != STATUS_OK:
            continue
        expected = solve_sequential(problem)
        if (
            response.solution is not None
            and np.array_equal(response.solution.path, expected.path)
            and response.solution.score == expected.score
        ):
            verified += 1
        else:
            mismatches += 1

    total = stats["total"]
    leaked = sum(1 for pid in pids if _pid_alive(pid))
    return {
        "row": name,
        "num_requests": num_requests,
        "problem_size": size,
        "num_procs": num_procs,
        "max_workers": max_workers,
        "serve_seconds": serve_seconds,
        "requests_per_second": (
            num_requests / serve_seconds if serve_seconds > 0 else 0.0
        ),
        "ok": total["ok"],
        "hits": total["hits"],
        "misses": total["misses"],
        "rejected": total["rejected"],
        "errors": total["errors"],
        "hit_rate": total["hits"] / total["ok"] if total["ok"] else 0.0,
        "delta_cells": total["delta_cells"],
        "latency_mean_seconds": total["latency_mean_seconds"],
        "latency_max_seconds": total["latency_max_seconds"],
        "verified": verified,
        "mismatches": mismatches,
        "executor_closed": bool(service.executor.closed),
        "leaked_workers": leaked,
        "pending_after_close": service.pending,
    }


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign pid reuse
        return True
    return True


def _check_admission_control(size: int) -> dict:
    """Over-capacity burst: overflow rejected synchronously with reason."""
    burst = build_request_stream(12, SEED, size=size)
    cap = 5
    service = LTDPService(max_workers=2, num_procs=2, max_queue=cap)
    # Not started: every submit past the cap must bounce immediately.
    tickets = [service.submit(p) for p in burst]
    rejected = [t.result(timeout=0) for t in tickets if t.done]
    reasons_ok = all(
        r.status == STATUS_REJECTED and "backpressure" in r.reason
        for r in rejected
    )
    stats = service.close(drain=False)
    return {
        "burst": len(burst),
        "queue_cap": cap,
        "synchronous_rejections": len(rejected),
        "reasons_named": reasons_ok,
        "passed": len(rejected) == len(burst) - cap and reasons_ok
        and stats["total"]["rejected"] == len(burst),
    }


def _checks_from_rows(rows: list[dict]) -> dict:
    size = rows[0]["problem_size"] if rows else 32
    return {
        "bit_identity": {
            "verified": sum(r["verified"] for r in rows),
            "mismatches": sum(r["mismatches"] for r in rows),
            "passed": bool(rows)
            and all(
                r["mismatches"] == 0 and r["verified"] == r["ok"] for r in rows
            ),
        },
        "cache_delta_path": {
            "hits": sum(r["hits"] for r in rows),
            "delta_cells": sum(r["delta_cells"] for r in rows),
            "passed": bool(rows)
            and all(r["hits"] > 0 and r["delta_cells"] > 0 for r in rows),
        },
        "admission_control": _check_admission_control(size),
        "clean_teardown": {
            "leaked_workers": sum(r["leaked_workers"] for r in rows),
            "passed": bool(rows)
            and all(
                r["executor_closed"]
                and r["leaked_workers"] == 0
                and r["pending_after_close"] == 0
                and r["errors"] == 0
                for r in rows
            ),
        },
    }


# ----------------------------------------------------------------------
# Schema validation (hand-rolled; no jsonschema dependency)
# ----------------------------------------------------------------------

_ROW_FIELDS = {
    "row": str,
    "num_requests": int,
    "problem_size": int,
    "num_procs": int,
    "max_workers": int,
    "serve_seconds": float,
    "requests_per_second": float,
    "ok": int,
    "hits": int,
    "misses": int,
    "rejected": int,
    "errors": int,
    "hit_rate": float,
    "delta_cells": int,
    "latency_mean_seconds": float,
    "latency_max_seconds": float,
    "verified": int,
    "mismatches": int,
    "leaked_workers": int,
}


def validate_serve_doc(doc) -> None:
    """Raise ``ValueError`` unless ``doc`` matches the BENCH_serve schema."""
    if not isinstance(doc, dict):
        raise ValueError(f"document must be an object, got {type(doc).__name__}")
    version = need(doc, "schema_version", int, "document")
    if version != SERVE_SCHEMA_VERSION:
        raise ValueError(
            f"schema_version {version} != supported {SERVE_SCHEMA_VERSION}"
        )
    need(doc, "kind", str, "document")
    if doc["kind"] != "repro-serve-bench":
        raise ValueError(f"kind {doc['kind']!r} != 'repro-serve-bench'")
    need(doc, "mode", str, "document")
    need(doc, "host", dict, "document")
    rows = need(doc, "results", list, "document")
    if not rows:
        raise ValueError("document: 'results' must be non-empty")
    for idx, row in enumerate(rows):
        where = f"results[{idx}]"
        if not isinstance(row, dict):
            raise ValueError(f"{where}: must be an object")
        for key, typ in _ROW_FIELDS.items():
            types = (int, float) if typ is float else typ
            need(row, key, types, where)
        if row["serve_seconds"] <= 0:
            raise ValueError(f"{where}: serve_seconds must be positive")
    checks = need(doc, "checks", dict, "document")
    for name, check in checks.items():
        if not isinstance(check, dict) or "passed" not in check:
            raise ValueError(f"checks[{name!r}]: must be an object with 'passed'")


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_suite(smoke: bool) -> tuple[dict, bool]:
    """Run the serving grid + checks; returns ``(document, checks_ok)``."""
    mode = "smoke" if smoke else "full"
    print(f"serve bench: mode={mode}")
    rows = []
    for name, num_requests, size, num_procs, max_workers in _grid(smoke):
        row = _run_row(name, num_requests, size, num_procs, max_workers)
        rows.append(row)
        print(
            f"  {name:<14s} {row['num_requests']:>4d} reqs  "
            f"{row['requests_per_second']:7.1f} req/s  "
            f"hit rate {row['hit_rate']:.0%}  "
            f"{row['delta_cells']} delta cells  "
            f"p_max {row['latency_max_seconds'] * 1e3:.1f} ms"
        )

    print("checks:")
    checks = _checks_from_rows(rows)
    for name, check in checks.items():
        print(f"  {name}: {'pass' if check['passed'] else 'FAIL'} {check}")

    doc = make_document("repro-serve-bench", SERVE_SCHEMA_VERSION, mode, rows, checks)
    return doc, all(c["passed"] for c in checks.values())


def run_bench(smoke: bool, out: pathlib.Path, *,
              update_baseline: bool = False) -> tuple[dict, int]:
    """Run the serving grid + checks, emit ``out``, return (doc, exit code).

    Same write policy as the pool suite: a run with failed checks lands
    in the ``*.failed.json`` sidecar, never in ``out``, unless
    re-baselining is requested explicitly.
    """
    doc, checks_ok = run_suite(smoke)
    validate_serve_doc(doc)
    exit_code = 0 if checks_ok else 1
    payload = json.dumps(doc, indent=2, sort_keys=True) + "\n"
    if checks_ok or update_baseline:
        out.write_text(payload)
        print(f"wrote {out}")
    else:
        sidecar = out.with_suffix(".failed.json")
        sidecar.write_text(payload)
        print(f"baseline {out} left untouched (checks failed); wrote {sidecar}")
        print("  (re-baseline intentionally with --update-baseline)")
    return doc, exit_code


def check_document(path) -> int:
    """``--check``: validate an existing document, exit cleanly on junk."""
    try:
        doc = load_json_document(path)
        validate_serve_doc(doc)
    except BenchDocumentError as exc:
        print(f"bench check failed: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"bench check failed: {path}: {exc}", file=sys.stderr)
        return 1
    print(
        f"{path}: valid repro-serve-bench document "
        f"(schema v{doc['schema_version']}, {len(doc['results'])} rows, "
        f"mode={doc['mode']})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="single small row (CI-sized, ~seconds)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=DEFAULT_OUT,
        help=f"output document (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="replace --out even when checks fail (explicit re-baselining)",
    )
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="validate an existing document against the schema and exit",
    )
    args = parser.parse_args(argv)

    if args.check:
        return check_document(args.check)

    _, exit_code = run_bench(
        args.smoke, args.out, update_baseline=args.update_baseline
    )
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
