"""Append-only JSONL perf history: one record per benchmark run.

The longitudinal store behind ``repro bench record``.  Every run of a
suite (the pool sweep or the serving grid) appends exactly one line to
the history file: the commit SHA and dirty flag at record time, the
host fingerprint, the run mode, and the *full* result grid plus check
verdicts of the emitted document.  Records are never rewritten — a
regressed run is recorded like any other (that is the point: the
committed baseline must not launder, but the history must not censor).

The file format is deliberately boring: one JSON object per line,
appended with a single ``write`` so a crash mid-append can corrupt at
most the trailing line.  :func:`load_history` therefore tolerates a
torn *trailing* line (reported, not fatal); a corrupt line anywhere
else means the file was hand-edited or truncated and is an error.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import subprocess
import time

from repro.bench.matrix import BenchDocumentError, need

__all__ = [
    "DEFAULT_HISTORY_NAME",
    "HISTORY_KIND",
    "HISTORY_SCHEMA_VERSION",
    "HistoryLoad",
    "SUITES",
    "append_record",
    "git_fingerprint",
    "load_history",
    "make_history_record",
    "validate_history_file",
    "validate_history_record",
]

#: Bump on any incompatible change to the per-line record schema.
HISTORY_SCHEMA_VERSION = 1

HISTORY_KIND = "repro-bench-history"

#: Default history file name, resolved against the working directory.
DEFAULT_HISTORY_NAME = "BENCH_history.jsonl"

SUITES = ("pool", "serve")


def git_fingerprint(repo_root=None) -> dict:
    """``{"commit": sha|None, "dirty": bool|None}`` of the working tree.

    ``None`` values mean "not a git checkout / git unavailable" — the
    history store works (and records that fact) outside a repository.
    """
    root = pathlib.Path(repo_root) if repo_root is not None else pathlib.Path.cwd()

    def _git(*argv: str) -> str | None:
        try:
            proc = subprocess.run(
                ["git", *argv],
                cwd=root,
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout

    sha = _git("rev-parse", "HEAD")
    status = _git("status", "--porcelain")
    return {
        "commit": sha.strip() if sha else None,
        "dirty": bool(status.strip()) if status is not None else None,
    }


def make_history_record(suite: str, doc: dict, *, repo_root=None,
                        regressions: int | None = None) -> dict:
    """One history record from a suite's emitted document.

    ``regressions`` is the count flagged by the single-file comparison
    (``None`` when no baseline was available to compare against).
    """
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; expected one of {SUITES}")
    fingerprint = git_fingerprint(repo_root)
    record = {
        "history_schema_version": HISTORY_SCHEMA_VERSION,
        "kind": HISTORY_KIND,
        "suite": suite,
        "recorded": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "commit": fingerprint["commit"],
        "dirty": fingerprint["dirty"],
        "mode": doc["mode"],
        "host": doc["host"],
        "schema_version": doc["schema_version"],
        "results": doc["results"],
        "checks": {
            name: {"passed": bool(check.get("passed", False))}
            for name, check in doc.get("checks", {}).items()
        },
        "regressions": regressions,
    }
    validate_history_record(record)
    return record


def validate_history_record(record) -> None:
    """Raise ``ValueError`` unless ``record`` matches the history schema."""
    if not isinstance(record, dict):
        raise ValueError(f"history record must be an object, got {type(record).__name__}")
    where = "history record"
    version = need(record, "history_schema_version", int, where)
    if version != HISTORY_SCHEMA_VERSION:
        raise ValueError(
            f"history_schema_version {version} != supported {HISTORY_SCHEMA_VERSION}"
        )
    kind = need(record, "kind", str, where)
    if kind != HISTORY_KIND:
        raise ValueError(f"kind {kind!r} != {HISTORY_KIND!r}")
    suite = need(record, "suite", str, where)
    if suite not in SUITES:
        raise ValueError(f"suite {suite!r} not in {SUITES}")
    need(record, "recorded", str, where)
    need(record, "mode", str, where)
    need(record, "host", dict, where)
    if "commit" not in record or not isinstance(record["commit"], (str, type(None))):
        raise ValueError(f"{where}: commit must be a string or null")
    if "dirty" not in record or not isinstance(record["dirty"], (bool, type(None))):
        raise ValueError(f"{where}: dirty must be a bool or null")
    results = need(record, "results", list, where)
    if not results:
        raise ValueError(f"{where}: 'results' must be non-empty")
    for idx, row in enumerate(results):
        if not isinstance(row, dict):
            raise ValueError(f"{where}: results[{idx}] must be an object")
    checks = need(record, "checks", dict, where)
    for name, check in checks.items():
        if not isinstance(check, dict) or "passed" not in check:
            raise ValueError(f"{where}: checks[{name!r}] must be an object with 'passed'")
    if "regressions" in record and not isinstance(record["regressions"], (int, type(None))):
        raise ValueError(f"{where}: regressions must be an int or null")


def append_record(path, record: dict) -> int:
    """Validate + append one record; returns the new record count.

    The line is written in a single call so partial writes can only
    tear the file's tail (which :func:`load_history` tolerates).
    """
    validate_history_record(record)
    p = pathlib.Path(path)
    line = json.dumps(record, sort_keys=True) + "\n"
    with open(p, "a", encoding="utf-8") as handle:
        handle.write(line)
    return sum(1 for raw in p.read_text().splitlines() if raw.strip())


@dataclasses.dataclass
class HistoryLoad:
    """Parsed history file: records in append (chronological) order."""

    records: list
    path: str = ""
    corrupt_tail: bool = False

    def filtered(self, suite: str | None = None, mode: str | None = None) -> list:
        return [
            r
            for r in self.records
            if (suite is None or r["suite"] == suite)
            and (mode is None or r["mode"] == mode)
        ]


def load_history(path, *, tolerate_corrupt_tail: bool = True) -> HistoryLoad:
    """Parse a JSONL history file.

    A torn trailing line (crash mid-append) is dropped and flagged via
    ``corrupt_tail`` when ``tolerate_corrupt_tail``; corruption anywhere
    else raises :class:`BenchDocumentError` with the line number.
    """
    p = pathlib.Path(path)
    try:
        text = p.read_text()
    except FileNotFoundError:
        raise BenchDocumentError(f"{p}: no such file") from None
    except OSError as exc:
        raise BenchDocumentError(f"{p}: cannot read ({exc.strerror or exc})") from None
    lines = text.splitlines()
    last_content = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1
    )
    records = []
    corrupt_tail = False
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if tolerate_corrupt_tail and lineno == last_content:
                corrupt_tail = True
                continue
            raise BenchDocumentError(
                f"{p}:{lineno + 1}: corrupt history line ({exc.msg})"
            ) from None
        try:
            validate_history_record(record)
        except ValueError as exc:
            raise BenchDocumentError(f"{p}:{lineno + 1}: {exc}") from None
        records.append(record)
    return HistoryLoad(records=records, path=str(p), corrupt_tail=corrupt_tail)


def validate_history_file(path) -> dict:
    """Load + validate; returns a summary for ``repro bench check``."""
    load = load_history(path)
    suites = sorted({r["suite"] for r in load.records})
    commits = {r["commit"] for r in load.records if r["commit"]}
    return {
        "path": load.path,
        "records": len(load.records),
        "suites": suites,
        "commits": len(commits),
        "corrupt_tail": load.corrupt_tail,
    }
