"""Variance-aware trend detection over the benchmark history.

The single-file comparison (``old * 1.6``) is a one-shot ratio against
whatever happened to be committed last — it has no notion of a cell's
natural noise floor, so one jittery run can flag a phantom regression
and a slow creep under 1.6x per step is invisible forever.  This module
replaces that verdict with a per-cell *rolling median/MAD window* over
the append-only history:

- the baseline for a cell is the median of its trailing window of
  floors (excluding the most recent ``confirm`` samples);
- the spread is the MAD of that window, scaled to sigma-equivalents
  (x1.4826) and floored at ``rel_floor`` of the median so a perfectly
  quiet synthetic series does not become hypersensitive;
- a regression verdict requires a *sustained* shift: every one of the
  last ``confirm`` samples must sit ``z_threshold`` robust sigmas above
  the baseline median AND their median must exceed it by ``min_effect``.

A single outlier therefore never flags (it cannot fill the confirm
tail), while a genuine 2x step does as soon as ``confirm`` runs land on
the far side.  Cells with fewer than ``min_samples`` recorded runs get
the ``insufficient-history`` verdict — for those, the legacy best-of-N
floors and the 1.6x single-file ratio remain the only (fallback) gate.
"""

from __future__ import annotations

import dataclasses
import statistics

from repro.bench.matrix import cell_key

__all__ = [
    "TrendPolicy",
    "VERDICT_IMPROVEMENT",
    "VERDICT_INSUFFICIENT",
    "VERDICT_REGRESSION",
    "VERDICT_STABLE",
    "collect_series",
    "detect_series",
    "row_key",
    "row_label",
    "row_metric",
    "trend_report",
]

VERDICT_STABLE = "stable"
VERDICT_REGRESSION = "regression"
VERDICT_IMPROVEMENT = "improvement"
VERDICT_INSUFFICIENT = "insufficient-history"

#: Robust-sigma equivalence factor for the MAD of a normal sample.
MAD_TO_SIGMA = 1.4826


@dataclasses.dataclass(frozen=True)
class TrendPolicy:
    """Knobs of the MAD-window detector (defaults tuned for CI floors)."""

    #: Baseline window: trailing samples (excluding the confirm tail)
    #: that define the cell's rolling median and MAD.
    window: int = 8
    #: Consecutive most-recent samples that must *all* shift before a
    #: verdict — this is what makes one noisy floor a non-event.
    confirm: int = 3
    #: Below this many total samples the verdict is insufficient-history
    #: and the legacy 1.6x single-file ratio stays the only gate.
    min_samples: int = 6
    #: Robust z-score each confirm sample must exceed.
    z_threshold: float = 3.5
    #: The confirm tail's median must also shift by this ratio — a
    #: statistically crisp 3% drift is not worth a red build.
    min_effect: float = 1.25
    #: MAD floor as a fraction of the baseline median (guards the
    #: zero-MAD pathology of ultra-quiet series).
    rel_floor: float = 0.05


def detect_series(samples: list[float], policy: TrendPolicy = TrendPolicy()) -> dict:
    """Verdict for one cell's chronological series of floors."""
    n = len(samples)
    base_report = {
        "n": n,
        "baseline_median": None,
        "mad": None,
        "scale": None,
        "recent_median": None,
        "recent_ratio": None,
        "zscores": [],
        "verdict": VERDICT_INSUFFICIENT,
    }
    if n < max(policy.min_samples, policy.confirm + 3):
        return base_report
    recent = samples[-policy.confirm:]
    window_lo = max(0, n - policy.confirm - policy.window)
    window = samples[window_lo:n - policy.confirm]
    med = statistics.median(window)
    mad = statistics.median(abs(x - med) for x in window)
    scale = max(mad * MAD_TO_SIGMA, abs(med) * policy.rel_floor, 1e-12)
    zscores = [(x - med) / scale for x in recent]
    recent_median = statistics.median(recent)
    ratio = recent_median / med if med > 0 else None
    verdict = VERDICT_STABLE
    if (
        all(z > policy.z_threshold for z in zscores)
        and ratio is not None
        and ratio >= policy.min_effect
    ):
        verdict = VERDICT_REGRESSION
    elif (
        all(z < -policy.z_threshold for z in zscores)
        and ratio is not None
        and ratio <= 1.0 / policy.min_effect
    ):
        verdict = VERDICT_IMPROVEMENT
    return {
        **base_report,
        "baseline_median": med,
        "mad": mad,
        "scale": scale,
        "recent_median": recent_median,
        "recent_ratio": ratio,
        "zscores": zscores,
        "verdict": verdict,
    }


def row_key(suite: str, row: dict) -> tuple:
    """Cell identity of one result row inside a history record."""
    if suite == "pool":
        return cell_key(row)
    # Serve rows are keyed by their named grid row plus its shape knobs.
    return (
        row.get("row", "?"),
        row.get("num_procs", 0),
        row.get("max_workers", 0),
        row.get("problem_size", 0),
    )


def row_label(suite: str, key: tuple) -> str:
    """Human-readable cell label for reports."""
    if suite == "pool":
        problem, executor, procs, use_delta, kernel_tier = key
        label = f"{problem}/{executor}/P{procs}"
        if use_delta:
            label += "/delta"
        if kernel_tier:
            label += "/tier"
        return label
    name, procs, workers, size = key
    return f"{name}/P{procs}/W{workers}/n{size}"


def row_metric(suite: str, row: dict) -> float | None:
    """The floor tracked longitudinally for one row (seconds)."""
    if suite == "pool":
        if not row.get("valid", True):
            return None
        value = row.get("wall_seconds")
    else:
        value = row.get("serve_seconds")
    if isinstance(value, (int, float)) and value > 0:
        return float(value)
    return None


def collect_series(records: list, suite: str, mode: str) -> dict[tuple, list[float]]:
    """Per-cell chronological floor series from matching history records."""
    series: dict[tuple, list[float]] = {}
    for record in records:
        if record["suite"] != suite or record["mode"] != mode:
            continue
        for row in record["results"]:
            value = row_metric(suite, row)
            if value is None:
                continue
            series.setdefault(row_key(suite, row), []).append(value)
    return series


def trend_report(records: list, policy: TrendPolicy = TrendPolicy(),
                 suite: str | None = None, mode: str | None = None) -> list[dict]:
    """MAD-window verdict per cell, across every (suite, mode) present.

    ``suite`` / ``mode`` restrict the report; by default every
    combination found in the history is analyzed (smoke and full runs
    never share a series — their instance sizes differ by design).
    """
    combos = sorted(
        {
            (record["suite"], record["mode"])
            for record in records
            if (suite is None or record["suite"] == suite)
            and (mode is None or record["mode"] == mode)
        }
    )
    cells = []
    for combo_suite, combo_mode in combos:
        series = collect_series(records, combo_suite, combo_mode)
        for key in sorted(series, key=str):
            samples = series[key]
            report = detect_series(samples, policy)
            cells.append(
                {
                    "suite": combo_suite,
                    "mode": combo_mode,
                    "cell": row_label(combo_suite, key),
                    "key": list(key),
                    "samples": samples,
                    **report,
                }
            )
    return cells
