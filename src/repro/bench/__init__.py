"""Longitudinal perf intelligence: matrix runner, history store, trends.

The benchmark layer has two time horizons:

- **one run vs. one file** — the suite runners
  (:mod:`repro.bench.pool_bench`, :mod:`repro.bench.serve_bench`) sweep
  the problem x executor x P x delta-mode x kernel-tier matrix and
  compare against a single committed baseline with the 1.6x ratio gate
  (:mod:`repro.bench.matrix`);
- **many runs over time** — ``repro bench record`` appends every run to
  an append-only JSONL history (:mod:`repro.bench.history`), and
  ``repro bench trend`` runs a per-cell rolling median/MAD detector
  over it (:mod:`repro.bench.trend`) so a regression verdict needs a
  sustained shift, not one noisy floor.

``benchmarks/bench_runner.py`` and ``benchmarks/bench_serve.py`` remain
the standalone entry points; they are thin shims over this package.
"""

from repro.bench.history import (
    HISTORY_SCHEMA_VERSION,
    HistoryLoad,
    append_record,
    git_fingerprint,
    load_history,
    make_history_record,
    validate_history_file,
    validate_history_record,
)
from repro.bench.matrix import (
    REGRESSION_RATIO,
    BenchDocumentError,
    GridCell,
    cell_key,
    compare_documents,
    find_duplicate_cells,
    make_document,
    throughput_cells_per_second,
)
from repro.bench.report import (
    render_markdown_report,
    render_text_report,
    render_trend_table,
)
from repro.bench.trend import TrendPolicy, detect_series, trend_report

__all__ = [
    "BenchDocumentError",
    "GridCell",
    "HISTORY_SCHEMA_VERSION",
    "HistoryLoad",
    "REGRESSION_RATIO",
    "TrendPolicy",
    "append_record",
    "cell_key",
    "compare_documents",
    "detect_series",
    "find_duplicate_cells",
    "git_fingerprint",
    "load_history",
    "make_document",
    "make_history_record",
    "render_markdown_report",
    "render_text_report",
    "render_trend_table",
    "throughput_cells_per_second",
    "trend_report",
    "validate_history_file",
    "validate_history_record",
]
